//! A small metrics registry fed by the event stream: named counters,
//! gauges and nearest-rank histograms, plus reconstructors that rebuild
//! the engine's own summary structs (`SchedOverhead`, `FaultStats`,
//! `GuardStats`) from a journal.
//!
//! Percentiles follow the **nearest-rank** convention documented on
//! [`SchedOverhead`]: `pq` is the sample at 1-based ascending rank
//! `⌈q·n⌉` (clamped), always an observed value, never interpolated —
//! so a histogram fed the same samples as the engine reproduces the
//! engine's percentiles bit-for-bit.

use dollymp_cluster::metrics::{FaultStats, GuardStats, SchedOverhead};
use dollymp_cluster::state::CopyKind;
use dollymp_cluster::trace::Event;
use std::collections::BTreeMap;

/// A sample-retaining histogram with nearest-rank percentiles.
///
/// Samples are kept verbatim (sorted lazily at query time), which keeps
/// ingestion O(1) and makes every percentile exact — the right trade
/// for post-hoc journal analysis, where sample counts are bounded by
/// the run's decision points.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    samples: Vec<u64>,
}

impl Histogram {
    /// Add one sample.
    pub fn record(&mut self, v: u64) {
        self.samples.push(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.samples.iter().sum()
    }

    /// Mean sample (0 when empty), matching `SchedOverhead::mean_ns`'s
    /// integer-division convention.
    pub fn mean(&self) -> u64 {
        if self.samples.is_empty() {
            0
        } else {
            self.sum() / self.count()
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// Nearest-rank `q`-percentile (0 when empty): the sample at
    /// 1-based ascending rank `⌈q·n⌉`, clamped to `[1, n]`.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let rank = ((n as f64) * q).ceil() as usize;
        sorted[rank.clamp(1, n) - 1]
    }

    /// The raw samples, in insertion order.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }
}

/// Counters, gauges and histograms accumulated from an event stream.
///
/// Feed it events with [`MetricsRegistry::ingest`] (it is itself *not*
/// a `Recorder` — build it from a journal after the run, or wrap it if
/// live ingestion is wanted) and read either the generic named metrics
/// or the typed reconstructions.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    guard: GuardStats,
    work_lost_norm: f64,
    schedule_ns_total: u64,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Build a registry from a full event stream.
    pub fn from_events<'a, I: IntoIterator<Item = &'a Event>>(events: I) -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        for ev in events {
            r.ingest(ev);
        }
        r
    }

    fn bump(&mut self, name: &'static str) {
        *self.counters.entry(name).or_insert(0) += 1;
    }

    fn hist(&mut self, name: &'static str) -> &mut Histogram {
        self.histograms.entry(name).or_default()
    }

    /// Fold one event into the registry.
    pub fn ingest(&mut self, ev: &Event) {
        self.bump("events_total");
        match ev {
            Event::SlotTick { .. } => self.bump("slot_ticks"),
            Event::JobArrival { .. } => self.bump("jobs_arrived"),
            Event::JobCompletion { metrics, .. } => {
                self.bump("jobs_completed");
                self.hist("job_flowtime_slots").record(metrics.flowtime);
                self.hist("job_running_slots").record(metrics.running_time);
            }
            Event::CopyLaunch {
                kind, at, finish, ..
            } => {
                self.bump("copies_launched");
                if *kind == CopyKind::Clone {
                    self.bump("clones_launched");
                }
                self.hist("copy_planned_slots")
                    .record(finish.saturating_sub(*at));
            }
            Event::CopyRetire {
                start, at, outcome, ..
            } => {
                match outcome {
                    dollymp_cluster::metrics::CopyOutcome::Won => self.bump("copies_won"),
                    _ => self.bump("copies_killed"),
                }
                self.hist("copy_lifetime_slots")
                    .record(at.saturating_sub(*start));
            }
            Event::CopyEvict { work_lost_norm, .. } => {
                self.bump("copies_evicted");
                self.work_lost_norm += work_lost_norm;
            }
            Event::TaskSaved { .. } => self.bump("tasks_saved_by_clone"),
            Event::TaskLost { .. } => self.bump("tasks_requeued"),
            Event::ServerCrash { .. } => self.bump("server_crashes"),
            Event::ServerRestore { .. } => self.bump("server_recoveries"),
            Event::ServerDegrade { .. } => self.bump("server_degradations"),
            Event::SchedSpan {
                arrival_ns,
                schedule_ns,
                batch,
                detail,
                ..
            } => {
                self.bump("decision_points");
                self.schedule_ns_total += schedule_ns;
                self.hist("sched_overhead_ns")
                    .record(arrival_ns + schedule_ns);
                self.hist("batch_size").record(*batch);
                if let Some(span) = detail {
                    self.hist("pass_prepare_ns").record(span.prepare_ns);
                    self.hist("pass_placement_ns").record(span.placement_ns);
                }
            }
            Event::GuardDelta { delta, .. } => {
                self.bump("guard_deltas");
                self.guard.accumulate(delta);
            }
            Event::UtilSample { cpu, mem, .. } => {
                self.bump("util_samples");
                self.gauges.insert("cpu_utilization", *cpu);
                self.gauges.insert("mem_utilization", *mem);
            }
        }
    }

    /// A named counter's value (0 when never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A named gauge's most recent value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A named histogram, if any samples were recorded under it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, name-sorted (for display).
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// All histograms, name-sorted (for display).
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (*k, v))
    }

    /// Rebuild the run's [`SchedOverhead`] from the `SchedSpan` stream.
    /// Feeding the same samples through the same nearest-rank math makes
    /// this equal the live report's summary exactly.
    pub fn sched_overhead(&self) -> SchedOverhead {
        match self.histograms.get("sched_overhead_ns") {
            Some(h) => SchedOverhead::from_samples(h.samples()),
            None => SchedOverhead::default(),
        }
    }

    /// Total nanoseconds spent inside `Scheduler::schedule` (the live
    /// report's `scheduling_ns`, which excludes on-arrival refreshes).
    pub fn scheduling_ns(&self) -> u64 {
        self.schedule_ns_total
    }

    /// Rebuild the run's [`FaultStats`] from the fault-transition and
    /// eviction events. `work_lost_norm` is summed in event order —
    /// the same order the engine added it — so the f64 total is
    /// bit-identical, not merely close.
    pub fn fault_stats(&self) -> FaultStats {
        FaultStats {
            server_crashes: self.counter("server_crashes"),
            server_recoveries: self.counter("server_recoveries"),
            server_degradations: self.counter("server_degradations"),
            copies_evicted: self.counter("copies_evicted"),
            tasks_saved_by_clone: self.counter("tasks_saved_by_clone"),
            tasks_requeued: self.counter("tasks_requeued"),
            work_lost_norm: self.work_lost_norm,
        }
    }

    /// Rebuild the run's [`GuardStats`] by summing `GuardDelta` events.
    pub fn guard_stats(&self) -> GuardStats {
        self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dollymp_cluster::spec::ServerId;

    #[test]
    fn histogram_percentiles_are_nearest_rank() {
        let mut h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.50), 50);
        assert_eq!(h.percentile(0.99), 99);
        assert_eq!(h.max(), 100);
        assert_eq!(h.mean(), 50);
        // Single sample: every percentile is that sample.
        let mut one = Histogram::default();
        one.record(7);
        assert_eq!(one.percentile(0.01), 7);
        assert_eq!(one.percentile(0.99), 7);
    }

    #[test]
    fn sched_overhead_matches_engine_summary() {
        let mut r = MetricsRegistry::new();
        for (i, (a, s)) in [(10u64, 100u64), (0, 250), (5, 40)].iter().enumerate() {
            r.ingest(&Event::SchedSpan {
                at: i as u64,
                decision_point: i as u64 + 1,
                arrival_ns: *a,
                schedule_ns: *s,
                batch: 0,
                detail: None,
            });
        }
        let want = SchedOverhead::from_samples(&[110, 250, 45]);
        assert_eq!(r.sched_overhead(), want);
        assert_eq!(r.scheduling_ns(), 390);
    }

    #[test]
    fn fault_counters_accumulate() {
        let mut r = MetricsRegistry::new();
        r.ingest(&Event::ServerCrash {
            at: 1,
            server: ServerId(0),
        });
        r.ingest(&Event::ServerRestore {
            at: 5,
            server: ServerId(0),
        });
        r.ingest(&Event::ServerDegrade {
            at: 7,
            server: ServerId(1),
            factor: 0.5,
        });
        let f = r.fault_stats();
        assert_eq!(f.server_crashes, 1);
        assert_eq!(f.server_recoveries, 1);
        assert_eq!(f.server_degradations, 1);
    }
}
