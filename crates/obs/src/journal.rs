//! Event journals: the in-memory recorders the engine writes into and
//! the JSONL serialization they round-trip through.
//!
//! A journal file is line-oriented: the first line is the
//! [`JournalHeader`] (versioned, carrying the scheduler name, the run
//! seed, the FNV-1a config fingerprint and the recording flags), every
//! subsequent line one [`Event`]. Line-oriented JSON keeps the format
//! streamable — `dollymp-trace inspect` and the replay verifier both
//! read it without loading structure beyond one line at a time — and
//! diff-friendly for humans.

use crate::config_fingerprint;
use dollymp_cluster::engine::EngineConfig;
use dollymp_cluster::trace::{Event, Recorder};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Current journal format version. Bump on any schema change; readers
/// reject newer versions instead of misparsing them.
pub const JOURNAL_VERSION: u32 = 1;

/// First line of every journal file: enough provenance to match the
/// journal to the run that produced it and to know which optional
/// streams (utilization, timeline) it contains.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Format version ([`JOURNAL_VERSION`] at write time).
    pub version: u32,
    /// Scheduler name as reported by `Scheduler::name` (matches
    /// `SimReport::scheduler`).
    pub scheduler: String,
    /// The run's RNG seed.
    pub seed: u64,
    /// [`config_fingerprint`] of `(seed, experiment config)` — 16 hex
    /// digits, same convention as the `dollymp-bench` artifacts.
    pub config_fingerprint: String,
    /// Whether the run recorded utilization samples
    /// (`EngineConfig::record_utilization`); replay only reconstructs
    /// the utilization series when set.
    pub record_utilization: bool,
    /// Whether the run recorded the copy timeline
    /// (`EngineConfig::record_timeline`); replay only reconstructs the
    /// timeline when set.
    pub record_timeline: bool,
}

/// An unbounded in-memory journal: header plus every event of one run,
/// in emission order. This is the [`Recorder`] to pass to
/// `simulate_recorded` when the full stream is wanted (replay
/// verification, JSONL export).
#[derive(Debug, Clone, PartialEq)]
pub struct Journal {
    /// Run provenance (first line of the JSONL form).
    pub header: JournalHeader,
    /// The event stream, in emission order.
    pub events: Vec<Event>,
}

impl Journal {
    /// Journal for a run of `scheduler` with the given seed and
    /// experiment config (fingerprinted into the header) under `engine`
    /// (whose recording flags the header copies).
    pub fn for_run<T: Serialize>(
        scheduler: &str,
        seed: u64,
        config: &T,
        engine: &EngineConfig,
    ) -> Journal {
        Journal {
            header: JournalHeader {
                version: JOURNAL_VERSION,
                scheduler: scheduler.to_string(),
                seed,
                config_fingerprint: config_fingerprint(seed, config),
                record_utilization: engine.record_utilization,
                record_timeline: engine.record_timeline,
            },
            events: Vec::new(),
        }
    }

    /// Serialize to the JSONL form: header line, then one event per
    /// line, trailing newline.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        #[allow(clippy::expect_used)] // trace events serialize infallibly
        {
            out.push_str(&serde_json::to_string(&self.header).expect("header serializes"));
            out.push('\n');
            for ev in &self.events {
                out.push_str(&serde_json::to_string(ev).expect("event serializes"));
                out.push('\n');
            }
        }
        out
    }

    /// Parse the JSONL form produced by [`Journal::to_jsonl`].
    pub fn from_jsonl(text: &str) -> Result<Journal, JournalError> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (_, first) = lines.next().ok_or(JournalError::Empty)?;
        let header: JournalHeader =
            serde_json::from_str(first).map_err(|e| JournalError::BadLine {
                line: 1,
                detail: e.to_string(),
            })?;
        if header.version > JOURNAL_VERSION {
            return Err(JournalError::UnsupportedVersion(header.version));
        }
        let mut events = Vec::new();
        for (i, line) in lines {
            let ev: Event = serde_json::from_str(line).map_err(|e| JournalError::BadLine {
                line: i + 1,
                detail: e.to_string(),
            })?;
            events.push(ev);
        }
        Ok(Journal { header, events })
    }

    /// Write the JSONL form to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Read a journal back from a JSONL file.
    pub fn load(path: &std::path::Path) -> Result<Journal, JournalError> {
        let text = std::fs::read_to_string(path).map_err(|e| JournalError::Io(e.to_string()))?;
        Journal::from_jsonl(&text)
    }
}

impl Recorder for Journal {
    fn record(&mut self, ev: Event) {
        self.events.push(ev);
    }
}

/// Why a journal file failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The file had no non-blank lines.
    Empty,
    /// The header declared a version newer than this reader.
    UnsupportedVersion(u32),
    /// A line was not valid header/event JSON (1-based line number).
    BadLine {
        /// 1-based line number of the offending line.
        line: usize,
        /// Parser message.
        detail: String,
    },
    /// The file could not be read at all.
    Io(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Empty => write!(f, "journal is empty (missing header line)"),
            JournalError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "journal version {v} is newer than supported {JOURNAL_VERSION}"
                )
            }
            JournalError::BadLine { line, detail } => {
                write!(f, "journal line {line}: {detail}")
            }
            JournalError::Io(e) => write!(f, "journal read failed: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

/// A bounded recorder keeping only the most recent `capacity` events —
/// the "flight recorder" proper, for long runs where only the tail
/// matters (e.g. capturing the lead-up to a guard quarantine or an
/// engine error without the memory cost of the full stream).
#[derive(Debug, Clone)]
pub struct RingRecorder {
    buf: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl RingRecorder {
    /// Ring holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> RingRecorder {
        RingRecorder {
            buf: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Number of retained events (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted from the front to honor the bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drain the retained tail into a vector, oldest first.
    pub fn into_events(self) -> Vec<Event> {
        self.buf.into_iter().collect()
    }
}

impl Recorder for RingRecorder {
    fn record(&mut self, ev: Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dollymp_core::time::Time;

    fn tick(at: Time) -> Event {
        Event::SlotTick { at }
    }

    #[test]
    fn jsonl_round_trip_preserves_journal() {
        let mut j = Journal::for_run("fifo", 9, &"cfg", &EngineConfig::default());
        j.record(tick(0));
        j.record(tick(3));
        let back = Journal::from_jsonl(&j.to_jsonl()).unwrap();
        assert_eq!(back, j);
    }

    #[test]
    fn newer_version_is_rejected() {
        let mut j = Journal::for_run("fifo", 9, &"cfg", &EngineConfig::default());
        j.header.version = JOURNAL_VERSION + 1;
        match Journal::from_jsonl(&j.to_jsonl()) {
            Err(JournalError::UnsupportedVersion(v)) => assert_eq!(v, JOURNAL_VERSION + 1),
            other => panic!("expected version rejection, got {other:?}"),
        }
    }

    #[test]
    fn bad_event_line_is_located() {
        let mut text = Journal::for_run("fifo", 9, &"cfg", &EngineConfig::default()).to_jsonl();
        text.push_str("{\"NotAnEvent\":{}}\n");
        match Journal::from_jsonl(&text) {
            Err(JournalError::BadLine { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected bad-line error, got {other:?}"),
        }
    }

    #[test]
    fn ring_keeps_only_the_tail() {
        let mut r = RingRecorder::new(3);
        for t in 0..10 {
            r.record(tick(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 7);
        let kept: Vec<Time> = r.events().map(|e| e.at()).collect();
        assert_eq!(kept, vec![7, 8, 9]);
    }
}
