//! # dollymp-obs
//!
//! Observability consumers for the simulator's flight recorder
//! (`dollymp_cluster::trace`). The engine emits a typed event stream
//! through the `Recorder` trait; this crate turns that stream into
//! artifacts:
//!
//! * [`journal`] — a bounded in-memory ring recorder and a JSONL
//!   journal with a versioned header (scheduler, seed, FNV-1a config
//!   fingerprint, recording flags);
//! * [`registry`] — a [`registry::MetricsRegistry`] of counters, gauges
//!   and nearest-rank histograms that can reconstruct
//!   `SchedOverhead` / `FaultStats` / `GuardStats` from the stream;
//! * [`replay`] — re-derives a full `SimReport` purely from a journal
//!   and byte-diffs it against the live report, returning a typed
//!   [`replay::Divergence`] on mismatch. This is the standing
//!   correctness oracle for engine/scheduler refactors: any change that
//!   perturbs observable behavior shows up as a replay divergence.
//!
//! The `dollymp-trace` binary exposes the same machinery on the command
//! line (inspect / summary / diff / verify).
//!
//! ## Quick start
//!
//! ```
//! use dollymp_cluster::prelude::*;
//! use dollymp_core::prelude::*;
//! use dollymp_obs::journal::Journal;
//! use dollymp_obs::replay;
//!
//! let cluster = ClusterSpec::homogeneous(4, 8.0, 16.0);
//! let jobs = vec![JobSpec::single_phase(JobId(0), 8, Resources::new(1.0, 2.0), 10.0, 3.0)];
//! let sampler = DurationSampler::new(42, StragglerModel::ParetoFit);
//! let mut policy = FifoFirstFit;
//! let cfg = EngineConfig::default();
//!
//! let mut journal = Journal::for_run("fifo", 42, &cfg, &cfg);
//! let report = simulate_recorded(
//!     &cluster, jobs, &sampler, &mut policy, &cfg, &FaultTimeline::default(), &mut journal,
//! );
//! replay::verify(&journal, &report).expect("journal replays to the live report");
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod journal;
pub mod registry;
pub mod replay;

/// FNV-1a fingerprint of `(seed, config)` — 16 lowercase hex digits.
///
/// The hash runs over the seed's little-endian bytes followed by the
/// config's compact-JSON serialization, so any config change (and any
/// seed change) yields a different fingerprint. Journals store it in
/// their header; `dollymp-bench` stamps the same fingerprint into its
/// artifact files, which is how a journal is matched to the experiment
/// that produced it.
pub fn config_fingerprint<T: serde::Serialize>(seed: u64, cfg: &T) -> String {
    #[allow(clippy::expect_used)] // all config types in this workspace serialize infallibly
    let json = serde_json::to_string(cfg).expect("config serializes");
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in seed.to_le_bytes().iter().chain(json.as_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        let cfg = ("paper_30_node", vec![0.5_f64]);
        let a = config_fingerprint(7, &cfg);
        assert_eq!(a, config_fingerprint(7, &cfg));
        assert_eq!(a.len(), 16);
        assert_ne!(a, config_fingerprint(8, &cfg));
        assert_ne!(a, config_fingerprint(7, &("paper_30_node", vec![0.0_f64])));
    }
}
