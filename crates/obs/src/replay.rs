//! Record → replay verification: rebuild a full `SimReport` from a
//! journal alone and byte-diff it against the live report.
//!
//! Every aggregate the live engine computes has a corresponding event
//! stream (the emission sites sit exactly where the live aggregates are
//! updated, in the same order), so the reconstruction is *exact* — u64
//! timing samples are the same integers, f64 work-lost sums run in the
//! same order, job records are the same structs. A mismatch therefore
//! always means behavior diverged, never rounding; [`verify`] localizes
//! it to a typed [`Divergence`] (field, slot, event index) instead of a
//! bare assert, which is what makes this the standing correctness
//! oracle for engine and scheduler refactors.

use crate::journal::Journal;
use dollymp_cluster::metrics::{
    CopyOutcome, CopySpan, FaultStats, GuardStats, SchedOverhead, SimReport,
};
use dollymp_cluster::trace::Event;
use dollymp_core::time::Time;

/// Where a replayed report first disagreed with the live one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Dot-path of the first divergent `SimReport` field (e.g.
    /// `jobs[3].flowtime`, `faults.work_lost_norm`).
    pub field: String,
    /// Simulation slot the divergent record belongs to, when the field
    /// has one (a job's completion slot, a utilization sample's slot).
    pub slot: Option<Time>,
    /// Index into the journal's event stream of the event that produced
    /// the divergent replayed value, when one did.
    pub event_index: Option<usize>,
    /// Human-readable `replayed vs live` rendering of the two values.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replay diverged at `{}`", self.field)?;
        if let Some(s) = self.slot {
            write!(f, " (slot {s})")?;
        }
        if let Some(i) = self.event_index {
            write!(f, " (event #{i})")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Event indices backing each positional element of the replayed
/// report, used to localize divergences.
#[derive(Debug, Default)]
struct Provenance {
    jobs: Vec<usize>,
    utilization: Vec<usize>,
    timeline: Vec<usize>,
    spans: Vec<usize>,
}

fn reconstruct(journal: &Journal) -> (SimReport, Provenance) {
    let mut prov = Provenance::default();
    let mut jobs = Vec::new();
    let mut overhead_samples: Vec<u64> = Vec::new();
    let mut scheduling_ns = 0u64;
    let mut decision_points = 0u64;
    let mut faults = FaultStats::default();
    let mut guard = GuardStats::default();
    let mut utilization: Vec<(Time, f64, f64)> = Vec::new();
    let mut timeline: Vec<CopySpan> = Vec::new();

    for (i, ev) in journal.events.iter().enumerate() {
        match ev {
            Event::JobCompletion { metrics, .. } => {
                prov.jobs.push(i);
                jobs.push(metrics.clone());
            }
            Event::SchedSpan {
                arrival_ns,
                schedule_ns,
                ..
            } => {
                prov.spans.push(i);
                decision_points += 1;
                scheduling_ns += schedule_ns;
                overhead_samples.push(arrival_ns + schedule_ns);
            }
            Event::CopyRetire {
                at,
                task,
                copy_idx,
                server,
                kind,
                start,
                outcome,
            } => {
                if journal.header.record_timeline {
                    prov.timeline.push(i);
                    timeline.push(CopySpan {
                        task: *task,
                        copy_idx: *copy_idx,
                        server: *server,
                        kind: *kind,
                        start: *start,
                        end: *at,
                        outcome: *outcome,
                    });
                }
            }
            Event::CopyEvict {
                at,
                task,
                copy_idx,
                server,
                kind,
                start,
                work_lost_norm,
            } => {
                faults.copies_evicted += 1;
                // Same summation order as the live engine ⇒ the f64
                // total is bit-identical.
                faults.work_lost_norm += work_lost_norm;
                if journal.header.record_timeline {
                    prov.timeline.push(i);
                    timeline.push(CopySpan {
                        task: *task,
                        copy_idx: *copy_idx,
                        server: *server,
                        kind: *kind,
                        start: *start,
                        end: *at,
                        outcome: CopyOutcome::Evicted,
                    });
                }
            }
            Event::TaskSaved { .. } => faults.tasks_saved_by_clone += 1,
            Event::TaskLost { .. } => faults.tasks_requeued += 1,
            Event::ServerCrash { .. } => faults.server_crashes += 1,
            Event::ServerRestore { .. } => faults.server_recoveries += 1,
            Event::ServerDegrade { .. } => faults.server_degradations += 1,
            Event::GuardDelta { delta, .. } => guard.accumulate(delta),
            Event::UtilSample { at, cpu, mem } => {
                if journal.header.record_utilization {
                    prov.utilization.push(i);
                    utilization.push((*at, *cpu, *mem));
                }
            }
            Event::SlotTick { .. } | Event::JobArrival { .. } | Event::CopyLaunch { .. } => {}
        }
    }

    let makespan = jobs.iter().map(|j| j.finish).max().unwrap_or(0);
    let report = SimReport {
        scheduler: journal.header.scheduler.clone(),
        jobs,
        makespan,
        decision_points,
        scheduling_ns,
        sched_overhead: SchedOverhead::from_samples(&overhead_samples),
        faults,
        guard,
        utilization,
        timeline,
    };
    (report, prov)
}

/// Re-derive the full `SimReport` from the journal alone.
pub fn replay_report(journal: &Journal) -> SimReport {
    reconstruct(journal).0
}

/// Byte-diff the replayed report against the live one. `Ok(())` iff the
/// two serialize identically; otherwise the first divergence, localized
/// to a field, slot, and journal event index.
pub fn verify(journal: &Journal, live: &SimReport) -> Result<(), Divergence> {
    let (replayed, prov) = reconstruct(journal);
    #[allow(clippy::expect_used)] // reports serialize infallibly
    let same = serde_json::to_string(&replayed).expect("report serializes")
        == serde_json::to_string(live).expect("report serializes");
    if same {
        return Ok(());
    }
    Err(localize(&replayed, live, &prov))
}

fn diverge<T: std::fmt::Debug>(
    field: String,
    slot: Option<Time>,
    event_index: Option<usize>,
    replayed: &T,
    live: &T,
) -> Divergence {
    Divergence {
        field,
        slot,
        event_index,
        detail: format!("replayed {replayed:?} vs live {live:?}"),
    }
}

/// Field-wise search for the first divergence, in `SimReport` field
/// order. Called only when the byte comparison already failed, so some
/// field *must* differ; the fallback arm covers the impossible case
/// defensively.
fn localize(r: &SimReport, l: &SimReport, prov: &Provenance) -> Divergence {
    if r.scheduler != l.scheduler {
        return diverge("scheduler".into(), None, None, &r.scheduler, &l.scheduler);
    }
    if r.jobs.len() != l.jobs.len() {
        return diverge("jobs.len".into(), None, None, &r.jobs.len(), &l.jobs.len());
    }
    for (i, (rj, lj)) in r.jobs.iter().zip(&l.jobs).enumerate() {
        if rj != lj {
            return diverge(
                format!("jobs[{i}]"),
                Some(lj.finish),
                prov.jobs.get(i).copied(),
                rj,
                lj,
            );
        }
    }
    if r.makespan != l.makespan {
        return diverge("makespan".into(), None, None, &r.makespan, &l.makespan);
    }
    if r.decision_points != l.decision_points {
        return diverge(
            "decision_points".into(),
            None,
            prov.spans.last().copied(),
            &r.decision_points,
            &l.decision_points,
        );
    }
    if r.scheduling_ns != l.scheduling_ns {
        return diverge(
            "scheduling_ns".into(),
            None,
            None,
            &r.scheduling_ns,
            &l.scheduling_ns,
        );
    }
    if r.sched_overhead != l.sched_overhead {
        return diverge(
            "sched_overhead".into(),
            None,
            None,
            &r.sched_overhead,
            &l.sched_overhead,
        );
    }
    if r.faults != l.faults {
        return diverge("faults".into(), None, None, &r.faults, &l.faults);
    }
    if r.guard != l.guard {
        return diverge("guard".into(), None, None, &r.guard, &l.guard);
    }
    if r.utilization.len() != l.utilization.len() {
        return diverge(
            "utilization.len".into(),
            None,
            None,
            &r.utilization.len(),
            &l.utilization.len(),
        );
    }
    for (i, (ru, lu)) in r.utilization.iter().zip(&l.utilization).enumerate() {
        if ru != lu {
            return diverge(
                format!("utilization[{i}]"),
                Some(lu.0),
                prov.utilization.get(i).copied(),
                ru,
                lu,
            );
        }
    }
    if r.timeline.len() != l.timeline.len() {
        return diverge(
            "timeline.len".into(),
            None,
            None,
            &r.timeline.len(),
            &l.timeline.len(),
        );
    }
    for (i, (rt, lt)) in r.timeline.iter().zip(&l.timeline).enumerate() {
        if rt != lt {
            return diverge(
                format!("timeline[{i}]"),
                Some(lt.end),
                prov.timeline.get(i).copied(),
                rt,
                lt,
            );
        }
    }
    Divergence {
        field: "unknown".into(),
        slot: None,
        event_index: None,
        detail: "serializations differ but no field-wise mismatch was found".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dollymp_cluster::engine::{simulate_recorded, EngineConfig};
    use dollymp_cluster::execution::{DurationSampler, StragglerModel};
    use dollymp_cluster::fault::FaultTimeline;
    use dollymp_cluster::scheduler::FifoFirstFit;
    use dollymp_cluster::spec::ClusterSpec;
    use dollymp_core::job::{JobId, JobSpec};
    use dollymp_core::resources::Resources;

    fn run_recorded(cfg: &EngineConfig) -> (Journal, SimReport) {
        let cluster = ClusterSpec::homogeneous(4, 8.0, 16.0);
        let jobs: Vec<JobSpec> = (0..6)
            .map(|i| {
                let mut j = JobSpec::single_phase(JobId(i), 4, Resources::new(1.0, 2.0), 10.0, 2.0);
                j.arrival = i * 2;
                j
            })
            .collect();
        let sampler = DurationSampler::new(11, StragglerModel::ParetoFit);
        let mut policy = FifoFirstFit;
        let mut journal = Journal::for_run("fifo", 11, cfg, cfg);
        let report = simulate_recorded(
            &cluster,
            jobs,
            &sampler,
            &mut policy,
            cfg,
            &FaultTimeline::default(),
            &mut journal,
        );
        (journal, report)
    }

    #[test]
    fn clean_run_verifies() {
        let cfg = EngineConfig {
            record_utilization: true,
            record_timeline: true,
            ..EngineConfig::default()
        };
        let (journal, live) = run_recorded(&cfg);
        assert!(!journal.events.is_empty());
        verify(&journal, &live).unwrap();
        assert_eq!(replay_report(&journal), live);
    }

    #[test]
    fn tampered_journal_localizes_the_divergence() {
        let cfg = EngineConfig::default();
        let (mut journal, live) = run_recorded(&cfg);
        // Corrupt one job record: flowtime off by one.
        let idx = journal
            .events
            .iter()
            .position(|e| matches!(e, Event::JobCompletion { .. }))
            .unwrap();
        if let Event::JobCompletion { metrics, .. } = &mut journal.events[idx] {
            metrics.flowtime += 1;
        }
        let d = verify(&journal, &live).unwrap_err();
        assert_eq!(d.field, "jobs[0]");
        assert_eq!(d.event_index, Some(idx));
        assert!(d.slot.is_some());
        assert!(d.to_string().contains("jobs[0]"), "{d}");
    }

    #[test]
    fn dropped_span_shows_up_as_decision_point_divergence() {
        let cfg = EngineConfig::default();
        let (mut journal, live) = run_recorded(&cfg);
        let idx = journal
            .events
            .iter()
            .rposition(|e| matches!(e, Event::SchedSpan { .. }))
            .unwrap();
        journal.events.remove(idx);
        let d = verify(&journal, &live).unwrap_err();
        assert_eq!(d.field, "decision_points");
    }
}
