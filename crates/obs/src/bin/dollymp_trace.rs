//! `dollymp-trace` — inspect, summarize, diff and verify flight-recorder
//! journals (the JSONL files written by `dollymp_obs::journal::Journal`).
//!
//! ```text
//! dollymp-trace inspect <journal> [--limit N] [--job J] [--server S]
//! dollymp-trace summary <journal>
//! dollymp-trace diff <journal-a> <journal-b>
//! dollymp-trace verify <journal> <report.json>
//! ```

use dollymp_cluster::metrics::SimReport;
use dollymp_cluster::spec::ServerId;
use dollymp_core::job::JobId;
use dollymp_obs::journal::Journal;
use dollymp_obs::registry::MetricsRegistry;
use dollymp_obs::replay;
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "usage:
  dollymp-trace inspect <journal> [--limit N] [--job J] [--server S]
  dollymp-trace summary <journal>
  dollymp-trace diff <journal-a> <journal-b>
  dollymp-trace verify <journal> <report.json>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("inspect") => inspect(&args[1..]),
        Some("summary") => summary(&args[1..]),
        Some("diff") => diff(&args[1..]),
        Some("verify") => verify(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

fn load(path: &str) -> Result<Journal, String> {
    Journal::load(Path::new(path)).map_err(|e| format!("{path}: {e}"))
}

fn header_line(j: &Journal) -> String {
    format!(
        "scheduler={} seed={} fingerprint={} version={} events={} (utilization={}, timeline={})",
        j.header.scheduler,
        j.header.seed,
        j.header.config_fingerprint,
        j.header.version,
        j.events.len(),
        j.header.record_utilization,
        j.header.record_timeline,
    )
}

fn inspect(args: &[String]) -> Result<ExitCode, String> {
    let path = args.first().ok_or(USAGE)?;
    let mut limit = usize::MAX;
    let mut job: Option<JobId> = None;
    let mut server: Option<ServerId> = None;
    let mut i = 1;
    while i < args.len() {
        let parse = |v: Option<&String>, what: &str| -> Result<u64, String> {
            v.ok_or(format!("{what} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{what}: {e}"))
        };
        match args[i].as_str() {
            "--limit" => limit = parse(args.get(i + 1), "--limit")? as usize,
            "--job" => job = Some(JobId(parse(args.get(i + 1), "--job")?)),
            "--server" => server = Some(ServerId(parse(args.get(i + 1), "--server")? as u32)),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
        i += 2;
    }
    let journal = load(path)?;
    println!("{}", header_line(&journal));
    let mut shown = 0usize;
    for (idx, ev) in journal.events.iter().enumerate() {
        if job.is_some() && ev.job() != job {
            continue;
        }
        if server.is_some() && ev.server() != server {
            continue;
        }
        if shown >= limit {
            println!("... (truncated at --limit {limit})");
            break;
        }
        shown += 1;
        let body = serde_json::to_string(ev).map_err(|e| e.to_string())?;
        println!("#{idx:<6} t={:<8} {:<16} {body}", ev.at(), ev.kind_str());
    }
    Ok(ExitCode::SUCCESS)
}

fn summary(args: &[String]) -> Result<ExitCode, String> {
    let path = args.first().ok_or(USAGE)?;
    let journal = load(path)?;
    println!("{}", header_line(&journal));
    let reg = MetricsRegistry::from_events(&journal.events);
    println!("\ncounters:");
    for (name, v) in reg.counters() {
        println!("  {name:<24} {v}");
    }
    println!("\nhistograms (nearest-rank):");
    for (name, h) in reg.histograms() {
        println!(
            "  {name:<24} n={} mean={} p50={} p99={} max={}",
            h.count(),
            h.mean(),
            h.percentile(0.50),
            h.percentile(0.99),
            h.max(),
        );
    }
    let report = replay::replay_report(&journal);
    println!("\nreplayed report:");
    println!("  jobs={} makespan={}", report.jobs.len(), report.makespan);
    println!(
        "  total_flowtime={} mean_flowtime={:.2}",
        report.total_flowtime(),
        report.mean_flowtime()
    );
    println!(
        "  decision_points={} sched p50={}ns p99={}ns",
        report.decision_points, report.sched_overhead.p50_ns, report.sched_overhead.p99_ns
    );
    if report.faults != Default::default() {
        println!(
            "  faults: crashes={} evicted={} saved_by_clone={} requeued={} work_lost={:.3}",
            report.faults.server_crashes,
            report.faults.copies_evicted,
            report.faults.tasks_saved_by_clone,
            report.faults.tasks_requeued,
            report.faults.work_lost_norm,
        );
    }
    if !report.guard.is_clean() {
        println!(
            "  guard: rejections={} fallback_passes={} quarantined_at={:?}",
            report.guard.total_rejections(),
            report.guard.fallback_passes,
            report.guard.quarantined_at,
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn diff(args: &[String]) -> Result<ExitCode, String> {
    let (pa, pb) = match args {
        [a, b] => (a, b),
        _ => return Err(USAGE.to_string()),
    };
    let a = load(pa)?;
    let b = load(pb)?;
    if a.header != b.header {
        println!("headers differ:");
        println!("  a: {}", header_line(&a));
        println!("  b: {}", header_line(&b));
    }
    let n = a.events.len().min(b.events.len());
    for i in 0..n {
        if a.events[i] != b.events[i] {
            println!("first divergent event at #{i}:");
            println!(
                "  a: {}",
                serde_json::to_string(&a.events[i]).map_err(|e| e.to_string())?
            );
            println!(
                "  b: {}",
                serde_json::to_string(&b.events[i]).map_err(|e| e.to_string())?
            );
            return Ok(ExitCode::FAILURE);
        }
    }
    if a.events.len() != b.events.len() {
        println!(
            "streams share a {n}-event prefix but lengths differ: a={} b={}",
            a.events.len(),
            b.events.len()
        );
        return Ok(ExitCode::FAILURE);
    }
    if a.header != b.header {
        return Ok(ExitCode::FAILURE);
    }
    println!("journals are identical ({n} events)");
    Ok(ExitCode::SUCCESS)
}

fn verify(args: &[String]) -> Result<ExitCode, String> {
    let (jp, rp) = match args {
        [a, b] => (a, b),
        _ => return Err(USAGE.to_string()),
    };
    let journal = load(jp)?;
    let text = std::fs::read_to_string(rp).map_err(|e| format!("{rp}: {e}"))?;
    let live: SimReport = serde_json::from_str(&text).map_err(|e| format!("{rp}: {e}"))?;
    match replay::verify(&journal, &live) {
        Ok(()) => {
            println!(
                "verified: journal replays to a byte-identical report ({} events, {} jobs)",
                journal.events.len(),
                live.jobs.len()
            );
            Ok(ExitCode::SUCCESS)
        }
        Err(d) => {
            println!("{d}");
            Ok(ExitCode::FAILURE)
        }
    }
}
