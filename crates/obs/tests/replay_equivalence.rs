//! The acceptance suite for the flight recorder: record → replay must
//! reproduce the live `SimReport` byte-for-byte for every scheduler
//! family, with and without fault timelines, whether runs execute
//! sequentially or fanned out on the rayon backend. This generalizes
//! the bespoke equivalence suites of earlier refactors — any future
//! engine/scheduler change that perturbs observable behavior surfaces
//! here as a typed `Divergence`.

use dollymp_cluster::prelude::*;
use dollymp_core::job::{JobId, JobSpec, PhaseSpec};
use dollymp_core::resources::Resources;
use dollymp_faults::FaultConfig;
use dollymp_obs::journal::Journal;
use dollymp_obs::replay;
use dollymp_schedulers::{AdversarialConfig, AdversarialScheduler};
use proptest::prelude::*;

const SCHEDULERS: [&str; 4] = ["dollymp2", "dollymp0", "fifo", "tetris"];

fn cluster() -> ClusterSpec {
    ClusterSpec::new(vec![
        ServerSpec::new(8.0, 16.0),
        ServerSpec::new(4.0, 8.0).with_speed(0.5),
        ServerSpec::new(16.0, 32.0).with_speed(1.5),
        ServerSpec::new(8.0, 16.0),
        ServerSpec::new(8.0, 8.0),
    ])
}

/// A small mixed workload: single-phase jobs plus a two-phase chain,
/// arrivals spread so scheduling happens under churn.
fn workload(seed: u64) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for i in 0..8u64 {
        let mut j = JobSpec::single_phase(
            JobId(i),
            3 + (i % 4) as u32,
            Resources::new(1.0 + (i % 2) as f64, 2.0),
            8.0 + (seed % 5) as f64,
            2.0,
        );
        j.arrival = i * 3;
        jobs.push(j);
    }
    let chain = JobSpec::chain(
        JobId(100),
        vec![
            PhaseSpec::new(4, Resources::new(1.0, 2.0), 6.0, 1.5),
            PhaseSpec::new(2, Resources::new(2.0, 4.0), 5.0, 1.0),
        ],
    )
    .expect("valid chain");
    jobs.push(chain);
    jobs
}

fn faults(seed: u64) -> FaultTimeline {
    dollymp_faults::generate(
        &cluster(),
        &FaultConfig::new(seed, 120)
            .with_crash_rate(0.004, 10.0)
            .with_fail_slow(0.2, 0.5),
    )
}

fn run_recorded(name: &str, seed: u64, with_faults: bool) -> (Journal, SimReport) {
    let cluster = cluster();
    let timeline = if with_faults {
        faults(seed)
    } else {
        FaultTimeline::empty()
    };
    let sampler = DurationSampler::new(seed, StragglerModel::ParetoFit);
    let cfg = EngineConfig {
        record_utilization: true,
        record_timeline: true,
        ..EngineConfig::default()
    };
    let mut policy = dollymp_schedulers::by_name(name).expect("known scheduler");
    let mut journal = Journal::for_run(name, seed, &cfg, &cfg);
    let report = simulate_recorded(
        &cluster,
        workload(seed),
        &sampler,
        &mut policy,
        &cfg,
        &timeline,
        &mut journal,
    );
    (journal, report)
}

/// Zero the wall-clock nanosecond fields of a journal's spans so two
/// runs of the same configuration compare byte-equal (event *order* and
/// every simulation-domain value are deterministic; ns timings are not).
fn scrub_spans(mut j: Journal) -> Journal {
    for ev in &mut j.events {
        if let dollymp_cluster::trace::Event::SchedSpan {
            arrival_ns,
            schedule_ns,
            detail,
            ..
        } = ev
        {
            *arrival_ns = 0;
            *schedule_ns = 0;
            *detail = None;
        }
    }
    j
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every scheduler family, with and without faults: the journal
    /// replays to the byte-identical live report.
    #[test]
    fn replay_is_byte_identical(seed in 0u64..1_000) {
        for name in SCHEDULERS {
            for with_faults in [false, true] {
                let (journal, live) = run_recorded(name, seed, with_faults);
                prop_assert!(!journal.events.is_empty());
                if let Err(d) = replay::verify(&journal, &live) {
                    prop_assert!(false, "{name} faults={with_faults}: {d}");
                }
                // And through the JSONL round trip: what a reader loads
                // from disk replays identically too.
                let reloaded = Journal::from_jsonl(&journal.to_jsonl()).unwrap();
                if let Err(d) = replay::verify(&reloaded, &live) {
                    prop_assert!(false, "{name} faults={with_faults} after JSONL: {d}");
                }
            }
        }
    }
}

/// The rayon fan-out backend records the same journals (modulo
/// wall-clock spans) and every parallel run still verifies against its
/// own live report.
#[test]
fn rayon_backend_matches_sequential() {
    let cases: Vec<(&str, bool)> = SCHEDULERS
        .iter()
        .flat_map(|&n| [(n, false), (n, true)])
        .collect();
    let parallel = rayon::par_map_slice(&cases, &|&(name, wf)| run_recorded(name, 42, wf));
    for ((name, wf), (journal, live)) in cases.iter().zip(&parallel) {
        replay::verify(journal, live).unwrap_or_else(|d| panic!("{name} faults={wf} (rayon): {d}"));
        let (seq_journal, seq_live) = run_recorded(name, 42, *wf);
        assert_eq!(
            scrub_spans(seq_journal).to_jsonl(),
            scrub_spans(journal.clone()).to_jsonl(),
            "{name} faults={wf}: journal differs across backends"
        );
        assert_eq!(
            serde_json::to_string(&scrub_report(seq_live)).unwrap(),
            serde_json::to_string(&scrub_report(live.clone())).unwrap(),
            "{name} faults={wf}: live report differs across backends"
        );
    }
}

fn scrub_report(mut r: SimReport) -> SimReport {
    r.scheduling_ns = 0;
    r.sched_overhead = Default::default();
    r
}

/// A guarded run of a hostile policy exercises the `GuardDelta` stream:
/// the replayed report reproduces nonzero containment counters exactly.
#[test]
fn guarded_hostile_run_replays_guard_stats() {
    let cluster = cluster();
    let sampler = DurationSampler::new(7, StragglerModel::ParetoFit);
    let cfg = EngineConfig::default();
    let hostile = AdversarialScheduler::with_config(AdversarialConfig {
        overcommit: true,
        duplicate: true,
        ..AdversarialConfig::default()
    });
    let mut policy = GuardedScheduler::new(hostile);
    let mut journal = Journal::for_run(&policy.name(), 7, &cfg, &cfg);
    let report = simulate_recorded(
        &cluster,
        workload(7),
        &sampler,
        &mut policy,
        &cfg,
        &FaultTimeline::empty(),
        &mut journal,
    );
    assert!(
        report.guard.total_rejections() > 0,
        "hostile policy should have been contained at least once"
    );
    replay::verify(&journal, &report).unwrap();
}

/// The `NullRecorder` path and the recorded path produce identical
/// simulation outcomes — recording is purely observational.
#[test]
fn recording_does_not_perturb_the_simulation() {
    for name in SCHEDULERS {
        let (journal, recorded) = run_recorded(name, 3, true);
        assert!(!journal.events.is_empty());
        let cluster = cluster();
        let sampler = DurationSampler::new(3, StragglerModel::ParetoFit);
        let cfg = EngineConfig {
            record_utilization: true,
            record_timeline: true,
            ..EngineConfig::default()
        };
        let mut policy = dollymp_schedulers::by_name(name).unwrap();
        let plain = simulate_with_faults(
            &cluster,
            workload(3),
            &sampler,
            &mut policy,
            &cfg,
            &faults(3),
        );
        assert_eq!(
            serde_json::to_string(&scrub_report(plain)).unwrap(),
            serde_json::to_string(&scrub_report(recorded)).unwrap(),
            "{name}: recording changed the simulation outcome"
        );
    }
}
