//! # dollymp-faults
//!
//! Stochastic fault-schedule **generators** for the DollyMP simulator.
//! The mechanism — timed crash/restore/degrade events, eviction, clone
//! survival, re-queueing — lives in `dollymp_cluster::fault` and the
//! engine; this crate turns a handful of rates into a deterministic
//! [`FaultTimeline`] the engine replays:
//!
//! * **Poisson per-server crashes** with exponentially distributed repair
//!   times — the classic independent-failure model;
//! * **correlated rack blackouts**: every server of a rack goes down for
//!   a fixed window (top-of-rack switch or PDU failure), overlapping
//!   freely with individual crashes (the engine's down-count composes
//!   them);
//! * **persistent fail-slow onsets**: a sampled fraction of servers
//!   degrades to a lower effective speed at a uniform random slot and
//!   never recovers — §2's stragglers made permanent, the failure mode
//!   cloning is best at masking.
//!
//! Generation is pure: the same `(ClusterSpec, FaultConfig)` always
//! yields the same timeline (per-server/per-rack counter-seeded RNG
//! streams, same idiom as `dollymp_cluster::execution`), so experiments
//! are reproducible and schedulers are comparable under *identical*
//! fault sequences. All-zero rates yield an empty timeline, which makes
//! `simulate_with_faults` byte-identical to `simulate`.
//!
//! ```
//! use dollymp_cluster::prelude::*;
//! use dollymp_faults::FaultConfig;
//!
//! let cluster = ClusterSpec::paper_30_node();
//! let cfg = FaultConfig::new(7, 10_000).with_crash_rate(1e-3, 50.0);
//! let tl = dollymp_faults::generate(&cluster, &cfg);
//! assert!(tl.crash_count() > 0);
//! assert_eq!(tl, dollymp_faults::generate(&cluster, &cfg));
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

use dollymp_cluster::fault::{FaultEvent, FaultTimeline, TimedFault};
use dollymp_cluster::spec::{ClusterSpec, ServerId};
use dollymp_core::time::Time;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of a stochastic fault schedule.
///
/// All rates are per slot; a zero rate disables that fault class. The
/// default config (any seed, zero rates) generates an empty timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// RNG seed; together with the cluster shape it fully determines the
    /// schedule.
    pub seed: u64,
    /// Faults are injected in `[0, horizon)` (repairs may complete
    /// later — every crash is always paired with its restore).
    pub horizon: Time,
    /// Per-server crash rate (expected crashes per server per slot).
    pub crash_rate: f64,
    /// Mean of the exponential repair time, in slots.
    pub mean_repair: f64,
    /// Per-rack blackout rate (expected blackouts per rack per slot).
    pub rack_blackout_rate: f64,
    /// Fixed blackout window length, in slots.
    pub rack_blackout_len: Time,
    /// Fraction of servers that suffer a fail-slow onset during the
    /// horizon (sampled per server).
    pub fail_slow_frac: f64,
    /// Speed multiplier applied at a fail-slow onset, in `(0, 1]`.
    pub fail_slow_factor: f64,
}

impl FaultConfig {
    /// A config with every fault class disabled.
    pub fn new(seed: u64, horizon: Time) -> Self {
        FaultConfig {
            seed,
            horizon,
            crash_rate: 0.0,
            mean_repair: 1.0,
            rack_blackout_rate: 0.0,
            rack_blackout_len: 1,
            fail_slow_frac: 0.0,
            fail_slow_factor: 1.0,
        }
    }

    /// Enable independent per-server crashes.
    pub fn with_crash_rate(mut self, rate: f64, mean_repair: f64) -> Self {
        assert!(rate >= 0.0 && mean_repair > 0.0, "bad crash parameters");
        self.crash_rate = rate;
        self.mean_repair = mean_repair;
        self
    }

    /// Enable correlated rack blackouts.
    pub fn with_rack_blackouts(mut self, rate: f64, len: Time) -> Self {
        assert!(rate >= 0.0 && len >= 1, "bad blackout parameters");
        self.rack_blackout_rate = rate;
        self.rack_blackout_len = len;
        self
    }

    /// Enable persistent fail-slow onsets.
    pub fn with_fail_slow(mut self, frac: f64, factor: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&frac) && factor > 0.0 && factor <= 1.0,
            "bad fail-slow parameters"
        );
        self.fail_slow_frac = frac;
        self.fail_slow_factor = factor;
        self
    }

    /// True when every fault class is disabled.
    pub fn is_zero(&self) -> bool {
        self.crash_rate == 0.0 && self.rack_blackout_rate == 0.0 && self.fail_slow_frac == 0.0
    }
}

/// SplitMix64 over (seed, stream, salt) — independent counter-based
/// streams, the same idiom the duration sampler uses so fault draws and
/// duration draws never share an RNG sequence.
fn mix(seed: u64, stream: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(stream)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9)
        .wrapping_add(salt);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Exponential draw with the given mean, at least one slot.
fn exp_slots(rng: &mut SmallRng, mean: f64) -> Time {
    // 1 − U ∈ (0, 1] avoids ln(0).
    let u: f64 = 1.0 - rng.gen::<f64>();
    ((-u.ln() * mean).ceil() as Time).max(1)
}

/// Generate the deterministic fault timeline for `cluster` under `cfg`.
///
/// Event order within a slot is deterministic: individual server events
/// (ascending server id), then rack blackouts (ascending rack id), then
/// fail-slow onsets (ascending server id), preserved by the timeline's
/// stable sort.
pub fn generate(cluster: &ClusterSpec, cfg: &FaultConfig) -> FaultTimeline {
    let mut events: Vec<TimedFault> = Vec::new();

    // Independent per-server crash/repair renewal process.
    if cfg.crash_rate > 0.0 {
        let mean_gap = 1.0 / cfg.crash_rate;
        for sid in 0..cluster.len() {
            let mut rng = SmallRng::seed_from_u64(mix(cfg.seed, sid as u64, 0xC4A5));
            let mut t: Time = 0;
            loop {
                t = t.saturating_add(exp_slots(&mut rng, mean_gap));
                if t >= cfg.horizon {
                    break;
                }
                let repair = exp_slots(&mut rng, cfg.mean_repair);
                let s = ServerId(sid as u32);
                events.push(TimedFault {
                    at: t,
                    event: FaultEvent::Crash(s),
                });
                events.push(TimedFault {
                    at: t + repair,
                    event: FaultEvent::Restore(s),
                });
                // The server cannot crash again while it is already down.
                t += repair;
            }
        }
    }

    // Correlated rack blackouts: a fixed window over every server of the
    // rack. Overlap with individual crashes is fine — the engine's
    // down-count keeps the server offline until *both* restores.
    if cfg.rack_blackout_rate > 0.0 {
        let mut racks: Vec<u32> = cluster.servers().iter().map(|s| s.rack).collect();
        racks.sort_unstable();
        racks.dedup();
        let mean_gap = 1.0 / cfg.rack_blackout_rate;
        for rack in racks {
            let mut rng = SmallRng::seed_from_u64(mix(cfg.seed, rack as u64, 0xB1AC));
            let mut t: Time = 0;
            loop {
                t = t.saturating_add(exp_slots(&mut rng, mean_gap));
                if t >= cfg.horizon {
                    break;
                }
                for (sid, srv) in cluster.servers().iter().enumerate() {
                    if srv.rack == rack {
                        let s = ServerId(sid as u32);
                        events.push(TimedFault {
                            at: t,
                            event: FaultEvent::Crash(s),
                        });
                        events.push(TimedFault {
                            at: t + cfg.rack_blackout_len,
                            event: FaultEvent::Restore(s),
                        });
                    }
                }
                t += cfg.rack_blackout_len;
            }
        }
    }

    // Persistent fail-slow onsets.
    if cfg.fail_slow_frac > 0.0 {
        for sid in 0..cluster.len() {
            let mut rng = SmallRng::seed_from_u64(mix(cfg.seed, sid as u64, 0xFA11));
            if rng.gen::<f64>() < cfg.fail_slow_frac {
                let at = rng.gen_range(0..cfg.horizon.max(1));
                events.push(TimedFault {
                    at,
                    event: FaultEvent::Degrade(ServerId(sid as u32), cfg.fail_slow_factor),
                });
            }
        }
    }

    FaultTimeline::new(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> ClusterSpec {
        ClusterSpec::paper_30_node()
    }

    #[test]
    fn zero_rates_give_empty_timeline() {
        let cfg = FaultConfig::new(42, 100_000);
        assert!(cfg.is_zero());
        assert!(generate(&cluster(), &cfg).is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = FaultConfig::new(7, 20_000)
            .with_crash_rate(5e-4, 100.0)
            .with_rack_blackouts(1e-4, 200)
            .with_fail_slow(0.2, 0.5);
        let a = generate(&cluster(), &cfg);
        let b = generate(&cluster(), &cfg);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // A different seed reshuffles the schedule.
        let c = generate(&cluster(), &FaultConfig { seed: 8, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    fn crashes_are_paired_and_inside_horizon() {
        let cfg = FaultConfig::new(3, 50_000)
            .with_crash_rate(1e-3, 80.0)
            .with_rack_blackouts(5e-5, 300);
        let tl = generate(&cluster(), &cfg);
        assert!(tl.crash_count() > 0);
        let n = cluster().len();
        let mut balance = vec![0i64; n];
        for e in tl.events() {
            match e.event {
                FaultEvent::Crash(s) => {
                    assert!(e.at < cfg.horizon, "crash after horizon");
                    balance[s.0 as usize] += 1;
                }
                FaultEvent::Restore(s) => {
                    balance[s.0 as usize] -= 1;
                    // The timeline is time-sorted, so the running balance
                    // can never go negative: every restore follows its
                    // crash (the engine asserts exactly this).
                    assert!(balance[s.0 as usize] >= 0, "restore before crash");
                }
                FaultEvent::Degrade(..) => {}
            }
        }
        assert!(balance.iter().all(|&b| b == 0), "unpaired crash");
    }

    #[test]
    fn rack_blackout_takes_down_whole_rack() {
        let cfg = FaultConfig::new(11, 40_000).with_rack_blackouts(2e-4, 150);
        let spec = cluster();
        let tl = generate(&spec, &cfg);
        assert!(tl.crash_count() > 0);
        // Every crash slot must cover one entire rack.
        let mut by_slot: std::collections::BTreeMap<Time, Vec<u32>> = Default::default();
        for e in tl.events() {
            if let FaultEvent::Crash(s) = e.event {
                by_slot.entry(e.at).or_default().push(s.0);
            }
        }
        for (at, mut servers) in by_slot {
            servers.sort_unstable();
            let rack = spec.server(ServerId(servers[0])).rack;
            let mut expected: Vec<u32> = spec
                .servers()
                .iter()
                .enumerate()
                .filter(|(_, s)| s.rack == rack)
                .map(|(i, _)| i as u32)
                .collect();
            expected.sort_unstable();
            assert_eq!(servers, expected, "partial blackout at slot {at}");
        }
    }

    #[test]
    fn fail_slow_covers_sampled_fraction() {
        let spec = cluster();
        let all = FaultConfig::new(5, 10_000).with_fail_slow(1.0, 0.6);
        let tl = generate(&spec, &all);
        let degrades: Vec<_> = tl
            .events()
            .iter()
            .filter_map(|e| match e.event {
                FaultEvent::Degrade(s, f) => Some((s, f)),
                _ => None,
            })
            .collect();
        assert_eq!(degrades.len(), spec.len(), "frac 1.0 hits every server");
        assert!(degrades.iter().all(|&(_, f)| f == 0.6));
        let none = FaultConfig::new(5, 10_000).with_fail_slow(0.0, 0.6);
        assert!(generate(&spec, &none).is_empty());
    }

    #[test]
    fn higher_rate_means_more_crashes() {
        let spec = cluster();
        let lo = generate(
            &spec,
            &FaultConfig::new(9, 30_000).with_crash_rate(1e-4, 50.0),
        );
        let hi = generate(
            &spec,
            &FaultConfig::new(9, 30_000).with_crash_rate(2e-3, 50.0),
        );
        assert!(hi.crash_count() > lo.crash_count());
    }

    #[test]
    fn config_serde_round_trip() {
        let cfg = FaultConfig::new(1, 2_000)
            .with_crash_rate(1e-3, 40.0)
            .with_fail_slow(0.1, 0.5);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: FaultConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
