//! Competitive-ratio machinery for §4.2.2 / §5.1.
//!
//! * [`theorem1_bound`] — the `6R` competitive ratio of Theorem 1 (the
//!   transient Algorithm 1 without cloning, `R = sup h`).
//! * [`dollymp_augmented_ratio`] / [`hrdf_augmented_ratio`] — the
//!   `(3+3ε)/ε` vs `(5+3ε)/ε` comparison of §5.1's discussion, showing
//!   DollyMP beats HRDF under the same `(2+ε)`-capacity augmentation.
//! * [`BruteForceOptimal`] — an exact minimum-flowtime scheduler for tiny
//!   instances (exhaustive search with branch-and-bound), used to check
//!   the competitive bounds empirically.
//! * [`list_schedule_flowtime`] — the non-preemptive, work-conserving list
//!   scheduler that executes a given priority order; combined with
//!   Algorithm 1's order this reproduces the transient scheduling process
//!   on one machine.

use crate::resources::Resources;
use crate::time::{Duration, Time};
use serde::{Deserialize, Serialize};

/// Theorem 1: Algorithm 1 without cloning is `6R`-competitive for total
/// flowtime when `h` is bounded by `R`.
pub fn theorem1_bound(r_sup: f64) -> f64 {
    6.0 * r_sup
}

/// §5.1 discussion: DollyMP's online competitive ratio `(3 + 3ε)/ε` under
/// `(2+ε)`-capacity augmentation with no stragglers.
///
/// # Panics
/// Panics for `ε ≤ 0`.
pub fn dollymp_augmented_ratio(epsilon: f64) -> f64 {
    assert!(epsilon > 0.0, "capacity augmentation needs ε > 0");
    (3.0 + 3.0 * epsilon) / epsilon
}

/// §5.1 discussion: the HRDF policy of Fox & Korupolu achieves
/// `(5 + 3ε)/ε` under the same augmentation — strictly worse than
/// [`dollymp_augmented_ratio`] for every `ε`.
pub fn hrdf_augmented_ratio(epsilon: f64) -> f64 {
    assert!(epsilon > 0.0, "capacity augmentation needs ε > 0");
    (5.0 + 3.0 * epsilon) / epsilon
}

/// A single-task job for the tiny-instance solvers: deterministic
/// duration, one resource demand, release time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BfJob {
    /// Release (arrival) time.
    pub arrival: Time,
    /// Deterministic processing time (slots, ≥ 1).
    pub duration: Duration,
    /// Resource demand.
    pub demand: Resources,
}

/// Exact minimum total flowtime by exhaustive search.
///
/// The search branches, at every decision instant, on either starting one
/// waiting job (canonically, in increasing index order within the same
/// instant) or sealing the instant and advancing to the next event. A
/// branch-and-bound lower bound (`each unstarted job finishes no earlier
/// than max(now, arrival) + duration`) keeps tiny instances (≤ ~8 jobs)
/// fast. Non-preemptive, single resource pool (one server).
#[derive(Debug, Clone)]
pub struct BruteForceOptimal {
    /// Server capacity.
    pub capacity: Resources,
    /// The jobs to schedule.
    pub jobs: Vec<BfJob>,
}

/// Hard cap on instance size; the search is exponential.
pub const BRUTE_FORCE_MAX_JOBS: usize = 10;

impl BruteForceOptimal {
    /// Construct a solver.
    ///
    /// # Panics
    /// Panics when more than [`BRUTE_FORCE_MAX_JOBS`] jobs are supplied,
    /// when a job has zero duration, or when a demand exceeds capacity
    /// (such a job can never run).
    pub fn new(capacity: Resources, jobs: Vec<BfJob>) -> Self {
        assert!(
            jobs.len() <= BRUTE_FORCE_MAX_JOBS,
            "brute force capped at {BRUTE_FORCE_MAX_JOBS} jobs"
        );
        for (i, j) in jobs.iter().enumerate() {
            assert!(j.duration >= 1, "job {i} has zero duration");
            assert!(
                j.demand.fits_in(capacity),
                "job {i} demand {} exceeds capacity {}",
                j.demand,
                capacity
            );
        }
        BruteForceOptimal { capacity, jobs }
    }

    /// The minimum achievable total flowtime `Σ (f_j − a_j)`.
    pub fn min_total_flowtime(&self) -> u64 {
        if self.jobs.is_empty() {
            return 0;
        }
        let t0 = self.jobs.iter().map(|j| j.arrival).min().unwrap_or(0);
        let mut best = u64::MAX;
        let mut running: Vec<(Time, Resources)> = Vec::new();
        self.dfs(
            t0,
            &mut running,
            (1u32 << self.jobs.len()) - 1,
            0,
            0,
            &mut best,
        );
        best
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        now: Time,
        running: &mut Vec<(Time, Resources)>,
        unstarted: u32,
        acc: u64,
        min_idx: usize,
        best: &mut u64,
    ) {
        // Branch & bound: every unstarted job finishes no earlier than
        // max(now, arrival) + duration.
        let mut bound = acc;
        let mut m = unstarted;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            let j = &self.jobs[i];
            bound += now.max(j.arrival) + j.duration - j.arrival;
        }
        if bound >= *best {
            return;
        }
        if unstarted == 0 {
            *best = (*best).min(acc);
            return;
        }

        let used: Resources = running.iter().map(|&(_, d)| d).sum();
        let free = self.capacity.saturating_sub(used);

        // Option A: start one waiting job (index ≥ min_idx for canonical
        // ordering inside a single instant).
        let mut any_startable = false;
        for i in min_idx..self.jobs.len() {
            if unstarted & (1 << i) == 0 {
                continue;
            }
            let j = &self.jobs[i];
            if j.arrival > now || !j.demand.fits_in(free) {
                continue;
            }
            any_startable = true;
            let finish = now + j.duration;
            running.push((finish, j.demand));
            self.dfs(
                now,
                running,
                unstarted & !(1 << i),
                acc + (finish - j.arrival),
                i + 1,
                best,
            );
            running.pop();
        }
        // Also allow starting a lower-indexed job *after* a completion
        // event moved time forward: min_idx only constrains same-instant
        // sequences, so option B resets it.

        // Option B: seal this instant; advance to the next event.
        let next_end = running.iter().map(|&(e, _)| e).min();
        let next_arrival = self
            .jobs
            .iter()
            .enumerate()
            .filter(|(i, j)| unstarted & (1 << i) != 0 && j.arrival > now)
            .map(|(_, j)| j.arrival)
            .min();
        let next = match (next_end, next_arrival) {
            (Some(e), Some(a)) => Some(e.min(a)),
            (Some(e), None) => Some(e),
            (None, Some(a)) => Some(a),
            (None, None) => None,
        };
        match next {
            Some(t) => {
                let mut kept: Vec<(Time, Resources)> =
                    running.iter().copied().filter(|&(e, _)| e > t).collect();
                std::mem::swap(running, &mut kept);
                self.dfs(t, running, unstarted, acc, 0, best);
                std::mem::swap(running, &mut kept);
            }
            None => {
                // Nothing running, nothing arriving later, yet jobs remain
                // unstarted: sealing would deadlock. Valid only if option A
                // had no feasible start — impossible here because every
                // job fits an empty server; so this branch is simply dead
                // unless a start existed, in which case skip it.
                debug_assert!(any_startable, "deadlocked search state");
            }
        }
    }
}

/// Non-preemptive, work-conserving list scheduling of single-task jobs on
/// one resource pool, honoring a fixed priority order. Returns the total
/// flowtime. This is how the transient process of Algorithm 1 executes its
/// priority list (§4.2): at every event, scan the order and start every
/// waiting job that fits.
///
/// # Panics
/// Panics when `order` is not a permutation of `0..jobs.len()` or when a
/// demand exceeds capacity.
pub fn list_schedule_flowtime(jobs: &[BfJob], capacity: Resources, order: &[usize]) -> u64 {
    assert_eq!(order.len(), jobs.len(), "order must cover all jobs");
    let mut seen = vec![false; jobs.len()];
    for &i in order {
        assert!(i < jobs.len() && !seen[i], "order must be a permutation");
        seen[i] = true;
        assert!(
            jobs[i].demand.fits_in(capacity),
            "job {i} can never fit capacity"
        );
    }
    if jobs.is_empty() {
        return 0;
    }

    let mut unstarted: Vec<bool> = vec![true; jobs.len()];
    let mut running: Vec<(Time, Resources)> = Vec::new();
    let mut now = jobs.iter().map(|j| j.arrival).min().unwrap();
    let mut total_flow = 0u64;
    let mut remaining = jobs.len();

    while remaining > 0 {
        // Start everything that fits, in priority order.
        let mut used: Resources = running.iter().map(|&(_, d)| d).sum();
        for &i in order {
            if !unstarted[i] || jobs[i].arrival > now {
                continue;
            }
            let free = capacity.saturating_sub(used);
            if jobs[i].demand.fits_in(free) {
                let finish = now + jobs[i].duration;
                running.push((finish, jobs[i].demand));
                used += jobs[i].demand;
                unstarted[i] = false;
                remaining -= 1;
                total_flow += finish - jobs[i].arrival;
            }
        }
        // Advance to the next event.
        let next_end = running.iter().map(|&(e, _)| e).min();
        let next_arrival = jobs
            .iter()
            .enumerate()
            .filter(|&(i, j)| unstarted[i] && j.arrival > now)
            .map(|(_, j)| j.arrival)
            .min();
        now = match (next_end, next_arrival) {
            (Some(e), Some(a)) => e.min(a),
            (Some(e), None) => e,
            (None, Some(a)) => a,
            (None, None) => break,
        };
        running.retain(|&(e, _)| e > now);
    }
    total_flow
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use crate::speedup::SpeedupFn;
    use crate::transient::{transient_schedule, TransientConfig, TransientJob};
    use proptest::prelude::*;

    fn res(c: f64, m: f64) -> Resources {
        Resources::new(c, m)
    }

    #[test]
    fn ratio_formulas() {
        assert_eq!(theorem1_bound(1.0), 6.0);
        assert_eq!(theorem1_bound(2.0), 12.0);
        // DollyMP strictly beats HRDF at every ε.
        for &eps in &[0.01, 0.1, 1.0, 10.0] {
            assert!(dollymp_augmented_ratio(eps) < hrdf_augmented_ratio(eps));
        }
        assert!((dollymp_augmented_ratio(1.0) - 6.0).abs() < 1e-12);
        assert!((hrdf_augmented_ratio(1.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn brute_force_trivial_cases() {
        let cap = res(1.0, 1.0);
        assert_eq!(BruteForceOptimal::new(cap, vec![]).min_total_flowtime(), 0);
        let one = BfJob {
            arrival: 0,
            duration: 5,
            demand: res(1.0, 1.0),
        };
        assert_eq!(
            BruteForceOptimal::new(cap, vec![one]).min_total_flowtime(),
            5
        );
    }

    #[test]
    fn brute_force_srpt_on_serial_jobs() {
        // Two full-capacity jobs, durations 1 and 10: SRPT gives 1 + 11 = 12.
        let cap = res(1.0, 1.0);
        let jobs = vec![
            BfJob {
                arrival: 0,
                duration: 10,
                demand: cap,
            },
            BfJob {
                arrival: 0,
                duration: 1,
                demand: cap,
            },
        ];
        assert_eq!(BruteForceOptimal::new(cap, jobs).min_total_flowtime(), 12);
    }

    #[test]
    fn brute_force_packs_parallel_jobs() {
        // Two half-capacity jobs run together: flow 5 + 5 = 10.
        let cap = res(1.0, 1.0);
        let j = BfJob {
            arrival: 0,
            duration: 5,
            demand: res(0.5, 0.5),
        };
        assert_eq!(
            BruteForceOptimal::new(cap, vec![j, j]).min_total_flowtime(),
            10
        );
    }

    #[test]
    fn brute_force_can_prefer_idling() {
        // The Fig. 2 lesson: a big job first can be wrong even if it fits.
        // Job A: demand 1.0, duration 10. Jobs B, C: demand 0.5, duration 2.
        // A-first: 10 + 12 + 12 = 34. B,C-first: 2 + 2 + 12 = 16.
        let cap = res(1.0, 1.0);
        let jobs = vec![
            BfJob {
                arrival: 0,
                duration: 10,
                demand: res(1.0, 1.0),
            },
            BfJob {
                arrival: 0,
                duration: 2,
                demand: res(0.5, 0.5),
            },
            BfJob {
                arrival: 0,
                duration: 2,
                demand: res(0.5, 0.5),
            },
        ];
        assert_eq!(BruteForceOptimal::new(cap, jobs).min_total_flowtime(), 16);
    }

    #[test]
    fn brute_force_respects_arrivals() {
        let cap = res(1.0, 1.0);
        let jobs = vec![BfJob {
            arrival: 7,
            duration: 3,
            demand: cap,
        }];
        assert_eq!(BruteForceOptimal::new(cap, jobs).min_total_flowtime(), 3);
    }

    #[test]
    fn list_schedule_matches_hand_computation() {
        let cap = res(1.0, 1.0);
        let jobs = vec![
            BfJob {
                arrival: 0,
                duration: 10,
                demand: res(1.0, 1.0),
            }, // big
            BfJob {
                arrival: 0,
                duration: 2,
                demand: res(0.5, 0.5),
            },
            BfJob {
                arrival: 0,
                duration: 2,
                demand: res(0.5, 0.5),
            },
        ];
        // Small-first order: B and C at t=0 (flow 2 + 2), A at t=2 (flow 12).
        assert_eq!(list_schedule_flowtime(&jobs, cap, &[1, 2, 0]), 16);
        // Big-first order: A at 0 (flow 10), B/C at 10 (flow 12 each).
        assert_eq!(list_schedule_flowtime(&jobs, cap, &[0, 1, 2]), 34);
    }

    #[test]
    fn list_schedule_skips_over_blocked_heads() {
        // Head of the order doesn't fit now, but a later job does:
        // work conservation starts the later one.
        let cap = res(1.0, 1.0);
        let jobs = vec![
            BfJob {
                arrival: 0,
                duration: 4,
                demand: res(0.8, 0.8),
            },
            BfJob {
                arrival: 0,
                duration: 4,
                demand: res(0.8, 0.8),
            },
            BfJob {
                arrival: 0,
                duration: 4,
                demand: res(0.2, 0.2),
            },
        ];
        // Order big, big, small: first big starts; second blocked; small
        // fits alongside → finishes at 4 too.
        let flow = list_schedule_flowtime(&jobs, cap, &[0, 1, 2]);
        assert_eq!(flow, 4 + 8 + 4);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn list_schedule_rejects_bad_order() {
        let cap = res(1.0, 1.0);
        let j = BfJob {
            arrival: 0,
            duration: 1,
            demand: cap,
        };
        let _ = list_schedule_flowtime(&[j, j], cap, &[0, 0]);
    }

    /// Build Algorithm-1 inputs from BfJobs on a unit-capacity server.
    fn transient_inputs(jobs: &[BfJob], cap: Resources) -> Vec<TransientJob> {
        jobs.iter()
            .enumerate()
            .map(|(i, j)| {
                let d = crate::resources::dominant_share(j.demand, cap);
                TransientJob {
                    id: JobId(i as u64),
                    volume: d * j.duration as f64,
                    etime: j.duration as f64,
                    dominant: d,
                    speedup: SpeedupFn::None,
                }
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Brute force is a true lower bound for any list order.
        #[test]
        fn brute_force_lower_bounds_list_schedules(
            raw in prop::collection::vec((1u64..6, 1u32..10, 1u32..10), 1..6)
        ) {
            let cap = res(1.0, 1.0);
            let jobs: Vec<BfJob> = raw.iter().map(|&(d, c, m)| BfJob {
                arrival: 0,
                duration: d,
                demand: res(c as f64 / 10.0, m as f64 / 10.0),
            }).collect();
            let opt = BruteForceOptimal::new(cap, jobs.clone()).min_total_flowtime();
            let order: Vec<usize> = (0..jobs.len()).collect();
            let listed = list_schedule_flowtime(&jobs, cap, &order);
            prop_assert!(opt <= listed);
        }

        /// Empirical Theorem 1: Algorithm 1's order, executed by the list
        /// scheduler, is within 6R (R = 1, no cloning) of optimal on
        /// transient single-server instances.
        #[test]
        fn algorithm1_is_6r_competitive_on_tiny_instances(
            raw in prop::collection::vec((1u64..8, 1u32..10, 1u32..10), 1..6)
        ) {
            let cap = res(1.0, 1.0);
            let jobs: Vec<BfJob> = raw.iter().map(|&(d, c, m)| BfJob {
                arrival: 0,
                duration: d,
                demand: res(c as f64 / 10.0, m as f64 / 10.0),
            }).collect();
            let inputs = transient_inputs(&jobs, cap);
            let out = transient_schedule(&inputs, &TransientConfig::default());
            let flow = list_schedule_flowtime(&jobs, cap, &out.order);
            let opt = BruteForceOptimal::new(cap, jobs.clone()).min_total_flowtime();
            prop_assert!(opt > 0);
            prop_assert!(
                flow as f64 <= theorem1_bound(1.0) * opt as f64 + 1e-9,
                "flow {} > 6 × opt {}", flow, opt
            );
        }
    }
}
