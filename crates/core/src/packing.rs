//! 2D strip packing — the combinatorial core behind Theorem 1.
//!
//! Theorem 1's proof argues that when the optimum finishes `N_l` jobs by
//! time `2ˡ`, Algorithm 1 finishes at least as many by `3R·2ˡ`,
//! *"following the result of 2D-strip packing \[40\]"* (Steinberg 1997).
//! A job with dominant share `d` and duration `t` is a `d × t` rectangle;
//! scheduling on a unit-capacity machine is packing those rectangles
//! into a width-1 strip, and the schedule length is the strip height.
//!
//! This module provides the classical **NFDH** (Next-Fit Decreasing
//! Height) shelf algorithm with its textbook guarantee
//! `H_NFDH ≤ 2·AREA + h_max ≤ 2·H_OPT + h_max`, plus the area and
//! max-height lower bounds used to sandwich the optimum in tests. NFDH
//! (rather than Steinberg's algorithm) suffices for the constant-factor
//! argument, keeps the code auditable, and its bound is validated by
//! property tests below.

use serde::{Deserialize, Serialize};

/// A rectangle to pack: `width ∈ (0, 1]` (dominant resource share) by
/// `height > 0` (processing time).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Width (share of the unit-capacity strip).
    pub width: f64,
    /// Height (duration).
    pub height: f64,
}

impl Rect {
    /// Construct a rectangle.
    ///
    /// # Panics
    /// Panics unless `0 < width ≤ 1` and `height > 0` (both finite).
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width.is_finite() && width > 0.0 && width <= 1.0,
            "width must be in (0, 1], got {width}"
        );
        assert!(
            height.is_finite() && height > 0.0,
            "height must be > 0, got {height}"
        );
        Rect { width, height }
    }

    /// Area `width × height` (the job's volume).
    pub fn area(&self) -> f64 {
        self.width * self.height
    }
}

/// Where one rectangle landed in the strip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Index into the input slice.
    pub index: usize,
    /// Left edge.
    pub x: f64,
    /// Bottom edge (time the job starts).
    pub y: f64,
}

/// A complete packing: placements plus the strip height used.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Packing {
    /// One placement per input rectangle.
    pub placements: Vec<Placement>,
    /// Total strip height (the makespan analogue).
    pub height: f64,
}

impl Packing {
    /// Verify the packing is feasible: every rectangle inside the strip,
    /// no two rectangles overlapping. `O(n²)` — intended for tests.
    pub fn is_valid(&self, rects: &[Rect]) -> bool {
        const EPS: f64 = 1e-9;
        for p in &self.placements {
            let r = rects[p.index];
            if p.x < -EPS || p.x + r.width > 1.0 + EPS || p.y < -EPS {
                return false;
            }
            if p.y + r.height > self.height + EPS {
                return false;
            }
        }
        for (i, a) in self.placements.iter().enumerate() {
            let ra = rects[a.index];
            for b in self.placements.iter().skip(i + 1) {
                let rb = rects[b.index];
                let x_overlap = a.x + ra.width > b.x + EPS && b.x + rb.width > a.x + EPS;
                let y_overlap = a.y + ra.height > b.y + EPS && b.y + rb.height > a.y + EPS;
                if x_overlap && y_overlap {
                    return false;
                }
            }
        }
        true
    }
}

/// Pack rectangles into a width-1 strip with Next-Fit Decreasing Height.
///
/// Rectangles are sorted by decreasing height and placed left-to-right on
/// shelves; when one does not fit, a new shelf opens at the top of the
/// current one. Guarantee (validated in tests):
///
/// `height(NFDH) ≤ 2 · Σ area + max height`.
///
/// Since any packing's height is at least `Σ area` (the strip has width
/// 1) and at least `max height`, NFDH is within a factor 3 of optimal.
pub fn nfdh(rects: &[Rect]) -> Packing {
    if rects.is_empty() {
        return Packing {
            placements: Vec::new(),
            height: 0.0,
        };
    }
    let mut order: Vec<usize> = (0..rects.len()).collect();
    order.sort_by(|&a, &b| {
        rects[b]
            .height
            .partial_cmp(&rects[a].height)
            .expect("finite heights")
            .then(a.cmp(&b))
    });

    const EPS: f64 = 1e-12;
    let mut placements = Vec::with_capacity(rects.len());
    let mut shelf_y = 0.0f64; // bottom of the current shelf
    let mut shelf_h = rects[order[0]].height; // height of the current shelf
    let mut x = 0.0f64;
    for &i in &order {
        let r = rects[i];
        if x + r.width > 1.0 + EPS {
            // Open the next shelf.
            shelf_y += shelf_h;
            shelf_h = r.height; // decreasing order ⇒ tallest on the shelf
            x = 0.0;
        }
        placements.push(Placement {
            index: i,
            x,
            y: shelf_y,
        });
        x += r.width;
    }
    Packing {
        placements,
        height: shelf_y + shelf_h,
    }
}

/// The two classical lower bounds on any strip packing's height: the
/// total area (strip width is 1) and the tallest rectangle.
pub fn lower_bound(rects: &[Rect]) -> f64 {
    let area: f64 = rects.iter().map(Rect::area).sum();
    let tallest = rects.iter().map(|r| r.height).fold(0.0f64, f64::max);
    area.max(tallest)
}

/// The NFDH guarantee: `2 · Σ area + max height` — an upper bound on
/// [`nfdh`]'s strip height.
pub fn nfdh_bound(rects: &[Rect]) -> f64 {
    let area: f64 = rects.iter().map(Rect::area).sum();
    let tallest = rects.iter().map(|r| r.height).fold(0.0f64, f64::max);
    2.0 * area + tallest
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_input() {
        let p = nfdh(&[]);
        assert_eq!(p.height, 0.0);
        assert!(p.placements.is_empty());
        assert!(p.is_valid(&[]));
        assert_eq!(lower_bound(&[]), 0.0);
    }

    #[test]
    fn single_rectangle() {
        let r = [Rect::new(0.5, 3.0)];
        let p = nfdh(&r);
        assert_eq!(p.height, 3.0);
        assert!(p.is_valid(&r));
    }

    #[test]
    fn perfect_shelf_fills_exactly() {
        // Four 0.25-wide, equal-height rectangles share one shelf.
        let r = [Rect::new(0.25, 2.0); 4];
        let p = nfdh(&r);
        assert_eq!(p.height, 2.0);
        assert!(p.is_valid(&r));
    }

    #[test]
    fn overflow_opens_a_new_shelf() {
        // Three 0.4-wide: two fit per shelf.
        let r = [
            Rect::new(0.4, 2.0),
            Rect::new(0.4, 1.5),
            Rect::new(0.4, 1.0),
        ];
        let p = nfdh(&r);
        assert_eq!(p.height, 2.0 + 1.0, "tallest-first shelving");
        assert!(p.is_valid(&r));
    }

    #[test]
    fn decreasing_height_order_is_used() {
        // Tall-narrow first even when listed last.
        let r = [Rect::new(0.9, 1.0), Rect::new(0.9, 5.0)];
        let p = nfdh(&r);
        // Shelf 1: height 5 (the tall one), shelf 2: height 1.
        assert_eq!(p.height, 6.0);
        let tall = p.placements.iter().find(|pl| pl.index == 1).unwrap();
        assert_eq!(tall.y, 0.0, "tallest goes first");
    }

    #[test]
    fn validity_detects_overlap() {
        let rects = [Rect::new(0.6, 1.0), Rect::new(0.6, 1.0)];
        let bad = Packing {
            placements: vec![
                Placement {
                    index: 0,
                    x: 0.0,
                    y: 0.0,
                },
                Placement {
                    index: 1,
                    x: 0.2,
                    y: 0.0,
                },
            ],
            height: 1.0,
        };
        assert!(!bad.is_valid(&rects));
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        let _ = Rect::new(0.0, 1.0);
    }

    proptest! {
        /// NFDH packings are always feasible.
        #[test]
        fn nfdh_is_feasible(
            raw in prop::collection::vec((0.01f64..1.0, 0.1f64..20.0), 0..40)
        ) {
            let rects: Vec<Rect> = raw.iter().map(|&(w, h)| Rect::new(w, h)).collect();
            let p = nfdh(&rects);
            prop_assert!(p.is_valid(&rects));
            prop_assert_eq!(p.placements.len(), rects.len());
        }

        /// The textbook bound holds: lower bound ≤ height ≤ 2·area + hmax.
        #[test]
        fn nfdh_bound_holds(
            raw in prop::collection::vec((0.01f64..1.0, 0.1f64..20.0), 1..40)
        ) {
            let rects: Vec<Rect> = raw.iter().map(|&(w, h)| Rect::new(w, h)).collect();
            let p = nfdh(&rects);
            prop_assert!(p.height >= lower_bound(&rects) - 1e-9);
            prop_assert!(
                p.height <= nfdh_bound(&rects) + 1e-9,
                "height {} exceeds NFDH bound {}",
                p.height,
                nfdh_bound(&rects)
            );
        }

        /// Packing is deterministic and stable under duplicate heights.
        #[test]
        fn nfdh_is_deterministic(
            raw in prop::collection::vec((0.01f64..1.0, 0.1f64..5.0), 0..20)
        ) {
            let rects: Vec<Rect> = raw.iter().map(|&(w, h)| Rect::new(w, h)).collect();
            prop_assert_eq!(nfdh(&rects), nfdh(&rects));
        }
    }
}
