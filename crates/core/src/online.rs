//! Decision helpers for Algorithm 2 — the online DollyMP scheduler.
//!
//! The online scheduler (implemented in `dollymp-schedulers`) refreshes job
//! priorities through Algorithm 1 on every arrival, then repeatedly places
//! the best-fitting task of the highest-priority job group onto servers
//! with free resources, and finally spends leftover capacity on clones.
//! This module holds the pure pieces of that loop:
//!
//! * [`PriorityTable`] — the per-job priority/copy-count snapshot produced
//!   by the latest Algorithm 1 run;
//! * [`best_fit_score`] — the Tetris-style alignment inner product used to
//!   break ties inside one priority group (Algorithm 2, step 12);
//! * [`ClonePolicy`] — the cloning budget of §5 (≤ 2 extra copies) plus
//!   the §4.1 *small-job gate* parameterized by `δ`.

use crate::hash::FxHashMap;
use crate::job::JobId;
use crate::resources::Resources;
use crate::transient::{TransientJob, TransientOutput, PRIORITY_UNSELECTED};
use serde::{Deserialize, Serialize};

/// Snapshot of the latest Algorithm 1 output, keyed by job.
///
/// Refreshed (only) on job arrivals, per §5: *"the scheduling order of all
/// jobs in the cluster won't be updated until the next job arrival"*.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PriorityTable {
    entries: FxHashMap<JobId, PriorityEntry>,
}

/// One job's priority data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PriorityEntry {
    /// Knapsack level from Algorithm 1 (smaller = earlier).
    pub level: u32,
    /// Recommended concurrent copies from Corollary 4.1 (≥ 1).
    pub copies: u32,
}

impl PriorityTable {
    /// Build a table from Algorithm 1 inputs and output (same order).
    ///
    /// # Panics
    /// Panics when the slices disagree in length.
    pub fn from_output(jobs: &[TransientJob], out: &TransientOutput) -> Self {
        assert_eq!(jobs.len(), out.priorities.len());
        let entries = jobs
            .iter()
            .enumerate()
            .map(|(i, j)| {
                (
                    j.id,
                    PriorityEntry {
                        level: out.priorities[i],
                        copies: out.recommended_copies[i],
                    },
                )
            })
            .collect();
        PriorityTable { entries }
    }

    /// The priority level of a job; unknown jobs sort last.
    pub fn level(&self, job: JobId) -> u32 {
        self.entries
            .get(&job)
            .map(|e| e.level)
            .unwrap_or(PRIORITY_UNSELECTED)
    }

    /// The recommended copy count of a job (1 when unknown).
    pub fn copies(&self, job: JobId) -> u32 {
        self.entries.get(&job).map(|e| e.copies).unwrap_or(1)
    }

    /// Number of jobs tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no jobs are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop a completed job.
    pub fn remove(&mut self, job: JobId) {
        self.entries.remove(&job);
    }

    /// Group the given jobs by ascending priority level (jobs unknown to
    /// the table sort last). Within a level, jobs are ordered by id —
    /// the deterministic iteration order Algorithm 2's placement loop
    /// uses in both the simulator scheduler and the YARN RM.
    pub fn grouped(&self, jobs: impl Iterator<Item = JobId>) -> Vec<(u32, Vec<JobId>)> {
        let mut tagged: Vec<(u32, JobId)> = jobs.map(|j| (self.level(j), j)).collect();
        tagged.sort();
        let mut groups: Vec<(u32, Vec<JobId>)> = Vec::new();
        for (level, id) in tagged {
            match groups.last_mut() {
                Some((l, v)) if *l == level => v.push(id),
                _ => groups.push((level, vec![id])),
            }
        }
        groups
    }

    /// Flattened [`PriorityTable::grouped`]: the same ascending-level
    /// grouping, written into caller-owned buffers — `members` is the
    /// arena of job ids, `levels` holds one `(start, end)` range per
    /// priority level. Reuses the buffers' capacity, so a scheduler that
    /// regroups at every decision point allocates nothing at steady
    /// state. `tagged` is sort scratch.
    pub fn grouped_into(
        &self,
        jobs: impl Iterator<Item = JobId>,
        tagged: &mut Vec<(u32, JobId)>,
        levels: &mut Vec<(u32, u32)>,
        members: &mut Vec<JobId>,
    ) {
        tagged.clear();
        levels.clear();
        members.clear();
        tagged.extend(jobs.map(|j| (self.level(j), j)));
        // (level, id) pairs are unique (ids are), so the unstable sort is
        // deterministic and agrees with `grouped`'s stable sort.
        tagged.sort_unstable();
        let mut prev: Option<u32> = None;
        for &(level, id) in tagged.iter() {
            if prev != Some(level) {
                let start = members.len() as u32;
                levels.push((start, start));
                prev = Some(level);
            }
            members.push(id);
            if let Some(last) = levels.last_mut() {
                last.1 = members.len() as u32;
            }
        }
    }
}

/// The Algorithm 2 (step 12) tie-break score: the inner product between a
/// task's demand vector and the server's remaining capacity. Larger is
/// better — the task that best "aligns" with what the server has left is
/// placed first, exactly as in Tetris.
pub fn best_fit_score(demand: Resources, available: Resources) -> f64 {
    demand.dot(available)
}

/// The cloning rules of §4.1/§5.
///
/// * A task may hold at most `max_copies` concurrent copies (original
///   included); the paper fixes 3, i.e. at most two clones, because `h` is
///   concave and HDFS keeps two extra data replicas.
/// * Clones are only worth their resource cost for *small* jobs. The
///   paper's deployment uses a gate parameter `δ = 0.3` (§6.1); we
///   interpret it per §4.1 ("schedule extra cloned copies for small jobs
///   when the total amount of consumed resources under cloning is less
///   than the resource demand of other jobs"): a job is clone-eligible
///   when its remaining volume is at most `δ ×` the total remaining volume
///   of the *other* unfinished jobs, or when no other work is waiting at
///   all. This substitution is documented in DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClonePolicy {
    /// Maximum concurrent copies per task, original included (paper: 3).
    pub max_copies: u32,
    /// Small-job gate `δ` (paper: 0.3).
    pub delta: f64,
}

impl Default for ClonePolicy {
    fn default() -> Self {
        ClonePolicy {
            max_copies: 3,
            delta: 0.3,
        }
    }
}

impl ClonePolicy {
    /// A policy that never clones (DollyMP⁰).
    pub fn disabled() -> Self {
        ClonePolicy {
            max_copies: 1,
            delta: 0.0,
        }
    }

    /// A policy with `clones` extra copies (DollyMP¹ → `clones = 1`, …).
    pub fn with_clones(clones: u32) -> Self {
        ClonePolicy {
            max_copies: clones + 1,
            delta: 0.3,
        }
    }

    /// Whether a task currently holding `running_copies` copies may launch
    /// one more, given the job's Corollary 4.1 recommendation.
    pub fn may_add_copy(&self, running_copies: u32, recommended: u32) -> bool {
        running_copies < self.max_copies.min(recommended.max(1)).max(1)
            && running_copies < self.max_copies
    }

    /// Hard budget check only (ignores the recommendation): may this task
    /// ever take another copy?
    pub fn under_budget(&self, running_copies: u32) -> bool {
        running_copies < self.max_copies
    }

    /// The §4.1 small-job gate: is a job with `job_remaining_volume`
    /// clone-eligible when the other unfinished jobs total
    /// `other_remaining_volume`?
    pub fn small_job_gate(&self, job_remaining_volume: f64, other_remaining_volume: f64) -> bool {
        if self.max_copies <= 1 {
            return false;
        }
        if other_remaining_volume <= 0.0 {
            // Nobody is delayed by the clone — always worth it.
            return true;
        }
        job_remaining_volume <= self.delta * other_remaining_volume
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speedup::SpeedupFn;
    use crate::transient::{transient_schedule, TransientConfig};

    fn jobs() -> Vec<TransientJob> {
        vec![
            TransientJob {
                id: JobId(10),
                volume: 0.5,
                etime: 1.0,
                dominant: 0.1,
                speedup: SpeedupFn::Pareto { alpha: 2.0 },
            },
            TransientJob {
                id: JobId(20),
                volume: 50.0,
                etime: 80.0,
                dominant: 0.1,
                speedup: SpeedupFn::Pareto { alpha: 2.0 },
            },
        ]
    }

    #[test]
    fn table_round_trips_algorithm1() {
        let js = jobs();
        let out = transient_schedule(&js, &TransientConfig::default());
        let table = PriorityTable::from_output(&js, &out);
        assert_eq!(table.len(), 2);
        assert!(table.level(JobId(10)) < table.level(JobId(20)));
        assert!(table.copies(JobId(10)) >= 1);
    }

    #[test]
    fn unknown_jobs_sort_last_with_one_copy() {
        let table = PriorityTable::default();
        assert_eq!(table.level(JobId(99)), PRIORITY_UNSELECTED);
        assert_eq!(table.copies(JobId(99)), 1);
        assert!(table.is_empty());
    }

    #[test]
    fn remove_drops_entries() {
        let js = jobs();
        let out = transient_schedule(&js, &TransientConfig::default());
        let mut table = PriorityTable::from_output(&js, &out);
        table.remove(JobId(10));
        assert_eq!(table.level(JobId(10)), PRIORITY_UNSELECTED);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn grouped_orders_levels_and_ids() {
        let js = jobs();
        let out = transient_schedule(&js, &TransientConfig::default());
        let table = PriorityTable::from_output(&js, &out);
        // Known job ids plus an unknown one (sorts last).
        let groups = table.grouped([JobId(20), JobId(10), JobId(99)].into_iter());
        assert!(groups.len() >= 2);
        // First group holds the small job; last group the unknown.
        assert_eq!(groups.first().unwrap().1, vec![JobId(10)]);
        let (last_level, last_members) = groups.last().unwrap();
        assert_eq!(*last_level, PRIORITY_UNSELECTED);
        assert_eq!(last_members, &vec![JobId(99)]);
        // Levels strictly ascending.
        for w in groups.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn best_fit_prefers_aligned_demand() {
        let avail = Resources::new(8.0, 2.0); // CPU-rich server
        let cpu_heavy = Resources::new(4.0, 1.0);
        let mem_heavy = Resources::new(1.0, 4.0);
        assert!(best_fit_score(cpu_heavy, avail) > best_fit_score(mem_heavy, avail));
    }

    #[test]
    fn clone_budget_limits_copies() {
        let p = ClonePolicy::default(); // max 3 copies
        assert!(p.may_add_copy(1, 3));
        assert!(p.may_add_copy(2, 3));
        assert!(!p.may_add_copy(3, 3));
        // Recommendation of 1 blocks cloning even under budget.
        assert!(!p.may_add_copy(1, 1));
        assert!(p.under_budget(2));
        assert!(!p.under_budget(3));
    }

    #[test]
    fn disabled_policy_never_clones() {
        let p = ClonePolicy::disabled();
        assert!(!p.may_add_copy(1, 5));
        assert!(!p.small_job_gate(0.0, 0.0));
    }

    #[test]
    fn with_clones_sets_budget() {
        assert_eq!(ClonePolicy::with_clones(2).max_copies, 3);
        assert_eq!(ClonePolicy::with_clones(0).max_copies, 1);
    }

    #[test]
    fn grouped_into_matches_grouped() {
        let jobs: Vec<TransientJob> = (0..7)
            .map(|i| TransientJob {
                id: JobId(i),
                volume: 1.0 + i as f64,
                etime: 1.0,
                dominant: 0.1,
                speedup: crate::speedup::SpeedupFn::Pareto { alpha: 2.0 },
            })
            .collect();
        let out = crate::transient::transient_schedule(
            &jobs,
            &crate::transient::TransientConfig::default(),
        );
        let table = PriorityTable::from_output(&jobs, &out);
        // Include a job unknown to the table: it must sort last both ways.
        let ids = || (0..7).map(JobId).chain(std::iter::once(JobId(99)));
        let reference = table.grouped(ids());
        let (mut tagged, mut levels, mut members) = (Vec::new(), Vec::new(), Vec::new());
        // Run twice to prove buffer reuse leaves no stale state behind.
        for _ in 0..2 {
            table.grouped_into(ids(), &mut tagged, &mut levels, &mut members);
            let flat: Vec<Vec<JobId>> = levels
                .iter()
                .map(|&(s, e)| members[s as usize..e as usize].to_vec())
                .collect();
            let expect: Vec<Vec<JobId>> = reference.iter().map(|(_, v)| v.clone()).collect();
            assert_eq!(flat, expect);
        }
    }

    #[test]
    fn small_job_gate_semantics() {
        let p = ClonePolicy::default(); // δ = 0.3
                                        // Idle cluster (no other work): always eligible.
        assert!(p.small_job_gate(100.0, 0.0));
        // Small relative to the backlog: eligible.
        assert!(p.small_job_gate(1.0, 10.0));
        // Large relative to the backlog: not eligible.
        assert!(!p.small_job_gate(5.0, 10.0));
        // Boundary: exactly δ × other.
        assert!(p.small_job_gate(3.0, 10.0));
    }
}
