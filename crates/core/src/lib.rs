//! # dollymp-core
//!
//! Core algorithms of **DollyMP**, the multi-resource cluster scheduler with
//! task cloning from *"Multi Resource Scheduling with Task Cloning in
//! Heterogeneous Clusters"* (Xu, Liu, Lau — ICPP 2022).
//!
//! This crate is deliberately free of any simulation or I/O machinery: it
//! contains the pure scheduling mathematics so that the simulator
//! (`dollymp-cluster`), the scheduler implementations
//! (`dollymp-schedulers`) and the YARN-like control plane
//! (`dollymp-yarn`) can all share one implementation of the paper's model.
//!
//! The module layout mirrors the paper:
//!
//! * [`resources`] — two-dimensional (CPU, memory) resource vectors and the
//!   *dominant resource* of Eq. (9)/(15).
//! * [`time`] — the time-slotted clock of §3.
//! * [`speedup`] — the cloning speedup function `h(r)` of Eq. (1), including
//!   the Pareto fit of Eq. (2)–(3).
//! * [`job`] — DAG jobs, phases and tasks; effective processing times,
//!   critical paths and job volumes of Eq. (10)/(14)/(16)/(17).
//! * [`knapsack`] — the unit-profit knapsack oracle of Algorithm 1 (§4.2.1)
//!   plus an exact DP used to validate it.
//! * [`transient`] — Algorithm 1, the transient scheduling process that
//!   assigns knapsack-based priorities.
//! * [`online`] — decision helpers for Algorithm 2 (priority refresh,
//!   Tetris-style best-fit tie-breaking, clone budgeting).
//! * [`cloning`] — the §4.1 analysis of *when cloning helps* (the
//!   flow₁/flow₂/flow₃ case study) and clone-count selection.
//! * [`stats`] — streaming mean/standard-deviation estimation used by the
//!   Application-Master statistics estimator of §5.2.
//! * [`hash`] — a deterministic FxHash-style hasher for scheduler-internal
//!   maps (hot-path replacement for SipHash).
//! * [`packing`] — the 2D strip-packing (NFDH) reference behind
//!   Theorem 1's level argument, with validated bounds.
//! * [`theory`] — competitive-ratio machinery: Theorem 1 / Corollary 4.1
//!   bounds and a brute-force optimal scheduler for tiny instances.
//!
//! ## Quick start
//!
//! ```
//! use dollymp_core::prelude::*;
//!
//! // A cluster totalling 32 cores / 64 GB.
//! let totals = Resources::new(32.0, 64.0);
//!
//! // Three single-phase jobs: (tasks, cpu, mem, mean secs, std secs).
//! let jobs: Vec<JobSpec> = [(4u32, 1.0, 2.0, 10.0, 2.0),
//!                           (2, 2.0, 4.0, 40.0, 8.0),
//!                           (8, 1.0, 1.0, 5.0, 1.0)]
//!     .iter()
//!     .enumerate()
//!     .map(|(i, &(n, c, m, mu, sd))| {
//!         JobSpec::builder(JobId(i as u64))
//!             .phase(PhaseSpec::new(n, Resources::new(c, m), mu, sd))
//!             .build()
//!             .unwrap()
//!     })
//!     .collect();
//!
//! // Algorithm 1: knapsack-based priorities (smaller = scheduled earlier).
//! let cfg = TransientConfig::default();
//! let inputs: Vec<TransientJob> = jobs
//!     .iter()
//!     .map(|j| TransientJob::from_spec(j, totals, cfg.sigma_weight))
//!     .collect();
//! let out = transient_schedule(&inputs, &cfg);
//! assert_eq!(out.priorities.len(), 3);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod cloning;
pub mod hash;
pub mod job;
pub mod knapsack;
pub mod online;
pub mod packing;
pub mod resources;
pub mod speedup;
pub mod stats;
pub mod theory;
pub mod time;
pub mod transient;

/// Convenient glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::cloning::{clone_gain, flow1, flow2, flow3, CloningRegime};
    pub use crate::hash::{FxBuildHasher, FxHashMap, FxHashSet};
    pub use crate::job::{
        DagError, JobId, JobSpec, JobSpecBuilder, PhaseId, PhaseSpec, TaskId, TaskRef,
    };
    pub use crate::knapsack::{knapsack_01_dp, sorted_by_weight, unit_profit_knapsack};
    pub use crate::online::{best_fit_score, ClonePolicy, PriorityTable};
    pub use crate::packing::{lower_bound, nfdh, nfdh_bound, Packing, Rect};
    pub use crate::resources::{dominant_share, Resources};
    pub use crate::speedup::{ParetoSpeedup, Speedup, SpeedupFn};
    pub use crate::stats::RunningStats;
    pub use crate::theory::{theorem1_bound, BruteForceOptimal};
    pub use crate::time::{Duration, Time};
    pub use crate::transient::{
        transient_schedule, SummaryCache, SummaryInput, TransientConfig, TransientJob,
        TransientOutput, PRIORITY_UNSELECTED,
    };
}
