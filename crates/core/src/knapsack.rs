//! Knapsack oracles used by Algorithm 1.
//!
//! Step 6 of Algorithm 1 maximizes the *number* of jobs packed subject to a
//! total-volume budget — a 0/1 knapsack with **unit profits**. As §4.2.1
//! notes, this special case is solved exactly by greedily taking items in
//! increasing weight order. [`unit_profit_knapsack`] implements that
//! oracle; [`knapsack_01_dp`] is an exact dynamic program over integer
//! weights kept in-tree to (a) validate the greedy in tests and (b) support
//! experiments with non-unit profits.

/// Greedy unit-profit knapsack: select the maximum number of items whose
/// weights sum to at most `capacity`.
///
/// Returns the selected indices **in increasing weight order** (ties broken
/// by index, so the result is deterministic). Items with non-finite or
/// negative weights are skipped defensively.
///
/// This greedy is *exactly* optimal for unit profits: exchanging any chosen
/// item for a heavier unchosen one can never increase the count.
///
/// ```
/// use dollymp_core::knapsack::unit_profit_knapsack;
/// let picked = unit_profit_knapsack(&[5.0, 1.0, 3.0, 2.0], 6.0);
/// assert_eq!(picked, vec![1, 3, 2]); // weights 1 + 2 + 3 = 6
/// ```
pub fn unit_profit_knapsack(weights: &[f64], capacity: f64) -> Vec<usize> {
    let order = sorted_by_weight(weights);
    let mut used = 0.0f64;
    let mut picked = Vec::new();
    for i in order {
        if used + weights[i] <= capacity {
            used += weights[i];
            picked.push(i);
        } else {
            // Weights are sorted increasing; nothing later fits either.
            break;
        }
    }
    picked
}

/// The greedy order [`unit_profit_knapsack`] consumes: item indices sorted
/// by increasing weight, ties broken by index, with non-finite or negative
/// weights filtered out.
///
/// Exposed so callers that solve the *same* item set against many
/// capacities (Algorithm 1 walks doubling horizons over one job set) can
/// sort once and reuse the order, instead of re-sorting per capacity.
pub fn sorted_by_weight(weights: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..weights.len())
        .filter(|&i| weights[i].is_finite() && weights[i] >= 0.0)
        .collect();
    order.sort_by(|&a, &b| {
        weights[a]
            .partial_cmp(&weights[b])
            .expect("weights are finite")
            .then(a.cmp(&b))
    });
    order
}

/// Exact 0/1 knapsack by dynamic programming over integer weights.
///
/// Returns `(best_profit, selected_indices)`; the selection is one optimal
/// set (ties broken toward smaller indices). Runs in `O(n · capacity)`
/// time and `O(n · capacity)` bits of memory for backtracking.
///
/// # Panics
/// Panics if `weights` and `profits` have different lengths.
///
/// ```
/// use dollymp_core::knapsack::knapsack_01_dp;
/// let (best, sel) = knapsack_01_dp(&[3, 4, 5], &[4, 5, 6], 7);
/// assert_eq!(best, 9);           // items 0 and 1
/// assert_eq!(sel, vec![0, 1]);
/// ```
pub fn knapsack_01_dp(weights: &[u64], profits: &[u64], capacity: u64) -> (u64, Vec<usize>) {
    assert_eq!(
        weights.len(),
        profits.len(),
        "weights/profits length mismatch"
    );
    let n = weights.len();
    let cap = capacity as usize;
    // dp[w] = best profit with capacity w; take[i][w] = item i used at w.
    let mut dp = vec![0u64; cap + 1];
    let mut take = vec![false; n * (cap + 1)];
    for i in 0..n {
        let wi = weights[i] as usize;
        if wi > cap {
            continue;
        }
        let pi = profits[i];
        for w in (wi..=cap).rev() {
            let candidate = dp[w - wi] + pi;
            if candidate > dp[w] {
                dp[w] = candidate;
                take[i * (cap + 1) + w] = true;
            }
        }
    }
    // Backtrack.
    let mut w = cap;
    let mut selected = Vec::new();
    for i in (0..n).rev() {
        if take[i * (cap + 1) + w] {
            selected.push(i);
            w -= weights[i] as usize;
        }
    }
    selected.reverse();
    (dp[cap], selected)
}

/// Scale a slice of non-negative `f64` weights to integers with `scale`
/// units per 1.0, rounding up so that a scaled solution never overfills the
/// true capacity. Helper for feeding fractional volumes to
/// [`knapsack_01_dp`].
pub fn scale_weights(weights: &[f64], scale: f64) -> Vec<u64> {
    weights
        .iter()
        .map(|&w| {
            if !w.is_finite() || w <= 0.0 {
                0
            } else {
                (w * scale).ceil() as u64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn greedy_takes_smallest_first() {
        assert_eq!(unit_profit_knapsack(&[4.0, 2.0, 1.0], 3.0), vec![2, 1]);
    }

    #[test]
    fn greedy_empty_and_zero_capacity() {
        assert!(unit_profit_knapsack(&[], 10.0).is_empty());
        assert!(unit_profit_knapsack(&[1.0], 0.5).is_empty());
        // Zero-weight items always fit.
        assert_eq!(unit_profit_knapsack(&[0.0, 0.0], 0.0), vec![0, 1]);
    }

    #[test]
    fn greedy_skips_pathological_weights() {
        let picked = unit_profit_knapsack(&[f64::NAN, 1.0, -2.0, f64::INFINITY], 5.0);
        assert_eq!(picked, vec![1]);
    }

    #[test]
    fn greedy_tie_break_is_by_index() {
        assert_eq!(unit_profit_knapsack(&[2.0, 2.0, 2.0], 4.0), vec![0, 1]);
    }

    #[test]
    fn dp_matches_textbook_example() {
        let (best, sel) = knapsack_01_dp(&[1, 3, 4, 5], &[1, 4, 5, 7], 7);
        assert_eq!(best, 9); // weights 3 + 4, profits 4 + 5
        assert_eq!(sel, vec![1, 2]);
    }

    #[test]
    fn dp_item_heavier_than_capacity_ignored() {
        let (best, sel) = knapsack_01_dp(&[10], &[100], 5);
        assert_eq!(best, 0);
        assert!(sel.is_empty());
    }

    #[test]
    fn dp_selection_is_consistent_with_profit() {
        let w = [2u64, 3, 5, 7, 1];
        let p = [10u64, 5, 15, 7, 6];
        let (best, sel) = knapsack_01_dp(&w, &p, 10);
        let wsum: u64 = sel.iter().map(|&i| w[i]).sum();
        let psum: u64 = sel.iter().map(|&i| p[i]).sum();
        assert!(wsum <= 10);
        assert_eq!(psum, best);
    }

    #[test]
    fn scale_weights_rounds_up() {
        assert_eq!(scale_weights(&[0.1001, 0.0, -1.0], 1000.0), vec![101, 0, 0]);
    }

    proptest! {
        /// The §4.2.1 claim: greedy-by-weight is optimal for unit profits.
        #[test]
        fn greedy_matches_dp_on_unit_profits(
            weights in prop::collection::vec(0u64..50, 0..12),
            capacity in 0u64..120,
        ) {
            let f_weights: Vec<f64> = weights.iter().map(|&w| w as f64).collect();
            let greedy = unit_profit_knapsack(&f_weights, capacity as f64);
            let profits = vec![1u64; weights.len()];
            let (best, _) = knapsack_01_dp(&weights, &profits, capacity);
            prop_assert_eq!(greedy.len() as u64, best);
        }

        /// DP never overfills and never returns a profit below any single item.
        #[test]
        fn dp_is_feasible_and_dominates_singletons(
            items in prop::collection::vec((1u64..30, 1u64..30), 1..10),
            capacity in 1u64..80,
        ) {
            let (w, p): (Vec<u64>, Vec<u64>) = items.into_iter().unzip();
            let (best, sel) = knapsack_01_dp(&w, &p, capacity);
            let wsum: u64 = sel.iter().map(|&i| w[i]).sum();
            prop_assert!(wsum <= capacity);
            for i in 0..w.len() {
                if w[i] <= capacity {
                    prop_assert!(best >= p[i]);
                }
            }
        }

        /// Greedy output is always feasible and sorted by weight.
        #[test]
        fn greedy_feasible_and_sorted(
            weights in prop::collection::vec(0.0f64..20.0, 0..20),
            capacity in 0.0f64..60.0,
        ) {
            let picked = unit_profit_knapsack(&weights, capacity);
            let total: f64 = picked.iter().map(|&i| weights[i]).sum();
            prop_assert!(total <= capacity + 1e-9);
            for pair in picked.windows(2) {
                prop_assert!(weights[pair[0]] <= weights[pair[1]]);
            }
        }
    }
}
