//! A fast, deterministic, non-cryptographic hasher for scheduler-internal
//! maps.
//!
//! The standard library's default `SipHash` is DoS-resistant but costs
//! tens of nanoseconds per key — measurable when a scheduling pass does
//! hundreds of thousands of map operations over task/job ids (see the
//! `bench_scale` artifact). Scheduler maps are keyed by *internal* ids the
//! simulation itself generates, so hash-flooding resistance buys nothing
//! here; this module provides the classic multiply-rotate "Fx" hash used
//! by rustc, which is 5–10× cheaper on small integer keys and fully
//! deterministic across runs and platforms (no random seed — map
//! iteration order is stable for a fixed key set, though algorithms must
//! still not depend on it).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc "FxHash" function
/// (64-bit golden-ratio-derived odd constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc `FxHasher`: a word-at-a-time multiply-rotate hash.
///
/// Not cryptographic and not seeded — use only for keys the program
/// itself generates (job ids, task refs, server ids).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, w: u64) {
        self.hash = (self.hash.rotate_left(5) ^ w).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            #[allow(clippy::unwrap_used)] // chunks_exact(8) yields 8-byte slices
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut w = [0u8; 8];
            w[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(w));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, deterministic).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        for v in [0u64, 1, 42, u64::MAX] {
            assert_eq!(hash_of(&v), hash_of(&v));
        }
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        // Slices shorter than a word must still distinguish contents.
        assert_ne!(hash_of(&[1u8, 2, 3]), hash_of(&[1u8, 2, 4]));
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(3));
        assert!(!s.insert(3));
    }
}
