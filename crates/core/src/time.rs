//! The time-slotted clock of §3.
//!
//! The analytical model and the paper's trace-driven simulator (§6.3) are
//! *time-slotted*: scheduling decisions happen at slot boundaries and the
//! simulator's default slot length is 5 seconds. We keep simulation time as
//! an integer slot counter ([`Time`]) and task lengths as integer slot
//! counts ([`Duration`]); conversion from wall-clock seconds happens once,
//! at workload construction, via [`SlotClock`].

use serde::{Deserialize, Serialize};

/// Absolute simulation time, in slots since the start of the run.
pub type Time = u64;

/// A span of simulation time, in slots.
pub type Duration = u64;

/// Converts between wall-clock seconds and integer slots.
///
/// ```
/// use dollymp_core::time::SlotClock;
/// let clock = SlotClock::new(5.0); // the paper's 5-second slots
/// assert_eq!(clock.duration_from_secs(12.0), 3); // rounds up: 12s needs 3 slots
/// assert_eq!(clock.duration_from_secs(0.1), 1);  // every task takes ≥ 1 slot
/// assert!((clock.secs(3) - 15.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotClock {
    slot_secs: f64,
}

impl SlotClock {
    /// A clock whose slots are `slot_secs` seconds long.
    ///
    /// # Panics
    /// Panics if `slot_secs` is not strictly positive and finite.
    pub fn new(slot_secs: f64) -> Self {
        assert!(
            slot_secs.is_finite() && slot_secs > 0.0,
            "slot length must be positive, got {slot_secs}"
        );
        SlotClock { slot_secs }
    }

    /// The paper's default: 5-second slots (§6.3).
    pub fn paper_default() -> Self {
        SlotClock::new(5.0)
    }

    /// Slot length in seconds.
    pub fn slot_secs(&self) -> f64 {
        self.slot_secs
    }

    /// Convert a wall-clock duration to slots, rounding *up* so that no
    /// task is shorter than one slot (a zero-length task would never
    /// occupy resources and would break conservation accounting).
    pub fn duration_from_secs(&self, secs: f64) -> Duration {
        if secs <= 0.0 || secs.is_nan() || !secs.is_finite() {
            return 1;
        }
        ((secs / self.slot_secs).ceil() as Duration).max(1)
    }

    /// Convert a slot count back to seconds.
    pub fn secs(&self, slots: Duration) -> f64 {
        slots as f64 * self.slot_secs
    }
}

impl Default for SlotClock {
    fn default() -> Self {
        SlotClock::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_up_and_clamps_to_one_slot() {
        let c = SlotClock::new(5.0);
        assert_eq!(c.duration_from_secs(0.0), 1);
        assert_eq!(c.duration_from_secs(-3.0), 1);
        assert_eq!(c.duration_from_secs(f64::NAN), 1);
        assert_eq!(c.duration_from_secs(5.0), 1);
        assert_eq!(c.duration_from_secs(5.01), 2);
    }

    #[test]
    fn seconds_round_trip() {
        let c = SlotClock::new(2.5);
        assert!((c.secs(4) - 10.0).abs() < 1e-12);
        assert_eq!(c.duration_from_secs(c.secs(4)), 4);
    }

    #[test]
    #[should_panic(expected = "slot length")]
    fn zero_slot_length_rejected() {
        let _ = SlotClock::new(0.0);
    }

    #[test]
    fn paper_default_is_five_seconds() {
        assert!((SlotClock::paper_default().slot_secs() - 5.0).abs() < 1e-12);
    }
}
