//! The §4.1 analysis: *when is cloning helpful?*
//!
//! The paper studies `N` single-task jobs arriving at time zero on a
//! unit-capacity cluster, where job `j` demands `1/2^j` of each resource
//! and has unit expected duration. Three schemes are compared:
//!
//! * **flow₁** — schedule everything at once, one clone for the smallest
//!   job: `flow₁ = N − 1 + 1/h(2)`;
//! * **flow₂** — serialize jobs and clone maximally (`2^j` copies for job
//!   `j`): `flow₂ = Σ_j j / h(2^j)`;
//! * **flow₃** — smallest-demand first with two copies each:
//!   `flow₃ ≤ (N + 1) / h(2)`.
//!
//! For Pareto speedups the paper shows `flow₃ < flow₁ < flow₂` once `N`
//! is large enough — i.e. *a few clones for small jobs beat both no
//! cloning and aggressive cloning*. These closed forms are used by the
//! `analysis_cloning_regimes` experiment binary and unit tests; the
//! general marginal-gain helpers at the bottom drive the online clone
//! policy.

use crate::speedup::Speedup;
use serde::{Deserialize, Serialize};

/// `flow₁ = N − 1 + 1/h(2)` — schedule all jobs at time zero, clone only
/// job `N` once.
pub fn flow1<H: Speedup>(n: u32, h: &H) -> f64 {
    assert!(n >= 1);
    (n - 1) as f64 + 1.0 / h.factor(2)
}

/// `flow₂ = Σ_{j=1}^{N} j / h(2^j)` — run jobs one at a time, cloning as
/// aggressively as the free capacity allows.
///
/// Copy counts are clamped to `2^30` — `h` is concave and bounded, so the
/// clamp is numerically invisible while avoiding overflow.
pub fn flow2<H: Speedup>(n: u32, h: &H) -> f64 {
    assert!(n >= 1);
    (1..=n)
        .map(|j| {
            let copies = if j >= 30 { 1u32 << 30 } else { 1u32 << j };
            j as f64 / h.factor(copies)
        })
        .sum()
}

/// `flow₃ = (N + 1) / h(2)` — the upper bound for smallest-demand-first
/// with two copies per job.
pub fn flow3<H: Speedup>(n: u32, h: &H) -> f64 {
    assert!(n >= 1);
    (n + 1) as f64 / h.factor(2)
}

/// Which §4.1 regime a given `(N, h)` lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CloningRegime {
    /// `flow₃ < flow₁ < flow₂`: modest cloning of small jobs wins — the
    /// regime the paper designs DollyMP for.
    ModestCloningWins,
    /// Cloning aggressively beats the single-clone scheme (small `N` or
    /// very heavy tails).
    AggressiveCloningWins,
    /// No strict ordering established (boundary cases).
    Indeterminate,
}

/// Classify the §4.1 regime by evaluating the three closed forms.
pub fn classify_regime<H: Speedup>(n: u32, h: &H) -> CloningRegime {
    let f1 = flow1(n, h);
    let f2 = flow2(n, h);
    let f3 = flow3(n, h);
    if f3 < f1 && f1 < f2 {
        CloningRegime::ModestCloningWins
    } else if f2 < f1 {
        CloningRegime::AggressiveCloningWins
    } else {
        CloningRegime::Indeterminate
    }
}

/// Expected per-task time saved by going from `r_from` to `r_to` copies of
/// a task with mean duration `theta`: `θ (1/h(r_from) − 1/h(r_to))`.
/// Negative when `r_to < r_from`.
pub fn clone_gain<H: Speedup>(h: &H, theta: f64, r_from: u32, r_to: u32) -> f64 {
    theta * (1.0 / h.factor(r_from.max(1)) - 1.0 / h.factor(r_to.max(1)))
}

/// Marginal expected time saved by the *next* copy, per §5's observation
/// that concavity makes late copies worthless: `θ (1/h(r) − 1/h(r+1))`.
pub fn marginal_gain<H: Speedup>(h: &H, theta: f64, current_copies: u32) -> f64 {
    clone_gain(h, theta, current_copies.max(1), current_copies.max(1) + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speedup::{ParetoSpeedup, SpeedupFn};

    #[test]
    fn closed_forms_match_manual_evaluation() {
        let h = ParetoSpeedup::new(2.0); // h(2) = 1.5, h(4) = 1.75, h(8) = 1.9375
        assert!((flow1(3, &h) - (2.0 + 1.0 / 1.5)).abs() < 1e-12);
        assert!((flow3(3, &h) - 4.0 / 1.5).abs() < 1e-12);
        let expect2 = 1.0 / 1.5 + 2.0 / 1.75 + 3.0 / 1.875; // h(8)=(2-1/8)/1
        assert!((flow2(3, &h) - expect2).abs() < 1e-12);
    }

    #[test]
    fn paper_ordering_holds_for_large_n() {
        // Paper: flow₃ < flow₁ < flow₂ when N > 2α − 1 and j ≥ α/(α−1).
        let alpha = 2.0;
        let h = ParetoSpeedup::new(alpha);
        for n in [5u32, 10, 40] {
            assert!(flow3(n, &h) < flow1(n, &h), "N={n}");
            assert!(flow1(n, &h) < flow2(n, &h), "N={n}");
            assert_eq!(classify_regime(n, &h), CloningRegime::ModestCloningWins);
        }
    }

    #[test]
    fn no_speedup_makes_cloning_useless() {
        let h = SpeedupFn::None;
        // With h ≡ 1: flow₁ = N, flow₃ = N + 1 → modest cloning does NOT win.
        assert_ne!(classify_regime(10, &h), CloningRegime::ModestCloningWins);
        assert_eq!(clone_gain(&h, 10.0, 1, 3), 0.0);
    }

    #[test]
    fn marginal_gain_is_decreasing_in_copies() {
        let h = ParetoSpeedup::new(1.5);
        let gains: Vec<f64> = (1..8).map(|r| marginal_gain(&h, 100.0, r)).collect();
        for w in gains.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "concavity → diminishing returns");
        }
        assert!(gains[0] > 0.0);
    }

    #[test]
    fn clone_gain_signs() {
        let h = ParetoSpeedup::new(2.0);
        assert!(clone_gain(&h, 10.0, 1, 2) > 0.0);
        assert!(clone_gain(&h, 10.0, 2, 1) < 0.0);
        assert_eq!(clone_gain(&h, 10.0, 2, 2), 0.0);
    }

    #[test]
    fn flow2_overflow_guard() {
        let h = ParetoSpeedup::new(2.0);
        // N = 64 would shift past u32 without the clamp.
        let v = flow2(64, &h);
        assert!(v.is_finite() && v > 0.0);
    }
}
