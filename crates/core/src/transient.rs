//! Algorithm 1 — the *transient scheduling process*.
//!
//! Given a set of jobs with effective volumes `v_j` and effective
//! processing times `e_j`, Algorithm 1 assigns each job a **priority
//! level** by solving a sequence of unit-profit knapsack problems over
//! doubling time horizons:
//!
//! 1. `g = log₂( Σ_j v_j / (1 − max_j d_j) )` levels are considered.
//! 2. At level `l`, the candidate set is `B_l = { j : e_j ≤ 2ˡ }` — jobs
//!    whose processing time fits the horizon.
//! 3. A knapsack packs as many candidates as possible subject to total
//!    volume ≤ `2ˡ`; each job newly packed at level `l` gets priority
//!    `p_j = l`.
//! 4. Jobs are then scheduled in increasing priority order; all jobs
//!    sharing one level are treated equally (the online scheduler breaks
//!    ties by Tetris-style best fit).
//!
//! The output also carries the Corollary 4.1 clone recommendation
//! `r_j = min { r : 2ˡ · h_j(r) ≥ e_j }` — the fewest copies that squeeze
//! job `j`'s expected duration under its level's horizon.

use crate::job::{JobId, JobSpec};
use crate::knapsack::sorted_by_weight;
use crate::resources::Resources;
use crate::speedup::{Speedup, SpeedupFn};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Priority assigned to jobs never selected by any knapsack level (they
/// sort after every selected job).
pub const PRIORITY_UNSELECTED: u32 = u32::MAX;

/// Hard cap on the number of doubling levels; `2^60` time units exceeds
/// any realistic horizon and caps work even on adversarial inputs.
const MAX_LEVELS: u32 = 60;

/// Below this many jobs the `rayon` feature's parallel paths fall back to
/// sequential code: scoped-thread fan-out costs more than the work saved.
#[cfg(feature = "rayon")]
const PAR_MIN_JOBS: usize = 256;

/// Tunables of the transient process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientConfig {
    /// Weight `w` on the duration standard deviation in the effective
    /// processing time `e = θ + w·σ`. The paper deploys `r = 1.5`.
    pub sigma_weight: f64,
    /// Maximum *concurrent copies* of a task (original + clones). The
    /// paper fixes this to 3 (two clones, §5).
    pub max_copies: u32,
}

impl Default for TransientConfig {
    fn default() -> Self {
        TransientConfig {
            sigma_weight: 1.5,
            max_copies: 3,
        }
    }
}

/// Per-job input to Algorithm 1: the scalar summary DollyMP schedules on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientJob {
    /// Job identity (passed through to the output).
    pub id: JobId,
    /// Effective volume `v_j` (Eq. 14/16).
    pub volume: f64,
    /// Effective processing time `e_j` (Eq. 14/17).
    pub etime: f64,
    /// Maximum dominant share `d_j` over the job's phases (Eq. 15).
    pub dominant: f64,
    /// Cloning speedup function (the job's first unfinished phase's, or a
    /// job-level aggregate).
    pub speedup: SpeedupFn,
}

impl TransientJob {
    /// Summarize a full (not yet started) job against cluster totals.
    pub fn from_spec(spec: &JobSpec, cluster_totals: Resources, sigma_weight: f64) -> Self {
        // Use the first root phase's speedup as the job-level speedup; for
        // single-phase jobs this is exact, for DAGs it is the phase whose
        // clones the online scheduler will launch first.
        let speedup = spec
            .root_phases()
            .next()
            .map(|p| spec.phase(p).speedup)
            .unwrap_or(SpeedupFn::None);
        TransientJob {
            id: spec.id,
            volume: spec.volume(cluster_totals, sigma_weight),
            etime: spec.effective_time(sigma_weight),
            dominant: spec.max_dominant_share(cluster_totals),
            speedup,
        }
    }

    /// Summarize the *remaining* work of a partially executed job
    /// (Eq. 16/17).
    pub fn from_remaining(
        spec: &JobSpec,
        remaining_tasks: &[u32],
        finished_phases: &[bool],
        cluster_totals: Resources,
        sigma_weight: f64,
    ) -> Self {
        let speedup = spec
            .topo_order()
            .iter()
            .find(|p| !finished_phases[p.0 as usize])
            .map(|&p| spec.phase(p).speedup)
            .unwrap_or(SpeedupFn::None);
        TransientJob {
            id: spec.id,
            volume: spec.remaining_volume(remaining_tasks, cluster_totals, sigma_weight),
            etime: spec.remaining_effective_time(finished_phases, sigma_weight),
            dominant: spec.max_dominant_share(cluster_totals),
            speedup,
        }
    }
}

/// Result of Algorithm 1, aligned with the input job slice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientOutput {
    /// `priorities[i]` is the knapsack level at which input job `i` was
    /// first packed, or [`PRIORITY_UNSELECTED`].
    pub priorities: Vec<u32>,
    /// `recommended_copies[i]` is the Corollary 4.1 copy count (original
    /// + clones, ≥ 1, ≤ `max_copies`).
    pub recommended_copies: Vec<u32>,
    /// Input indices sorted by `(priority, volume, JobId)` — the order in
    /// which the online scheduler visits jobs.
    pub order: Vec<usize>,
    /// Number of doubling levels `g` actually used.
    pub levels: u32,
}

impl TransientOutput {
    /// Priority of a given input index.
    pub fn priority(&self, idx: usize) -> u32 {
        self.priorities[idx]
    }
}

/// Run Algorithm 1 over a job set.
///
/// The returned priorities are *levels*: smaller is scheduled earlier, and
/// jobs sharing a level are peers (tie-broken downstream by resource fit).
///
/// ```
/// use dollymp_core::prelude::*;
/// use dollymp_core::speedup::SpeedupFn;
/// let mk = |id, v, e| TransientJob {
///     id: JobId(id), volume: v, etime: e, dominant: 0.1,
///     speedup: SpeedupFn::Pareto { alpha: 2.0 },
/// };
/// // A tiny fast job, a mid job and a huge slow job.
/// let jobs = vec![mk(0, 0.5, 1.5), mk(1, 1.0, 3.0), mk(2, 40.0, 60.0)];
/// let out = transient_schedule(&jobs, &TransientConfig::default());
/// assert!(out.priorities[0] <= out.priorities[1]);
/// assert!(out.priorities[1] < out.priorities[2]);
/// ```
pub fn transient_schedule(jobs: &[TransientJob], cfg: &TransientConfig) -> TransientOutput {
    let n = jobs.len();
    let mut priorities = vec![PRIORITY_UNSELECTED; n];
    let mut copies = vec![1u32; n];
    if n == 0 {
        return TransientOutput {
            priorities,
            recommended_copies: copies,
            order: Vec::new(),
            levels: 0,
        };
    }

    // g = log2( Σ v / (1 − max d) ), stretched so the largest e_j fits at
    // least one level and clamped to a sane range.
    let total_volume: f64 = jobs.iter().map(|j| j.volume.max(0.0)).sum();
    let max_dom = jobs
        .iter()
        .map(|j| j.dominant)
        .fold(0.0f64, f64::max)
        .clamp(0.0, 0.99);
    let max_etime = jobs.iter().map(|j| j.etime).fold(0.0f64, f64::max);
    let g_volume = (total_volume / (1.0 - max_dom)).max(1.0).log2().ceil() as i64;
    let g_etime = max_etime.max(1.0).log2().ceil() as i64;
    let g = g_volume.max(g_etime).max(1).min(MAX_LEVELS as i64) as u32;

    // Every level solves a unit-profit knapsack over the SAME job set, so
    // the increasing-weight greedy order is computed once and reused; each
    // level filters it by horizon eligibility on the fly. This is
    // decision-identical to a per-level `unit_profit_knapsack` call:
    // filtering a sorted sequence preserves its order, and the greedy
    // still stops at the first *eligible* item that overflows the budget.
    let weights: Vec<f64> = jobs.iter().map(|j| j.volume.max(0.0)).collect();
    let order = sorted_by_weight(&weights);
    let first_level = first_feasible_levels(jobs, g);

    let mut selected_count = 0usize;
    for l in 1..=g {
        let horizon = (2f64).powi(l as i32);
        // B_l: jobs completing within the horizon. The knapsack re-packs
        // previously selected jobs too (their volume still occupies the
        // budget), exactly as in the pseudo-code.
        let mut used = 0.0f64;
        for &i in &order {
            if first_level[i] > l {
                continue;
            }
            if used + weights[i] > horizon {
                // Weights ascend along `order`: no later candidate fits.
                break;
            }
            used += weights[i];
            if priorities[i] == PRIORITY_UNSELECTED {
                priorities[i] = l;
                selected_count += 1;
                // Corollary 4.1 clone recommendation: fewest copies that
                // bring e_j under the level horizon.
                let target = jobs[i].etime / horizon;
                copies[i] = jobs[i]
                    .speedup
                    .min_copies_for(target)
                    .unwrap_or(1)
                    .clamp(1, cfg.max_copies.max(1));
            }
        }
        if selected_count == n {
            break;
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        priorities[a]
            .cmp(&priorities[b])
            .then(
                jobs[a]
                    .volume
                    .partial_cmp(&jobs[b].volume)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(jobs[a].id.cmp(&jobs[b].id))
    });

    TransientOutput {
        priorities,
        recommended_copies: copies,
        order,
        levels: g,
    }
}

/// For each job, the smallest level `l ∈ 1..=g` whose horizon `2ˡ` covers
/// the job's effective processing time (`g + 1` when none does). The hot
/// per-level candidate filter then reduces to one integer comparison. Uses
/// the same `e_j ≤ 2ˡ` float predicate as the level loop, so eligibility
/// is bit-identical; per-job scans are independent, and the `rayon`
/// feature computes them in parallel for large job sets.
fn first_feasible_levels(jobs: &[TransientJob], g: u32) -> Vec<u32> {
    let level_of = |j: &TransientJob| -> u32 {
        (1..=g)
            .find(|&l| j.etime <= (2f64).powi(l as i32))
            .unwrap_or(g + 1)
    };
    #[cfg(feature = "rayon")]
    if jobs.len() >= PAR_MIN_JOBS {
        use rayon::prelude::*;
        return jobs.par_iter().map(level_of).collect();
    }
    jobs.iter().map(level_of).collect()
}

/// Borrowed inputs of one job's summary — exactly what
/// [`TransientJob::from_remaining`] consumes.
pub struct SummaryInput<'a> {
    /// The immutable job description.
    pub spec: &'a JobSpec,
    /// Unfinished task count per phase (`n_j^k(t)` of Eq. 16).
    pub remaining_tasks: Vec<u32>,
    /// Per-phase completion flags (Eq. 17).
    pub finished_phases: Vec<bool>,
    /// Count of fault-induced task losses this job has suffered (0 when
    /// fault injection is off). A crash that evicts a task's last copy
    /// re-queues it *without* changing the remaining-task counts — the
    /// fingerprint above cannot see the loss — so callers bump this epoch
    /// (`Scheduler::on_task_lost`) to force a recompute and keep the
    /// cache honest under failures.
    pub loss_epoch: u64,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    remaining_tasks: Vec<u32>,
    finished_phases: Vec<bool>,
    loss_epoch: u64,
    summary: TransientJob,
}

/// Memo of [`TransientJob`] summaries keyed by each job's remaining-work
/// fingerprint (its per-phase unfinished-task counts and completion
/// flags).
///
/// Algorithm 1 reruns over *all* unfinished jobs on every arrival (§5),
/// but between two arrivals most jobs made no progress: their Eq. 16/17
/// summaries are pure functions of unchanged inputs. The cache reuses
/// those and recomputes only the jobs whose remaining work moved — in
/// parallel under the `rayon` feature when many miss at once.
///
/// Reused summaries are bit-identical to recomputed ones (same pure
/// computation, same inputs), so scheduling decisions are unchanged.
#[derive(Debug, Clone, Default)]
pub struct SummaryCache {
    entries: HashMap<JobId, CacheEntry>,
    /// Cluster totals and σ-weight (bits) the cached summaries were
    /// computed against; any change invalidates every entry.
    key: Option<(Resources, u64)>,
}

impl SummaryCache {
    /// An empty cache.
    pub fn new() -> Self {
        SummaryCache::default()
    }

    /// Number of jobs with a cached summary.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop a completed job's entry.
    pub fn remove(&mut self, job: JobId) {
        self.entries.remove(&job);
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.key = None;
    }

    /// Summarize `inputs` (preserving order), reusing every cached summary
    /// whose remaining-work fingerprint is unchanged; misses are computed
    /// and cached for the next refresh.
    pub fn summarize(
        &mut self,
        inputs: &[SummaryInput<'_>],
        cluster_totals: Resources,
        sigma_weight: f64,
    ) -> Vec<TransientJob> {
        let key = (cluster_totals, sigma_weight.to_bits());
        if self.key != Some(key) {
            self.entries.clear();
            self.key = Some(key);
        }
        let mut out: Vec<Option<TransientJob>> = Vec::with_capacity(inputs.len());
        let mut misses: Vec<usize> = Vec::new();
        for (idx, input) in inputs.iter().enumerate() {
            match self.entries.get(&input.spec.id) {
                Some(e)
                    if e.remaining_tasks == input.remaining_tasks
                        && e.finished_phases == input.finished_phases
                        && e.loss_epoch == input.loss_epoch =>
                {
                    // A served hit must be bit-identical to a fresh
                    // recompute — the cache is an optimization, never a
                    // source of truth (cheap enough to verify in debug).
                    debug_assert_eq!(
                        e.summary,
                        TransientJob::from_remaining(
                            input.spec,
                            &input.remaining_tasks,
                            &input.finished_phases,
                            cluster_totals,
                            sigma_weight,
                        ),
                        "stale cached summary served for job {:?}",
                        input.spec.id
                    );
                    out.push(Some(e.summary.clone()));
                }
                _ => {
                    out.push(None);
                    misses.push(idx);
                }
            }
        }
        let computed = compute_summaries(inputs, &misses, cluster_totals, sigma_weight);
        for (&idx, summary) in misses.iter().zip(computed) {
            let input = &inputs[idx];
            self.entries.insert(
                input.spec.id,
                CacheEntry {
                    remaining_tasks: input.remaining_tasks.clone(),
                    finished_phases: input.finished_phases.clone(),
                    loss_epoch: input.loss_epoch,
                    summary: summary.clone(),
                },
            );
            out[idx] = Some(summary);
        }
        out.into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect()
    }
}

/// Summaries of `inputs[misses]`, in miss order — parallel under `rayon`
/// when enough jobs miss at once.
fn compute_summaries(
    inputs: &[SummaryInput<'_>],
    misses: &[usize],
    cluster_totals: Resources,
    sigma_weight: f64,
) -> Vec<TransientJob> {
    let one = |idx: &usize| {
        let i = &inputs[*idx];
        TransientJob::from_remaining(
            i.spec,
            &i.remaining_tasks,
            &i.finished_phases,
            cluster_totals,
            sigma_weight,
        )
    };
    #[cfg(feature = "rayon")]
    if misses.len() >= PAR_MIN_JOBS {
        use rayon::prelude::*;
        return misses.par_iter().map(one).collect();
    }
    misses.iter().map(one).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn job(id: u64, volume: f64, etime: f64) -> TransientJob {
        TransientJob {
            id: JobId(id),
            volume,
            etime,
            dominant: 0.1,
            speedup: SpeedupFn::Pareto { alpha: 2.0 },
        }
    }

    #[test]
    fn empty_input() {
        let out = transient_schedule(&[], &TransientConfig::default());
        assert!(out.priorities.is_empty());
        assert_eq!(out.levels, 0);
    }

    #[test]
    fn single_small_job_gets_level_one() {
        let out = transient_schedule(&[job(0, 1.0, 1.0)], &TransientConfig::default());
        assert_eq!(out.priorities, vec![1]);
        assert_eq!(out.order, vec![0]);
    }

    #[test]
    fn small_jobs_beat_large_jobs() {
        let jobs = vec![job(0, 100.0, 200.0), job(1, 0.5, 1.0), job(2, 2.0, 3.0)];
        let out = transient_schedule(&jobs, &TransientConfig::default());
        assert!(out.priorities[1] < out.priorities[0]);
        assert!(out.priorities[2] < out.priorities[0]);
        assert_eq!(out.order[0], 1);
        assert_eq!(*out.order.last().unwrap(), 0);
    }

    #[test]
    fn short_but_fat_job_deferred_past_its_duration_level() {
        // e = 1 fits level 1 (horizon 2) but volume 10 does not; it must
        // wait for the level whose budget holds it (2^4 = 16 also packs
        // the small job's 1.0 → both picked, big one later or equal).
        let jobs = vec![job(0, 10.0, 1.0), job(1, 1.0, 1.0)];
        let out = transient_schedule(&jobs, &TransientConfig::default());
        assert!(out.priorities[1] < out.priorities[0]);
    }

    #[test]
    fn equal_jobs_fill_levels_in_index_order() {
        // Four unit-volume jobs, level-1 budget of 2: the first two jobs
        // land on level 1, the rest spill to level 2 when the budget
        // doubles (the doubling structure of Algorithm 1).
        let jobs: Vec<_> = (0..4).map(|i| job(i, 1.0, 2.0)).collect();
        let out = transient_schedule(&jobs, &TransientConfig::default());
        assert_eq!(out.priorities, vec![1, 1, 2, 2]);
        assert_eq!(out.order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn clone_recommendation_shrinks_to_horizon() {
        // e = 3 at level 1 (horizon 2) needs h(r) ≥ 1.5; for α = 2,
        // h(2) = 1.5 → two copies.
        let j = TransientJob {
            id: JobId(0),
            volume: 1.0,
            etime: 3.0,
            dominant: 0.1,
            speedup: SpeedupFn::Pareto { alpha: 2.0 },
        };
        let out = transient_schedule(&[j], &TransientConfig::default());
        // volume 1 ≤ 2 and etime 3 > 2 so it lands on level 2 (horizon 4,
        // target 0.75 → 1 copy)… verify consistency instead of guessing:
        let l = out.priorities[0];
        assert_ne!(l, PRIORITY_UNSELECTED);
        let horizon = (2f64).powi(l as i32);
        let hr = SpeedupFn::Pareto { alpha: 2.0 };
        use crate::speedup::Speedup;
        let r = out.recommended_copies[0];
        assert!(horizon * hr.factor(r) >= 3.0 || r == 1);
    }

    #[test]
    fn copies_capped_by_config() {
        let j = TransientJob {
            id: JobId(0),
            volume: 0.1,
            etime: 1.9, // selected at level 1, target 0.95 → 1 copy
            dominant: 0.1,
            speedup: SpeedupFn::Pareto { alpha: 1.1 },
        };
        let cfg = TransientConfig {
            max_copies: 2,
            ..Default::default()
        };
        let out = transient_schedule(&[j], &cfg);
        assert!(out.recommended_copies[0] <= 2);
    }

    #[test]
    fn order_is_priority_then_volume() {
        let jobs = vec![job(0, 1.5, 2.0), job(1, 0.3, 2.0), job(2, 30.0, 50.0)];
        let out = transient_schedule(&jobs, &TransientConfig::default());
        assert_eq!(out.order[0], 1, "same level → smaller volume first");
        assert_eq!(out.order[1], 0);
        assert_eq!(out.order[2], 2);
    }

    #[test]
    fn hand_computed_doubling_levels() {
        // Five jobs, dominant share 0.1 each, so g = ⌈log₂(Σv/0.9)⌉ = 6:
        //   A: v=1,   e=2   → level 1 (budget 2 holds only A)
        //   B: v=1.5, e=2   → level 2 (budget 4 holds A+B = 2.5)
        //   C: v=3,   e=4   → level 3 (budget 8 holds 5.5, not 13.5)
        //   D: v=8,   e=8   → level 4 (budget 16 holds 13.5)
        //   E: v=20,  e=30  → level 6 (budget 32 misses 33.5; 64 fits)
        let jobs = vec![
            job(0, 1.0, 2.0),
            job(1, 1.5, 2.0),
            job(2, 3.0, 4.0),
            job(3, 8.0, 8.0),
            job(4, 20.0, 30.0),
        ];
        let out = transient_schedule(&jobs, &TransientConfig::default());
        assert_eq!(out.levels, 6);
        assert_eq!(out.priorities, vec![1, 2, 3, 4, 6]);
        assert_eq!(out.order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn degenerate_dominant_share_clamped() {
        let mut j = job(0, 1.0, 1.0);
        j.dominant = 1.0; // would divide by zero without clamping
        let out = transient_schedule(&[j], &TransientConfig::default());
        assert_ne!(out.priorities[0], PRIORITY_UNSELECTED);
    }

    proptest! {
        /// Every job is eventually selected (g is stretched to cover the
        /// longest job), and priorities respect weak volume dominance:
        /// strictly smaller volume AND etime never yields a strictly
        /// larger level... (they may tie).
        #[test]
        fn all_jobs_selected_and_monotone(
            raw in prop::collection::vec((0.01f64..50.0, 0.1f64..100.0), 1..20)
        ) {
            let jobs: Vec<TransientJob> = raw.iter().enumerate()
                .map(|(i, &(v, e))| job(i as u64, v, e)).collect();
            let out = transient_schedule(&jobs, &TransientConfig::default());
            for &p in &out.priorities {
                prop_assert!(p != PRIORITY_UNSELECTED);
                prop_assert!(p >= 1 && p <= out.levels);
            }
            for a in 0..jobs.len() {
                for b in 0..jobs.len() {
                    if jobs[a].volume < jobs[b].volume && jobs[a].etime <= jobs[b].etime {
                        prop_assert!(
                            out.priorities[a] <= out.priorities[b],
                            "dominated job {} (v={}, e={}) ranked before dominating job {} (v={}, e={})",
                            b, jobs[b].volume, jobs[b].etime, a, jobs[a].volume, jobs[a].etime
                        );
                    }
                }
            }
        }

        /// The memoized-order level loop is decision-identical to the
        /// reference per-level knapsack formulation it replaced.
        #[test]
        fn matches_reference_implementation(
            raw in prop::collection::vec((0.01f64..80.0, 0.1f64..200.0), 0..25)
        ) {
            let jobs: Vec<TransientJob> = raw.iter().enumerate()
                .map(|(i, &(v, e))| job(i as u64, v, e)).collect();
            let cfg = TransientConfig::default();
            prop_assert_eq!(
                transient_schedule(&jobs, &cfg),
                reference_transient_schedule(&jobs, &cfg)
            );
        }

        /// The order permutation is a valid permutation sorted by priority.
        #[test]
        fn order_is_permutation(
            raw in prop::collection::vec((0.01f64..20.0, 0.1f64..40.0), 0..15)
        ) {
            let jobs: Vec<TransientJob> = raw.iter().enumerate()
                .map(|(i, &(v, e))| job(i as u64, v, e)).collect();
            let out = transient_schedule(&jobs, &TransientConfig::default());
            let mut seen = vec![false; jobs.len()];
            for &i in &out.order {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
            for w in out.order.windows(2) {
                prop_assert!(out.priorities[w[0]] <= out.priorities[w[1]]);
            }
        }
    }

    /// The pre-memoization Algorithm 1: collect candidates and run a fresh
    /// `unit_profit_knapsack` (with its own sort) at every level. Kept as
    /// the test oracle for the memoized-order implementation.
    fn reference_transient_schedule(
        jobs: &[TransientJob],
        cfg: &TransientConfig,
    ) -> TransientOutput {
        use crate::knapsack::unit_profit_knapsack;
        let n = jobs.len();
        let mut priorities = vec![PRIORITY_UNSELECTED; n];
        let mut copies = vec![1u32; n];
        if n == 0 {
            return TransientOutput {
                priorities,
                recommended_copies: copies,
                order: Vec::new(),
                levels: 0,
            };
        }
        let total_volume: f64 = jobs.iter().map(|j| j.volume.max(0.0)).sum();
        let max_dom = jobs
            .iter()
            .map(|j| j.dominant)
            .fold(0.0f64, f64::max)
            .clamp(0.0, 0.99);
        let max_etime = jobs.iter().map(|j| j.etime).fold(0.0f64, f64::max);
        let g_volume = (total_volume / (1.0 - max_dom)).max(1.0).log2().ceil() as i64;
        let g_etime = max_etime.max(1.0).log2().ceil() as i64;
        let g = g_volume.max(g_etime).max(1).min(MAX_LEVELS as i64) as u32;
        let mut selected_count = 0usize;
        for l in 1..=g {
            let horizon = (2f64).powi(l as i32);
            let candidates: Vec<usize> = (0..n).filter(|&i| jobs[i].etime <= horizon).collect();
            if candidates.is_empty() {
                continue;
            }
            let weights: Vec<f64> = candidates
                .iter()
                .map(|&i| jobs[i].volume.max(0.0))
                .collect();
            let picked = unit_profit_knapsack(&weights, horizon);
            for &pos in &picked {
                let i = candidates[pos];
                if priorities[i] == PRIORITY_UNSELECTED {
                    priorities[i] = l;
                    selected_count += 1;
                    let target = jobs[i].etime / horizon;
                    copies[i] = jobs[i]
                        .speedup
                        .min_copies_for(target)
                        .unwrap_or(1)
                        .clamp(1, cfg.max_copies.max(1));
                }
            }
            if selected_count == n {
                break;
            }
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            priorities[a]
                .cmp(&priorities[b])
                .then(
                    jobs[a]
                        .volume
                        .partial_cmp(&jobs[b].volume)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then(jobs[a].id.cmp(&jobs[b].id))
        });
        TransientOutput {
            priorities,
            recommended_copies: copies,
            order,
            levels: g,
        }
    }

    #[test]
    fn infinite_volume_never_packed_like_reference() {
        let mut jobs = vec![job(0, 1.0, 2.0), job(1, f64::INFINITY, 2.0)];
        jobs.push(job(2, 2.0, 3.0));
        let cfg = TransientConfig::default();
        let out = transient_schedule(&jobs, &cfg);
        assert_eq!(out.priorities[1], PRIORITY_UNSELECTED);
        assert_eq!(out, reference_transient_schedule(&jobs, &cfg));
    }

    #[test]
    fn summary_cache_reuses_unchanged_fingerprints() {
        let spec = JobSpec::single_phase(JobId(7), 4, Resources::new(1.0, 2.0), 10.0, 2.0);
        let totals = Resources::new(100.0, 200.0);
        let mut cache = SummaryCache::new();
        let input = |rem: u32| SummaryInput {
            spec: &spec,
            remaining_tasks: vec![rem],
            finished_phases: vec![rem == 0],
            loss_epoch: 0,
        };
        let a = cache.summarize(&[input(4)], totals, 1.5);
        assert_eq!(cache.len(), 1);
        let direct = TransientJob::from_remaining(&spec, &[4], &[false], totals, 1.5);
        assert_eq!(a[0], direct);
        // Unchanged fingerprint → the cached summary is returned verbatim.
        let b = cache.summarize(&[input(4)], totals, 1.5);
        assert_eq!(b[0], direct);
        // Progress changes the fingerprint → recomputed, not stale.
        let c = cache.summarize(&[input(2)], totals, 1.5);
        assert_eq!(
            c[0],
            TransientJob::from_remaining(&spec, &[2], &[false], totals, 1.5)
        );
        assert!(c[0].volume < a[0].volume);
        cache.remove(JobId(7));
        assert!(cache.is_empty());
    }

    #[test]
    fn summary_cache_loss_epoch_forces_recompute() {
        // A crash-induced task loss re-queues a Running task: the
        // remaining-task counts do NOT change, so only the loss epoch
        // distinguishes pre-loss from post-loss state. Bumping it must
        // miss the cache; serving the entry anyway would be a stale hit.
        let spec = JobSpec::single_phase(JobId(3), 6, Resources::new(1.0, 2.0), 12.0, 2.0);
        let totals = Resources::new(50.0, 100.0);
        let mut cache = SummaryCache::new();
        let input = |epoch: u64| SummaryInput {
            spec: &spec,
            remaining_tasks: vec![6],
            finished_phases: vec![false],
            loss_epoch: epoch,
        };
        let _ = cache.summarize(&[input(0)], totals, 1.5);
        assert_eq!(cache.len(), 1);
        // Same fingerprint, bumped epoch: recomputed (and re-cached under
        // the new epoch — a third call at epoch 1 hits again).
        let b = cache.summarize(&[input(1)], totals, 1.5);
        assert_eq!(
            b[0],
            TransientJob::from_remaining(&spec, &[6], &[false], totals, 1.5)
        );
        let c = cache.summarize(&[input(1)], totals, 1.5);
        assert_eq!(c[0], b[0]);
        // Regressing to the old epoch also misses (epoch equality, not
        // ordering, keys the entry).
        let d = cache.summarize(&[input(0)], totals, 1.5);
        assert_eq!(d[0], b[0]);
    }

    #[test]
    fn summary_cache_invalidates_on_context_change() {
        let spec = JobSpec::single_phase(JobId(1), 2, Resources::new(1.0, 1.0), 8.0, 1.0);
        let mut cache = SummaryCache::new();
        let input = || SummaryInput {
            spec: &spec,
            remaining_tasks: vec![2],
            finished_phases: vec![false],
            loss_epoch: 0,
        };
        let small = cache.summarize(&[input()], Resources::new(10.0, 10.0), 1.5);
        // Doubling the cluster halves normalized volume; a stale entry
        // would return the old value.
        let big = cache.summarize(&[input()], Resources::new(20.0, 20.0), 1.5);
        assert!(big[0].volume < small[0].volume);
        // σ-weight change also invalidates.
        let heavier = cache.summarize(&[input()], Resources::new(20.0, 20.0), 3.0);
        assert!(heavier[0].etime > big[0].etime);
    }
}
