//! DAG jobs, phases and tasks — the job model of §3, plus the derived
//! quantities DollyMP schedules on: *effective processing time*
//! `e = θ + w·σ` (§5), *critical path* `L_j`, *job volume* (Eq. 10/14) and
//! their remaining-work refreshes (Eq. 16/17).
//!
//! A [`JobSpec`] is an immutable description of a job: a set of
//! [`PhaseSpec`]s connected by parent (upstream) edges. Every task inside a
//! phase is statistically identical — same resource demand, same duration
//! distribution — matching the paper's observation (§5.2) that tasks of one
//! phase have similar requirements. The runtime state of a job while it
//! executes lives in `dollymp-cluster`; this module is purely structural.

use crate::resources::{dominant_share, Resources};
use crate::speedup::SpeedupFn;
use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique job identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct JobId(pub u64);

/// Index of a phase within its job (position in [`JobSpec::phases`]).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct PhaseId(pub u32);

/// Index of a task within its phase.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct TaskId(pub u32);

/// Fully qualified reference to a single task.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct TaskRef {
    /// Owning job.
    pub job: JobId,
    /// Phase within the job.
    pub phase: PhaseId,
    /// Task within the phase.
    pub task: TaskId,
}

impl fmt::Display for TaskRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}p{}t{}", self.job.0, self.phase.0, self.task.0)
    }
}

/// One phase of a job: `n` parallel, statistically identical tasks.
///
/// Durations are in abstract time units (the simulator interprets them as
/// slots; workload generators convert from seconds via
/// [`crate::time::SlotClock`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Number of parallel tasks `n_j^k` (≥ 1).
    pub ntasks: u32,
    /// Per-task resource demand `(c_j^k, m_j^k)`.
    pub demand: Resources,
    /// Mean task duration `θ_j^k`.
    pub theta: f64,
    /// Standard deviation of task duration `σ_j^k`.
    pub sigma: f64,
    /// Cloning speedup function `h_j^k` for this phase.
    pub speedup: SpeedupFn,
    /// Upstream phases that must fully complete before any task of this
    /// phase may start (Eq. 7).
    pub parents: Vec<PhaseId>,
}

impl PhaseSpec {
    /// A phase whose speedup function is Pareto-fitted from `(theta,
    /// sigma)`, the way the paper derives `h` from the first two moments.
    pub fn new(ntasks: u32, demand: Resources, theta: f64, sigma: f64) -> Self {
        PhaseSpec {
            ntasks,
            demand,
            theta,
            sigma,
            speedup: SpeedupFn::fit_pareto(theta, sigma),
            parents: Vec::new(),
        }
    }

    /// Set upstream dependencies.
    pub fn with_parents(mut self, parents: Vec<PhaseId>) -> Self {
        self.parents = parents;
        self
    }

    /// Override the speedup function.
    pub fn with_speedup(mut self, speedup: SpeedupFn) -> Self {
        self.speedup = speedup;
        self
    }

    /// Effective processing time `e = θ + w·σ` (§5). The paper folds
    /// execution-time variability into scheduling priority by penalizing
    /// high-variance phases; `w` is the deployment parameter `r = 1.5`.
    pub fn effective_time(&self, sigma_weight: f64) -> f64 {
        self.theta + sigma_weight * self.sigma
    }

    /// Dominant share of one task of this phase (Eq. 15).
    pub fn dominant_share(&self, cluster_totals: Resources) -> f64 {
        dominant_share(self.demand, cluster_totals)
    }
}

/// Errors from [`JobSpecBuilder::build`] DAG validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// The job has no phases.
    EmptyJob,
    /// A phase has zero tasks.
    NoTasks(PhaseId),
    /// A parent reference points outside the phase list.
    BadParent {
        /// Phase holding the dangling reference.
        phase: PhaseId,
        /// The dangling parent id.
        parent: PhaseId,
    },
    /// A phase lists itself as a parent.
    SelfParent(PhaseId),
    /// The dependency graph contains a cycle.
    Cycle,
    /// A phase demands zero resources (it would be schedulable infinitely
    /// often and breaks packing maths).
    ZeroDemand(PhaseId),
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::EmptyJob => write!(f, "job has no phases"),
            DagError::NoTasks(p) => write!(f, "phase {} has zero tasks", p.0),
            DagError::BadParent { phase, parent } => {
                write!(
                    f,
                    "phase {} references unknown parent {}",
                    phase.0, parent.0
                )
            }
            DagError::SelfParent(p) => write!(f, "phase {} lists itself as parent", p.0),
            DagError::Cycle => write!(f, "phase dependency graph has a cycle"),
            DagError::ZeroDemand(p) => write!(f, "phase {} demands zero resources", p.0),
        }
    }
}

impl std::error::Error for DagError {}

/// Immutable description of a DAG job (§3): identity, arrival time and the
/// validated phase DAG, with children lists and a topological order
/// precomputed at build time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique id.
    pub id: JobId,
    /// Arrival time `a_j` (slots).
    pub arrival: Time,
    /// Human-readable application label (e.g. `"wordcount"`), used only
    /// for reporting.
    pub label: String,
    phases: Vec<PhaseSpec>,
    children: Vec<Vec<PhaseId>>,
    topo: Vec<PhaseId>,
}

impl JobSpec {
    /// Start building a job.
    pub fn builder(id: JobId) -> JobSpecBuilder {
        JobSpecBuilder {
            id,
            arrival: 0,
            label: String::new(),
            phases: Vec::new(),
        }
    }

    /// Convenience: a single-phase job with Pareto-fitted speedup.
    pub fn single_phase(
        id: JobId,
        ntasks: u32,
        demand: Resources,
        theta: f64,
        sigma: f64,
    ) -> JobSpec {
        JobSpec::builder(id)
            .phase(PhaseSpec::new(ntasks, demand, theta, sigma))
            .build()
            .expect("single phase jobs are always valid DAGs")
    }

    /// Convenience: a linear chain of phases (e.g. map → reduce), each
    /// depending on the previous one.
    pub fn chain(id: JobId, phases: Vec<PhaseSpec>) -> Result<JobSpec, DagError> {
        let mut b = JobSpec::builder(id);
        for (i, mut p) in phases.into_iter().enumerate() {
            p.parents = if i == 0 {
                Vec::new()
            } else {
                vec![PhaseId(i as u32 - 1)]
            };
            b = b.phase(p);
        }
        b.build()
    }

    /// The validated phases, indexed by [`PhaseId`].
    pub fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    /// A specific phase.
    pub fn phase(&self, p: PhaseId) -> &PhaseSpec {
        &self.phases[p.0 as usize]
    }

    /// Number of phases `π_j`.
    pub fn num_phases(&self) -> usize {
        self.phases.len()
    }

    /// Total number of tasks across all phases.
    pub fn total_tasks(&self) -> u64 {
        self.phases.iter().map(|p| p.ntasks as u64).sum()
    }

    /// Downstream phases of `p`.
    pub fn children(&self, p: PhaseId) -> &[PhaseId] {
        &self.children[p.0 as usize]
    }

    /// A topological order of the phases (parents before children).
    pub fn topo_order(&self) -> &[PhaseId] {
        &self.topo
    }

    /// Phases with no parents — runnable immediately on job start.
    pub fn root_phases(&self) -> impl Iterator<Item = PhaseId> + '_ {
        self.phases
            .iter()
            .enumerate()
            .filter(|(_, p)| p.parents.is_empty())
            .map(|(i, _)| PhaseId(i as u32))
    }

    /// Effective job processing time `e_j` — the length of the critical
    /// path `L_j` under effective phase times `e_k = θ_k + w·σ_k`
    /// (Eq. 14, right).
    pub fn effective_time(&self, sigma_weight: f64) -> f64 {
        self.remaining_effective_time(&vec![false; self.phases.len()], sigma_weight)
    }

    /// Effective job volume `v_j = Σ_k n_k · e_k · d_k` (Eq. 14, left).
    pub fn volume(&self, cluster_totals: Resources, sigma_weight: f64) -> f64 {
        self.phases
            .iter()
            .map(|p| {
                p.ntasks as f64 * p.effective_time(sigma_weight) * p.dominant_share(cluster_totals)
            })
            .sum()
    }

    /// Remaining volume `v_j(t)` (Eq. 16): like [`JobSpec::volume`] but
    /// with per-phase *unfinished* task counts.
    ///
    /// # Panics
    /// Panics when `remaining_tasks.len()` differs from the phase count.
    pub fn remaining_volume(
        &self,
        remaining_tasks: &[u32],
        cluster_totals: Resources,
        sigma_weight: f64,
    ) -> f64 {
        assert_eq!(remaining_tasks.len(), self.phases.len());
        self.phases
            .iter()
            .zip(remaining_tasks)
            .map(|(p, &n)| {
                n as f64 * p.effective_time(sigma_weight) * p.dominant_share(cluster_totals)
            })
            .sum()
    }

    /// Remaining effective processing time `e_j(t)` (Eq. 17): length of
    /// the critical path over *unfinished* phases. Finished phases
    /// contribute zero length but still connect the path.
    ///
    /// # Panics
    /// Panics when `finished.len()` differs from the phase count.
    pub fn remaining_effective_time(&self, finished: &[bool], sigma_weight: f64) -> f64 {
        assert_eq!(finished.len(), self.phases.len());
        let mut longest = vec![0.0f64; self.phases.len()];
        let mut best = 0.0f64;
        for &pid in &self.topo {
            let idx = pid.0 as usize;
            let p = &self.phases[idx];
            let own = if finished[idx] {
                0.0
            } else {
                p.effective_time(sigma_weight)
            };
            let upstream = p
                .parents
                .iter()
                .map(|par| longest[par.0 as usize])
                .fold(0.0f64, f64::max);
            longest[idx] = upstream + own;
            best = best.max(longest[idx]);
        }
        best
    }

    /// Maximum dominant share over the job's phases — the `d_j` used by
    /// Algorithm 1's capacity bound `1 − max_j d_j`.
    pub fn max_dominant_share(&self, cluster_totals: Resources) -> f64 {
        self.phases
            .iter()
            .map(|p| p.dominant_share(cluster_totals))
            .fold(0.0, f64::max)
    }
}

/// Builder for [`JobSpec`]; [`JobSpecBuilder::build`] validates the DAG.
#[derive(Debug, Clone)]
pub struct JobSpecBuilder {
    id: JobId,
    arrival: Time,
    label: String,
    phases: Vec<PhaseSpec>,
}

impl JobSpecBuilder {
    /// Set the arrival slot `a_j`.
    pub fn arrival(mut self, t: Time) -> Self {
        self.arrival = t;
        self
    }

    /// Set the application label.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Append a phase; its [`PhaseId`] is its position in insertion order.
    pub fn phase(mut self, p: PhaseSpec) -> Self {
        self.phases.push(p);
        self
    }

    /// Validate the DAG and produce the job.
    pub fn build(self) -> Result<JobSpec, DagError> {
        let n = self.phases.len();
        if n == 0 {
            return Err(DagError::EmptyJob);
        }
        for (i, p) in self.phases.iter().enumerate() {
            let pid = PhaseId(i as u32);
            if p.ntasks == 0 {
                return Err(DagError::NoTasks(pid));
            }
            if p.demand.is_zero() {
                return Err(DagError::ZeroDemand(pid));
            }
            for &par in &p.parents {
                if par.0 as usize >= n {
                    return Err(DagError::BadParent {
                        phase: pid,
                        parent: par,
                    });
                }
                if par == pid {
                    return Err(DagError::SelfParent(pid));
                }
            }
        }
        // Kahn's algorithm: topological order or cycle detection.
        let mut indeg = vec![0usize; n];
        let mut children = vec![Vec::new(); n];
        for (i, p) in self.phases.iter().enumerate() {
            // Duplicate parent edges are tolerated but counted once.
            let mut seen = Vec::new();
            for &par in &p.parents {
                if !seen.contains(&par) {
                    seen.push(par);
                    indeg[i] += 1;
                    children[par.0 as usize].push(PhaseId(i as u32));
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            topo.push(PhaseId(i as u32));
            for &c in &children[i] {
                let ci = c.0 as usize;
                indeg[ci] -= 1;
                if indeg[ci] == 0 {
                    queue.push(ci);
                }
            }
        }
        if topo.len() != n {
            return Err(DagError::Cycle);
        }
        Ok(JobSpec {
            id: self.id,
            arrival: self.arrival,
            label: self.label,
            phases: self.phases,
            children,
            topo,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand() -> Resources {
        Resources::new(1.0, 2.0)
    }

    #[test]
    fn single_phase_job_basics() {
        let j = JobSpec::single_phase(JobId(7), 4, demand(), 10.0, 2.0);
        assert_eq!(j.num_phases(), 1);
        assert_eq!(j.total_tasks(), 4);
        assert_eq!(j.root_phases().collect::<Vec<_>>(), vec![PhaseId(0)]);
        // e = θ + 1.5σ = 13
        assert!((j.effective_time(1.5) - 13.0).abs() < 1e-12);
    }

    #[test]
    fn chain_builds_linear_dependencies() {
        let j = JobSpec::chain(
            JobId(1),
            vec![
                PhaseSpec::new(8, demand(), 10.0, 1.0),
                PhaseSpec::new(2, demand(), 20.0, 2.0),
            ],
        )
        .unwrap();
        assert_eq!(j.phase(PhaseId(1)).parents, vec![PhaseId(0)]);
        assert_eq!(j.children(PhaseId(0)), &[PhaseId(1)]);
        // critical path = (10 + 1.5) + (20 + 3) = 34.5 with w = 1.5
        assert!((j.effective_time(1.5) - 34.5).abs() < 1e-12);
    }

    #[test]
    fn empty_job_rejected() {
        assert_eq!(
            JobSpec::builder(JobId(0)).build().unwrap_err(),
            DagError::EmptyJob
        );
    }

    #[test]
    fn zero_tasks_rejected() {
        let e = JobSpec::builder(JobId(0))
            .phase(PhaseSpec::new(0, demand(), 1.0, 0.0))
            .build()
            .unwrap_err();
        assert_eq!(e, DagError::NoTasks(PhaseId(0)));
    }

    #[test]
    fn zero_demand_rejected() {
        let e = JobSpec::builder(JobId(0))
            .phase(PhaseSpec::new(1, Resources::ZERO, 1.0, 0.0))
            .build()
            .unwrap_err();
        assert_eq!(e, DagError::ZeroDemand(PhaseId(0)));
    }

    #[test]
    fn dangling_parent_rejected() {
        let e = JobSpec::builder(JobId(0))
            .phase(PhaseSpec::new(1, demand(), 1.0, 0.0).with_parents(vec![PhaseId(9)]))
            .build()
            .unwrap_err();
        assert!(matches!(e, DagError::BadParent { .. }));
    }

    #[test]
    fn self_parent_rejected() {
        let e = JobSpec::builder(JobId(0))
            .phase(PhaseSpec::new(1, demand(), 1.0, 0.0).with_parents(vec![PhaseId(0)]))
            .build()
            .unwrap_err();
        assert_eq!(e, DagError::SelfParent(PhaseId(0)));
    }

    #[test]
    fn cycle_rejected() {
        let e = JobSpec::builder(JobId(0))
            .phase(PhaseSpec::new(1, demand(), 1.0, 0.0).with_parents(vec![PhaseId(1)]))
            .phase(PhaseSpec::new(1, demand(), 1.0, 0.0).with_parents(vec![PhaseId(0)]))
            .build()
            .unwrap_err();
        assert_eq!(e, DagError::Cycle);
    }

    #[test]
    fn diamond_dag_critical_path() {
        //      0
        //    /   \
        //   1     2     e0=10, e1=5, e2=20, e3=10 (w = 0)
        //    \   /
        //      3
        let j = JobSpec::builder(JobId(0))
            .phase(PhaseSpec::new(1, demand(), 10.0, 0.0))
            .phase(PhaseSpec::new(1, demand(), 5.0, 0.0).with_parents(vec![PhaseId(0)]))
            .phase(PhaseSpec::new(1, demand(), 20.0, 0.0).with_parents(vec![PhaseId(0)]))
            .phase(
                PhaseSpec::new(1, demand(), 10.0, 0.0).with_parents(vec![PhaseId(1), PhaseId(2)]),
            )
            .build()
            .unwrap();
        assert!((j.effective_time(0.0) - 40.0).abs() < 1e-12); // 10 + 20 + 10
                                                               // Finishing the long middle phase shortens the remaining path.
        let rem = j.remaining_effective_time(&[true, false, true, false], 0.0);
        assert!((rem - 15.0).abs() < 1e-12); // 5 + 10 through the left branch
    }

    #[test]
    fn volume_matches_eq14() {
        let totals = Resources::new(10.0, 10.0);
        let j = JobSpec::chain(
            JobId(0),
            vec![
                PhaseSpec::new(4, Resources::new(1.0, 2.0), 10.0, 0.0), // d = 0.2
                PhaseSpec::new(2, Resources::new(2.0, 1.0), 5.0, 0.0),  // d = 0.2
            ],
        )
        .unwrap();
        // v = 4·10·0.2 + 2·5·0.2 = 8 + 2 = 10
        assert!((j.volume(totals, 0.0) - 10.0).abs() < 1e-12);
        // Remaining: 1 task left in phase 0, phase 1 untouched.
        let v = j.remaining_volume(&[1, 2], totals, 0.0);
        assert!((v - 4.0).abs() < 1e-12); // 1·10·0.2 + 2·5·0.2
    }

    #[test]
    fn topo_order_respects_parents() {
        let j = JobSpec::builder(JobId(0))
            .phase(PhaseSpec::new(1, demand(), 1.0, 0.0).with_parents(vec![PhaseId(2)]))
            .phase(PhaseSpec::new(1, demand(), 1.0, 0.0).with_parents(vec![PhaseId(0)]))
            .phase(PhaseSpec::new(1, demand(), 1.0, 0.0))
            .build()
            .unwrap();
        let pos: Vec<usize> = (0..3)
            .map(|i| j.topo_order().iter().position(|p| p.0 == i).unwrap())
            .collect();
        assert!(pos[2] < pos[0] && pos[0] < pos[1]);
    }

    #[test]
    fn duplicate_parents_tolerated() {
        let j = JobSpec::builder(JobId(0))
            .phase(PhaseSpec::new(1, demand(), 1.0, 0.0))
            .phase(PhaseSpec::new(1, demand(), 1.0, 0.0).with_parents(vec![PhaseId(0), PhaseId(0)]))
            .build()
            .unwrap();
        assert_eq!(j.children(PhaseId(0)), &[PhaseId(1)]);
    }

    #[test]
    fn max_dominant_share() {
        let totals = Resources::new(10.0, 100.0);
        let j = JobSpec::chain(
            JobId(0),
            vec![
                PhaseSpec::new(1, Resources::new(5.0, 10.0), 1.0, 0.0), // d = 0.5 (cpu)
                PhaseSpec::new(1, Resources::new(1.0, 30.0), 1.0, 0.0), // d = 0.3 (mem)
            ],
        )
        .unwrap();
        assert!((j.max_dominant_share(totals) - 0.5).abs() < 1e-12);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Arbitrary acyclic jobs: phase `i` may only depend on phases
        /// `< i`, so the DAG is acyclic by construction (any DAG has such
        /// a topological labelling, so this loses no generality).
        fn arb_job() -> impl Strategy<Value = JobSpec> {
            prop::collection::vec(
                (
                    1u32..6,                                 // ntasks
                    0.5f64..4.0,                             // cpu
                    0.5f64..8.0,                             // mem
                    0.5f64..50.0,                            // theta
                    0.0f64..20.0,                            // sigma
                    prop::collection::vec(0usize..64, 0..3), // raw parent picks
                ),
                1..8,
            )
            .prop_map(|raw| {
                let mut b = JobSpec::builder(JobId(99));
                for (i, (n, c, m, theta, sigma, parents)) in raw.into_iter().enumerate() {
                    let parents: Vec<PhaseId> = if i == 0 {
                        vec![]
                    } else {
                        parents
                            .into_iter()
                            .map(|p| PhaseId((p % i) as u32))
                            .collect()
                    };
                    b = b.phase(
                        PhaseSpec::new(n, Resources::new(c, m), theta, sigma).with_parents(parents),
                    );
                }
                b.build().expect("forward-only parents are acyclic")
            })
        }

        proptest! {
            /// The critical path is at least the longest single phase and
            /// at most the sum of all phases.
            #[test]
            fn critical_path_bounds(job in arb_job(), w in 0.0f64..3.0) {
                let e = job.effective_time(w);
                let max_phase = job
                    .phases()
                    .iter()
                    .map(|p| p.effective_time(w))
                    .fold(0.0f64, f64::max);
                let sum: f64 = job.phases().iter().map(|p| p.effective_time(w)).sum();
                prop_assert!(e >= max_phase - 1e-9);
                prop_assert!(e <= sum + 1e-9);
            }

            /// Finishing phases never increases the remaining critical
            /// path, and finishing everything zeroes it.
            #[test]
            fn remaining_time_is_monotone(job in arb_job()) {
                let n = job.num_phases();
                let mut finished = vec![false; n];
                let mut last = job.remaining_effective_time(&finished, 1.5);
                // Finish phases in topological order (respects real
                // execution order).
                for &p in job.topo_order() {
                    finished[p.0 as usize] = true;
                    let now = job.remaining_effective_time(&finished, 1.5);
                    prop_assert!(now <= last + 1e-9, "remaining path grew");
                    last = now;
                }
                prop_assert!(last.abs() < 1e-9, "all finished ⇒ zero path");
            }

            /// Remaining volume decreases monotonically as tasks complete
            /// and matches the full volume when nothing has run.
            #[test]
            fn remaining_volume_is_monotone(job in arb_job()) {
                let totals = Resources::new(100.0, 200.0);
                let mut remaining: Vec<u32> =
                    job.phases().iter().map(|p| p.ntasks).collect();
                let full = job.volume(totals, 1.5);
                let v0 = job.remaining_volume(&remaining, totals, 1.5);
                prop_assert!((full - v0).abs() < 1e-9);
                let mut last = v0;
                for pi in 0..job.num_phases() {
                    while remaining[pi] > 0 {
                        remaining[pi] -= 1;
                        let v = job.remaining_volume(&remaining, totals, 1.5);
                        prop_assert!(v <= last + 1e-9);
                        last = v;
                    }
                }
                prop_assert!(last.abs() < 1e-9);
            }

            /// topo_order is a permutation placing every parent before
            /// its child.
            #[test]
            fn topo_order_is_valid(job in arb_job()) {
                let n = job.num_phases();
                let mut pos = vec![usize::MAX; n];
                for (i, p) in job.topo_order().iter().enumerate() {
                    prop_assert_eq!(pos[p.0 as usize], usize::MAX, "duplicate");
                    pos[p.0 as usize] = i;
                }
                for (i, phase) in job.phases().iter().enumerate() {
                    for par in &phase.parents {
                        prop_assert!(pos[par.0 as usize] < pos[i]);
                    }
                }
            }

            /// Serde round-trips arbitrary jobs exactly.
            #[test]
            fn serde_round_trip(job in arb_job()) {
                let json = serde_json::to_string(&job).expect("serializable");
                let back: JobSpec = serde_json::from_str(&json).expect("parseable");
                prop_assert_eq!(job, back);
            }
        }
    }
}
