//! Cloning speedup functions `h(r)` — Eq. (1)–(3) of the paper.
//!
//! When `r` copies of a task run in parallel, the task effectively
//! completes when the *fastest* copy does. The paper captures this with a
//! per-phase speedup function `h(r)` so that the expected execution time
//! under `r` copies is `θ / h(r)` (Eq. 1). `h` is assumed strictly
//! increasing and concave on the positive integers with `h(1) = 1`.
//!
//! For Type-I Pareto task durations (Eq. 2) the speedup has the closed
//! form of Eq. (3):
//!
//! ```text
//! h(r) = (α − 1/r) / (α − 1) = 1 + (1 − 1/r) / (α − 1)
//! ```
//!
//! which follows because the minimum of `r` i.i.d. Pareto(x_m, α) variables
//! is Pareto(x_m, rα). This module also implements the moment fit the
//! paper's Application Master uses (§3, §5.2): given an estimated mean and
//! standard deviation of task durations, fit `(x_m, α)` and derive `h`.

use serde::{Deserialize, Serialize};

/// A cloning speedup function `h(r)`.
///
/// Implementations must satisfy the paper's assumptions: `h(1) = 1`,
/// strictly increasing, and concave over the positive integers.
pub trait Speedup {
    /// Expected speedup factor from running `r ≥ 1` concurrent copies.
    fn factor(&self, r: u32) -> f64;

    /// Least-upper-bound of `h` (`R` in Theorem 1), if finite.
    fn sup(&self) -> Option<f64> {
        None
    }

    /// The smallest number of copies `r` such that `h(r) ≥ target`, or
    /// `None` if no finite `r` achieves it. This is the `r_j` of
    /// Corollary 4.1: `r_j = min { r : 2^l · h_j(r) ≥ θ_j }` with
    /// `target = θ_j / 2^l`.
    fn min_copies_for(&self, target: f64) -> Option<u32> {
        if target <= 1.0 {
            return Some(1);
        }
        if let Some(sup) = self.sup() {
            if target > sup {
                return None;
            }
        }
        // h is increasing: exponential search then binary search.
        let mut hi = 1u32;
        while self.factor(hi) < target {
            if hi >= MAX_COPIES_SEARCH {
                return None;
            }
            hi = (hi * 2).min(MAX_COPIES_SEARCH);
        }
        let mut lo = hi / 2 + 1;
        if hi == 1 {
            return Some(1);
        }
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.factor(mid) >= target {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(hi)
    }
}

/// Search cut-off for [`Speedup::min_copies_for`]; no sane policy launches
/// more copies than this.
const MAX_COPIES_SEARCH: u32 = 1 << 20;

/// The Pareto-tail speedup of Eq. (3).
///
/// ```
/// use dollymp_core::speedup::{ParetoSpeedup, Speedup};
/// let h = ParetoSpeedup::new(2.0);
/// assert!((h.factor(1) - 1.0).abs() < 1e-12);
/// assert!((h.factor(2) - 1.5).abs() < 1e-12);   // (2 - 1/2) / (2 - 1)
/// assert_eq!(h.sup(), Some(2.0));                // α / (α − 1)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParetoSpeedup {
    alpha: f64,
}

impl ParetoSpeedup {
    /// Speedup for Pareto tail index `alpha`.
    ///
    /// # Panics
    /// Panics unless `alpha > 1` (the mean of a Pareto variable with
    /// `α ≤ 1` is infinite, so Eq. (1) is undefined).
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 1.0,
            "Pareto speedup needs alpha > 1, got {alpha}"
        );
        ParetoSpeedup { alpha }
    }

    /// The tail index α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Speedup for ParetoSpeedup {
    fn factor(&self, r: u32) -> f64 {
        let r = r.max(1) as f64;
        (self.alpha - 1.0 / r) / (self.alpha - 1.0)
    }

    fn sup(&self) -> Option<f64> {
        Some(self.alpha / (self.alpha - 1.0))
    }
}

/// A serializable, cheaply copyable speedup function.
///
/// This is the type the job model carries around; schedulers call
/// [`Speedup::factor`] through it without caring which family it is.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpeedupFn {
    /// No speedup from cloning (deterministic task durations): `h ≡ 1`.
    None,
    /// Pareto-tail speedup of Eq. (3).
    Pareto {
        /// Tail index `α > 1`.
        alpha: f64,
    },
    /// `h(r) = min(r, cap)^exponent` — a generic concave power-law used in
    /// sensitivity/ablation experiments (exponent in `(0, 1]`).
    Power {
        /// Exponent in `(0, 1]`.
        exponent: f64,
        /// Maximum useful number of copies.
        cap: u32,
    },
}

impl SpeedupFn {
    /// Pareto speedup fitted from a duration mean and standard deviation,
    /// the way the paper derives `h` from the first two moments (§3).
    /// Falls back to [`SpeedupFn::None`] when the standard deviation is
    /// zero (no straggling, cloning cannot help).
    pub fn fit_pareto(mean: f64, std: f64) -> SpeedupFn {
        match ParetoDist::fit_from_moments(mean, std) {
            Some(d) => SpeedupFn::Pareto { alpha: d.alpha() },
            None => SpeedupFn::None,
        }
    }
}

impl Speedup for SpeedupFn {
    fn factor(&self, r: u32) -> f64 {
        let r = r.max(1);
        match *self {
            SpeedupFn::None => 1.0,
            SpeedupFn::Pareto { alpha } => ParetoSpeedup::new(alpha).factor(r),
            SpeedupFn::Power { exponent, cap } => (r.min(cap.max(1)) as f64).powf(exponent),
        }
    }

    fn sup(&self) -> Option<f64> {
        match *self {
            SpeedupFn::None => Some(1.0),
            SpeedupFn::Pareto { alpha } => ParetoSpeedup::new(alpha).sup(),
            SpeedupFn::Power { exponent, cap } => Some((cap.max(1) as f64).powf(exponent)),
        }
    }
}

/// A Type-I Pareto distribution `Pr{Θ > x} = (x_m / x)^α` (Eq. 2), with
/// moment fitting and inverse-CDF sampling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParetoDist {
    xm: f64,
    alpha: f64,
}

impl ParetoDist {
    /// Construct from scale `x_m > 0` and tail index `α > 1`.
    ///
    /// # Panics
    /// Panics on non-positive `x_m` or `α ≤ 1`.
    pub fn new(xm: f64, alpha: f64) -> Self {
        assert!(xm.is_finite() && xm > 0.0, "Pareto scale must be > 0");
        assert!(alpha.is_finite() && alpha > 1.0, "Pareto alpha must be > 1");
        ParetoDist { xm, alpha }
    }

    /// Fit `(x_m, α)` so the distribution has the given mean and standard
    /// deviation. Uses the coefficient of variation:
    ///
    /// `cv² = 1 / (α (α − 2))  ⇒  α = 1 + √(1 + 1/cv²)`,
    /// `x_m = mean (α − 1) / α`.
    ///
    /// Returns `None` for non-positive mean or (effectively) zero std —
    /// deterministic durations have no Pareto fit. The fitted `α` is
    /// always `> 2` (finite variance).
    pub fn fit_from_moments(mean: f64, std: f64) -> Option<ParetoDist> {
        if mean <= 0.0 || !mean.is_finite() || std <= 0.0 || !std.is_finite() {
            return None;
        }
        let cv2 = (std / mean).powi(2);
        let alpha = 1.0 + (1.0 + 1.0 / cv2).sqrt();
        let xm = mean * (alpha - 1.0) / alpha;
        Some(ParetoDist::new(xm, alpha))
    }

    /// Scale parameter `x_m` (the minimum possible value).
    pub fn xm(&self) -> f64 {
        self.xm
    }

    /// Tail index `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Mean `α x_m / (α − 1)`.
    pub fn mean(&self) -> f64 {
        self.alpha * self.xm / (self.alpha - 1.0)
    }

    /// Standard deviation (finite only when `α > 2`).
    pub fn std(&self) -> f64 {
        if self.alpha <= 2.0 {
            f64::INFINITY
        } else {
            self.xm / (self.alpha - 1.0) * (self.alpha / (self.alpha - 2.0)).sqrt()
        }
    }

    /// Inverse-CDF sample: maps a uniform `u ∈ (0, 1]` to a Pareto draw
    /// `x_m · u^{-1/α}`. Callers supply the uniform variate so that all
    /// randomness stays under the simulation's seeded RNG.
    pub fn sample_from_uniform(&self, u: f64) -> f64 {
        let u = u.clamp(f64::MIN_POSITIVE, 1.0);
        self.xm * u.powf(-1.0 / self.alpha)
    }

    /// The induced cloning speedup function (Eq. 3).
    pub fn speedup(&self) -> ParetoSpeedup {
        ParetoSpeedup::new(self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pareto_speedup_matches_eq3() {
        let h = ParetoSpeedup::new(3.0);
        // h(r) = (3 - 1/r) / 2
        assert!((h.factor(1) - 1.0).abs() < 1e-12);
        assert!((h.factor(2) - 1.25).abs() < 1e-12);
        assert!((h.factor(4) - 1.375).abs() < 1e-12);
        assert!((h.sup().unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn speedup_is_increasing_and_concave() {
        let h = ParetoSpeedup::new(1.8);
        let vals: Vec<f64> = (1..=16).map(|r| h.factor(r)).collect();
        for w in vals.windows(2) {
            assert!(w[1] > w[0], "h must be strictly increasing");
        }
        for w in vals.windows(3) {
            let d1 = w[1] - w[0];
            let d2 = w[2] - w[1];
            assert!(d2 <= d1 + 1e-12, "h must be concave");
        }
    }

    #[test]
    fn min_copies_for_inverts_factor() {
        let h = ParetoSpeedup::new(2.0); // h(2) = 1.5, h(3) ≈ 1.666, sup = 2
        assert_eq!(h.min_copies_for(1.0), Some(1));
        assert_eq!(h.min_copies_for(1.5), Some(2));
        assert_eq!(h.min_copies_for(1.51), Some(3));
        assert_eq!(h.min_copies_for(2.5), None); // beyond sup
    }

    #[test]
    fn min_copies_unreachable_sup_is_none() {
        let h = ParetoSpeedup::new(2.0);
        // target exactly sup: h(r) → 2 but never reaches it.
        assert_eq!(h.min_copies_for(2.0), None);
    }

    #[test]
    fn moment_fit_round_trips() {
        let d = ParetoDist::fit_from_moments(10.0, 4.0).unwrap();
        assert!((d.mean() - 10.0).abs() < 1e-9);
        assert!((d.std() - 4.0).abs() < 1e-9);
        assert!(d.alpha() > 2.0);
    }

    #[test]
    fn moment_fit_rejects_degenerate_inputs() {
        assert!(ParetoDist::fit_from_moments(0.0, 1.0).is_none());
        assert!(ParetoDist::fit_from_moments(10.0, 0.0).is_none());
        assert!(ParetoDist::fit_from_moments(-5.0, 1.0).is_none());
        assert!(ParetoDist::fit_from_moments(f64::NAN, 1.0).is_none());
    }

    #[test]
    fn sampling_respects_scale_floor() {
        let d = ParetoDist::new(2.0, 2.5);
        for &u in &[1.0, 0.9, 0.5, 0.1, 1e-9] {
            assert!(d.sample_from_uniform(u) >= d.xm() - 1e-12);
        }
        // u = 1 is the minimum draw.
        assert!((d.sample_from_uniform(1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_fn_families_behave() {
        let none = SpeedupFn::None;
        assert_eq!(none.factor(10), 1.0);

        let p = SpeedupFn::Pareto { alpha: 2.0 };
        assert!((p.factor(2) - 1.5).abs() < 1e-12);

        let pow = SpeedupFn::Power {
            exponent: 0.5,
            cap: 4,
        };
        assert!((pow.factor(4) - 2.0).abs() < 1e-12);
        assert!((pow.factor(16) - 2.0).abs() < 1e-12, "capped");
    }

    #[test]
    fn fit_pareto_falls_back_to_none() {
        assert_eq!(SpeedupFn::fit_pareto(10.0, 0.0), SpeedupFn::None);
        match SpeedupFn::fit_pareto(10.0, 5.0) {
            SpeedupFn::Pareto { alpha } => assert!(alpha > 2.0),
            other => panic!("expected Pareto, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn alpha_at_most_one_rejected() {
        let _ = ParetoSpeedup::new(1.0);
    }
}
