//! Two-dimensional resource vectors (CPU cores, memory) and the
//! *dominant resource* of Eq. (9)/(15).
//!
//! The paper models every task demand and every server capacity as a pair
//! `(cpu, memory)`. To make the simulator's conservation laws exactly
//! checkable (a running sum of `f64` demands would drift), resources are
//! stored internally in integer **milli-units**: one CPU core is
//! `1000` milli-cores and one GB of memory is `1000` milli-GB. All public
//! constructors and accessors speak in fractional cores / GB.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// Number of internal milli-units per external unit (core or GB).
pub const MILLI: u64 = 1000;

/// A two-dimensional resource vector: CPU cores and memory.
///
/// Internally integer milli-units so that additions and subtractions are
/// exact; see the module docs.
///
/// ```
/// use dollymp_core::resources::Resources;
/// let server = Resources::new(8.0, 16.0);
/// let task = Resources::new(1.5, 2.0);
/// assert!(task.fits_in(server));
/// assert_eq!(server - task, Resources::new(6.5, 14.0));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Resources {
    /// CPU in milli-cores.
    cpu_m: u64,
    /// Memory in milli-GB.
    mem_m: u64,
}

impl Resources {
    /// The zero vector.
    pub const ZERO: Resources = Resources { cpu_m: 0, mem_m: 0 };

    /// Build a resource vector from fractional CPU cores and GB of memory.
    ///
    /// Values are rounded to the nearest milli-unit. Negative inputs are
    /// clamped to zero (resource demands are physically non-negative).
    pub fn new(cpu_cores: f64, mem_gb: f64) -> Self {
        Resources {
            cpu_m: to_milli(cpu_cores),
            mem_m: to_milli(mem_gb),
        }
    }

    /// Build directly from integer milli-units.
    pub const fn from_milli(cpu_m: u64, mem_m: u64) -> Self {
        Resources { cpu_m, mem_m }
    }

    /// CPU in fractional cores.
    pub fn cpu(&self) -> f64 {
        self.cpu_m as f64 / MILLI as f64
    }

    /// Memory in fractional GB.
    pub fn mem(&self) -> f64 {
        self.mem_m as f64 / MILLI as f64
    }

    /// CPU in integer milli-cores.
    pub const fn cpu_milli(&self) -> u64 {
        self.cpu_m
    }

    /// Memory in integer milli-GB.
    pub const fn mem_milli(&self) -> u64 {
        self.mem_m
    }

    /// True if both components are zero.
    pub const fn is_zero(&self) -> bool {
        self.cpu_m == 0 && self.mem_m == 0
    }

    /// True if `self` fits within `capacity` on both dimensions
    /// (the per-server feasibility test of Eq. (5)).
    pub const fn fits_in(&self, capacity: Resources) -> bool {
        self.cpu_m <= capacity.cpu_m && self.mem_m <= capacity.mem_m
    }

    /// Component-wise checked subtraction; `None` if it would underflow on
    /// either dimension.
    pub fn checked_sub(&self, rhs: Resources) -> Option<Resources> {
        Some(Resources {
            cpu_m: self.cpu_m.checked_sub(rhs.cpu_m)?,
            mem_m: self.mem_m.checked_sub(rhs.mem_m)?,
        })
    }

    /// Component-wise saturating subtraction.
    pub fn saturating_sub(&self, rhs: Resources) -> Resources {
        Resources {
            cpu_m: self.cpu_m.saturating_sub(rhs.cpu_m),
            mem_m: self.mem_m.saturating_sub(rhs.mem_m),
        }
    }

    /// Multiply both components by an integer factor (e.g. `n` identical
    /// tasks of one phase).
    pub fn scale(&self, n: u64) -> Resources {
        Resources {
            cpu_m: self.cpu_m * n,
            mem_m: self.mem_m * n,
        }
    }

    /// Inner product with another vector, in external units
    /// (cores·cores + GB·GB). This is Tetris' *alignment score* between a
    /// task demand and a server's remaining capacity (§5, Algorithm 2
    /// step 12).
    pub fn dot(&self, rhs: Resources) -> f64 {
        self.cpu() * rhs.cpu() + self.mem() * rhs.mem()
    }

    /// Component-wise maximum.
    ///
    /// Takes `self` by value so this inherent method wins method
    /// resolution over `Ord::max` (which would compare lexicographically).
    pub fn max(self, rhs: Resources) -> Resources {
        Resources {
            cpu_m: self.cpu_m.max(rhs.cpu_m),
            mem_m: self.mem_m.max(rhs.mem_m),
        }
    }

    /// Component-wise minimum.
    ///
    /// Takes `self` by value so this inherent method wins method
    /// resolution over `Ord::min` (which would compare lexicographically).
    pub fn min(self, rhs: Resources) -> Resources {
        Resources {
            cpu_m: self.cpu_m.min(rhs.cpu_m),
            mem_m: self.mem_m.min(rhs.mem_m),
        }
    }

    /// The Euclidean norm in external units, used to normalize alignment
    /// scores across heterogeneous servers.
    pub fn norm(&self) -> f64 {
        self.dot(*self).sqrt()
    }

    /// Sum of normalized shares relative to `totals`
    /// (`cpu/total_cpu + mem/total_mem`). This is the "resource usage"
    /// metric of §6.3.1 before multiplying by task duration.
    pub fn normalized_sum(&self, totals: Resources) -> f64 {
        let mut s = 0.0;
        if totals.cpu_m > 0 {
            s += self.cpu_m as f64 / totals.cpu_m as f64;
        }
        if totals.mem_m > 0 {
            s += self.mem_m as f64 / totals.mem_m as f64;
        }
        s
    }
}

/// The dominant share of a demand relative to cluster totals — Eq. (9)/(15):
///
/// `d = max(cpu / Σ C_i, mem / Σ M_i)`.
///
/// Returns `0.0` when `totals` is zero on both dimensions (empty cluster).
///
/// ```
/// use dollymp_core::resources::{dominant_share, Resources};
/// let d = dominant_share(Resources::new(2.0, 2.0), Resources::new(10.0, 40.0));
/// assert!((d - 0.2).abs() < 1e-12);
/// ```
pub fn dominant_share(demand: Resources, totals: Resources) -> f64 {
    let cpu_share = if totals.cpu_milli() > 0 {
        demand.cpu_milli() as f64 / totals.cpu_milli() as f64
    } else {
        0.0
    };
    let mem_share = if totals.mem_milli() > 0 {
        demand.mem_milli() as f64 / totals.mem_milli() as f64
    } else {
        0.0
    };
    cpu_share.max(mem_share)
}

fn to_milli(x: f64) -> u64 {
    if x <= 0.0 || !x.is_finite() {
        0
    } else {
        (x * MILLI as f64).round() as u64
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            cpu_m: self.cpu_m + rhs.cpu_m,
            mem_m: self.mem_m + rhs.mem_m,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        self.cpu_m += rhs.cpu_m;
        self.mem_m += rhs.mem_m;
    }
}

impl Sub for Resources {
    type Output = Resources;
    /// Panics on underflow — use [`Resources::checked_sub`] when the
    /// subtraction is not known to be safe.
    fn sub(self, rhs: Resources) -> Resources {
        self.checked_sub(rhs)
            .expect("resource subtraction underflow")
    }
}

impl SubAssign for Resources {
    fn sub_assign(&mut self, rhs: Resources) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Resources {
    type Output = Resources;
    fn mul(self, n: u64) -> Resources {
        self.scale(n)
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.3} cores, {:.3} GB>", self.cpu(), self.mem())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips_external_units() {
        let r = Resources::new(2.5, 7.25);
        assert!((r.cpu() - 2.5).abs() < 1e-9);
        assert!((r.mem() - 7.25).abs() < 1e-9);
        assert_eq!(r.cpu_milli(), 2500);
        assert_eq!(r.mem_milli(), 7250);
    }

    #[test]
    fn negative_and_nan_inputs_clamp_to_zero() {
        assert_eq!(Resources::new(-1.0, -3.0), Resources::ZERO);
        assert_eq!(Resources::new(f64::NAN, f64::INFINITY).cpu_milli(), 0);
    }

    #[test]
    fn fits_in_is_componentwise() {
        let cap = Resources::new(4.0, 8.0);
        assert!(Resources::new(4.0, 8.0).fits_in(cap));
        assert!(!Resources::new(4.001, 8.0).fits_in(cap));
        assert!(!Resources::new(4.0, 8.001).fits_in(cap));
        assert!(Resources::ZERO.fits_in(cap));
    }

    #[test]
    fn arithmetic_is_exact() {
        let a = Resources::new(0.1, 0.2);
        let mut acc = Resources::ZERO;
        for _ in 0..10 {
            acc += a;
        }
        // 10 × 0.1 cores is exactly 1 core in milli-units — no float drift.
        assert_eq!(acc, Resources::new(1.0, 2.0));
        for _ in 0..10 {
            acc -= a;
        }
        assert_eq!(acc, Resources::ZERO);
    }

    #[test]
    fn checked_sub_detects_underflow() {
        let a = Resources::new(1.0, 1.0);
        let b = Resources::new(2.0, 0.5);
        assert!(a.checked_sub(b).is_none());
        assert_eq!(a.saturating_sub(b), Resources::new(0.0, 0.5));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_panics_on_underflow() {
        let _ = Resources::new(1.0, 1.0) - Resources::new(1.0, 2.0);
    }

    #[test]
    fn dot_product_matches_manual() {
        let a = Resources::new(2.0, 3.0);
        let b = Resources::new(4.0, 5.0);
        assert!((a.dot(b) - 23.0).abs() < 1e-9);
    }

    #[test]
    fn dominant_share_picks_max_dimension() {
        let totals = Resources::new(100.0, 200.0);
        // cpu share 0.02, mem share 0.05 → dominant is memory.
        let d = dominant_share(Resources::new(2.0, 10.0), totals);
        assert!((d - 0.05).abs() < 1e-12);
        // Degenerate empty cluster.
        assert_eq!(
            dominant_share(Resources::new(1.0, 1.0), Resources::ZERO),
            0.0
        );
    }

    #[test]
    fn scale_and_sum() {
        let r = Resources::new(1.0, 2.0);
        assert_eq!(r.scale(3), Resources::new(3.0, 6.0));
        let total: Resources = [r, r, r].into_iter().sum();
        assert_eq!(total, r * 3);
    }

    #[test]
    fn normalized_sum_handles_zero_totals() {
        let r = Resources::new(1.0, 1.0);
        assert_eq!(r.normalized_sum(Resources::ZERO), 0.0);
        let t = Resources::new(10.0, 0.0);
        assert!((r.normalized_sum(t) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Resources::new(1.0, 4.0);
        let b = Resources::new(2.0, 3.0);
        assert_eq!(a.max(b), Resources::new(2.0, 4.0));
        assert_eq!(a.min(b), Resources::new(1.0, 3.0));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_res() -> impl Strategy<Value = Resources> {
            (0u64..1_000_000, 0u64..1_000_000).prop_map(|(c, m)| Resources::from_milli(c, m))
        }

        proptest! {
            /// Addition then subtraction is exact (the integer-milli-unit
            /// design goal).
            #[test]
            fn add_sub_round_trips(a in arb_res(), b in arb_res()) {
                prop_assert_eq!((a + b) - b, a);
                prop_assert_eq!((a + b).checked_sub(a), Some(b));
            }

            /// `fits_in` is a partial order: reflexive, antisymmetric,
            /// transitive.
            #[test]
            fn fits_in_is_a_partial_order(a in arb_res(), b in arb_res(), c in arb_res()) {
                prop_assert!(a.fits_in(a));
                if a.fits_in(b) && b.fits_in(a) {
                    prop_assert_eq!(a, b);
                }
                if a.fits_in(b) && b.fits_in(c) {
                    prop_assert!(a.fits_in(c));
                }
            }

            /// Dominant share is monotone in the demand and scale-free in
            /// the totals.
            #[test]
            fn dominant_share_monotone(a in arb_res(), b in arb_res(), t in arb_res()) {
                prop_assume!(t.cpu_milli() > 0 && t.mem_milli() > 0);
                let bigger = a.max(b);
                prop_assert!(dominant_share(bigger, t) >= dominant_share(a, t) - 1e-12);
                // Doubling totals halves the share.
                let d1 = dominant_share(a, t);
                let d2 = dominant_share(a, t + t);
                prop_assert!((d1 - 2.0 * d2).abs() < 1e-9);
            }

            /// min/max are the lattice meet/join for fits_in.
            #[test]
            fn min_max_are_lattice_ops(a in arb_res(), b in arb_res()) {
                let lo = a.min(b);
                let hi = a.max(b);
                prop_assert!(lo.fits_in(a) && lo.fits_in(b));
                prop_assert!(a.fits_in(hi) && b.fits_in(hi));
                prop_assert_eq!(lo + hi, a + b);
            }

            /// saturating_sub never underflows and agrees with checked_sub
            /// when that succeeds.
            #[test]
            fn saturating_matches_checked(a in arb_res(), b in arb_res()) {
                let sat = a.saturating_sub(b);
                match a.checked_sub(b) {
                    Some(exact) => prop_assert_eq!(sat, exact),
                    None => {
                        prop_assert!(sat.cpu_milli() <= a.cpu_milli());
                        prop_assert!(sat.mem_milli() <= a.mem_milli());
                    }
                }
            }

            /// Serde round-trips exactly.
            #[test]
            fn serde_round_trip(a in arb_res()) {
                let json = serde_json::to_string(&a).expect("serializable");
                let back: Resources = serde_json::from_str(&json).expect("parseable");
                prop_assert_eq!(a, back);
            }
        }
    }
}
