//! Streaming statistics (Welford's algorithm).
//!
//! The Application Master of §5.2 estimates the mean and standard
//! deviation of task execution times *online*: from prior runs of
//! recurring jobs, then from the first few finished tasks of the current
//! phase, updating as more tasks complete. [`RunningStats`] is that
//! estimator — numerically stable, mergeable, O(1) per sample.

use serde::{Deserialize, Serialize};

/// Numerically stable streaming mean / variance accumulator.
///
/// ```
/// use dollymp_core::stats::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunningStats::default()
    }

    /// Seed with a prior belief worth `weight` pseudo-samples — how the AM
    /// bootstraps a phase from historical statistics of recurring jobs
    /// before any task of the current run finishes.
    pub fn with_prior(mean: f64, std: f64, weight: u64) -> Self {
        RunningStats {
            n: weight,
            mean,
            m2: std * std * weight as f64,
        }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merge another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (divides by `n`; 0 when empty).
    pub fn population_std(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.m2 / self.n as f64).max(0.0).sqrt()
        }
    }

    /// Sample standard deviation (divides by `n − 1`; 0 when `n < 2`).
    pub fn sample_std(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).max(0.0).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_std(), 0.0);
        assert_eq!(s.sample_std(), 0.0);
    }

    #[test]
    fn single_sample() {
        let mut s = RunningStats::new();
        s.push(42.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.sample_std(), 0.0);
    }

    #[test]
    fn prior_seeds_estimator() {
        let s = RunningStats::with_prior(10.0, 3.0, 5);
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 10.0).abs() < 1e-12);
        assert!((s.population_std() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn prior_updates_with_samples() {
        let mut s = RunningStats::with_prior(10.0, 0.0, 3);
        s.push(20.0);
        // mean of {10,10,10,20} = 12.5
        assert!((s.mean() - 12.5).abs() < 1e-12);
    }

    proptest! {
        /// Welford matches the two-pass formulas.
        #[test]
        fn matches_two_pass(xs in prop::collection::vec(-1e3f64..1e3, 1..200)) {
            let mut s = RunningStats::new();
            for &x in &xs { s.push(x); }
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            prop_assert!((s.mean() - mean).abs() < 1e-6);
            prop_assert!((s.population_std() - var.sqrt()).abs() < 1e-6);
        }

        /// Merging two halves equals pushing everything into one.
        #[test]
        fn merge_equals_sequential(
            a in prop::collection::vec(-1e3f64..1e3, 0..100),
            b in prop::collection::vec(-1e3f64..1e3, 0..100),
        ) {
            let mut whole = RunningStats::new();
            for &x in a.iter().chain(&b) { whole.push(x); }
            let mut left = RunningStats::new();
            for &x in &a { left.push(x); }
            let mut right = RunningStats::new();
            for &x in &b { right.push(x); }
            left.merge(&right);
            prop_assert_eq!(left.count(), whole.count());
            prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
            prop_assert!((left.population_std() - whole.population_std()).abs() < 1e-6);
        }
    }
}
