//! The shared experiment runner: a scenario matrix fanned out across
//! worker threads, deterministically.
//!
//! Every figure/bench binary has the same skeleton — build a list of
//! scenario *cells* (a load factor, a cluster size, a scheduler name…),
//! run an independent simulation per cell, and reduce the results in
//! cell order. [`run_matrix`] centralizes that skeleton:
//!
//! * **Determinism** — each cell's work is a pure function of the cell
//!   value, its index, and a seed derived by [`cell_seed`]; nothing is
//!   shared mutably across cells, so the *results are identical* whether
//!   cells execute sequentially or on the rayon pool (pinned by the
//!   `rayon_and_sequential_agree` test below).
//! * **Order preservation** — results come back in cell order regardless
//!   of completion order, so downstream reductions (CSV rows, JSON
//!   arrays, cross-cell deltas) need no re-sorting.
//! * **One switch** — [`Parallelism::from_env`] lets any binary be forced
//!   sequential (`DOLLYMP_SEQUENTIAL=1`) for debugging or for timing
//!   runs where parallel cells would contend for cores (the `bench_scale`
//!   binary always times sequentially for exactly that reason).

/// How [`run_matrix`] distributes cells over workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Run cells one after another on the calling thread.
    Sequential,
    /// Fan cells out over the global rayon pool.
    Rayon,
}

impl Parallelism {
    /// [`Parallelism::Rayon`] unless the `DOLLYMP_SEQUENTIAL` environment
    /// variable is set (to anything but `0`).
    pub fn from_env() -> Self {
        match std::env::var("DOLLYMP_SEQUENTIAL") {
            Ok(v) if v != "0" => Parallelism::Sequential,
            _ => Parallelism::Rayon,
        }
    }
}

/// A deterministic per-cell seed: splitmix64 over the base seed and the
/// cell index. Cells get well-separated streams even for adjacent
/// indices, and the mapping is fixed across platforms and runs.
pub fn cell_seed(base: u64, index: usize) -> u64 {
    let mut z = base ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Run `f(index, cell)` for every cell and return the results **in cell
/// order**. With [`Parallelism::Rayon`] the cells execute concurrently
/// on the global pool; `f` must therefore be a pure function of its
/// arguments (derive randomness from [`cell_seed`], don't mutate shared
/// state) — under that contract the output is byte-identical to the
/// sequential run.
pub fn run_matrix<C, R, F>(cells: &[C], par: Parallelism, f: F) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(usize, &C) -> R + Sync,
{
    match par {
        Parallelism::Sequential => cells.iter().enumerate().map(|(i, c)| f(i, c)).collect(),
        Parallelism::Rayon => {
            let indexed: Vec<(usize, &C)> = cells.iter().enumerate().collect();
            rayon::par_map_slice(&indexed, &|&(i, c)| f(i, c))
        }
    }
}

/// Best-of-N smoke gate against a committed reference timing, shared by
/// the `--smoke` modes of the bench binaries (`bench_scale`,
/// `bench_sched_overhead`, `bench_obs`).
///
/// `measure(attempt)` (1-based) returns one timing sample in
/// nanoseconds; the gate keeps the **best** sample seen so far and
/// passes as soon as it is within `limit_factor ×` the reference.
/// Gating on the best of up to `attempts` runs filters host-load
/// bursts — a descheduling blip inflates one attempt, a genuine
/// regression inflates every attempt. Returns `Ok(best)` on pass and
/// `Err(best)` after `attempts` failures; progress lines go to stdout
/// so CI logs show every attempt.
pub fn best_of_smoke<F: FnMut(u32) -> u64>(
    label: &str,
    reference_ns: u64,
    limit_factor: u64,
    attempts: u32,
    mut measure: F,
) -> Result<u64, u64> {
    let limit = limit_factor * reference_ns;
    let mut best = u64::MAX;
    for attempt in 1..=attempts {
        best = best.min(measure(attempt));
        println!(
            "smoke attempt {attempt}: {label} best {best} ns vs committed reference \
             {reference_ns} ns (limit {limit} ns)"
        );
        if best <= limit {
            println!("smoke OK");
            return Ok(best);
        }
    }
    Err(best)
}

/// Build a `serde_json` object from `(key, value)` pairs — the shared
/// helper for `BENCH_*.json` artifacts (the vendored `serde_json` keeps
/// object insertion order, so artifacts stay diff-stable).
pub fn json_obj(pairs: Vec<(&str, serde_json::Value)>) -> serde_json::Value {
    serde_json::Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dollymp_cluster::prelude::*;
    use dollymp_workload::{generate_google, GoogleConfig};

    #[test]
    fn results_preserve_cell_order() {
        let cells: Vec<u64> = (0..32).collect();
        for par in [Parallelism::Sequential, Parallelism::Rayon] {
            let out = run_matrix(&cells, par, |i, &c| {
                // Uneven work so parallel completion order differs.
                std::thread::sleep(std::time::Duration::from_micros(((c * 7919) % 97) * 10));
                (i, c * 2)
            });
            assert_eq!(out.len(), cells.len());
            for (i, (idx, v)) in out.iter().enumerate() {
                assert_eq!(*idx, i);
                assert_eq!(*v, cells[i] * 2);
            }
        }
    }

    #[test]
    fn cell_seeds_are_deterministic_and_distinct() {
        let seeds: Vec<u64> = (0..1000).map(|i| cell_seed(42, i)).collect();
        assert_eq!(
            seeds,
            (0..1000).map(|i| cell_seed(42, i)).collect::<Vec<_>>()
        );
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "adjacent cells must not collide");
        assert_ne!(cell_seed(42, 0), cell_seed(43, 0), "base seed matters");
    }

    /// The determinism contract end to end: full simulations fanned out
    /// on the rayon pool produce reports byte-identical to the
    /// sequential run.
    #[test]
    fn rayon_and_sequential_agree_on_simulations() {
        let cluster = ClusterSpec::paper_30_node();
        let cells: Vec<(&str, usize)> =
            vec![("dollymp2", 0), ("dollymp0", 1), ("fifo", 2), ("tetris", 3)];
        let run = |par: Parallelism| {
            run_matrix(&cells, par, |i, &(name, _)| {
                let jobs = generate_google(&GoogleConfig {
                    njobs: 25,
                    seed: cell_seed(7, i),
                    ..Default::default()
                });
                let sampler = DurationSampler::new(cell_seed(7, i), StragglerModel::ParetoFit);
                let mut s = dollymp_schedulers::by_name(name).expect("known scheduler");
                let mut r = simulate(
                    &cluster,
                    jobs,
                    &sampler,
                    s.as_mut(),
                    &EngineConfig::default(),
                );
                // Scrub the only non-deterministic fields (wall-clock
                // overhead timings) before byte-comparing.
                r.scheduling_ns = 0;
                r.sched_overhead = Default::default();
                serde_json::to_string(&r).expect("report serializes")
            })
        };
        let seq = run(Parallelism::Sequential);
        let par = run(Parallelism::Rayon);
        assert_eq!(seq, par, "rayon fan-out must not change any report");
        // And re-running is reproducible outright.
        assert_eq!(seq, run(Parallelism::Sequential));
    }

    #[test]
    fn parallelism_from_env_defaults_to_rayon() {
        // The test env doesn't set DOLLYMP_SEQUENTIAL.
        if std::env::var_os("DOLLYMP_SEQUENTIAL").is_none() {
            assert_eq!(Parallelism::from_env(), Parallelism::Rayon);
        }
    }

    #[test]
    fn best_of_smoke_passes_on_any_good_attempt() {
        // Attempt 1 is a load burst, attempt 2 is fine: the gate passes
        // with the best sample and stops measuring.
        let mut calls = 0;
        let r = best_of_smoke("t", 100, 2, 3, |attempt| {
            calls += 1;
            if attempt == 1 {
                900
            } else {
                150
            }
        });
        assert_eq!(r, Ok(150));
        assert_eq!(calls, 2);
    }

    #[test]
    fn best_of_smoke_fails_with_best_sample_after_all_attempts() {
        let mut calls = 0;
        let r = best_of_smoke("t", 100, 2, 3, |_| {
            calls += 1;
            500 - calls * 10
        });
        assert_eq!(r, Err(470));
        assert_eq!(calls, 3);
    }

    #[test]
    fn json_obj_preserves_insertion_order() {
        let v = json_obj(vec![
            ("zeta", serde_json::Value::UInt(1)),
            ("alpha", serde_json::Value::UInt(2)),
        ]);
        let s = serde_json::to_string(&v).expect("serializes");
        assert!(
            s.find("zeta").expect("zeta") < s.find("alpha").expect("alpha"),
            "objects must keep insertion order: {s}"
        );
    }
}
