//! **Fig. 6** — flowtime CDFs in the heavily-loaded regime (§6.2.2),
//! same runs as Fig. 5 but measuring `finish − arrival` (queueing
//! included).
//!
//! Paper's shape: most jobs complete within 6 000 s of arrival under
//! DollyMP, vs ~60 % under Tetris and ~45 % under Capacity.

use dollymp_bench::{cdf_line, cdf_samples, engine_cfg_for, run_named, scale, write_csv};
use dollymp_cluster::metrics::cdf_at;
use dollymp_cluster::prelude::*;
use dollymp_workload::suite::{heavy_pagerank, heavy_wordcount};

fn main() {
    let cluster = ClusterSpec::paper_30_node();
    let s = scale(2);
    let sampler = DurationSampler::new(5, StragglerModel::ParetoFit);
    let schedulers = ["capacity", "tetris", "dollymp2"];

    let mut rows = Vec::new();
    for (panel, jobs) in [
        ("a:pagerank", heavy_pagerank(5, s)),
        ("b:wordcount", heavy_wordcount(5, s)),
    ] {
        println!(
            "Fig. 6({}) — heavy load, {} jobs: flowtime CDFs (slots)\n",
            &panel[..1],
            jobs.len()
        );
        // The paper's reference point: fraction finishing within 6000 s
        // (1200 slots).
        for name in schedulers {
            let r = run_named(name, &cluster, &jobs, &sampler, &engine_cfg_for(name));
            let flows: Vec<f64> = r.jobs.iter().map(|j| j.flowtime as f64).collect();
            let curve = cdf(flows.clone());
            println!(
                "  {:<10} {}  | ≤1200 slots: {:.0}%",
                name,
                cdf_line(&flows),
                cdf_at(&curve, 1200.0) * 100.0
            );
            for (v, q) in cdf_samples(&flows, 20) {
                rows.push(format!("{panel},{name},{v:.1},{q:.3}"));
            }
        }
        println!();
    }
    let p = write_csv(
        "fig06_heavy_flowtime_cdf.csv",
        "panel,scheduler,flow_slots,cdf",
        &rows,
    );
    println!("csv: {}", p.display());
}
