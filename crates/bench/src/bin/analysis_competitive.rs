//! **Theorem 1 / §5.1 analysis** — empirical competitive ratios.
//!
//! 1. Random tiny transient instances (single server, single-task jobs,
//!    deterministic durations): Algorithm 1's order executed by the list
//!    scheduler vs the brute-force optimum. Theorem 1 bounds the ratio by
//!    `6R` with `R = 1` (no cloning, `h ≡ 1`); in practice the ratio is
//!    far smaller.
//! 2. The §5.1 discussion table: DollyMP's `(3+3ε)/ε` vs HRDF's
//!    `(5+3ε)/ε` under `(2+ε)`-capacity augmentation.

use dollymp_bench::write_csv;
use dollymp_core::prelude::*;
use dollymp_core::resources::dominant_share;
use dollymp_core::speedup::SpeedupFn;
use dollymp_core::theory::{
    dollymp_augmented_ratio, hrdf_augmented_ratio, list_schedule_flowtime, BfJob,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = SmallRng::seed_from_u64(4242);
    let cap = Resources::new(1.0, 1.0);
    let trials = 300;
    let mut worst: f64 = 1.0;
    let mut sum = 0.0;
    let mut rows = Vec::new();

    for t in 0..trials {
        let n = rng.gen_range(2..=6);
        let jobs: Vec<BfJob> = (0..n)
            .map(|_| BfJob {
                arrival: 0,
                duration: rng.gen_range(1..=8),
                demand: Resources::new(
                    rng.gen_range(1..=10) as f64 / 10.0,
                    rng.gen_range(1..=10) as f64 / 10.0,
                ),
            })
            .collect();
        let inputs: Vec<TransientJob> = jobs
            .iter()
            .enumerate()
            .map(|(i, j)| {
                let d = dominant_share(j.demand, cap);
                TransientJob {
                    id: JobId(i as u64),
                    volume: d * j.duration as f64,
                    etime: j.duration as f64,
                    dominant: d,
                    speedup: SpeedupFn::None,
                }
            })
            .collect();
        let out = transient_schedule(&inputs, &TransientConfig::default());
        let algo = list_schedule_flowtime(&jobs, cap, &out.order);
        let opt = BruteForceOptimal::new(cap, jobs).min_total_flowtime();
        let ratio = algo as f64 / opt as f64;
        worst = worst.max(ratio);
        sum += ratio;
        rows.push(format!("{t},{n},{algo},{opt},{ratio:.4}"));
        assert!(
            ratio <= theorem1_bound(1.0) + 1e-9,
            "Theorem 1 violated: ratio {ratio}"
        );
    }
    println!("Theorem 1 empirical check — {trials} random transient instances");
    println!(
        "  worst observed ratio: {worst:.3}   mean: {:.3}   bound 6R = {:.1}",
        sum / trials as f64,
        theorem1_bound(1.0)
    );
    write_csv(
        "analysis_competitive_instances.csv",
        "trial,n,algo_flow,opt_flow,ratio",
        &rows,
    );

    println!("\n§5.1 — capacity-augmented competitive ratios (lower is better)");
    println!("{:>8} {:>14} {:>14}", "epsilon", "DollyMP", "HRDF [16]");
    let mut ratio_rows = Vec::new();
    for &eps in &[0.1, 0.25, 0.5, 1.0, 2.0] {
        let (d, h) = (dollymp_augmented_ratio(eps), hrdf_augmented_ratio(eps));
        println!("{eps:>8.2} {d:>14.2} {h:>14.2}");
        ratio_rows.push(format!("{eps},{d:.4},{h:.4}"));
        assert!(d < h);
    }
    let p = write_csv(
        "analysis_competitive_ratios.csv",
        "epsilon,dollymp,hrdf",
        &ratio_rows,
    );
    println!("csv: {}", p.display());
}
