//! **Fig. 10** — the effect of cloning under different cluster loads
//! (§6.3.1): fix the workload, scale the cluster's CPU capacity, and
//! compare DollyMP² against DollyMP⁰.
//!
//! (a) flowtime reduction and extra resource usage from cloning, per
//! load; (b) fraction of tasks with cloned copies, per load.
//!
//! Paper's shape: cloning keeps helping even at 10× the low load —
//! ≈ −10 % flowtime for ≈ +2 % resources — because DollyMP's queue stays
//! short and small jobs still find clone room; ~40 % of tasks hold clones
//! at high load (their cost is small because they're small tasks).

use dollymp_bench::runner::{run_matrix, Parallelism};
use dollymp_bench::{respace_for_load, run_named, scale, write_csv};
use dollymp_cluster::metrics::cdf;
use dollymp_cluster::metrics::cdf_at;
use dollymp_cluster::prelude::*;
use dollymp_workload::{generate_google, GoogleConfig};

fn main() {
    let s = scale(10);
    let servers = (1_000 / s).max(30) as u32;
    let njobs = (10_000 / s).max(300);
    let base_cluster = ClusterSpec::google_like(servers, 10);
    let mut jobs = generate_google(&GoogleConfig {
        njobs,
        mean_gap_slots: 2.0,
        seed: 10,
        ..Default::default()
    });
    // Calibrate the lightest point of the sweep to ≈ 8 % CPU load; the
    // capacity factors below then span 1×–10× that load, the paper's
    // "10× the low load" endpoint.
    respace_for_load(&mut jobs, &base_cluster, 0.08, 1010);
    let sampler = DurationSampler::new(10, StragglerModel::google_traces());
    // Load = 1/capacity-factor: shrinking CPU capacity raises load.
    // The largest container shape is 4 cores and the largest server 32
    // cores, so CPU can shrink at most to 0.125× before some task fits
    // nowhere; the sweep therefore spans 1×–8× the base load (the paper
    // sweeps to 10×).
    let factors = [1.0, 0.5, 0.25, 0.167, 0.125];
    println!("Fig. 10 — cloning vs cluster load: {servers} servers × factor, {njobs} jobs\n");
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "load", "flow Δ%", "usage Δ%", "cloned tasks%", "≥20% faster%", "flow(r=2)"
    );

    let mut rows = Vec::new();
    let results: Vec<(f64, SimReport, SimReport)> =
        run_matrix(&factors, Parallelism::from_env(), |_, &f| {
            let cluster = base_cluster.scale_cpu(f);
            let r0 = run_named(
                "dollymp0",
                &cluster,
                &jobs,
                &sampler,
                &EngineConfig::default(),
            );
            let r2 = run_named(
                "dollymp2",
                &cluster,
                &jobs,
                &sampler,
                &EngineConfig::default(),
            );
            (f, r0, r2)
        });
    for (f, r0, r2) in &results {
        let load = factors[0] / f; // relative load, 1 = lightest in sweep
        let flow_delta = (r2.total_flowtime() as f64 / r0.total_flowtime() as f64 - 1.0) * 100.0;
        let usage_delta = (r2.total_usage() / r0.total_usage() - 1.0) * 100.0;
        let r0_by = r0.by_id();
        let reductions: Vec<f64> = r2
            .jobs
            .iter()
            .filter_map(|j| {
                r0_by
                    .get(&j.id)
                    .map(|b| -(1.0 - j.flowtime as f64 / b.flowtime.max(1) as f64))
            })
            .collect();
        let frac20 = cdf_at(&cdf(reductions), -0.2) * 100.0;
        println!(
            "{:>7.1}x {:>13.1}% {:>13.1}% {:>13.1}% {:>13.0}% {:>14}",
            load,
            flow_delta,
            usage_delta,
            r2.cloned_task_fraction() * 100.0,
            frac20,
            r2.total_flowtime()
        );
        rows.push(format!(
            "{load:.2},{flow_delta:.2},{usage_delta:.2},{:.4},{frac20:.1}",
            r2.cloned_task_fraction()
        ));
    }
    println!(
        "\npaper: at 10× load cloning still gives ≈ −10% flowtime for ≈ +2% resources; \
         ~40% of tasks hold clones at high load."
    );
    let p = write_csv(
        "fig10_load_sweep.csv",
        "relative_load,flow_delta_pct,usage_delta_pct,cloned_task_frac,frac_jobs_20pct_faster",
        &rows,
    );
    println!("csv: {}", p.display());
}
