//! **Theorem 2 / §5.1** — empirical capacity-augmentation check.
//!
//! Theorem 2: Algorithm 2 is `(2+ε)`-capacity, `O(1/ε)`-competitive for
//! total flowtime when every job has a single task (or there is a single
//! server). The §5.1 discussion sharpens the constant to `(3+3ε)/ε`
//! without stragglers.
//!
//! This binary generates random *online* instances (single-task jobs with
//! arbitrary arrival times and deterministic durations), runs the real
//! DollyMP scheduler on one server with capacity `(2+ε)` and compares its
//! total flowtime against the brute-force optimum on the *unit-capacity*
//! server — exactly the resource-augmentation yardstick of \[16\].

use dollymp_bench::write_csv;
use dollymp_cluster::prelude::*;
use dollymp_core::prelude::*;
use dollymp_core::theory::{dollymp_augmented_ratio, BfJob};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = SmallRng::seed_from_u64(20220901);
    let trials = 150;
    let mut rows = Vec::new();
    println!("Theorem 2 — (2+ε)-capacity competitiveness of Algorithm 2, single-task jobs\n");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>14}",
        "eps", "worst", "mean", "bound", "violations"
    );
    for &eps in &[0.5f64, 1.0, 2.0] {
        let mut worst: f64 = 0.0;
        let mut sum = 0.0;
        let mut violations = 0;
        for t in 0..trials {
            // Random online instance: 2–6 single-task jobs, staggered
            // arrivals, deterministic durations, demands ≤ the unit
            // server.
            let n = rng.gen_range(2..=6);
            let bf_jobs: Vec<BfJob> = (0..n)
                .map(|_| BfJob {
                    arrival: rng.gen_range(0..12),
                    duration: rng.gen_range(1..=8),
                    demand: Resources::new(
                        rng.gen_range(1..=10) as f64 / 10.0,
                        rng.gen_range(1..=10) as f64 / 10.0,
                    ),
                })
                .collect();
            // Optimal on the unit server.
            let opt = BruteForceOptimal::new(Resources::new(1.0, 1.0), bf_jobs.clone())
                .min_total_flowtime();

            // Algorithm 2 (DollyMP without cloning — deterministic
            // durations, no stragglers, per the §5.1 discussion) on the
            // (2+ε)-capacity server.
            let cap = 2.0 + eps;
            let cluster = ClusterSpec::homogeneous(1, cap, cap);
            let jobs: Vec<JobSpec> = bf_jobs
                .iter()
                .enumerate()
                .map(|(i, j)| {
                    JobSpec::builder(JobId(i as u64))
                        .arrival(j.arrival)
                        .phase(dollymp_core::job::PhaseSpec::new(
                            1,
                            j.demand,
                            j.duration as f64,
                            0.0,
                        ))
                        .build()
                        .expect("single-phase job")
                })
                .collect();
            let sampler = DurationSampler::new(t as u64, StragglerModel::Deterministic);
            let mut s = dollymp_schedulers::DollyMP::with_clones(0);
            let r = simulate(&cluster, jobs, &sampler, &mut s, &EngineConfig::default());
            let flow = r.total_flowtime();

            let ratio = flow as f64 / opt.max(1) as f64;
            worst = worst.max(ratio);
            sum += ratio;
            if ratio > dollymp_augmented_ratio(eps) {
                violations += 1;
            }
            rows.push(format!("{eps},{t},{flow},{opt},{ratio:.4}"));
        }
        let bound = dollymp_augmented_ratio(eps);
        println!(
            "{eps:>6.1} {worst:>10.3} {:>12.3} {bound:>12.2} {violations:>14}",
            sum / trials as f64
        );
        assert_eq!(
            violations, 0,
            "Theorem 2 bound violated at ε = {eps}: some ratio > {bound}"
        );
    }
    println!(
        "\nno instance exceeded the (3+3ε)/ε bound; the augmented scheduler is\n\
         usually *better* than the unit-capacity optimum (ratios < 1) because\n\
         the extra capacity lets it run jobs in parallel that OPT must serialize."
    );
    let p = write_csv(
        "analysis_theorem2.csv",
        "eps,trial,algo_flow,opt_flow,ratio",
        &rows,
    );
    println!("csv: {}", p.display());
}
