//! **Parameter ablations** — the design choices DESIGN.md calls out:
//!
//! * the σ-weight `w` in effective processing times (`e = θ + w·σ`; the
//!   paper deploys w = 1.5) — how much does penalizing high-variance
//!   phases matter?
//! * the §4.1 small-job gate `δ` (paper: 0.3) — from "never clone"
//!   (δ = 0) to "clone anything" (δ = ∞);
//! * the §8 future-work extension: vanilla DollyMP² vs the
//!   server-reputation learner on a cluster with straggler-prone nodes;
//! * data locality: the locality-aware YARN control plane vs the
//!   locality-blind DollyMP under increasing remote-read penalties.
//!
//! Each table reports total flowtime and total normalized usage on the
//! same paired workload.

use dollymp_bench::{respace_for_load, scale, write_csv};
use dollymp_cluster::prelude::*;
use dollymp_schedulers::{DollyMP, LearnedDollyMP};
use dollymp_workload::{generate_google, GoogleConfig};

fn run(
    s: &mut dyn Scheduler,
    cluster: &ClusterSpec,
    jobs: &[JobSpec_],
    sampler: &DurationSampler,
) -> SimReport {
    simulate(cluster, jobs.to_vec(), sampler, s, &EngineConfig::default())
}

type JobSpec_ = dollymp_core::job::JobSpec;

fn main() {
    let s = scale(10);
    let servers = (1_000 / s).max(40) as u32;
    let njobs = (10_000 / s).max(400);
    let cluster = ClusterSpec::google_like(servers, 21);
    let mut jobs = generate_google(&GoogleConfig {
        njobs,
        mean_gap_slots: 1.0,
        seed: 21,
        ..Default::default()
    });
    respace_for_load(&mut jobs, &cluster, 0.6, 2121);
    let sampler = DurationSampler::new(21, StragglerModel::google_traces());
    let mut rows = Vec::new();

    // --- σ-weight sweep -------------------------------------------------
    println!("ablation 1 — σ-weight w in e = θ + w·σ (paper: 1.5)\n");
    println!("{:>6} {:>14} {:>14}", "w", "total flow", "total usage");
    for &w in &[0.0, 0.5, 1.0, 1.5, 2.5, 4.0] {
        let mut sched = DollyMP::new().with_sigma_weight(w);
        let r = run(&mut sched, &cluster, &jobs, &sampler);
        println!(
            "{w:>6.1} {:>14} {:>14.1}",
            r.total_flowtime(),
            r.total_usage()
        );
        rows.push(format!(
            "sigma_weight,{w},{},{:.2}",
            r.total_flowtime(),
            r.total_usage()
        ));
    }

    // --- δ gate sweep ----------------------------------------------------
    println!("\nablation 2 — small-job clone gate δ (paper: 0.3)\n");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "delta", "total flow", "total usage", "cloned tasks"
    );
    for &delta in &[0.0, 0.1, 0.3, 0.6, 1.0, 1e9] {
        let mut sched = DollyMP::new().with_delta(delta);
        let r = run(&mut sched, &cluster, &jobs, &sampler);
        println!(
            "{:>8} {:>14} {:>14.1} {:>13.1}%",
            if delta > 1e6 {
                "inf".to_string()
            } else {
                format!("{delta:.1}")
            },
            r.total_flowtime(),
            r.total_usage(),
            r.cloned_task_fraction() * 100.0
        );
        rows.push(format!(
            "delta,{delta},{},{:.2}",
            r.total_flowtime(),
            r.total_usage()
        ));
    }

    // --- §8 reputation learner --------------------------------------------
    println!("\nablation 3 — §8 future work: server-reputation learning\n");
    println!(
        "{:>20} {:>14} {:>14}",
        "scheduler", "total flow", "total usage"
    );
    let mut vanilla = DollyMP::new();
    let rv = run(&mut vanilla, &cluster, &jobs, &sampler);
    let mut learned = LearnedDollyMP::new();
    let rl = run(&mut learned, &cluster, &jobs, &sampler);
    for (name, r) in [("dollymp2", &rv), ("learned-dollymp2", &rl)] {
        println!(
            "{name:>20} {:>14} {:>14.1}",
            r.total_flowtime(),
            r.total_usage()
        );
        rows.push(format!(
            "learned,{name},{},{:.2}",
            r.total_flowtime(),
            r.total_usage()
        ));
    }
    println!(
        "\nlearned vs vanilla: {:+.1}% total flowtime",
        (rl.total_flowtime() as f64 / rv.total_flowtime() as f64 - 1.0) * 100.0
    );

    // --- data locality -----------------------------------------------------
    println!("\nablation 4 — locality-aware YARN placement vs locality-blind DollyMP\n");
    println!(
        "{:>8} {:>18} {:>18} {:>10}",
        "penalty", "dollymp2 flow", "yarn-dollymp2 flow", "yarn Δ"
    );
    let small_cluster = ClusterSpec::google_like(60, 22);
    let mut small_jobs = generate_google(&GoogleConfig {
        njobs: 600,
        mean_gap_slots: 1.0,
        seed: 22,
        ..Default::default()
    });
    respace_for_load(&mut small_jobs, &small_cluster, 0.5, 2222);
    let small_sampler = DurationSampler::new(22, StragglerModel::google_traces());
    for &penalty in &[1.0, 1.5, 2.0, 3.0] {
        let cfg = EngineConfig {
            remote_penalty: penalty,
            ..Default::default()
        };
        let mut blind = DollyMP::new();
        let rb = simulate(
            &small_cluster,
            small_jobs.clone(),
            &small_sampler,
            &mut blind,
            &cfg,
        );
        let mut aware = dollymp_yarn::YarnSystem::new(2);
        let ra = simulate(
            &small_cluster,
            small_jobs.clone(),
            &small_sampler,
            &mut aware,
            &cfg,
        );
        println!(
            "{:>7.1}x {:>18} {:>18} {:>9.1}%",
            penalty,
            rb.total_flowtime(),
            ra.total_flowtime(),
            (ra.total_flowtime() as f64 / rb.total_flowtime() as f64 - 1.0) * 100.0
        );
        rows.push(format!(
            "locality,{penalty},{},{}",
            rb.total_flowtime(),
            ra.total_flowtime()
        ));
    }

    // --- related-work baseline: Hopper ------------------------------------
    println!("\nablation 5 — joint designs compared: DollyMP² vs Hopper-lite (§7)\n");
    println!(
        "{:>20} {:>14} {:>14} {:>10}",
        "scheduler", "total flow", "total usage", "clones"
    );
    let hopper_cfg = EngineConfig {
        tick: Some(1),
        ..Default::default()
    };
    let mut hopper = dollymp_schedulers::Hopper::new();
    let rh = simulate(&cluster, jobs.clone(), &sampler, &mut hopper, &hopper_cfg);
    for (name, r) in [("dollymp2", &rv), ("hopper", &rh)] {
        println!(
            "{name:>20} {:>14} {:>14.1} {:>10}",
            r.total_flowtime(),
            r.total_usage(),
            r.jobs.iter().map(|j| j.clone_copies).sum::<u64>()
        );
        rows.push(format!(
            "hopper,{name},{},{:.2}",
            r.total_flowtime(),
            r.total_usage()
        ));
    }

    let p = write_csv(
        "ablation_params.csv",
        "ablation,value,total_flow,total_usage",
        &rows,
    );
    println!("csv: {}", p.display());
}
