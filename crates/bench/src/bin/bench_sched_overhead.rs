//! §6.3.3 scheduling-overhead report: measures the two hot paths of the
//! Criterion `sched_overhead` bench without its harness, compares them
//! against the pre-optimization baselines recorded below, and writes
//! `BENCH_sched_overhead.json` into the current directory.
//!
//! The baselines are Criterion means measured on this repository at the
//! commit *before* the incremental-Algorithm-1 / compacted-placement
//! work landed, on the same class of machine that runs CI. They are
//! deliberately hardcoded: the point of the artifact is to document the
//! before/after of that change, not to drift with every run.
//!
//! Also exercises [`SimReport::sched_overhead`] end to end with a small
//! simulated workload, so the emitted JSON shows the engine-side
//! per-decision-point summary alongside the microbenchmarks.

use dollymp_cluster::prelude::*;
use dollymp_cluster::view::ClusterView;
use dollymp_core::prelude::*;
use dollymp_core::speedup::SpeedupFn;
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;

/// Criterion mean before the hot-path work, nanoseconds.
const BASELINE_TRANSIENT_1000_NS: u64 = 193_540;
/// Criterion mean before the hot-path work, nanoseconds.
const BASELINE_SCHEDULE_PASS_NS: u64 = 16_570_000;

fn transient_inputs(n: usize) -> Vec<TransientJob> {
    (0..n)
        .map(|i| TransientJob {
            id: JobId(i as u64),
            volume: 0.1 + (i % 97) as f64 * 0.37,
            etime: 1.0 + (i % 53) as f64 * 1.9,
            dominant: 0.0001 + (i % 11) as f64 * 0.0003,
            speedup: SpeedupFn::Pareto { alpha: 2.0 },
        })
        .collect()
}

/// Mean wall-clock of `f` over `iters` runs after `warmup` runs, in ns.
fn time_mean<F: FnMut()>(warmup: usize, iters: usize, mut f: F) -> u64 {
    for _ in 0..warmup {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    (t0.elapsed().as_nanos() / iters as u128) as u64
}

fn measure_transient_1000() -> u64 {
    let cfg = TransientConfig::default();
    let jobs = transient_inputs(1000);
    time_mean(20, 200, || {
        black_box(transient_schedule(black_box(&jobs), black_box(&cfg)));
    })
}

fn measure_schedule_pass() -> u64 {
    let cluster = ClusterSpec::google_like(30_000, 1);
    let free = dollymp_cluster::capacity::CapacityIndex::from_capacities(&cluster);
    let mut jobs: BTreeMap<JobId, dollymp_cluster::state::JobState> = BTreeMap::new();
    for i in 0..1000u64 {
        let spec = JobSpec::single_phase(
            JobId(i),
            4,
            Resources::new(1.0 + (i % 3) as f64, 2.0),
            10.0 + (i % 7) as f64,
            4.0,
        );
        jobs.insert(
            JobId(i),
            dollymp_cluster::state::JobState::new(spec, vec![vec![10.0; 4]]),
        );
    }
    // Fresh scheduler per iteration (a pass consumes nothing, but the
    // Criterion bench does the same, so the numbers stay comparable);
    // the on-arrival refresh is untimed setup, matching the bench.
    let mut passes = Vec::new();
    for it in 0..13 {
        let mut s = dollymp_schedulers::DollyMP::new();
        let view = ClusterView::new(0, &cluster, &free, &jobs);
        s.on_job_arrival(&view, JobId(0));
        let t0 = Instant::now();
        let batch = black_box(s.schedule(&view));
        let ns = t0.elapsed().as_nanos() as u64;
        assert!(!batch.is_empty(), "placement pass placed nothing");
        if it >= 3 {
            passes.push(ns);
        }
    }
    passes.iter().sum::<u64>() / passes.len() as u64
}

/// Run a small mixed workload and return the engine-side overhead
/// summary, proving the `SimReport::sched_overhead` plumbing end to end.
fn simulated_overhead() -> SchedOverhead {
    let cluster = ClusterSpec::paper_30_node();
    let mut jobs = Vec::new();
    for i in 0..40u64 {
        let (n, theta) = if i % 3 == 0 { (20, 40.0) } else { (4, 8.0) };
        jobs.push(
            JobSpec::builder(JobId(i))
                .arrival(i * 2)
                .phase(dollymp_core::job::PhaseSpec::new(
                    n,
                    Resources::new(2.0, 4.0),
                    theta,
                    theta / 2.0,
                ))
                .build()
                .expect("valid job spec"),
        );
    }
    let sampler = DurationSampler::new(17, StragglerModel::ParetoFit);
    let mut s = dollymp_schedulers::DollyMP::new();
    let r = simulate(&cluster, jobs, &sampler, &mut s, &EngineConfig::default());
    assert_eq!(r.sched_overhead.decision_points, r.decision_points);
    r.sched_overhead
}

use dollymp_bench::runner::{best_of_smoke, json_obj as obj};

fn entry(name: &str, before_ns: u64, after_ns: u64) -> serde_json::Value {
    let speedup = before_ns as f64 / after_ns.max(1) as f64;
    obj(vec![
        ("name", serde_json::Value::Str(name.to_string())),
        ("before_ns", serde_json::Value::UInt(before_ns)),
        ("after_ns", serde_json::Value::UInt(after_ns)),
        (
            "speedup",
            serde_json::Value::Float((speedup * 100.0).round() / 100.0),
        ),
    ])
}

/// Pull `after_ns` of `schedule_pass_30k_servers_1k_jobs` out of a
/// committed `BENCH_sched_overhead.json`, if present and well-formed.
fn committed_pass_ns(text: &str) -> Option<u64> {
    let root: serde_json::Value = serde_json::from_str(text).ok()?;
    root.get("benchmarks")?.as_array()?.iter().find_map(|b| {
        if b.get("name")?.as_str()? == "schedule_pass_30k_servers_1k_jobs" {
            b.get("after_ns")?.as_u64()
        } else {
            None
        }
    })
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        // CI guard: the measured pass mean must stay within 2× the
        // committed artifact, best-of-3 (same gate as `bench_scale`).
        let Some(reference) = std::fs::read_to_string("BENCH_sched_overhead.json")
            .ok()
            .as_deref()
            .and_then(committed_pass_ns)
        else {
            eprintln!("FAIL: no committed BENCH_sched_overhead.json with a schedule-pass entry");
            std::process::exit(1);
        };
        let gate = best_of_smoke("schedule pass mean", reference, 2, 3, |_| {
            measure_schedule_pass()
        });
        if gate.is_err() {
            eprintln!("FAIL: schedule pass mean regressed more than 2x");
            std::process::exit(1);
        }
        return;
    }

    println!("measuring transient_1000_jobs ...");
    let transient = measure_transient_1000();
    println!("  {transient} ns (baseline {BASELINE_TRANSIENT_1000_NS} ns)");
    println!("measuring schedule_pass_30k_servers_1k_jobs ...");
    let pass = measure_schedule_pass();
    println!("  {pass} ns (baseline {BASELINE_SCHEDULE_PASS_NS} ns)");
    println!("running simulated workload for SimReport.sched_overhead ...");
    let sim = simulated_overhead();
    println!(
        "  {} decision points, mean {} ns, p99 {} ns",
        sim.decision_points, sim.mean_ns, sim.p99_ns
    );

    let report = obj(vec![
        (
            "paper_claim",
            serde_json::Value::Str(
                "§6.3.3: < 20 ms per decision pass; scheduling 1K jobs to \
                 30K machines costs < 50 ms"
                    .to_string(),
            ),
        ),
        (
            "benchmarks",
            serde_json::Value::Array(vec![
                entry("transient_1000_jobs", BASELINE_TRANSIENT_1000_NS, transient),
                entry(
                    "schedule_pass_30k_servers_1k_jobs",
                    BASELINE_SCHEDULE_PASS_NS,
                    pass,
                ),
            ]),
        ),
        ("simulated_run", serde::Serialize::to_value(&sim)),
    ]);
    let path = "BENCH_sched_overhead.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serializable"),
    )
    .expect("write BENCH_sched_overhead.json");
    println!("wrote {path}");
}
