//! **Fig. 8** — trace-driven simulation at scale (§6.3.1): CDFs of the
//! per-job ratios of (a) flowtime under DollyMP² to flowtime under
//! Tetris and (b) resource usage under DollyMP² to usage under DRF.
//!
//! Paper's shape: ≥ 40 % of jobs get ≥ 30 % lower flowtime (ratio ≤ 0.7)
//! with a mean speedup of 22 %; ~70 % of jobs consume up to 2× resources
//! vs DRF but the *total* usage is only ~60 % higher (clones target small
//! jobs); makespan −18 %.
//!
//! Default scale: 3 000 servers / 1 000 jobs (≈ paper ÷10).
//! `DOLLYMP_SCALE=1` runs the full 30 000 servers / 10 000 jobs.

use dollymp_bench::{cdf_samples, respace_for_load, run_named, scale, write_csv};
use dollymp_cluster::metrics::{cdf, cdf_at, quantile};
use dollymp_cluster::prelude::*;
use dollymp_workload::{generate_google, GoogleConfig};
use rayon::prelude::*;

fn main() {
    let s = scale(10);
    let servers = (3_000 / s).max(60) as u32;
    let njobs = (30_000 / s).max(600);
    let cluster = ClusterSpec::google_like(servers, 8);
    let mut jobs = generate_google(&GoogleConfig {
        njobs,
        mean_gap_slots: 1.0,
        seed: 8,
        duration_cv: 1.2,
        ..Default::default()
    });
    // §6.3.1 runs at moderate load ("the cluster load is not high, DRF
    // performs similar to Tetris"); calibrate to ≈ 45 % CPU utilization.
    respace_for_load(&mut jobs, &cluster, 0.62, 88);
    let sampler = DurationSampler::new(8, StragglerModel::ParetoFit);
    println!("Fig. 8 — trace sim: {servers} servers, {njobs} jobs (DOLLYMP_SCALE={s})\n");

    let names = ["dollymp2", "tetris", "drf"];
    let reports: Vec<SimReport> = names
        .par_iter()
        .map(|n| run_named(n, &cluster, &jobs, &sampler, &EngineConfig::default()))
        .collect();
    let (dmp, tetris, drf) = (&reports[0], &reports[1], &reports[2]);
    let t_by = tetris.by_id();
    let d_by = drf.by_id();

    // (a) flowtime ratio vs Tetris.
    let flow_ratios: Vec<f64> = dmp
        .jobs
        .iter()
        .filter_map(|j| {
            t_by.get(&j.id)
                .map(|t| j.flowtime as f64 / t.flowtime.max(1) as f64)
        })
        .collect();
    let curve = cdf(flow_ratios.clone());
    let speedups: Vec<f64> = flow_ratios.iter().map(|r| 1.0 - r).collect();
    let mean_speedup = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
    println!("(a) flowtime ratio DollyMP²/Tetris:");
    println!(
        "    ≥30% faster (ratio ≤ 0.7): {:.0}% of jobs   [paper: ≥40%]",
        cdf_at(&curve, 0.7) * 100.0
    );
    println!(
        "    mean speedup: {:.0}%                        [paper: 22%]",
        mean_speedup * 100.0
    );

    // (b) usage ratio vs DRF.
    let usage_ratios: Vec<f64> = dmp
        .jobs
        .iter()
        .filter_map(|j| d_by.get(&j.id).map(|d| j.usage / d.usage.max(1e-9)))
        .collect();
    let ucurve = cdf(usage_ratios.clone());
    println!("\n(b) resource-usage ratio DollyMP²/DRF:");
    println!(
        "    ≤2× usage: {:.0}% of jobs                  [paper: ~70%]",
        cdf_at(&ucurve, 2.0) * 100.0
    );
    println!(
        "    total usage overhead: {:+.0}%               [paper: +60%]",
        (dmp.total_usage() / drf.total_usage() - 1.0) * 100.0
    );
    println!(
        "    median per-job ratio: {:.2}",
        quantile(&usage_ratios, 0.5)
    );

    println!(
        "cloned task fraction: {:.1}%  (clone copies per task: {:.2})",
        dmp.cloned_task_fraction() * 100.0,
        dmp.jobs.iter().map(|j| j.clone_copies).sum::<u64>() as f64
            / dmp.jobs.iter().map(|j| j.tasks).sum::<u64>() as f64
    );
    println!(
        "makespan: DollyMP² {} vs Tetris {} ({:+.0}%)   [paper: −18%]",
        dmp.makespan,
        tetris.makespan,
        (dmp.makespan as f64 / tetris.makespan as f64 - 1.0) * 100.0
    );

    let mut rows = Vec::new();
    for (v, q) in cdf_samples(&flow_ratios, 40) {
        rows.push(format!("a:flow_ratio,{v:.3},{q:.3}"));
    }
    for (v, q) in cdf_samples(&usage_ratios, 40) {
        rows.push(format!("b:usage_ratio,{v:.3},{q:.3}"));
    }
    let p = write_csv("fig08_trace_ratios.csv", "panel,ratio,cdf", &rows);
    println!("csv: {}", p.display());
}
