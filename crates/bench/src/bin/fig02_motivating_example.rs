//! **Fig. 2** — the worked scheduling example of §2.
//!
//! One unit-capacity server, three single-task jobs (demands 0.80 / 0.25
//! / 0.25, durations 10 / 8 / 8 s), expectation-based clone speedup
//! (α = 2.5 ⇒ `h(2) = 4/3`, 8 s → 6 s). Paper's totals:
//! Tetris 46 s, Tetris+cloning 42 s, small-first without clones 34 s,
//! DollyMP (one clone each for jobs 2 and 3) 28 s.

use dollymp_bench::{run_named, write_csv};
use dollymp_cluster::prelude::*;
use dollymp_core::prelude::*;

fn jobs() -> Vec<JobSpec> {
    vec![
        JobSpec::single_phase(JobId(1), 1, Resources::new(0.80, 0.80), 10.0, 0.0),
        JobSpec::single_phase(JobId(2), 1, Resources::new(0.25, 0.25), 8.0, 0.0),
        JobSpec::single_phase(JobId(3), 1, Resources::new(0.25, 0.25), 8.0, 0.0),
    ]
}

fn main() {
    let cluster = ClusterSpec::homogeneous(1, 1.0, 1.0);
    let sampler = DurationSampler::new(0, StragglerModel::ExpectedSpeedup { alpha: 2.5 });
    let expected = [
        ("tetris", 46),
        ("tetris+clone1", 42),
        ("dollymp0", 34),
        ("dollymp1", 28),
    ];

    println!("Fig. 2 — worked example totals (slots = seconds here)\n");
    println!("{:<16} {:>10} {:>10}", "scheduler", "measured", "paper");
    let mut rows = Vec::new();
    for (name, paper) in expected {
        let r = run_named(name, &cluster, &jobs(), &sampler, &EngineConfig::default());
        let total = r.total_flowtime();
        println!("{name:<16} {total:>10} {paper:>10}");
        rows.push(format!("{name},{total},{paper}"));
        assert_eq!(
            total, paper,
            "Fig. 2 is fully deterministic — any drift is a regression"
        );
    }
    let p = write_csv(
        "fig02_motivating_example.csv",
        "scheduler,measured,paper",
        &rows,
    );
    println!(
        "\nall four totals match the paper exactly.\ncsv: {}",
        p.display()
    );
}
