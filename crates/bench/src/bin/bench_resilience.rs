//! Resilience sweep: failure rate vs. flowtime and wasted work, and the
//! cloning-as-failure-insurance comparison. Writes
//! `BENCH_resilience.json` into the current directory.
//!
//! The sweep injects seeded Poisson per-server crashes (exponential
//! repair) at increasing rates into the same light-load workload and
//! runs DollyMP with cloning (`dollymp2`) against the no-cloning
//! baseline (`dollymp0`) on identical fault timelines. Three properties
//! are checked and recorded, matching the paper's cloning story extended
//! to failures:
//!
//! 1. **Zero-rate transparency** — a zero-rate schedule produces a
//!    report byte-identical to the fault-free path, so every fig*
//!    artifact is unaffected by the subsystem existing.
//! 2. **Determinism** — the same seed + timeline reproduces the same
//!    report across two runs.
//! 3. **Cloning saves work** — with faults enabled, `dollymp2` fully
//!    loses strictly fewer tasks (`tasks_requeued`) than `dollymp0`,
//!    because an evicted primary often has a live clone elsewhere.

use dollymp_bench::{config_fingerprint, run_named, scale};
use dollymp_cluster::engine::simulate_with_faults;
use dollymp_cluster::prelude::*;
use dollymp_core::job::JobSpec;
use dollymp_faults::{generate, FaultConfig};
use dollymp_workload::suite::light_load;
use serde::Serialize;

const SEED: u64 = 7;
const MEAN_REPAIR: f64 = 60.0;
const RATES: [f64; 4] = [0.0, 2e-4, 5e-4, 1e-3];
const SCHEDULERS: [&str; 2] = ["dollymp2", "dollymp0"];

#[derive(Serialize)]
struct SweepPoint {
    scheduler: String,
    crash_rate: f64,
    server_crashes: u64,
    copies_evicted: u64,
    tasks_saved_by_clone: u64,
    tasks_requeued: u64,
    work_lost_norm: f64,
    mean_flowtime: f64,
    p99_flowtime: u64,
    total_flowtime: u64,
    makespan: u64,
}

/// The knobs that define this sweep — serialized into the
/// [`config_fingerprint`] so result files from different parameterizations
/// can't be confused for one another.
#[derive(Serialize)]
struct BenchParams {
    cluster: &'static str,
    workload: &'static str,
    jobs: usize,
    rates: Vec<f64>,
    mean_repair_slots: f64,
    schedulers: Vec<&'static str>,
}

#[derive(Serialize)]
struct Report {
    cluster: String,
    jobs: usize,
    seed: u64,
    config_fingerprint: String,
    horizon: u64,
    mean_repair_slots: f64,
    zero_rate_matches_baseline: bool,
    deterministic: bool,
    dollymp2_requeued_total: u64,
    dollymp0_requeued_total: u64,
    cloning_loses_strictly_fewer_tasks: bool,
    sweep: Vec<SweepPoint>,
}

/// Zero the wall-clock overhead fields so two reports of the same run
/// can be compared for equality.
fn scrub(mut r: SimReport) -> SimReport {
    r.scheduling_ns = 0;
    r.sched_overhead = Default::default();
    r
}

fn run_with_faults(
    name: &str,
    cluster: &ClusterSpec,
    jobs: &[JobSpec],
    sampler: &DurationSampler,
    faults: &dollymp_cluster::fault::FaultTimeline,
) -> SimReport {
    let mut s =
        dollymp_schedulers::by_name(name).unwrap_or_else(|| panic!("unknown scheduler {name}"));
    simulate_with_faults(
        cluster,
        jobs.to_vec(),
        sampler,
        s.as_mut(),
        &EngineConfig::default(),
        faults,
    )
}

fn p99(mut flows: Vec<u64>) -> u64 {
    flows.sort_unstable();
    let idx = ((flows.len() as f64 * 0.99).ceil() as usize).clamp(1, flows.len()) - 1;
    flows[idx]
}

fn main() {
    let cluster = ClusterSpec::paper_30_node();
    let jobs = light_load(SEED, scale(4));
    let sampler = DurationSampler::new(SEED, StragglerModel::ParetoFit);

    // Size the fault horizon from a fault-free run of the slower
    // baseline, with headroom for fault-induced stretching.
    let baseline = run_named(
        "dollymp0",
        &cluster,
        &jobs,
        &sampler,
        &EngineConfig::default(),
    );
    let horizon = baseline.makespan * 2;

    // Property 1: a zero-rate schedule (empty timeline) is invisible.
    let zero_cfg = FaultConfig::new(SEED, horizon);
    let zero_tl = generate(&cluster, &zero_cfg);
    assert!(zero_tl.is_empty(), "zero-rate config must generate nothing");
    let zero_run = run_with_faults("dollymp0", &cluster, &jobs, &sampler, &zero_tl);
    let zero_rate_matches_baseline = scrub(baseline.clone()) == scrub(zero_run);
    assert!(
        zero_rate_matches_baseline,
        "zero-rate fault schedule changed the report"
    );

    let mut sweep = Vec::new();
    let mut requeued = [0u64; 2];
    let mut deterministic = true;
    println!(
        "{:<10} {:>9} {:>8} {:>8} {:>7} {:>9} {:>10} {:>10} {:>9}",
        "scheduler",
        "rate",
        "crashes",
        "evicted",
        "saved",
        "requeued",
        "lost work",
        "mean flow",
        "p99 flow"
    );
    for &rate in &RATES {
        let cfg = FaultConfig::new(SEED, horizon).with_crash_rate(rate, MEAN_REPAIR);
        let faults = generate(&cluster, &cfg);
        for (si, name) in SCHEDULERS.iter().enumerate() {
            let r = run_with_faults(name, &cluster, &jobs, &sampler, &faults);
            if rate > 0.0 {
                requeued[si] += r.faults.tasks_requeued;
                // Property 2: identical seed + timeline → identical report.
                let again = run_with_faults(name, &cluster, &jobs, &sampler, &faults);
                deterministic &= scrub(r.clone()) == scrub(again);
            }
            let f = &r.faults;
            println!(
                "{:<10} {:>9} {:>8} {:>8} {:>7} {:>9} {:>10.2} {:>10.1} {:>9}",
                name,
                rate,
                f.server_crashes,
                f.copies_evicted,
                f.tasks_saved_by_clone,
                f.tasks_requeued,
                f.work_lost_norm,
                r.mean_flowtime(),
                p99(r.jobs.iter().map(|j| j.flowtime).collect())
            );
            sweep.push(SweepPoint {
                scheduler: name.to_string(),
                crash_rate: rate,
                server_crashes: f.server_crashes,
                copies_evicted: f.copies_evicted,
                tasks_saved_by_clone: f.tasks_saved_by_clone,
                tasks_requeued: f.tasks_requeued,
                work_lost_norm: f.work_lost_norm,
                mean_flowtime: r.mean_flowtime(),
                p99_flowtime: p99(r.jobs.iter().map(|j| j.flowtime).collect()),
                total_flowtime: r.total_flowtime(),
                makespan: r.makespan,
            });
        }
    }
    assert!(deterministic, "same seed + timeline must reproduce reports");

    // Property 3: cloning is failure insurance.
    let fewer = requeued[0] < requeued[1];
    assert!(
        fewer,
        "dollymp2 must fully lose strictly fewer tasks than dollymp0 \
         (got {} vs {})",
        requeued[0], requeued[1]
    );

    let report = Report {
        cluster: "paper_30_node".to_string(),
        jobs: jobs.len(),
        seed: SEED,
        config_fingerprint: config_fingerprint(
            SEED,
            &BenchParams {
                cluster: "paper_30_node",
                workload: "light_load",
                jobs: jobs.len(),
                rates: RATES.to_vec(),
                mean_repair_slots: MEAN_REPAIR,
                schedulers: SCHEDULERS.to_vec(),
            },
        ),
        horizon,
        mean_repair_slots: MEAN_REPAIR,
        zero_rate_matches_baseline,
        deterministic,
        dollymp2_requeued_total: requeued[0],
        dollymp0_requeued_total: requeued[1],
        cloning_loses_strictly_fewer_tasks: fewer,
        sweep,
    };
    let path = "BENCH_resilience.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serializable"),
    )
    .expect("write BENCH_resilience.json");
    println!("\nwrote {path}");
}
