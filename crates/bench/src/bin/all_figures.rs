//! Run every figure/analysis binary in sequence (same process), printing
//! a divider between them. Convenience wrapper so one command regenerates
//! the paper's entire evaluation:
//!
//! ```sh
//! cargo run --release -p dollymp-bench --bin all_figures
//! DOLLYMP_SCALE=1 cargo run --release -p dollymp-bench --bin all_figures  # paper scale
//! ```

use std::process::Command;

const BINS: &[&str] = &[
    "fig01_cloning_motivation",
    "fig02_motivating_example",
    "fig04_light_load",
    "fig05_heavy_running",
    "fig06_heavy_flowtime",
    "fig07_cumulative_flowtime",
    "fig08_trace_ratios",
    "fig09_clone_count",
    "fig10_load_sweep",
    "fig11_vs_carbyne",
    "analysis_cloning_regimes",
    "ablation_params",
    "analysis_competitive",
    "analysis_theorem2",
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for bin in BINS {
        println!("\n{:=^78}", format!(" {bin} "));
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            failures.push(*bin);
        }
    }
    println!("\n{:=^78}", " summary ");
    if failures.is_empty() {
        println!(
            "all {} experiment binaries completed; CSVs in target/experiments/",
            BINS.len()
        );
    } else {
        println!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
