//! **Fig. 1** — job running time under different schedulers.
//!
//! The §2 motivation: one 4 GB WordCount job repeated 8 times on the
//! 30-node heterogeneous cluster (each run submitted after the previous
//! finished), under the Capacity scheduler (with Hadoop-style speculative
//! execution) and DollyMP⁰/¹/².
//!
//! Paper's shape: Capacity and DollyMP⁰ vary wildly run-to-run;
//! DollyMP¹/² are much more stable, and DollyMP² cuts the average running
//! time by ≈ 20 % vs Capacity.

use dollymp_bench::runner::{cell_seed, run_matrix, Parallelism};
use dollymp_bench::{run_named, write_csv};
use dollymp_cluster::prelude::*;
use dollymp_workload::suite::fig1_wordcount;

/// Base seed of the figure; the workload/sampler stream is
/// `cell_seed(FIG_SEED, 0)` (the standard per-cell derivation, shared
/// by every bench entry point).
const FIG_SEED: u64 = 1;

fn main() {
    let cluster = ClusterSpec::paper_30_node();
    // **Paired sampling**: every scheduler must see the identical
    // workload and task-duration stream (the figure compares policies,
    // not seeds), so the seed is derived once — from the *figure's*
    // cell, not per scheduler — and shared across the matrix.
    let seed = cell_seed(FIG_SEED, 0);
    let jobs = fig1_wordcount(seed);
    let sampler = DurationSampler::new(seed, StragglerModel::ParetoFit);
    let schedulers = ["capacity", "dollymp0", "dollymp1", "dollymp2"];

    println!("Fig. 1 — running time (slots) of the same 4 GB WordCount job, 8 runs\n");
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8}",
        "scheduler", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "mean"
    );
    let per_sched = run_matrix(&schedulers, Parallelism::from_env(), |_, &name| {
        // The paper's slotted system re-evaluates every interval; give
        // every scheduler the same 1-slot decision cadence so DollyMP²'s
        // second clone (granted a round after the first) can launch.
        let cfg = EngineConfig {
            tick: Some(1),
            ..Default::default()
        };
        let r = run_named(name, &cluster, &jobs, &sampler, &cfg);
        let mut runs: Vec<(u64, u64)> =
            r.jobs.iter().map(|j| (j.arrival, j.running_time)).collect();
        runs.sort();
        let times: Vec<u64> = runs.iter().map(|&(_, t)| t).collect();
        let mean = times.iter().sum::<u64>() as f64 / times.len() as f64;
        (name, times, mean)
    });

    let mut rows = Vec::new();
    let mut means = Vec::new();
    for (name, times, mean) in &per_sched {
        means.push((*name, *mean));
        print!("{name:<10}");
        for t in times {
            print!(" {t:>6}");
        }
        println!(" {mean:>8.1}");
        rows.push(format!(
            "{name},{},{mean:.2}",
            times
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",")
        ));
    }
    let base = means
        .iter()
        .find(|(n, _)| *n == "capacity")
        .map(|&(_, m)| m)
        .unwrap_or(1.0);
    println!();
    for (name, m) in &means {
        println!(
            "{name:<10} mean reduction vs capacity: {:+.1}%",
            (1.0 - m / base) * 100.0
        );
    }
    let p = write_csv(
        "fig01_cloning_motivation.csv",
        "scheduler,r1,r2,r3,r4,r5,r6,r7,r8,mean",
        &rows,
    );
    println!("\ncsv: {}", p.display());
}
