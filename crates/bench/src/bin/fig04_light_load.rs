//! **Fig. 4** — lightly-loaded regime (§6.2.1): 100 jobs (50 PageRank,
//! 50 WordCount), inter-arrival ≈ 200 s.
//!
//! (a) overall job flowtime per scheduler (bar chart → one row each);
//! (b) CDF of job execution (running) times.
//!
//! Paper's shape: flowtime ≈ running time (barely any queueing); Tetris ≈
//! Capacity; DollyMP² ≈ −10 % flowtime vs Capacity and the best tail
//! (95 % of jobs < 350 s under DollyMP² vs 80 % under Capacity);
//! DollyMP² beats DollyMP¹.

use dollymp_bench::{cdf_line, cdf_samples, engine_cfg_for, run_named, scale, write_csv};
use dollymp_cluster::prelude::*;
use dollymp_workload::suite::light_load;

fn main() {
    let cluster = ClusterSpec::paper_30_node();
    let jobs = light_load(4, scale(1));
    let sampler = DurationSampler::new(4, StragglerModel::ParetoFit);
    let schedulers = [
        "capacity", "tetris", "drf", "dollymp0", "dollymp1", "dollymp2",
    ];

    println!(
        "Fig. 4 — light load: {} jobs on the 30-node cluster (slots of 5 s)\n",
        jobs.len()
    );
    println!(
        "{:<10} {:>12} {:>10} {:>10}   running-time CDF",
        "scheduler", "total flow", "mean flow", "mean run"
    );
    let mut bar_rows = Vec::new();
    let mut cdf_rows = Vec::new();
    for name in schedulers {
        let r = run_named(name, &cluster, &jobs, &sampler, &engine_cfg_for(name));
        let runs: Vec<f64> = r.jobs.iter().map(|j| j.running_time as f64).collect();
        println!(
            "{:<10} {:>12} {:>10.1} {:>10.1}   {}",
            name,
            r.total_flowtime(),
            r.mean_flowtime(),
            r.mean_running_time(),
            cdf_line(&runs)
        );
        bar_rows.push(format!(
            "{name},{},{:.2},{:.2}",
            r.total_flowtime(),
            r.mean_flowtime(),
            r.mean_running_time()
        ));
        for (v, q) in cdf_samples(&runs, 20) {
            cdf_rows.push(format!("{name},{v:.1},{q:.3}"));
        }
    }
    write_csv(
        "fig04a_light_flowtime.csv",
        "scheduler,total_flow,mean_flow,mean_run",
        &bar_rows,
    );
    let p = write_csv(
        "fig04b_light_running_cdf.csv",
        "scheduler,running_slots,cdf",
        &cdf_rows,
    );
    println!("\ncsv: fig04a_light_flowtime.csv, {}", p.display());
}
