//! Scale-out sweep of the DollyMP decision pass: servers ∈ {30K, 100K,
//! 300K} × pending jobs ∈ {1K, 10K}, writing `BENCH_scale.json` into the
//! current directory.
//!
//! Per cell the binary times the `Scheduler::schedule` pass under two
//! protocols and reports nearest-rank p50/p99/max for each:
//!
//! * **steady** (the headline, `pass_*` fields) — one scheduler reused
//!   across passes, so its scratch buffers persist exactly as they do
//!   across decision points inside a live `simulate` loop. This is the
//!   number comparable to `BENCH_sched_overhead.json`'s 3.26 ms
//!   reference: the pre-index scheduler kept no state between passes,
//!   so its cold and steady costs were the same thing.
//! * **cold** (`cold_pass_*` fields) — a fresh scheduler per sample,
//!   first pass timed (the literal `bench_sched_overhead` protocol);
//!   pays one-time scratch growth and is noticeably noisier.
//!
//! Two allocator-side gauges come from a counting `#[global_allocator]`:
//!
//! * `peak_alloc_bytes` — high-water mark of live heap bytes across the
//!   cell (cluster + job state + index + scheduler), the RSS proxy;
//! * `steady_pass_alloc_bytes` — bytes allocated *during* one steady
//!   pass, minus the returned batch itself. The scratch reuse makes
//!   this 0: the decision loop is allocation-free at steady state.
//!
//! Cells run **sequentially** (through the same `bench::runner` API the
//! parallel fig bins use) so timings never contend for cores.
//!
//! `--smoke` runs only the 30K × 1K cell and exits non-zero if its
//! steady p99 regresses to more than 2× the committed `BENCH_scale.json`
//! reference — the CI guard for the scale-out hot path.

use dollymp_bench::runner::{best_of_smoke, json_obj as obj, run_matrix, Parallelism};
use dollymp_cluster::prelude::*;
use dollymp_cluster::view::ClusterView;
use dollymp_core::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// `schedule_pass_30k_servers_1k_jobs` as `BENCH_sched_overhead.json`
/// recorded it *before* the capacity-index/scratch-reuse work (3.26 ms)
/// — the ≥5× target baseline of the scale-out issue. Hardcoded for the
/// same reason as that binary's baselines: the artifact documents a
/// before/after and must not drift with every run.
const REFERENCE_PASS_NS: u64 = 3_261_401;

/// System allocator wrapped with live/peak byte counters. `dealloc` can
/// momentarily race `fetch_max` into a slightly stale peak under
/// threads, but the bench allocates from one thread while timing.
struct CountingAlloc;

static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live = LIVE_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed)
                + layout.size() as u64;
            PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            let old = layout.size() as u64;
            let new = new_size as u64;
            if new > old {
                let live = LIVE_BYTES.fetch_add(new - old, Ordering::Relaxed) + (new - old);
                PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
                ALLOC_BYTES.fetch_add(new - old, Ordering::Relaxed);
            } else {
                LIVE_BYTES.fetch_sub(old - new, Ordering::Relaxed);
            }
        }
        p
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Reset the peak gauge to the current live level.
fn reset_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[derive(Debug, Clone, Copy)]
struct Cell {
    servers: u32,
    jobs: u64,
}

#[derive(Debug, Clone, Copy)]
struct CellResult {
    cell: Cell,
    /// Steady-state pass (scratch reused across passes) — the headline.
    steady: SchedOverhead,
    /// Cold first pass of a fresh scheduler.
    cold: SchedOverhead,
    assignments: usize,
    peak_alloc_bytes: u64,
    steady_pass_alloc_bytes: u64,
}

/// Measure one cell: build the cluster/job state once, then time the
/// pass under both protocols (see the module docs).
fn measure_cell(cell: Cell, warmup: usize, timed_iters: usize) -> CellResult {
    reset_peak();
    let cluster = ClusterSpec::google_like(cell.servers, 1);
    let free = dollymp_cluster::capacity::CapacityIndex::from_capacities(&cluster);
    let mut jobs: BTreeMap<JobId, dollymp_cluster::state::JobState> = BTreeMap::new();
    for i in 0..cell.jobs {
        let spec = JobSpec::single_phase(
            JobId(i),
            4,
            Resources::new(1.0 + (i % 3) as f64, 2.0),
            10.0 + (i % 7) as f64,
            4.0,
        );
        jobs.insert(
            JobId(i),
            dollymp_cluster::state::JobState::new(spec, vec![vec![10.0; 4]]),
        );
    }
    let view = ClusterView::new(0, &cluster, &free, &jobs);

    // Cold protocol: fresh scheduler per sample, first pass timed.
    let mut cold_samples = Vec::with_capacity(timed_iters);
    let mut assignments = 0;
    for it in 0..warmup + timed_iters {
        let mut s = dollymp_schedulers::DollyMP::new();
        s.on_job_arrival(&view, JobId(0));
        let t0 = Instant::now();
        let batch = black_box(s.schedule(&view));
        let ns = t0.elapsed().as_nanos() as u64;
        assert!(!batch.is_empty(), "placement pass placed nothing");
        if it >= warmup {
            cold_samples.push(ns);
            assignments = batch.len();
        }
    }

    // Steady protocol: one scheduler, scratch persists across passes —
    // as it does across decision points inside `simulate`.
    let mut s = dollymp_schedulers::DollyMP::new();
    s.on_job_arrival(&view, JobId(0));
    let mut steady_samples = Vec::with_capacity(timed_iters);
    let mut steady_pass_alloc_bytes = 0;
    for it in 0..warmup + timed_iters {
        let alloc0 = ALLOC_BYTES.load(Ordering::Relaxed);
        let t0 = Instant::now();
        let batch = black_box(s.schedule(&view));
        let ns = t0.elapsed().as_nanos() as u64;
        let pass_bytes = ALLOC_BYTES.load(Ordering::Relaxed) - alloc0;
        if it >= warmup {
            steady_samples.push(ns);
            steady_pass_alloc_bytes = pass_bytes.saturating_sub(approx_batch_bytes(&batch));
        }
    }

    CellResult {
        cell,
        steady: SchedOverhead::from_samples(&steady_samples),
        cold: SchedOverhead::from_samples(&cold_samples),
        assignments,
        peak_alloc_bytes: PEAK_BYTES.load(Ordering::Relaxed),
        steady_pass_alloc_bytes,
    }
}

/// Heap bytes of the returned batch itself (the one allocation a steady
/// pass is allowed), so `steady_pass_alloc_bytes` isolates everything
/// else.
fn approx_batch_bytes(batch: &Vec<Assignment>) -> u64 {
    (batch.capacity() * std::mem::size_of::<Assignment>()) as u64
}

fn cell_json(r: &CellResult) -> serde_json::Value {
    obj(vec![
        ("servers", serde_json::Value::UInt(r.cell.servers as u64)),
        ("jobs", serde_json::Value::UInt(r.cell.jobs)),
        ("pass_p50_ns", serde_json::Value::UInt(r.steady.p50_ns)),
        ("pass_p99_ns", serde_json::Value::UInt(r.steady.p99_ns)),
        ("pass_max_ns", serde_json::Value::UInt(r.steady.max_ns)),
        ("cold_pass_p50_ns", serde_json::Value::UInt(r.cold.p50_ns)),
        ("cold_pass_p99_ns", serde_json::Value::UInt(r.cold.p99_ns)),
        ("assignments", serde_json::Value::UInt(r.assignments as u64)),
        (
            "peak_alloc_bytes",
            serde_json::Value::UInt(r.peak_alloc_bytes),
        ),
        (
            "steady_pass_alloc_bytes",
            serde_json::Value::UInt(r.steady_pass_alloc_bytes),
        ),
    ])
}

/// Pull `pass_p99_ns` of the 30K × 1K cell out of a committed
/// `BENCH_scale.json`, if present and well-formed.
fn committed_smoke_p99(text: &str) -> Option<u64> {
    let root: serde_json::Value = serde_json::from_str(text).ok()?;
    let cells = root.get("cells")?.as_array()?;
    cells.iter().find_map(|c| {
        let servers = c.get("servers")?.as_u64()?;
        let jobs = c.get("jobs")?.as_u64()?;
        if servers == 30_000 && jobs == 1_000 {
            c.get("pass_p99_ns")?.as_u64()
        } else {
            None
        }
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cells: Vec<Cell> = if smoke {
        vec![Cell {
            servers: 30_000,
            jobs: 1_000,
        }]
    } else {
        let mut v = Vec::new();
        for &servers in &[30_000u32, 100_000, 300_000] {
            for &jobs in &[1_000u64, 10_000] {
                v.push(Cell { servers, jobs });
            }
        }
        v
    };

    // Burn-in: ramp the CPU governor and fault in heap pages before any
    // timed work, otherwise the first cell measures the machine waking
    // up rather than the scheduler (observed as the 30K cell timing 2×
    // slower than the 100K cell that ran after it).
    black_box(measure_cell(
        Cell {
            servers: 30_000,
            jobs: 1_000,
        },
        0,
        8,
    ));

    println!(
        "{:>8} {:>7} {:>12} {:>12} {:>12} {:>12} {:>12} {:>14} {:>12}",
        "servers",
        "jobs",
        "p50_ns",
        "p99_ns",
        "cold_p50_ns",
        "assign",
        "",
        "peak_alloc",
        "pass_alloc"
    );
    // Cells run sequentially — timing must not contend for cores. The
    // fewer iterations on the 10K-job cells keep the full sweep fast.
    // 101 timed samples per protocol: nearest-rank p99 then sits at
    // rank 100, so a single descheduling blip (common on shared hosts)
    // cannot inflate it the way it inflates a small-sample maximum.
    let results = run_matrix(&cells, Parallelism::Sequential, |_, &cell| {
        let (warmup, iters) = if cell.jobs >= 10_000 {
            (2, 101)
        } else {
            (5, 101)
        };
        let r = measure_cell(cell, warmup, iters);
        println!(
            "{:>8} {:>7} {:>12} {:>12} {:>12} {:>12} {:>12} {:>14} {:>12}",
            r.cell.servers,
            r.cell.jobs,
            r.steady.p50_ns,
            r.steady.p99_ns,
            r.cold.p50_ns,
            r.assignments,
            "",
            r.peak_alloc_bytes,
            r.steady_pass_alloc_bytes
        );
        r
    });

    if smoke {
        let Some(reference) = std::fs::read_to_string("BENCH_scale.json")
            .ok()
            .as_deref()
            .and_then(committed_smoke_p99)
        else {
            eprintln!("FAIL: no committed BENCH_scale.json with a 30K x 1K cell");
            std::process::exit(1);
        };
        // Best-of-3 against 2× the committed p99 (see
        // `runner::best_of_smoke`); attempt 1 reuses the sweep's own
        // measurement, retries re-measure the cell.
        let gate = best_of_smoke("30Kx1K steady p99", reference, 2, 3, |attempt| {
            if attempt == 1 {
                results[0].steady.p99_ns
            } else {
                measure_cell(cells[0], 5, 101).steady.p99_ns
            }
        });
        if gate.is_err() {
            eprintln!("FAIL: 30K-server pass p99 regressed more than 2x");
            std::process::exit(1);
        }
        return;
    }

    let base = &results[0];
    assert_eq!((base.cell.servers, base.cell.jobs), (30_000, 1_000));
    let speedup = REFERENCE_PASS_NS as f64 / base.steady.p50_ns.max(1) as f64;
    // Sublinear growth: going 30K → 300K (10× servers) must cost < 10×
    // per pass at the same job count.
    let p50_at = |servers: u32, jobs: u64| {
        results
            .iter()
            .find(|r| r.cell.servers == servers && r.cell.jobs == jobs)
            .map(|r| r.steady.p50_ns)
            .unwrap_or(0)
    };
    let growth_10x = p50_at(300_000, 1_000) as f64 / base.steady.p50_ns.max(1) as f64;
    println!(
        "\n30K×1K steady p50 {} ns — {speedup:.2}x vs the {REFERENCE_PASS_NS} ns reference; \
         10x servers costs {growth_10x:.2}x per pass",
        base.steady.p50_ns
    );

    let report = obj(vec![
        (
            "protocol",
            serde_json::Value::Str(
                "DollyMP schedule pass per cell. pass_* = steady protocol \
                 (one scheduler, scratch persisted across passes, as in the \
                 live engine; comparable to the reference, whose scheduler \
                 kept no state so cold == steady). cold_pass_* = fresh \
                 scheduler per sample. Nearest-rank percentiles; untimed \
                 on-arrival refresh"
                    .to_string(),
            ),
        ),
        (
            "reference_pass_ns",
            serde_json::Value::UInt(REFERENCE_PASS_NS),
        ),
        (
            "speedup_30k_vs_reference",
            serde_json::Value::Float((speedup * 100.0).round() / 100.0),
        ),
        (
            "growth_10x_servers",
            serde_json::Value::Float((growth_10x * 100.0).round() / 100.0),
        ),
        (
            "cells",
            serde_json::Value::Array(results.iter().map(cell_json).collect()),
        ),
    ]);
    let path = "BENCH_scale.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serializable"),
    )
    .expect("write BENCH_scale.json");
    println!("wrote {path}");
}
