//! One-shot §6.3.3 overhead probe: times a single Algorithm 1 refresh
//! plus one full Algorithm 2 placement pass for 1 000 jobs over 30 000
//! servers, without the Criterion harness (see `benches/sched_overhead`
//! for statistically rigorous numbers).

use dollymp_cluster::prelude::*;
use dollymp_cluster::view::ClusterView;
use dollymp_core::prelude::*;
use std::collections::BTreeMap;

fn main() {
    let cluster = ClusterSpec::google_like(30_000, 1);
    let free = dollymp_cluster::capacity::CapacityIndex::from_capacities(&cluster);
    let mut jobs: BTreeMap<JobId, dollymp_cluster::state::JobState> = BTreeMap::new();
    for i in 0..1000u64 {
        let spec = JobSpec::single_phase(
            JobId(i),
            4,
            Resources::new(1.0 + (i % 3) as f64, 2.0),
            10.0 + (i % 7) as f64,
            4.0,
        );
        jobs.insert(
            JobId(i),
            dollymp_cluster::state::JobState::new(spec, vec![vec![10.0; 4]]),
        );
    }
    println!("§6.3.3 probe — 1 000 jobs × 30 000 servers (paper: < 50 ms)\n");
    for clones in [0u32, 2] {
        let mut s = dollymp_schedulers::DollyMP::with_clones(clones);
        let view = ClusterView::new(0, &cluster, &free, &jobs);
        let t0 = std::time::Instant::now();
        s.on_job_arrival(&view, JobId(0));
        let t_arr = t0.elapsed();
        let t1 = std::time::Instant::now();
        let batch = s.schedule(&view);
        let t_sched = t1.elapsed();
        println!(
            "dollymp{clones}: Algorithm 1 refresh {t_arr:?}, full placement pass {t_sched:?} \
             ({} assignments)",
            batch.len()
        );
    }
}
