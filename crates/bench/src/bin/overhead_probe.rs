//! One-shot §6.3.3 overhead probe: times a single Algorithm 1 refresh
//! plus one full Algorithm 2 placement pass for 1 000 jobs over 30 000
//! servers, without the Criterion harness (see `benches/sched_overhead`
//! for statistically rigorous numbers).

use dollymp_bench::runner::{cell_seed, run_matrix, Parallelism};
use dollymp_cluster::prelude::*;
use dollymp_cluster::view::ClusterView;
use dollymp_core::prelude::*;
use std::collections::BTreeMap;

/// Base seed; each clone-budget cell derives its own job-mix stream via
/// the standard `cell_seed` scheme.
const PROBE_SEED: u64 = 63;

fn probe_jobs(seed: u64) -> BTreeMap<JobId, dollymp_cluster::state::JobState> {
    let mut jobs = BTreeMap::new();
    for i in 0..1000u64 {
        // Deterministic per-job variation drawn from the cell's seed so
        // different cells probe different (but reproducible) job mixes.
        let v = cell_seed(seed, i as usize);
        let spec = JobSpec::single_phase(
            JobId(i),
            4,
            Resources::new(1.0 + (v % 3) as f64, 2.0),
            10.0 + (v % 7) as f64,
            4.0,
        );
        jobs.insert(
            JobId(i),
            dollymp_cluster::state::JobState::new(spec, vec![vec![10.0; 4]]),
        );
    }
    jobs
}

fn main() {
    let cluster = ClusterSpec::google_like(30_000, 1);
    println!("§6.3.3 probe — 1 000 jobs × 30 000 servers (paper: < 50 ms)\n");
    // Sequential always: this probe times wall-clock; parallel cells
    // would contend for cores.
    let clone_budgets = [0u32, 2];
    let lines = run_matrix(&clone_budgets, Parallelism::Sequential, |i, &clones| {
        // Built per cell: the index's interior caches are not `Sync`.
        let free = dollymp_cluster::capacity::CapacityIndex::from_capacities(&cluster);
        let jobs = probe_jobs(cell_seed(PROBE_SEED, i));
        let mut s = dollymp_schedulers::DollyMP::with_clones(clones);
        let view = ClusterView::new(0, &cluster, &free, &jobs);
        let t0 = std::time::Instant::now();
        s.on_job_arrival(&view, JobId(0));
        let t_arr = t0.elapsed();
        let t1 = std::time::Instant::now();
        let batch = s.schedule(&view);
        let t_sched = t1.elapsed();
        format!(
            "dollymp{clones}: Algorithm 1 refresh {t_arr:?}, full placement pass {t_sched:?} \
             ({} assignments)",
            batch.len()
        )
    });
    for line in lines {
        println!("{line}");
    }
}
