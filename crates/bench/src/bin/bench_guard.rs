//! Guarded-scheduling overload sweep: the §6.3.3 containment story under
//! pressure. Writes `BENCH_guard.json` into the current directory.
//!
//! The sweep compresses a light-load workload's arrivals by increasing
//! overload factors (1.0×, 1.2×, 1.5× the calibrated arrival rate) and
//! runs DollyMP with cloning (`dollymp2`) twice per point: bare, and
//! wrapped in [`GuardedScheduler`] with the overload preset (clone
//! throttle + bounded deferral queue). Three properties are checked and
//! recorded:
//!
//! 1. **Transparency at calibrated load** — at 1.0× the guarded report
//!    is byte-identical to the unguarded one (after zeroing wall-clock
//!    timings) when the throttle never engages, and the guard's audit
//!    trail is clean either way on a well-behaved policy.
//! 2. **No regression under overload** — at every factor ≥ 1.2× the
//!    guarded run's makespan is no worse than the unguarded run's:
//!    dropping speculative clones while the cluster is saturated cannot
//!    slow the work down.
//! 3. **Containment** — the adversarial policy under the guard still
//!    completes every job (with a nonzero audit trail), while strict
//!    mode (`try_simulate`) refuses it with a typed error instead of
//!    panicking.

use dollymp_bench::{config_fingerprint, run_named, scale};
use dollymp_cluster::guard::{GuardConfig, GuardedScheduler};
use dollymp_cluster::prelude::*;
use dollymp_core::job::JobSpec;
use dollymp_schedulers::{AdversarialConfig, AdversarialScheduler};
use dollymp_workload::suite::light_load;
use serde::Serialize;

const SEED: u64 = 13;
const FACTORS: [f64; 3] = [1.0, 1.2, 1.5];

/// The knobs that define this sweep — serialized into the
/// [`config_fingerprint`] so result files from different parameterizations
/// can't be confused for one another.
#[derive(Serialize)]
struct BenchParams {
    cluster: &'static str,
    workload: &'static str,
    jobs: usize,
    factors: Vec<f64>,
    guard: &'static str,
}

#[derive(Serialize)]
struct SweepPoint {
    overload_factor: f64,
    unguarded_makespan: u64,
    guarded_makespan: u64,
    unguarded_mean_flowtime: f64,
    guarded_mean_flowtime: f64,
    clones_throttled: u64,
    deferred: u64,
    rejections: u64,
    quarantined: bool,
}

#[derive(Serialize)]
struct Adversarial {
    jobs_completed: usize,
    jobs_submitted: usize,
    total_rejections: u64,
    policy_panics: u64,
    budget_overruns: u64,
    fallback_passes: u64,
    quarantined: bool,
    strict_mode_reason: String,
}

#[derive(Serialize)]
struct Report {
    cluster: String,
    jobs: usize,
    seed: u64,
    config_fingerprint: String,
    transparent_at_calibrated_load: bool,
    guarded_no_worse_at_overload: bool,
    sweep: Vec<SweepPoint>,
    adversarial: Adversarial,
}

/// Zero the wall-clock overhead fields so two reports of the same run
/// can be compared for equality.
fn scrub(mut r: SimReport) -> SimReport {
    r.scheduling_ns = 0;
    r.sched_overhead = Default::default();
    r
}

/// Compress arrivals by `factor`: the same jobs offered `factor`× as
/// fast. 1.0 leaves the workload untouched.
fn overload(jobs: &[JobSpec], factor: f64) -> Vec<JobSpec> {
    let mut out = jobs.to_vec();
    for j in &mut out {
        j.arrival = (j.arrival as f64 / factor).round() as u64;
    }
    out.sort_by_key(|j| (j.arrival, j.id));
    out
}

fn run_guarded(
    cluster: &ClusterSpec,
    jobs: &[JobSpec],
    sampler: &DurationSampler,
    cfg: GuardConfig,
) -> SimReport {
    let inner = dollymp_schedulers::by_name("dollymp2").expect("dollymp2 is registered");
    let mut guard = GuardedScheduler::with_config(inner, cfg);
    simulate(
        cluster,
        jobs.to_vec(),
        sampler,
        &mut guard,
        &EngineConfig::default(),
    )
}

fn main() {
    let cluster = ClusterSpec::paper_30_node();
    let jobs = light_load(SEED, scale(4));
    let sampler = DurationSampler::new(SEED, StragglerModel::ParetoFit);
    let fingerprint = config_fingerprint(
        SEED,
        &BenchParams {
            cluster: "paper_30_node",
            workload: "light_load",
            jobs: jobs.len(),
            factors: FACTORS.to_vec(),
            guard: "overload-preset",
        },
    );

    let mut sweep = Vec::new();
    let mut transparent = true;
    let mut no_worse = true;
    println!(
        "{:>7} {:>14} {:>12} {:>12} {:>10} {:>9} {:>9}",
        "factor", "makespan", "guarded", "throttled", "deferred", "rejected", "flow Δ%"
    );
    for &factor in &FACTORS {
        let load = overload(&jobs, factor);
        let bare = run_named(
            "dollymp2",
            &cluster,
            &load,
            &sampler,
            &EngineConfig::default(),
        );
        let guarded = run_guarded(&cluster, &load, &sampler, GuardConfig::overload());
        assert_eq!(
            guarded.jobs.len(),
            load.len(),
            "guarded run must complete every job at {factor}x"
        );
        if factor == 1.0 && guarded.guard.is_clean() {
            transparent &= scrub(bare.clone()) == scrub(guarded.clone());
        }
        if factor >= 1.2 {
            no_worse &= guarded.makespan <= bare.makespan;
        }
        let flow_delta =
            100.0 * (guarded.mean_flowtime() - bare.mean_flowtime()) / bare.mean_flowtime();
        println!(
            "{:>7.1} {:>14} {:>12} {:>12} {:>10} {:>9} {:>+9.2}",
            factor,
            bare.makespan,
            guarded.makespan,
            guarded.guard.clones_throttled,
            guarded.guard.deferred,
            guarded.guard.total_rejections(),
            flow_delta,
        );
        sweep.push(SweepPoint {
            overload_factor: factor,
            unguarded_makespan: bare.makespan,
            guarded_makespan: guarded.makespan,
            unguarded_mean_flowtime: bare.mean_flowtime(),
            guarded_mean_flowtime: guarded.mean_flowtime(),
            clones_throttled: guarded.guard.clones_throttled,
            deferred: guarded.guard.deferred,
            rejections: guarded.guard.total_rejections(),
            quarantined: guarded.guard.quarantined_at.is_some(),
        });
    }
    assert!(
        transparent,
        "guard must be invisible at calibrated load when it never intervenes"
    );
    assert!(
        no_worse,
        "guarded DollyMP must not regress makespan at ≥1.2x overload"
    );

    // Containment demonstration: the adversary guarded vs. strict mode.
    let adv_jobs = overload(&jobs, 1.0);
    let mut guard = GuardedScheduler::with_config(
        AdversarialScheduler::with_config(AdversarialConfig::full_hostility()),
        GuardConfig {
            budget: std::time::Duration::from_micros(200),
            ..GuardConfig::default()
        },
    );
    let contained = try_simulate(
        &cluster,
        adv_jobs.clone(),
        &sampler,
        &mut guard,
        &EngineConfig::default(),
    )
    .expect("guard must contain the adversary");
    assert_eq!(contained.jobs.len(), adv_jobs.len());
    assert!(!contained.guard.is_clean());

    let mut bare_adv = AdversarialScheduler::new();
    let strict_err = try_simulate(
        &cluster,
        adv_jobs.clone(),
        &sampler,
        &mut bare_adv,
        &EngineConfig::default(),
    )
    .expect_err("strict mode must refuse the adversary");
    let adversarial = Adversarial {
        jobs_completed: contained.jobs.len(),
        jobs_submitted: adv_jobs.len(),
        total_rejections: contained.guard.total_rejections(),
        policy_panics: contained.guard.policy_panics,
        budget_overruns: contained.guard.budget_overruns,
        fallback_passes: contained.guard.fallback_passes,
        quarantined: contained.guard.quarantined_at.is_some(),
        strict_mode_reason: strict_err.reason().to_string(),
    };
    println!(
        "\nadversary: contained run finished {}/{} jobs ({} rejections, \
         {} panics caught); strict mode refused with `{}`",
        adversarial.jobs_completed,
        adversarial.jobs_submitted,
        adversarial.total_rejections,
        adversarial.policy_panics,
        adversarial.strict_mode_reason,
    );

    let report = Report {
        cluster: "paper_30_node".to_string(),
        jobs: jobs.len(),
        seed: SEED,
        config_fingerprint: fingerprint,
        transparent_at_calibrated_load: transparent,
        guarded_no_worse_at_overload: no_worse,
        sweep,
        adversarial,
    };
    let path = "BENCH_guard.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serializable"),
    )
    .expect("write BENCH_guard.json");
    println!("wrote {path}");
}
