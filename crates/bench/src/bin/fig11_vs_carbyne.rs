//! **Fig. 11** — DollyMP² vs Carbyne under heavy load (§6.3.2):
//! (a) CDF of per-job completion-time reduction, (b) CDF of the
//! resource-usage ratio.
//!
//! Paper's shape: ~30 % of jobs see > 80 % completion-time reduction;
//! ~60 % of jobs consume roughly the same resources under both; overall
//! DollyMP² cuts average completion time by ~25 %.

use dollymp_bench::{cdf_samples, respace_for_load, run_named, scale, write_csv};
use dollymp_cluster::metrics::{cdf, cdf_at, quantile};
use dollymp_cluster::prelude::*;
use dollymp_workload::{generate_google, GoogleConfig};
use rayon::prelude::*;

fn main() {
    let s = scale(10);
    let servers = (1_500 / s).max(40) as u32;
    let njobs = (15_000 / s).max(400);
    let cluster = ClusterSpec::google_like(servers, 11);
    // Heavy load: calibrate to ≈ 85 % CPU utilization.
    let mut jobs = generate_google(&GoogleConfig {
        njobs,
        mean_gap_slots: 0.5,
        seed: 11,
        ..Default::default()
    });
    respace_for_load(&mut jobs, &cluster, 0.95, 111);
    let sampler = DurationSampler::new(11, StragglerModel::google_traces());
    println!("Fig. 11 — vs Carbyne, heavy load: {servers} servers, {njobs} jobs\n");

    let reports: Vec<SimReport> = ["dollymp2", "carbyne"]
        .par_iter()
        .map(|n| run_named(n, &cluster, &jobs, &sampler, &EngineConfig::default()))
        .collect();
    let (dmp, carbyne) = (&reports[0], &reports[1]);
    let c_by = carbyne.by_id();

    let reductions: Vec<f64> = dmp
        .jobs
        .iter()
        .filter_map(|j| {
            c_by.get(&j.id)
                .map(|c| 1.0 - j.flowtime as f64 / c.flowtime.max(1) as f64)
        })
        .collect();
    let neg: Vec<f64> = reductions.iter().map(|x| -x).collect();
    let rcurve = cdf(neg);
    println!("(a) completion-time reduction vs Carbyne:");
    println!(
        "    >80% reduction: {:.0}% of jobs   [paper: ~30%]",
        cdf_at(&rcurve, -0.8) * 100.0
    );
    println!(
        "    mean completion-time change: {:+.0}%   [paper: −25%]",
        (dmp.mean_flowtime() / carbyne.mean_flowtime() - 1.0) * 100.0
    );

    let usage_ratios: Vec<f64> = dmp
        .jobs
        .iter()
        .filter_map(|j| c_by.get(&j.id).map(|c| j.usage / c.usage.max(1e-9)))
        .collect();
    let ucurve = cdf(usage_ratios.clone());
    println!("\n(b) resource-usage ratio vs Carbyne:");
    println!(
        "    within ±10% of 1×: {:.0}% of jobs   [paper: ~60% at ≈1×]",
        (cdf_at(&ucurve, 1.1) - cdf_at(&ucurve, 0.9)) * 100.0
    );
    println!("    median ratio: {:.2}", quantile(&usage_ratios, 0.5));

    let mut rows = Vec::new();
    for (v, q) in cdf_samples(&reductions, 40) {
        rows.push(format!("a:reduction,{v:.3},{q:.3}"));
    }
    for (v, q) in cdf_samples(&usage_ratios, 40) {
        rows.push(format!("b:usage_ratio,{v:.3},{q:.3}"));
    }
    let p = write_csv("fig11_vs_carbyne.csv", "panel,value,cdf", &rows);
    println!("csv: {}", p.display());
}
