//! **Fig. 7** — overall (cumulative) job flowtime as jobs enter the
//! cluster over time, heavy-load regime (§6.2.2).
//!
//! Paper's shape: the cumulative curve under DollyMP grows much slower;
//! at the end DollyMP is ≈ −50 % vs Capacity and ≈ −30 % vs Tetris.

use dollymp_bench::{engine_cfg_for, run_named, scale, write_csv};
use dollymp_cluster::prelude::*;
use dollymp_workload::suite::{heavy_pagerank, heavy_wordcount};

fn main() {
    let cluster = ClusterSpec::paper_30_node();
    let s = scale(2);
    let sampler = DurationSampler::new(5, StragglerModel::ParetoFit);
    let schedulers = ["capacity", "tetris", "dollymp2"];

    let mut rows = Vec::new();
    for (panel, jobs) in [
        ("a:pagerank", heavy_pagerank(5, s)),
        ("b:wordcount", heavy_wordcount(5, s)),
    ] {
        println!(
            "Fig. 7({}) — cumulative flowtime over arrivals, {} jobs\n",
            &panel[..1],
            jobs.len()
        );
        let mut finals = Vec::new();
        for name in schedulers {
            let r = run_named(name, &cluster, &jobs, &sampler, &engine_cfg_for(name));
            let series = r.cumulative_flowtime_by_arrival();
            // Print a decimated series (10 points).
            let step = (series.len() / 10).max(1);
            print!("  {name:<10}");
            for (t, acc) in series.iter().step_by(step) {
                print!(" ({t},{acc})");
            }
            println!();
            for (t, acc) in &series {
                rows.push(format!("{panel},{name},{t},{acc}"));
            }
            finals.push((name, *series.last().map(|(_, a)| a).unwrap_or(&0)));
        }
        let dmp = finals.iter().find(|(n, _)| *n == "dollymp2").unwrap().1 as f64;
        for (name, total) in &finals {
            if *name != "dollymp2" {
                println!(
                    "  dollymp2 vs {name}: {:+.1}% total flowtime",
                    (dmp / *total as f64 - 1.0) * 100.0
                );
            }
        }
        println!();
    }
    let p = write_csv(
        "fig07_cumulative_flowtime.csv",
        "panel,scheduler,arrival_slot,cumulative_flow",
        &rows,
    );
    println!("csv: {}", p.display());
}
