//! **§4.1 analysis** — *when is cloning helpful?*
//!
//! Evaluates the three closed-form schedules of the paper's case study
//! (flow₁: everything at once + one clone; flow₂: serialize + clone
//! maximally; flow₃: smallest-first + two copies each) across job counts
//! and Pareto tail indices, and reports which regime wins.
//!
//! Paper's conclusion: for heavy-tailed stragglers and enough jobs,
//! `flow₃ < flow₁ < flow₂` — a *few* clones for *small* jobs beat both
//! extremes, which is exactly the policy DollyMP adopts.

use dollymp_bench::write_csv;
use dollymp_core::cloning::{classify_regime, flow1, flow2, flow3, CloningRegime};
use dollymp_core::speedup::ParetoSpeedup;

fn main() {
    println!("§4.1 — flow₁ / flow₂ / flow₃ across (N, α)\n");
    println!(
        "{:>4} {:>6} {:>12} {:>12} {:>12}  regime",
        "N", "alpha", "flow1", "flow2", "flow3"
    );
    let mut rows = Vec::new();
    for &alpha in &[1.5, 2.0, 3.0, 5.0] {
        let h = ParetoSpeedup::new(alpha);
        for &n in &[2u32, 5, 10, 20, 50] {
            let (f1, f2, f3) = (flow1(n, &h), flow2(n, &h), flow3(n, &h));
            let regime = classify_regime(n, &h);
            println!("{n:>4} {alpha:>6.1} {f1:>12.2} {f2:>12.2} {f3:>12.2}  {regime:?}");
            rows.push(format!("{n},{alpha},{f1:.4},{f2:.4},{f3:.4},{regime:?}"));
            // The paper's threshold: flow₃ < flow₁ < flow₂ once
            // N > 2α − 1.
            if (n as f64) > 2.0 * alpha - 1.0 && n >= 4 {
                assert_eq!(
                    regime,
                    CloningRegime::ModestCloningWins,
                    "N={n}, α={alpha} should satisfy the paper's ordering"
                );
            }
        }
        println!();
    }
    let p = write_csv(
        "analysis_cloning_regimes.csv",
        "n,alpha,flow1,flow2,flow3,regime",
        &rows,
    );
    println!("csv: {}", p.display());
}
