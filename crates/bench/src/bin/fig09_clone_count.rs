//! **Fig. 9** — how many clones per task? (§6.3.1, "what is the optimal
//! number of clones")
//!
//! DollyMP^r for r ∈ {1, 2, 3} vs DollyMP⁰ on the trace workload:
//! (a) CDF of per-job flowtime reduction vs DollyMP⁰,
//! (b) total resource usage relative to DollyMP⁰.
//!
//! Paper's shape: going 1 → 2 clones helps >30 % of jobs reach a 20 %
//! reduction; 2 → 3 adds only ~5 % more jobs but +15 % resources.

use dollymp_bench::{cdf_samples, respace_for_load, run_named, scale, write_csv};
use dollymp_cluster::metrics::{cdf, cdf_at};
use dollymp_cluster::prelude::*;
use dollymp_workload::{generate_google, GoogleConfig};
use rayon::prelude::*;

fn main() {
    let s = scale(10);
    let servers = (1_500 / s).max(40) as u32;
    let njobs = (15_000 / s).max(400);
    let cluster = ClusterSpec::google_like(servers, 9);
    let mut jobs = generate_google(&GoogleConfig {
        njobs,
        mean_gap_slots: 1.5,
        seed: 9,
        ..Default::default()
    });
    respace_for_load(&mut jobs, &cluster, 0.45, 99);
    let sampler = DurationSampler::new(9, StragglerModel::google_traces());
    println!("Fig. 9 — clone-count ablation: {servers} servers, {njobs} jobs\n");

    let names = ["dollymp0", "dollymp1", "dollymp2", "dollymp3"];
    let reports: Vec<SimReport> = names
        .par_iter()
        .map(|n| run_named(n, &cluster, &jobs, &sampler, &EngineConfig::default()))
        .collect();
    let base = &reports[0];
    let base_by = base.by_id();
    let base_usage = base.total_usage();

    println!(
        "{:<10} {:>12} {:>14} {:>14} {:>16}",
        "variant", "total flow", "≥20% faster", "usage vs r=0", "cloned tasks"
    );
    let mut rows = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let r = &reports[i];
        let reductions: Vec<f64> = r
            .jobs
            .iter()
            .filter_map(|j| {
                base_by
                    .get(&j.id)
                    .map(|b| 1.0 - j.flowtime as f64 / b.flowtime.max(1) as f64)
            })
            .collect();
        let curve = cdf(reductions.iter().map(|x| -x).collect());
        // fraction with reduction ≥ 0.2 ⇔ −reduction ≤ −0.2.
        let frac20 = cdf_at(&curve, -0.2);
        println!(
            "{:<10} {:>12} {:>13.0}% {:>13.2}× {:>15.1}%",
            name,
            r.total_flowtime(),
            frac20 * 100.0,
            r.total_usage() / base_usage,
            r.cloned_task_fraction() * 100.0
        );
        rows.push(format!(
            "{name},{},{frac20:.3},{:.4},{:.4}",
            r.total_flowtime(),
            r.total_usage() / base_usage,
            r.cloned_task_fraction()
        ));
        for (v, q) in cdf_samples(&reductions, 40) {
            rows.push(format!("{name}:cdf,{v:.3},{q:.3},"));
        }
    }
    println!(
        "\npaper: 1→2 clones helps >30% of jobs reach −20% flowtime; 2→3 adds ~5% of jobs \
         and +15% resources."
    );
    let p = write_csv(
        "fig09_clone_count.csv",
        "variant,total_flow_or_reduction,frac_or_cdf,usage_ratio,cloned_frac",
        &rows,
    );
    println!("csv: {}", p.display());
}
