//! **Fig. 5** — running-time CDFs in the heavily-loaded regime (§6.2.2):
//! (a) 500 PageRank jobs, (b) 500 WordCount jobs, inter-arrival ≈ 20 s.
//!
//! Paper's shape: under DollyMP every job's *running* time stays small
//! (all < 200 s for PageRank) because once a job is scheduled its tasks
//! run together and clones absorb stragglers; Tetris/Capacity have a
//! long running-time tail (only ~80 % < 200 s under Tetris).

use dollymp_bench::{cdf_line, cdf_samples, engine_cfg_for, run_named, scale, write_csv};
use dollymp_cluster::prelude::*;
use dollymp_workload::suite::{heavy_pagerank, heavy_wordcount};

fn main() {
    let cluster = ClusterSpec::paper_30_node();
    let s = scale(2);
    let sampler = DurationSampler::new(5, StragglerModel::ParetoFit);
    let schedulers = ["capacity", "tetris", "dollymp2"];

    let mut rows = Vec::new();
    for (panel, jobs) in [
        ("a:pagerank", heavy_pagerank(5, s)),
        ("b:wordcount", heavy_wordcount(5, s)),
    ] {
        println!(
            "Fig. 5({}) — heavy load, {} jobs: running-time CDFs (slots)\n",
            &panel[..1],
            jobs.len()
        );
        for name in schedulers {
            let r = run_named(name, &cluster, &jobs, &sampler, &engine_cfg_for(name));
            let runs: Vec<f64> = r.jobs.iter().map(|j| j.running_time as f64).collect();
            println!("  {:<10} {}", name, cdf_line(&runs));
            for (v, q) in cdf_samples(&runs, 20) {
                rows.push(format!("{panel},{name},{v:.1},{q:.3}"));
            }
        }
        println!();
    }
    let p = write_csv(
        "fig05_heavy_running_cdf.csv",
        "panel,scheduler,running_slots,cdf",
        &rows,
    );
    println!("csv: {}", p.display());
}
