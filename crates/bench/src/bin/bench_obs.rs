//! Flight-recorder overhead and record→replay verification, writing
//! `BENCH_obs.json` into the current directory.
//!
//! Per scheduler the binary runs the same fault-injected workload on
//! the paper's 30-node cluster twice — once through the `NullRecorder`
//! (recording off: the steady-state configuration every other bench
//! measures) and once into an in-memory `Journal` — takes the best of
//! several timed repetitions of each, and reports the relative
//! overhead, the event volume, and whether the journal replays to a
//! byte-identical `SimReport` (the run aborts if it does not: this
//! binary doubles as the record→replay acceptance check).
//!
//! `--smoke` runs one dollymp2 cell, writes the journal and the live
//! report under `target/experiments/` for the `dollymp-trace` CLI to
//! verify in CI, and exits non-zero on any divergence — the CI
//! record→replay smoke step.

use dollymp_bench::runner::{cell_seed, json_obj as obj, run_matrix, Parallelism};
use dollymp_bench::{config_fingerprint, out_dir};
use dollymp_cluster::prelude::*;
use dollymp_faults::FaultConfig;
use dollymp_obs::journal::Journal;
use dollymp_obs::registry::MetricsRegistry;
use dollymp_obs::replay;
use dollymp_workload::{generate_google, GoogleConfig};
use std::time::Instant;

const SEED: u64 = 5;
const SCHEDULERS: [&str; 4] = ["dollymp2", "dollymp0", "fifo", "tetris"];

struct Case {
    cluster: ClusterSpec,
    jobs: Vec<dollymp_core::job::JobSpec>,
    sampler: DurationSampler,
    cfg: EngineConfig,
    faults: FaultTimeline,
}

fn case(seed: u64, njobs: usize) -> Case {
    let cluster = ClusterSpec::paper_30_node();
    let jobs = generate_google(&GoogleConfig {
        njobs,
        seed,
        ..Default::default()
    });
    let faults = dollymp_faults::generate(
        &cluster,
        &FaultConfig::new(seed, 400)
            .with_crash_rate(0.001, 15.0)
            .with_fail_slow(0.1, 0.5),
    );
    Case {
        cluster,
        jobs,
        sampler: DurationSampler::new(seed, StragglerModel::ParetoFit),
        cfg: EngineConfig {
            record_utilization: true,
            record_timeline: true,
            ..EngineConfig::default()
        },
        faults,
    }
}

fn run_off(c: &Case, name: &str) -> (SimReport, u64) {
    let mut s = dollymp_schedulers::by_name(name).expect("known scheduler");
    let t0 = Instant::now();
    let r = simulate_with_faults(
        &c.cluster,
        c.jobs.clone(),
        &c.sampler,
        s.as_mut(),
        &c.cfg,
        &c.faults,
    );
    (r, t0.elapsed().as_nanos() as u64)
}

fn run_on(c: &Case, name: &str) -> (SimReport, Journal, u64) {
    let mut s = dollymp_schedulers::by_name(name).expect("known scheduler");
    let mut journal = Journal::for_run(name, SEED, &c.cfg, &c.cfg);
    let t0 = Instant::now();
    let r = simulate_recorded(
        &c.cluster,
        c.jobs.clone(),
        &c.sampler,
        s.as_mut(),
        &c.cfg,
        &c.faults,
        &mut journal,
    );
    (r, journal, t0.elapsed().as_nanos() as u64)
}

fn smoke() -> ! {
    let c = case(cell_seed(SEED, 0), 60);
    let (live, journal, _) = run_on(&c, "dollymp2");
    assert!(
        live.faults.server_crashes > 0,
        "smoke workload must actually exercise the fault path"
    );
    if let Err(d) = replay::verify(&journal, &live) {
        eprintln!("FAIL: {d}");
        std::process::exit(1);
    }
    // Leave the artifacts for the `dollymp-trace verify` CI step.
    let jp = out_dir().join("smoke_journal.jsonl");
    let rp = out_dir().join("smoke_report.json");
    journal.save(&jp).expect("write smoke journal");
    std::fs::write(
        &rp,
        serde_json::to_string_pretty(&live).expect("serializable"),
    )
    .expect("write smoke report");
    println!(
        "smoke OK: {} events replay to a byte-identical report ({} jobs, {} crashes)",
        journal.events.len(),
        live.jobs.len(),
        live.faults.server_crashes
    );
    println!("journal: {}", jp.display());
    println!("report:  {}", rp.display());
    std::process::exit(0);
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
    }

    let c = case(cell_seed(SEED, 0), 120);
    println!(
        "{:<10} {:>12} {:>12} {:>9} {:>9} {:>12}",
        "scheduler", "off_ns", "on_ns", "overhead", "events", "journal_kb"
    );
    // Sequential: wall-clock comparisons must not contend for cores.
    let cells = run_matrix(&SCHEDULERS, Parallelism::Sequential, |_, &name| {
        const REPS: usize = 5;
        let mut off_best = u64::MAX;
        let mut on_best = u64::MAX;
        let mut verified = false;
        let mut events = 0u64;
        let mut journal_bytes = 0u64;
        let mut registry_decision_points = 0u64;
        for _ in 0..REPS {
            let (off_report, off_ns) = run_off(&c, name);
            let (on_report, journal, on_ns) = run_on(&c, name);
            replay::verify(&journal, &on_report).unwrap_or_else(|d| {
                eprintln!("FAIL ({name}): {d}");
                std::process::exit(1);
            });
            // Recorder on/off must not change the simulation itself.
            assert_eq!(
                off_report.jobs, on_report.jobs,
                "{name}: recording perturbed the run"
            );
            let reg = MetricsRegistry::from_events(&journal.events);
            registry_decision_points = reg.counter("decision_points");
            assert_eq!(registry_decision_points, on_report.decision_points);
            off_best = off_best.min(off_ns);
            on_best = on_best.min(on_ns);
            events = journal.events.len() as u64;
            journal_bytes = journal.to_jsonl().len() as u64;
            verified = true;
        }
        let overhead = on_best as f64 / off_best.max(1) as f64 - 1.0;
        println!(
            "{name:<10} {off_best:>12} {on_best:>12} {:>8.1}% {events:>9} {:>12.1}",
            overhead * 100.0,
            journal_bytes as f64 / 1024.0
        );
        obj(vec![
            ("scheduler", serde_json::Value::Str(name.to_string())),
            ("recorder_off_ns", serde_json::Value::UInt(off_best)),
            ("recorder_on_ns", serde_json::Value::UInt(on_best)),
            (
                "overhead_pct",
                serde_json::Value::Float((overhead * 1000.0).round() / 10.0),
            ),
            ("events", serde_json::Value::UInt(events)),
            ("journal_bytes", serde_json::Value::UInt(journal_bytes)),
            (
                "decision_points",
                serde_json::Value::UInt(registry_decision_points),
            ),
            ("replay_verified", serde_json::Value::Bool(verified)),
        ])
    });

    let report = obj(vec![
        (
            "protocol",
            serde_json::Value::Str(
                "paper_30_node, 120 Google-like jobs, fault timeline \
                 (crashes + fail-slow), utilization + timeline recording \
                 on. Best-of-5 wall time per configuration; recorder_off \
                 = NullRecorder (steady-state path), recorder_on = full \
                 in-memory journal. Every recorded run is replay-verified \
                 byte-identical before timing is reported"
                    .to_string(),
            ),
        ),
        (
            "config_fingerprint",
            serde_json::Value::Str(config_fingerprint(SEED, &c.cfg)),
        ),
        ("cells", serde_json::Value::Array(cells)),
    ]);
    let path = "BENCH_obs.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serializable"),
    )
    .expect("write BENCH_obs.json");
    println!("wrote {path}");
}
