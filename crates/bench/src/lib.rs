//! # dollymp-bench
//!
//! The experiment harness that regenerates **every figure of the paper's
//! evaluation** (§2 Fig. 1/2, §6.2 Figs. 4–7, §6.3 Figs. 8–11 and the
//! §6.3.3 overhead numbers), plus the §4.1/§4.2 analysis artifacts.
//!
//! Each `src/bin/figNN_*.rs` binary prints the figure's series to stdout
//! and writes CSV under `target/experiments/`. Binaries accept the
//! `DOLLYMP_SCALE` environment variable (a divisor on workload/cluster
//! size; default runs are scaled down to finish in seconds, `DOLLYMP_SCALE=1`
//! reproduces the paper's full sizes). `all_figures` runs everything.
//!
//! Criterion micro-benchmarks live in `benches/`:
//! `sched_overhead` (the §6.3.3 claim), `knapsack`, `simulator`.

pub mod runner;

use dollymp_cluster::prelude::*;
use dollymp_core::job::JobSpec;
use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Scale divisor from `DOLLYMP_SCALE` (default `def`). 1 = paper scale.
pub fn scale(def: usize) -> usize {
    std::env::var("DOLLYMP_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(def)
}

/// Directory where experiment CSVs land (`target/experiments`).
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Write rows as CSV (first row = header) and return the path.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = out_dir().join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write header");
    for r in rows {
        writeln!(f, "{r}").expect("write row");
    }
    path
}

/// A deterministic fingerprint of a benchmark's configuration: FNV-1a
/// over the seed followed by the config serialized as JSON. Stamped into
/// `BENCH_*.json` artifacts so two result files can be compared at a
/// glance — equal fingerprints mean the runs used identical parameters.
///
/// Delegates to [`dollymp_obs::config_fingerprint`] — journal headers
/// carry the *same* fingerprint, which is how a flight-recorder journal
/// is matched to the bench artifact of the run that produced it.
pub fn config_fingerprint<T: serde::Serialize>(seed: u64, cfg: &T) -> String {
    dollymp_obs::config_fingerprint(seed, cfg)
}

/// Run a named scheduler on a workload and return its report.
pub fn run_named(
    name: &str,
    cluster: &ClusterSpec,
    jobs: &[JobSpec],
    sampler: &DurationSampler,
    cfg: &EngineConfig,
) -> SimReport {
    let mut s =
        dollymp_schedulers::by_name(name).unwrap_or_else(|| panic!("unknown scheduler {name}"));
    simulate(cluster, jobs.to_vec(), sampler, s.as_mut(), cfg)
}

/// Engine config appropriate for a scheduler: progress-monitoring
/// policies (`capacity` with speculation) get a 1-slot tick.
pub fn engine_cfg_for(name: &str) -> EngineConfig {
    if name == "capacity" {
        EngineConfig {
            tick: Some(1),
            ..Default::default()
        }
    } else {
        EngineConfig::default()
    }
}

/// Expected *dominant-share* work of a job, in units of
/// cluster-fraction × slots: `Σ_phases n · θ · d` where `d` is the
/// Eq. (15) dominant share of the phase's demand — i.e. the job's volume
/// with `w = 0`. Using the dominant dimension means the calibration is
/// correct even when memory, not CPU, is the binding resource.
pub fn job_dominant_work(job: &JobSpec, totals: dollymp_core::resources::Resources) -> f64 {
    job.volume(totals, 0.0)
}

/// Re-space a workload's arrivals (Poisson, seeded) so the offered
/// dominant-dimension load on `cluster` is approximately `target_load`
/// (fraction of total capacity busy on average, before straggler
/// inflation and cloning). This is how the trace experiments calibrate
/// "lightly/heavily loaded" independent of the synthetic generator's
/// defaults.
pub fn respace_for_load(jobs: &mut [JobSpec], cluster: &ClusterSpec, target_load: f64, seed: u64) {
    assert!(target_load > 0.0 && target_load.is_finite());
    if jobs.is_empty() {
        return;
    }
    let totals = cluster.totals();
    let total_work: f64 = jobs.iter().map(|j| job_dominant_work(j, totals)).sum();
    let span = total_work / target_load;
    let gap = (span / jobs.len() as f64).max(0.0);
    let arrivals = dollymp_workload::arrivals::poisson(jobs.len(), gap, seed);
    for (j, &a) in jobs.iter_mut().zip(&arrivals) {
        j.arrival = a;
    }
    jobs.sort_by_key(|j| (j.arrival, j.id));
}

/// Sample an empirical CDF at `k` evenly spaced fractions for compact
/// printing: returns `(value, fraction)` pairs.
pub fn cdf_samples(values: &[f64], k: usize) -> Vec<(f64, f64)> {
    let curve = cdf(values.to_vec());
    if curve.is_empty() {
        return Vec::new();
    }
    (1..=k)
        .map(|i| {
            let q = i as f64 / k as f64;
            let idx = ((q * curve.len() as f64).ceil() as usize).clamp(1, curve.len()) - 1;
            curve[idx]
        })
        .collect()
}

/// Pretty-print a compact CDF line: `p10=… p50=… p90=… max=…`.
pub fn cdf_line(values: &[f64]) -> String {
    format!(
        "p10={:.1} p25={:.1} p50={:.1} p75={:.1} p90={:.1} max={:.1}",
        quantile(values, 0.10),
        quantile(values, 0.25),
        quantile(values, 0.50),
        quantile(values, 0.75),
        quantile(values, 0.90),
        quantile(values, 1.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_path() {
        assert!(scale(3) >= 1);
    }

    #[test]
    fn cdf_samples_are_monotone() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = cdf_samples(&v, 10);
        assert_eq!(s.len(), 10);
        for w in s.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert!((s.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn csv_written_to_experiments_dir() {
        let p = write_csv(
            "unit_test.csv",
            "a,b",
            &["1,2".to_string(), "3,4".to_string()],
        );
        let text = std::fs::read_to_string(&p).unwrap();
        assert!(text.starts_with("a,b\n1,2\n3,4"));
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn cdf_line_mentions_all_quantiles() {
        let line = cdf_line(&[1.0, 2.0, 3.0]);
        for q in ["p10", "p25", "p50", "p75", "p90", "max"] {
            assert!(line.contains(q));
        }
    }

    #[test]
    fn respace_hits_the_target_load() {
        use dollymp_workload::{generate_google, GoogleConfig};
        let cluster = ClusterSpec::homogeneous(50, 16.0, 32.0);
        let mut jobs = generate_google(&GoogleConfig {
            njobs: 500,
            ..Default::default()
        });
        respace_for_load(&mut jobs, &cluster, 0.5, 7);
        let totals = cluster.totals();
        let work: f64 = jobs.iter().map(|j| job_dominant_work(j, totals)).sum();
        let span = jobs.last().unwrap().arrival - jobs.first().unwrap().arrival;
        let load = work / span as f64;
        assert!(
            (load - 0.5).abs() < 0.1,
            "offered load {load} should be ≈ 0.5"
        );
        // Arrivals sorted, ids preserved.
        assert!(jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn fingerprint_is_deterministic_and_sensitive() {
        let cfg = ("paper_30_node", vec![0.0, 1e-3]);
        let a = config_fingerprint(7, &cfg);
        let b = config_fingerprint(7, &cfg);
        assert_eq!(a, b, "same seed + config ⇒ same fingerprint");
        assert_eq!(a.len(), 16);
        assert_ne!(a, config_fingerprint(8, &cfg), "seed changes it");
        let other = ("paper_30_node", vec![0.0]);
        assert_ne!(a, config_fingerprint(7, &other), "config changes it");
    }

    #[test]
    fn engine_cfg_gives_capacity_a_tick() {
        assert_eq!(engine_cfg_for("capacity").tick, Some(1));
        assert_eq!(engine_cfg_for("dollymp2").tick, None);
    }
}
