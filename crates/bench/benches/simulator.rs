//! End-to-end simulator throughput: how fast the engine drives a full
//! workload under each scheduler family. Guards against regressions in
//! the engine's event loop and the schedulers' placement passes.

use criterion::{criterion_group, criterion_main, Criterion};
use dollymp_bench::run_named;
use dollymp_cluster::prelude::*;
use dollymp_workload::{generate_google, GoogleConfig};
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let cluster = ClusterSpec::google_like(200, 3);
    let jobs = generate_google(&GoogleConfig {
        njobs: 200,
        mean_gap_slots: 2.0,
        seed: 3,
        ..Default::default()
    });
    let sampler = DurationSampler::new(3, StragglerModel::google_traces());

    for name in ["fifo", "tetris", "drf", "dollymp2"] {
        c.bench_function(&format!("simulate_200jobs_200servers_{name}"), |b| {
            b.iter(|| {
                black_box(run_named(
                    name,
                    &cluster,
                    &jobs,
                    &sampler,
                    &EngineConfig::default(),
                ))
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulation
}
criterion_main!(benches);
