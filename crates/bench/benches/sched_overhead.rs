//! §6.3.3 — scheduling overhead.
//!
//! The paper: *"the scheduler takes less than 20 ms to make scheduling
//! decisions for all jobs in our private cluster"* and *"scheduling 1K
//! jobs to 30K machines costs less than 50 ms"*.
//!
//! Two benchmarks:
//! * `transient_N_jobs` — Algorithm 1 priority recomputation (what runs
//!   on every arrival);
//! * `schedule_pass_30k_servers_1k_jobs` — one full DollyMP placement
//!   pass over a 30 000-server view with 1 000 active jobs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dollymp_cluster::prelude::*;
use dollymp_cluster::view::ClusterView;
use dollymp_core::prelude::*;
use dollymp_core::speedup::SpeedupFn;
use std::collections::BTreeMap;
use std::hint::black_box;

fn transient_inputs(n: usize) -> Vec<TransientJob> {
    (0..n)
        .map(|i| TransientJob {
            id: JobId(i as u64),
            volume: 0.1 + (i % 97) as f64 * 0.37,
            etime: 1.0 + (i % 53) as f64 * 1.9,
            dominant: 0.0001 + (i % 11) as f64 * 0.0003,
            speedup: SpeedupFn::Pareto { alpha: 2.0 },
        })
        .collect()
}

fn bench_transient(c: &mut Criterion) {
    let cfg = TransientConfig::default();
    for &n in &[100usize, 1000] {
        let jobs = transient_inputs(n);
        c.bench_function(&format!("transient_{n}_jobs"), |b| {
            b.iter(|| transient_schedule(black_box(&jobs), black_box(&cfg)))
        });
    }
}

fn bench_schedule_pass(c: &mut Criterion) {
    let servers = 30_000u32;
    let njobs = 1_000u64;
    let cluster = ClusterSpec::google_like(servers, 1);
    let free = dollymp_cluster::capacity::CapacityIndex::from_capacities(&cluster);

    // 1 000 active jobs, each with a handful of ready tasks.
    let mut jobs: BTreeMap<JobId, dollymp_cluster::state::JobState> = BTreeMap::new();
    for i in 0..njobs {
        let spec = JobSpec::single_phase(
            JobId(i),
            4,
            Resources::new(1.0 + (i % 3) as f64, 2.0),
            10.0 + (i % 7) as f64,
            4.0,
        );
        let tables = vec![vec![10.0; 4]];
        jobs.insert(
            JobId(i),
            dollymp_cluster::state::JobState::new(spec, tables),
        );
    }

    c.bench_function("schedule_pass_30k_servers_1k_jobs", |b| {
        b.iter_batched(
            || {
                let mut s = dollymp_schedulers::DollyMP::new();
                // Priority refresh (the on-arrival path).
                let view = ClusterView::new(0, &cluster, &free, &jobs);
                s.on_job_arrival(&view, JobId(0));
                s
            },
            |mut s| {
                let view = ClusterView::new(0, &cluster, &free, &jobs);
                black_box(s.schedule(&view))
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_transient, bench_schedule_pass
}
criterion_main!(benches);
