//! Micro-benchmarks of the knapsack oracle (Algorithm 1, step 6) and the
//! exact DP it is validated against — the oracle must stay cheap because
//! it runs once per doubling level on every job arrival.

use criterion::{criterion_group, criterion_main, Criterion};
use dollymp_core::knapsack::{knapsack_01_dp, unit_profit_knapsack};
use std::hint::black_box;

fn weights(n: usize) -> Vec<f64> {
    (0..n).map(|i| 0.1 + (i % 101) as f64 * 0.73).collect()
}

fn bench_oracle(c: &mut Criterion) {
    for &n in &[100usize, 1_000, 10_000] {
        let w = weights(n);
        let cap = w.iter().sum::<f64>() / 3.0;
        c.bench_function(&format!("unit_profit_knapsack_{n}"), |b| {
            b.iter(|| unit_profit_knapsack(black_box(&w), black_box(cap)))
        });
    }
}

fn bench_dp(c: &mut Criterion) {
    let n = 200;
    let w: Vec<u64> = (0..n).map(|i| 1 + (i % 37) as u64).collect();
    let p: Vec<u64> = (0..n).map(|i| 1 + (i % 13) as u64).collect();
    c.bench_function("knapsack_01_dp_200x2000", |b| {
        b.iter(|| knapsack_01_dp(black_box(&w), black_box(&p), black_box(2_000)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_oracle, bench_dp
}
criterion_main!(benches);
