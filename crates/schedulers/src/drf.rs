//! Dominant Resource Fairness (Ghodsi et al., NSDI 2011) — §6.1: *"DRF is
//! a widely-adopted fair algorithm under which it offers resources to the
//! job whose dominant resource's allocation is furthest from its fair
//! share."*
//!
//! Implemented as progressive filling: repeatedly offer one task's worth
//! of resources to the active job with the smallest current dominant
//! share (ties by job id), until nothing fits. Shares are computed from
//! the resources the job's live copies actually hold, plus what this batch
//! has tentatively granted. No cloning — DRF spends every resource on
//! distinct tasks.

use crate::common::{ready_tasks_of, FreeTracker, ReadyTask};
use dollymp_cluster::prelude::*;
use dollymp_core::job::JobId;
use dollymp_core::resources::{dominant_share, Resources};
use std::collections::HashMap;

/// The DRF progressive-filling scheduler.
#[derive(Debug, Clone, Default)]
pub struct Drf;

/// Resources currently held by a job's live copies.
pub(crate) fn allocated(job: &JobState) -> Resources {
    let mut total = Resources::ZERO;
    for task in job.running_tasks() {
        let demand = job.spec().phase(task.phase).demand;
        let live = job.task(task.phase, task.task).live_copies() as u64;
        total += demand * live;
    }
    total
}

impl Scheduler for Drf {
    fn name(&self) -> String {
        "drf".into()
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        let totals = view.totals();
        let mut free = FreeTracker::new(view);
        let mut out = Vec::new();

        // Current dominant share and pending ready tasks per job.
        let mut share: HashMap<JobId, f64> = HashMap::new();
        let mut ready: HashMap<JobId, Vec<ReadyTask>> = HashMap::new();
        for job in view.jobs() {
            share.insert(job.id(), dominant_share(allocated(job), totals));
            let rts = ready_tasks_of(job);
            if !rts.is_empty() {
                ready.insert(job.id(), rts);
            }
        }

        loop {
            // Job with the smallest dominant share that still has a task
            // fitting somewhere.
            let mut pick: Option<(f64, JobId)> = None;
            for (&jid, tasks) in &ready {
                if !tasks.iter().any(|rt| free.fits_anywhere(rt.demand)) {
                    continue;
                }
                let s = share[&jid];
                match pick {
                    Some((bs, bj)) if (s, jid) >= (bs, bj) => {}
                    _ => pick = Some((s, jid)),
                }
            }
            let Some((_, jid)) = pick else { break };
            let tasks = ready.get_mut(&jid).expect("picked from map");
            let idx = tasks
                .iter()
                .position(|rt| free.fits_anywhere(rt.demand))
                .expect("checked above");
            let rt = tasks.remove(idx);
            if tasks.is_empty() {
                ready.remove(&jid);
            }
            let server = free.first_fit(rt.demand).expect("fits somewhere");
            free.commit(server, rt.demand);
            free.note_copy(rt.task);
            *share.get_mut(&jid).expect("tracked") += dominant_share(rt.demand, totals);
            out.push(Assignment {
                task: rt.task,
                server,
                kind: CopyKind::Primary,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dollymp_cluster::engine::{simulate, EngineConfig};
    use dollymp_core::job::JobSpec;

    fn det() -> DurationSampler {
        DurationSampler::new(1, StragglerModel::Deterministic)
    }

    #[test]
    fn splits_capacity_between_equal_jobs() {
        // 4 slots of capacity, two jobs with 4 unit tasks each: DRF gives
        // each job 2 concurrent tasks, so both finish at 2 waves × 5 slots.
        let cluster = ClusterSpec::homogeneous(1, 4.0, 4.0);
        let jobs: Vec<JobSpec> = (0..2)
            .map(|i| JobSpec::single_phase(JobId(i), 4, Resources::new(1.0, 1.0), 5.0, 0.0))
            .collect();
        let mut s = Drf;
        let r = simulate(&cluster, jobs, &det(), &mut s, &EngineConfig::default());
        let by_id = r.by_id();
        assert_eq!(by_id[&JobId(0)].flowtime, 10);
        assert_eq!(by_id[&JobId(1)].flowtime, 10);
    }

    #[test]
    fn favors_the_job_with_lower_dominant_share() {
        // Job 0 is CPU-dominant, job 1 memory-dominant; with equalized
        // dominant shares both make progress together instead of one
        // hogging the cluster.
        let cluster = ClusterSpec::homogeneous(1, 8.0, 8.0);
        let cpu_heavy = JobSpec::single_phase(JobId(0), 8, Resources::new(2.0, 0.5), 5.0, 0.0);
        let mem_heavy = JobSpec::single_phase(JobId(1), 8, Resources::new(0.5, 2.0), 5.0, 0.0);
        let mut s = Drf;
        let r = simulate(
            &cluster,
            vec![cpu_heavy, mem_heavy],
            &det(),
            &mut s,
            &EngineConfig::default(),
        );
        let by_id = r.by_id();
        // Mixed packing lets ~3+3 tasks run per wave; both jobs finish in
        // roughly the same number of waves — neither is starved.
        let f0 = by_id[&JobId(0)].flowtime as f64;
        let f1 = by_id[&JobId(1)].flowtime as f64;
        assert!((f0 - f1).abs() / f0.max(f1) < 0.5, "f0={f0} f1={f1}");
    }

    #[test]
    fn never_clones() {
        let cluster = ClusterSpec::homogeneous(6, 4.0, 4.0);
        let jobs: Vec<JobSpec> = (0..2)
            .map(|i| JobSpec::single_phase(JobId(i), 2, Resources::new(1.0, 1.0), 8.0, 4.0))
            .collect();
        let sampler = DurationSampler::new(5, StragglerModel::ParetoFit);
        let mut s = Drf;
        let r = simulate(&cluster, jobs, &sampler, &mut s, &EngineConfig::default());
        assert!(r.jobs.iter().all(|j| j.clone_copies == 0));
    }

    #[test]
    fn work_conserving_under_single_job() {
        let cluster = ClusterSpec::homogeneous(2, 2.0, 2.0);
        let job = JobSpec::single_phase(JobId(0), 4, Resources::new(1.0, 1.0), 3.0, 0.0);
        let mut s = Drf;
        let r = simulate(
            &cluster,
            vec![job],
            &det(),
            &mut s,
            &EngineConfig::default(),
        );
        // All 4 tasks fit at once (2 servers × 2 slots).
        assert_eq!(r.jobs[0].flowtime, 3);
    }
}
