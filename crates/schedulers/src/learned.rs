//! Online learning of straggler-prone servers — the paper's stated
//! future work (§8: *"we plan to apply online learning methods to quickly
//! identify those servers that can easily lead to stragglers"*),
//! implemented here as an optional extension of DollyMP.
//!
//! [`ServerReputation`] keeps a per-server streaming estimate of the
//! *slowdown ratio* — the winning copy's observed duration over its
//! phase's mean `θ` — shrunk toward 1 by a configurable pseudo-count
//! prior so that a server is only condemned (or celebrated) after real
//! evidence accumulates. [`LearnedDollyMP`] feeds the estimator from job
//! completion records and hands DollyMP a server *visit order* sorted
//! fastest-first, so primaries and clones preferentially land on
//! machines with good track records while slow machines only receive
//! work once the fast ones are full.

use crate::dollymp::DollyMP;
use dollymp_cluster::prelude::*;
use dollymp_core::job::JobId;
use dollymp_core::stats::RunningStats;
use serde::{Deserialize, Serialize};

/// Streaming per-server slowdown estimator with a shrinkage prior.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServerReputation {
    stats: Vec<RunningStats>,
    /// Pseudo-observations of ratio 1.0 blended into every estimate, so
    /// cold servers look nominal and a single unlucky task cannot
    /// blacklist a machine.
    prior_weight: f64,
}

impl ServerReputation {
    /// A fresh estimator with the default prior weight (4 pseudo-samples).
    pub fn new() -> Self {
        ServerReputation {
            stats: Vec::new(),
            prior_weight: 4.0,
        }
    }

    /// Record one completed task: its winning copy ran on `server` and
    /// took `observed` slots against a phase mean of `theta`.
    pub fn observe(&mut self, server: ServerId, observed: f64, theta: f64) {
        if theta <= 0.0 || observed <= 0.0 || theta.is_nan() || observed.is_nan() {
            return;
        }
        let idx = server.0 as usize;
        if self.stats.len() <= idx {
            self.stats.resize(idx + 1, RunningStats::new());
        }
        self.stats[idx].push(observed / theta);
    }

    /// Estimated slowdown ratio of a server (1.0 = nominal, larger =
    /// straggler-prone), shrunk toward 1 by the prior.
    pub fn slowdown(&self, server: ServerId) -> f64 {
        match self.stats.get(server.0 as usize) {
            Some(s) if s.count() > 0 => {
                let n = s.count() as f64;
                (n * s.mean() + self.prior_weight) / (n + self.prior_weight)
            }
            _ => 1.0,
        }
    }

    /// Samples observed for a server.
    pub fn samples(&self, server: ServerId) -> u64 {
        self.stats
            .get(server.0 as usize)
            .map(|s| s.count())
            .unwrap_or(0)
    }

    /// Server ids `0..n` sorted fastest-first (ties by id — stable and
    /// deterministic).
    pub fn fastest_first(&self, n: usize) -> Vec<ServerId> {
        let mut order: Vec<ServerId> = (0..n as u32).map(ServerId).collect();
        order.sort_by(|a, b| {
            self.slowdown(*a)
                .partial_cmp(&self.slowdown(*b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        order
    }
}

/// DollyMP with the §8 server-reputation extension: identical policy,
/// but servers are visited fastest-first in both placement passes.
#[derive(Debug, Clone)]
pub struct LearnedDollyMP {
    inner: DollyMP,
    reputation: ServerReputation,
}

impl LearnedDollyMP {
    /// Learned DollyMP^`clones`.
    pub fn with_clones(clones: u32) -> Self {
        LearnedDollyMP {
            inner: DollyMP::with_clones(clones),
            reputation: ServerReputation::new(),
        }
    }

    /// The paper-default two-clone variant.
    pub fn new() -> Self {
        LearnedDollyMP::with_clones(2)
    }

    /// Read access to the learned reputations (for analysis binaries).
    pub fn reputation(&self) -> &ServerReputation {
        &self.reputation
    }
}

impl Default for LearnedDollyMP {
    fn default() -> Self {
        LearnedDollyMP::new()
    }
}

impl Scheduler for LearnedDollyMP {
    fn name(&self) -> String {
        format!("learned-{}", self.inner.name())
    }

    fn on_job_arrival(&mut self, view: &ClusterView<'_>, job: JobId) {
        self.inner.on_job_arrival(view, job);
    }

    fn on_job_finish(&mut self, job: &JobState) {
        for (server, _phase, observed, theta) in job.completion_records() {
            self.reputation.observe(server, observed, theta);
        }
        self.inner.on_job_finish(job);
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        let order = self.reputation.fastest_first(view.cluster().len());
        self.inner.schedule_with_server_order(view, &order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dollymp_cluster::engine::{simulate, EngineConfig};
    use dollymp_core::job::JobSpec;
    use dollymp_core::resources::Resources;

    #[test]
    fn reputation_shrinks_toward_one() {
        let mut r = ServerReputation::new();
        assert_eq!(r.slowdown(ServerId(5)), 1.0, "cold server is nominal");
        r.observe(ServerId(0), 40.0, 10.0); // one 4× straggle
        let s = r.slowdown(ServerId(0));
        assert!(s > 1.0 && s < 4.0, "shrinkage keeps {s} between 1 and 4");
        for _ in 0..50 {
            r.observe(ServerId(0), 40.0, 10.0);
        }
        assert!(r.slowdown(ServerId(0)) > 3.5, "evidence overwhelms prior");
    }

    #[test]
    fn degenerate_observations_ignored() {
        let mut r = ServerReputation::new();
        r.observe(ServerId(0), 10.0, 0.0);
        r.observe(ServerId(0), 0.0, 10.0);
        assert_eq!(r.samples(ServerId(0)), 0);
    }

    #[test]
    fn fastest_first_orders_by_slowdown() {
        let mut r = ServerReputation::new();
        for _ in 0..20 {
            r.observe(ServerId(1), 30.0, 10.0); // slow
            r.observe(ServerId(2), 8.0, 10.0); // fast
        }
        let order = r.fastest_first(3);
        assert_eq!(order[0], ServerId(2), "fastest first");
        assert_eq!(order[2], ServerId(1), "slowest last");
    }

    #[test]
    fn learner_avoids_the_slow_server_after_warmup() {
        // One badly slow server among four. After a warm-up stream of
        // jobs, the learner must beat vanilla DollyMP because primaries
        // stop landing on the slow machine.
        let cluster = ClusterSpec::new(vec![
            ServerSpec::new(4.0, 8.0),
            ServerSpec::new(4.0, 8.0).with_speed(0.2), // 5× slow
            ServerSpec::new(4.0, 8.0),
            ServerSpec::new(4.0, 8.0),
        ]);
        let jobs: Vec<JobSpec> = (0..40u64)
            .map(|i| {
                JobSpec::builder(JobId(i))
                    .arrival(i * 12)
                    .phase(dollymp_core::job::PhaseSpec::new(
                        6,
                        Resources::new(2.0, 4.0),
                        10.0,
                        0.0,
                    ))
                    .build()
                    .unwrap()
            })
            .collect();
        let sampler = DurationSampler::new(3, StragglerModel::Deterministic);
        let mut vanilla = DollyMP::with_clones(0);
        let base = simulate(
            &cluster,
            jobs.clone(),
            &sampler,
            &mut vanilla,
            &EngineConfig::default(),
        );
        let mut learned = LearnedDollyMP::with_clones(0);
        let smart = simulate(
            &cluster,
            jobs,
            &sampler,
            &mut learned,
            &EngineConfig::default(),
        );
        assert!(
            smart.total_flowtime() < base.total_flowtime(),
            "learned {} should beat vanilla {}",
            smart.total_flowtime(),
            base.total_flowtime()
        );
        // The slow server's reputation reflects reality.
        assert!(learned.reputation().slowdown(ServerId(1)) > 1.5);
        assert!(learned.reputation().slowdown(ServerId(0)) < 1.5);
    }

    #[test]
    fn name_reflects_wrapper() {
        assert_eq!(LearnedDollyMP::new().name(), "learned-dollymp2");
    }
}
