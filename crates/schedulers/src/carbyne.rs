//! The Carbyne scheduler (Grandl et al., OSDI 2016) — §6.1/§6.3.2: *"The
//! Carbyne Scheduler adopts ideas from DRF and Tetris, and applies
//! altruistic scheduling to collect leftover resources. The leftover
//! resources are then redistributed to other tasks for achieving better
//! job performance and cluster efficiency."*
//!
//! Carbyne's full system is considerably larger (per-job deadline
//! estimation, plan-ahead); we implement its published core loop, as
//! documented in DESIGN.md/EXPERIMENTS.md:
//!
//! 1. **Fair pass** — DRF progressive filling, but a job stops receiving
//!    resources once its dominant share reaches its fair share `1/N`
//!    (jobs are *entitled* to fairness but not more);
//! 2. **Altruistic pass** — the leftover capacity is redistributed to
//!    ready tasks in SRPT order with Tetris best-fit placement, which is
//!    what "redistributed … for better job performance (completion time)
//!    and cluster efficiency (packing)" amounts to.
//!
//! No cloning — like the other baselines, Carbyne spends resources on
//! distinct tasks only.

use crate::common::{ready_tasks_of, FreeTracker, ReadyTask};
use crate::drf::allocated;
use dollymp_cluster::prelude::*;
use dollymp_core::job::JobId;
use dollymp_core::resources::dominant_share;
use std::collections::HashMap;

/// The Carbyne-style altruistic scheduler.
#[derive(Debug, Clone, Default)]
pub struct Carbyne;

impl Scheduler for Carbyne {
    fn name(&self) -> String {
        "carbyne".into()
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        let totals = view.totals();
        let n_jobs = view.num_jobs().max(1);
        let fair = 1.0 / n_jobs as f64;
        let mut free = FreeTracker::new(view);
        let mut out = Vec::new();

        let mut share: HashMap<JobId, f64> = HashMap::new();
        let mut ready: HashMap<JobId, Vec<ReadyTask>> = HashMap::new();
        let mut srpt: Vec<(f64, JobId)> = Vec::new();
        for job in view.jobs() {
            share.insert(job.id(), dominant_share(allocated(job), totals));
            let rts = ready_tasks_of(job);
            if !rts.is_empty() {
                ready.insert(job.id(), rts);
            }
            srpt.push((job.remaining_etime(0.0), job.id()));
        }
        srpt.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

        // Pass 1: DRF up to the fair share.
        loop {
            let mut pick: Option<(f64, JobId)> = None;
            for (&jid, tasks) in &ready {
                if share[&jid] >= fair {
                    continue;
                }
                if !tasks.iter().any(|rt| free.fits_anywhere(rt.demand)) {
                    continue;
                }
                let s = share[&jid];
                match pick {
                    Some((bs, bj)) if (s, jid) >= (bs, bj) => {}
                    _ => pick = Some((s, jid)),
                }
            }
            let Some((_, jid)) = pick else { break };
            let tasks = ready.get_mut(&jid).expect("picked");
            let idx = tasks
                .iter()
                .position(|rt| free.fits_anywhere(rt.demand))
                .expect("checked");
            let rt = tasks.remove(idx);
            if tasks.is_empty() {
                ready.remove(&jid);
            }
            let server = free.best_fit(rt.demand).expect("fits somewhere");
            free.commit(server, rt.demand);
            free.note_copy(rt.task);
            *share.get_mut(&jid).expect("tracked") += dominant_share(rt.demand, totals);
            out.push(Assignment {
                task: rt.task,
                server,
                kind: CopyKind::Primary,
            });
        }

        // Pass 2: altruistic redistribution of leftovers, SRPT order.
        for &(_, jid) in &srpt {
            let Some(tasks) = ready.get_mut(&jid) else {
                continue;
            };
            let mut i = 0;
            while i < tasks.len() {
                if let Some(server) = free.best_fit(tasks[i].demand) {
                    let rt = tasks.remove(i);
                    free.commit(server, rt.demand);
                    free.note_copy(rt.task);
                    out.push(Assignment {
                        task: rt.task,
                        server,
                        kind: CopyKind::Primary,
                    });
                } else {
                    i += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dollymp_cluster::engine::{simulate, EngineConfig};
    use dollymp_core::job::JobSpec;
    use dollymp_core::resources::Resources;

    fn det() -> DurationSampler {
        DurationSampler::new(1, StragglerModel::Deterministic)
    }

    #[test]
    fn leftovers_go_to_short_jobs() {
        // Two jobs: a long one with many tasks and a short one with many
        // tasks. Fair share caps each at half the cluster; leftovers (the
        // other half when one job can't use its share) accelerate the
        // short job first.
        let cluster = ClusterSpec::homogeneous(1, 4.0, 4.0);
        let long = JobSpec::single_phase(JobId(0), 8, Resources::new(1.0, 1.0), 20.0, 0.0);
        let short = JobSpec::single_phase(JobId(1), 8, Resources::new(1.0, 1.0), 2.0, 0.0);
        let mut s = Carbyne;
        let r = simulate(
            &cluster,
            vec![long, short],
            &det(),
            &mut s,
            &EngineConfig::default(),
        );
        let by_id = r.by_id();
        assert!(
            by_id[&JobId(1)].flowtime < by_id[&JobId(0)].flowtime,
            "short job must finish first under altruism"
        );
    }

    #[test]
    fn single_job_gets_the_whole_cluster() {
        // Altruistic pass must make Carbyne work-conserving: with one job,
        // its fair share is 1 and everything fits at once anyway.
        let cluster = ClusterSpec::homogeneous(2, 2.0, 2.0);
        let job = JobSpec::single_phase(JobId(0), 4, Resources::new(1.0, 1.0), 3.0, 0.0);
        let mut s = Carbyne;
        let r = simulate(
            &cluster,
            vec![job],
            &det(),
            &mut s,
            &EngineConfig::default(),
        );
        assert_eq!(r.jobs[0].flowtime, 3);
    }

    #[test]
    fn fair_pass_caps_a_greedy_job() {
        // Job 0 has 8 ready tasks, job 1 has 2; with fair share = 1/2 of
        // a 4-slot cluster, job 0 gets 2 slots in pass 1 and job 1 gets
        // its 2 — job 1 must finish in one wave.
        let cluster = ClusterSpec::homogeneous(1, 4.0, 4.0);
        let greedy = JobSpec::single_phase(JobId(0), 8, Resources::new(1.0, 1.0), 5.0, 0.0);
        let meek = JobSpec::single_phase(JobId(1), 2, Resources::new(1.0, 1.0), 5.0, 0.0);
        let mut s = Carbyne;
        let r = simulate(
            &cluster,
            vec![greedy, meek],
            &det(),
            &mut s,
            &EngineConfig::default(),
        );
        let by_id = r.by_id();
        assert_eq!(by_id[&JobId(1)].flowtime, 5, "meek job unharmed");
    }

    #[test]
    fn never_clones() {
        let cluster = ClusterSpec::homogeneous(6, 4.0, 4.0);
        let jobs: Vec<JobSpec> = (0..2)
            .map(|i| JobSpec::single_phase(JobId(i), 2, Resources::new(1.0, 1.0), 8.0, 4.0))
            .collect();
        let sampler = DurationSampler::new(5, StragglerModel::ParetoFit);
        let mut s = Carbyne;
        let r = simulate(&cluster, jobs, &sampler, &mut s, &EngineConfig::default());
        assert!(r.jobs.iter().all(|j| j.clone_copies == 0));
    }
}
