//! An intentionally misbehaving policy for exercising the containment
//! layer.
//!
//! [`AdversarialScheduler`] commits, on a rotating per-pass basis, every
//! sin the engine's admission rules forbid: over-committing free
//! capacity, targeting crashed or nonexistent servers, naming unknown
//! jobs, duplicating primaries, stalling (empty batches with runnable
//! work), busy-waiting past the watchdog budget, and outright panicking.
//! Wrapped in `GuardedScheduler` it must never take a run down — that is
//! exactly what `tests/guard.rs` proves. It is deliberately *not*
//! registered in [`crate::by_name`] / [`crate::ALL_NAMES`]: those
//! enumerate real policies that must survive *unguarded* strict runs.

use dollymp_cluster::prelude::*;
use dollymp_core::job::{JobId, PhaseId, TaskId, TaskRef};
use std::collections::BTreeSet;
use std::time::Duration;

/// Which misbehaviours the adversary is allowed to commit.
///
/// Every flag defaults to on except the two that end the policy's useful
/// life in one pass (`panic_once`) or wreck wall-clock time in tests
/// (`busy_wait`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdversarialConfig {
    /// Emit assignments that over-commit a server's free capacity
    /// (the legal batch repeated verbatim).
    pub overcommit: bool,
    /// Target servers it has seen crash (and a nonexistent server id).
    pub target_down: bool,
    /// Emit duplicate primaries for already-placed tasks.
    pub duplicate: bool,
    /// Emit assignments for a job id that does not exist.
    pub unknown_job: bool,
    /// Return an empty batch even with runnable work (stall).
    pub stall: bool,
    /// Panic inside `schedule` (once — the guard quarantines on it).
    pub panic_once: bool,
    /// Spin for this long each pass to blow the watchdog budget.
    pub busy_wait: Option<Duration>,
}

impl Default for AdversarialConfig {
    fn default() -> Self {
        AdversarialConfig {
            overcommit: true,
            target_down: true,
            duplicate: true,
            unknown_job: true,
            stall: true,
            panic_once: false,
            busy_wait: None,
        }
    }
}

impl AdversarialConfig {
    /// Everything on, including the panic and a 1 ms busy-wait.
    pub fn full_hostility() -> Self {
        AdversarialConfig {
            panic_once: true,
            busy_wait: Some(Duration::from_millis(1)),
            ..AdversarialConfig::default()
        }
    }
}

/// The misbehaving policy itself. Internally it produces a *legal*
/// first-fit batch each pass (so runs still make progress between
/// attacks), then corrupts it according to the enabled mode for that
/// pass, cycling through the enabled modes round-robin.
#[derive(Debug)]
pub struct AdversarialScheduler {
    cfg: AdversarialConfig,
    /// Decision passes seen so far (selects this pass's attack).
    passes: u64,
    /// Servers currently down, learned from the engine's fault hooks —
    /// the "insider knowledge" that makes `target_down` reliable.
    down: BTreeSet<ServerId>,
    panicked: bool,
}

/// The attacks the adversary cycles through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Attack {
    OverCommit,
    TargetDown,
    Duplicate,
    UnknownJob,
    Stall,
    BusyWait,
    Panic,
}

impl AdversarialScheduler {
    /// Adversary with the default (non-panicking) misbehaviour set.
    pub fn new() -> Self {
        Self::with_config(AdversarialConfig::default())
    }

    /// Adversary with an explicit misbehaviour set.
    pub fn with_config(cfg: AdversarialConfig) -> Self {
        AdversarialScheduler {
            cfg,
            passes: 0,
            down: BTreeSet::new(),
            panicked: false,
        }
    }

    fn enabled_attacks(&self) -> Vec<Attack> {
        let mut v = Vec::new();
        if self.cfg.overcommit {
            v.push(Attack::OverCommit);
        }
        if self.cfg.target_down {
            v.push(Attack::TargetDown);
        }
        if self.cfg.duplicate {
            v.push(Attack::Duplicate);
        }
        if self.cfg.unknown_job {
            v.push(Attack::UnknownJob);
        }
        if self.cfg.stall {
            v.push(Attack::Stall);
        }
        if self.cfg.busy_wait.is_some() {
            v.push(Attack::BusyWait);
        }
        if self.cfg.panic_once && !self.panicked {
            v.push(Attack::Panic);
        }
        v
    }
}

impl Default for AdversarialScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for AdversarialScheduler {
    fn name(&self) -> String {
        "adversarial".into()
    }

    fn on_server_down(&mut self, _view: &ClusterView<'_>, server: ServerId) {
        self.down.insert(server);
    }

    fn on_server_up(&mut self, _view: &ClusterView<'_>, server: ServerId) {
        self.down.remove(&server);
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        let attacks = self.enabled_attacks();
        let attack = attacks
            .get((self.passes as usize) % attacks.len().max(1))
            .copied();
        self.passes += 1;

        let mut batch = FifoFirstFit.schedule(view);
        match attack {
            None => batch,
            Some(Attack::OverCommit) => {
                // Repeat the legal batch: the repeats are duplicate
                // primaries and/or over-commitments.
                let extra = batch.clone();
                batch.extend(extra);
                batch
            }
            Some(Attack::TargetDown) => {
                // Redirect half the batch to a crashed server if one is
                // known, and always append one launch on a server id
                // past the end of the cluster.
                if let Some(&dead) = self.down.iter().next() {
                    for a in batch.iter_mut().skip(1).step_by(2) {
                        a.server = dead;
                    }
                }
                if let Some(first) = batch.first().copied() {
                    batch.push(Assignment {
                        server: ServerId(view.cluster().len() as u32 + 7),
                        ..first
                    });
                }
                batch
            }
            Some(Attack::Duplicate) => {
                if let Some(first) = batch.first().copied() {
                    batch.push(first);
                }
                batch
            }
            Some(Attack::UnknownJob) => {
                batch.push(Assignment {
                    task: TaskRef {
                        job: JobId(u64::MAX),
                        phase: PhaseId(0),
                        task: TaskId(0),
                    },
                    server: ServerId(0),
                    kind: CopyKind::Primary,
                });
                batch
            }
            Some(Attack::Stall) => Vec::new(),
            Some(Attack::BusyWait) => {
                let dur = self.cfg.busy_wait.unwrap_or(Duration::ZERO);
                let t0 = std::time::Instant::now();
                while t0.elapsed() < dur {
                    std::hint::spin_loop();
                }
                batch
            }
            Some(Attack::Panic) => {
                self.panicked = true;
                panic!("adversarial scheduler panicking on purpose");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dollymp_cluster::engine::{try_simulate, EngineConfig};
    use dollymp_cluster::guard::{GuardConfig, GuardedScheduler};
    use dollymp_core::job::JobSpec;
    use dollymp_core::resources::Resources;

    fn workload() -> (ClusterSpec, Vec<JobSpec>, DurationSampler) {
        let cluster = ClusterSpec::homogeneous(4, 8.0, 16.0);
        let jobs = (0..5u64)
            .map(|i| JobSpec::single_phase(JobId(i), 4, Resources::new(2.0, 4.0), 10.0, 3.0))
            .collect();
        (
            cluster,
            jobs,
            DurationSampler::new(3, StragglerModel::ParetoFit),
        )
    }

    #[test]
    fn unguarded_adversary_errors_instead_of_completing() {
        let (cluster, jobs, sampler) = workload();
        let mut adv = AdversarialScheduler::new();
        let res = try_simulate(&cluster, jobs, &sampler, &mut adv, &EngineConfig::default());
        assert!(res.is_err(), "strict mode must refuse the adversary");
    }

    #[test]
    fn guarded_adversary_completes_with_nonzero_stats() {
        let (cluster, jobs, sampler) = workload();
        let mut guard = GuardedScheduler::with_config(
            AdversarialScheduler::with_config(AdversarialConfig::full_hostility()),
            GuardConfig {
                budget: std::time::Duration::from_micros(200),
                ..GuardConfig::default()
            },
        );
        let report = try_simulate(
            &cluster,
            jobs,
            &sampler,
            &mut guard,
            &EngineConfig::default(),
        )
        .expect("guard contains the adversary");
        assert_eq!(report.jobs.len(), 5, "every job completes");
        assert!(!report.guard.is_clean());
        assert!(report.guard.total_rejections() > 0);
    }
}
