//! The classical priority baselines of §4.2: **SRPT** (shortest remaining
//! processing time first) and **SVF** (smallest volume first).
//!
//! Both are list schedulers: jobs are ranked by a scalar, then every ready
//! task is placed first-fit in that order. The paper's §4.2 discusses why
//! each is individually insufficient — SRPT fragments multi-dimensional
//! resources, SVF starves large-demand jobs — which is what Algorithm 1's
//! knapsack combination fixes.

use crate::common::{place_in_job_order, FreeTracker};
use dollymp_cluster::prelude::*;
use dollymp_core::job::JobId;

/// How a priority baseline ranks jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rank {
    /// Remaining critical-path processing time (SRPT).
    RemainingTime,
    /// Remaining effective volume (SVF, Eq. 10/16 with `w = 0`).
    RemainingVolume,
}

/// A rank-then-first-fit list scheduler.
#[derive(Debug, Clone)]
pub struct PriorityScheduler {
    rank: Rank,
}

impl PriorityScheduler {
    /// Shortest Remaining Processing Time first.
    pub fn srpt() -> Self {
        PriorityScheduler {
            rank: Rank::RemainingTime,
        }
    }

    /// Smallest Volume First.
    pub fn svf() -> Self {
        PriorityScheduler {
            rank: Rank::RemainingVolume,
        }
    }

    fn key(&self, view: &ClusterView<'_>, job: &JobState) -> f64 {
        match self.rank {
            Rank::RemainingTime => job.remaining_etime(0.0),
            Rank::RemainingVolume => job.remaining_volume(view.totals(), 0.0),
        }
    }
}

impl Scheduler for PriorityScheduler {
    fn name(&self) -> String {
        match self.rank {
            Rank::RemainingTime => "srpt".into(),
            Rank::RemainingVolume => "svf".into(),
        }
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        let mut ranked: Vec<(f64, JobId)> =
            view.jobs().map(|j| (self.key(view, j), j.id())).collect();
        ranked.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let order: Vec<JobId> = ranked.into_iter().map(|(_, id)| id).collect();
        let mut free = FreeTracker::new(view);
        place_in_job_order(view, &order, &mut free)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dollymp_cluster::engine::{simulate, EngineConfig};
    use dollymp_core::job::JobSpec;
    use dollymp_core::resources::Resources;

    fn det() -> DurationSampler {
        DurationSampler::new(1, StragglerModel::Deterministic)
    }

    #[test]
    fn srpt_runs_the_short_job_first() {
        let cluster = ClusterSpec::homogeneous(1, 1.0, 1.0);
        let long = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 30.0, 0.0);
        let short = JobSpec::single_phase(JobId(1), 1, Resources::new(1.0, 1.0), 3.0, 0.0);
        let mut s = PriorityScheduler::srpt();
        let r = simulate(
            &cluster,
            vec![long, short],
            &det(),
            &mut s,
            &EngineConfig::default(),
        );
        let by_id = r.by_id();
        assert_eq!(by_id[&JobId(1)].flowtime, 3);
        assert_eq!(by_id[&JobId(0)].flowtime, 33);
    }

    #[test]
    fn svf_weighs_demand_not_just_time() {
        // Job 0: short but fat (t=4, d=1.0 → v=0.4 on a 10-unit cluster).
        // Job 1: longer but thin (t=6, d=0.1 → v=0.06).
        // SRPT runs job 0 first; SVF runs job 1 first.
        let cluster = ClusterSpec::homogeneous(1, 10.0, 10.0);
        let fat = JobSpec::single_phase(JobId(0), 1, Resources::new(10.0, 10.0), 4.0, 0.0);
        let thin = JobSpec::single_phase(JobId(1), 1, Resources::new(1.0, 1.0), 6.0, 0.0);

        let mut svf = PriorityScheduler::svf();
        let r = simulate(
            &cluster,
            vec![fat.clone(), thin.clone()],
            &det(),
            &mut svf,
            &EngineConfig::default(),
        );
        let by_id = r.by_id();
        // SVF: thin job starts immediately; fat job can't coexist (needs
        // the full cluster) so it waits 6 slots.
        assert_eq!(by_id[&JobId(1)].flowtime, 6);
        assert_eq!(by_id[&JobId(0)].flowtime, 10);

        let mut srpt = PriorityScheduler::srpt();
        let r = simulate(
            &cluster,
            vec![fat, thin],
            &det(),
            &mut srpt,
            &EngineConfig::default(),
        );
        let by_id = r.by_id();
        // SRPT: fat (shorter) job first; thin waits…? Thin fits alongside
        // nothing (fat takes all), so thin runs after: flow 4 then 4+6.
        assert_eq!(by_id[&JobId(0)].flowtime, 4);
        assert_eq!(by_id[&JobId(1)].flowtime, 10);
    }

    #[test]
    fn names() {
        assert_eq!(PriorityScheduler::srpt().name(), "srpt");
        assert_eq!(PriorityScheduler::svf().name(), "svf");
    }

    #[test]
    fn neither_clones() {
        let cluster = ClusterSpec::homogeneous(4, 4.0, 4.0);
        let jobs: Vec<JobSpec> = (0..2)
            .map(|i| JobSpec::single_phase(JobId(i), 2, Resources::new(1.0, 1.0), 5.0, 2.0))
            .collect();
        let sampler = DurationSampler::new(2, StragglerModel::ParetoFit);
        for mut s in [PriorityScheduler::srpt(), PriorityScheduler::svf()] {
            let r = simulate(
                &cluster,
                jobs.clone(),
                &sampler,
                &mut s,
                &EngineConfig::default(),
            );
            assert!(r.jobs.iter().all(|j| j.clone_copies == 0));
        }
    }
}
