//! A Hopper-style speculation-aware baseline (Ren et al., SIGCOMM 2015)
//! — the closest prior *joint* design of job scheduling and redundancy
//! the paper discusses in §7.
//!
//! Hopper's core idea: give every job a **virtual size** — its remaining
//! tasks *plus* a speculation budget — and, when the cluster cannot fit
//! all virtual sizes, serve jobs smallest-virtual-size-first (small jobs
//! get their full budget; big jobs wait). Within its allocation a job
//! spends spare capacity on backups for its slowest running tasks. §7
//! also names Hopper's key flaw: it is **non-work-conserving** — capacity
//! reserved as a small job's speculation budget may idle while other
//! jobs queue. This implementation reproduces both the idea and the flaw
//! (the reservation is honored for the highest-priority jobs even when
//! lower-priority tasks could run), so the comparison against DollyMP is
//! faithful to the published designs.
//!
//! Simplifications vs the real system (documented, as with Carbyne):
//! slot-based Hopper is translated to multi-resource demands via
//! first-fit placement, and the speculation budget is a fixed fraction
//! rather than Hopper's optimal √-allocation.

use crate::common::{ready_tasks_of, FreeTracker};
use dollymp_cluster::prelude::*;
use dollymp_core::job::JobId;
use serde::{Deserialize, Serialize};

/// Hopper-lite configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HopperConfig {
    /// Speculation budget as a fraction of a job's remaining tasks
    /// (Hopper's analysis suggests budgets of 10–20 %).
    pub budget_frac: f64,
    /// A running copy is a speculation candidate once its elapsed time
    /// exceeds this multiple of the phase's observed mean.
    pub slowdown_threshold: f64,
    /// Maximum concurrent copies per task (original + backups).
    pub max_copies: u32,
}

impl Default for HopperConfig {
    fn default() -> Self {
        HopperConfig {
            budget_frac: 0.15,
            slowdown_threshold: 1.3,
            max_copies: 2,
        }
    }
}

/// The Hopper-lite scheduler.
#[derive(Debug, Clone, Default)]
pub struct Hopper {
    /// Tunables.
    pub cfg: HopperConfig,
}

impl Hopper {
    /// Hopper with default parameters.
    pub fn new() -> Self {
        Hopper::default()
    }

    /// A job's virtual size: remaining tasks × (1 + budget).
    fn virtual_size(&self, job: &JobState) -> f64 {
        let remaining: u32 = job.remaining_tasks().iter().sum();
        remaining as f64 * (1.0 + self.cfg.budget_frac)
    }
}

impl Scheduler for Hopper {
    fn name(&self) -> String {
        "hopper".into()
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        let mut free = FreeTracker::new(view);
        let mut out = Vec::new();

        // Smallest virtual size first.
        let mut order: Vec<(f64, JobId)> = view
            .jobs()
            .map(|j| (self.virtual_size(j), j.id()))
            .collect();
        order.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

        for (vsize, jid) in order {
            let Some(job) = view.job(jid) else { continue };
            // This job is entitled to ⌈vsize⌉ concurrent copies; count
            // what it already holds.
            let mut held: u32 = job
                .running_tasks()
                .iter()
                .map(|t| job.task(t.phase, t.task).live_copies())
                .sum();
            let entitlement = vsize.ceil() as u32;

            // 1) Primaries within the entitlement.
            for rt in ready_tasks_of(job) {
                if held >= entitlement {
                    break;
                }
                if let Some(server) = free.first_fit(rt.demand) {
                    free.commit(server, rt.demand);
                    free.note_copy(rt.task);
                    out.push(Assignment {
                        task: rt.task,
                        server,
                        kind: CopyKind::Primary,
                    });
                    held += 1;
                }
            }
            // 2) Speculation within the remaining budget: slowest running
            // copies first.
            let mut candidates: Vec<(f64, dollymp_core::job::TaskRef)> = job
                .running_tasks()
                .into_iter()
                .filter_map(|t| {
                    let ts = job.task(t.phase, t.task);
                    if ts.live_copies() >= self.cfg.max_copies {
                        return None;
                    }
                    let mean = job.phase_state(t.phase).observed.mean();
                    if mean <= 0.0 {
                        return None;
                    }
                    let elapsed = ts
                        .copies
                        .iter()
                        .filter(|c| c.is_live())
                        .map(|c| c.elapsed(view.now))
                        .max()
                        .unwrap_or(0) as f64;
                    if elapsed > self.cfg.slowdown_threshold * mean {
                        Some((elapsed / mean, t))
                    } else {
                        None
                    }
                })
                .collect();
            candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            for (_, task) in candidates {
                if held >= entitlement {
                    break;
                }
                if free.effective_copies(view, task) >= self.cfg.max_copies {
                    continue;
                }
                let demand = job.spec().phase(task.phase).demand;
                if let Some(server) = free.first_fit(demand) {
                    free.commit(server, demand);
                    free.note_copy(task);
                    out.push(Assignment {
                        task,
                        server,
                        kind: CopyKind::Clone,
                    });
                    held += 1;
                }
            }
            // Deliberately NOT work-conserving: unused entitlement idles
            // (the §7 critique) — except that the engine forbids a total
            // stall, so if nothing at all was placed and nothing runs, we
            // fall through to a minimal work-conserving rescue below.
        }

        if out.is_empty() && view.jobs().all(|j| j.running_tasks().is_empty()) {
            // Rescue pass: place the first ready task that fits anywhere
            // (keeps the simulation live without changing the policy's
            // character under load).
            for job in view.jobs() {
                for rt in ready_tasks_of(job) {
                    if let Some(server) = free.first_fit(rt.demand) {
                        free.commit(server, rt.demand);
                        out.push(Assignment {
                            task: rt.task,
                            server,
                            kind: CopyKind::Primary,
                        });
                        return out;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dollymp_cluster::engine::{simulate, EngineConfig};
    use dollymp_core::job::JobSpec;
    use dollymp_core::resources::Resources;

    #[test]
    fn completes_workloads() {
        let cluster = ClusterSpec::paper_30_node();
        let jobs: Vec<JobSpec> = (0..12u64)
            .map(|i| {
                JobSpec::builder(JobId(i))
                    .arrival(i * 4)
                    .phase(dollymp_core::job::PhaseSpec::new(
                        5,
                        Resources::new(1.0, 2.0),
                        8.0,
                        4.0,
                    ))
                    .build()
                    .unwrap()
            })
            .collect();
        let sampler = DurationSampler::new(7, StragglerModel::ParetoFit);
        let cfg = EngineConfig {
            tick: Some(1),
            ..Default::default()
        };
        let mut s = Hopper::new();
        let r = simulate(&cluster, jobs, &sampler, &mut s, &cfg);
        assert_eq!(r.jobs.len(), 12);
    }

    #[test]
    fn small_jobs_preempt_large_in_priority() {
        let cluster = ClusterSpec::homogeneous(1, 2.0, 2.0);
        let big = JobSpec::single_phase(JobId(0), 8, Resources::new(1.0, 1.0), 10.0, 0.0);
        let small = JobSpec::single_phase(JobId(1), 1, Resources::new(1.0, 1.0), 10.0, 0.0);
        let sampler = DurationSampler::new(1, StragglerModel::Deterministic);
        let mut s = Hopper::new();
        let r = simulate(
            &cluster,
            vec![big, small],
            &sampler,
            &mut s,
            &EngineConfig::default(),
        );
        let by_id = r.by_id();
        assert!(
            by_id[&JobId(1)].flowtime <= by_id[&JobId(0)].flowtime,
            "smallest virtual size served first"
        );
    }

    #[test]
    fn speculates_on_observed_stragglers() {
        // 4-task phase, one task lands on a 10× slow server; Hopper's
        // monitor must launch a backup once peers establish the mean.
        let cluster = ClusterSpec::new(vec![
            ServerSpec::new(3.0, 3.0),
            ServerSpec::new(1.0, 1.0).with_speed(0.1),
        ]);
        let job = JobSpec::single_phase(JobId(0), 4, Resources::new(1.0, 1.0), 10.0, 0.0);
        let sampler = DurationSampler::new(1, StragglerModel::Deterministic);
        let cfg = EngineConfig {
            tick: Some(1),
            ..Default::default()
        };
        let mut s = Hopper::new();
        let r = simulate(&cluster, vec![job], &sampler, &mut s, &cfg);
        assert_eq!(r.jobs[0].clone_copies, 1, "one backup for the straggler");
        assert!(r.jobs[0].flowtime < 100, "backup rescued the straggler");
    }

    #[test]
    fn dollymp_beats_hopper_under_contention() {
        // The paper's §7 argument: Hopper's reservations waste capacity
        // that DollyMP's work-conserving knapsack order uses.
        let cluster = ClusterSpec::paper_30_node();
        let jobs: Vec<JobSpec> = (0..40u64)
            .map(|i| {
                let n = if i % 4 == 0 { 24 } else { 4 };
                JobSpec::builder(JobId(i))
                    .arrival(i)
                    .phase(dollymp_core::job::PhaseSpec::new(
                        n,
                        Resources::new(2.0, 4.0),
                        12.0,
                        6.0,
                    ))
                    .build()
                    .unwrap()
            })
            .collect();
        let sampler = DurationSampler::new(17, StragglerModel::ParetoFit);
        let cfg = EngineConfig {
            tick: Some(1),
            ..Default::default()
        };
        let mut h = Hopper::new();
        let rh = simulate(&cluster, jobs.clone(), &sampler, &mut h, &cfg);
        let mut d = crate::DollyMP::new();
        let rd = simulate(&cluster, jobs, &sampler, &mut d, &cfg);
        assert!(
            rd.total_flowtime() < rh.total_flowtime(),
            "DollyMP {} vs Hopper {}",
            rd.total_flowtime(),
            rh.total_flowtime()
        );
    }
}
