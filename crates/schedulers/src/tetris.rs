//! The Tetris scheduler (Grandl et al., SIGCOMM 2014) as described in
//! §6.1: *"Tetris combines the SRPT scheduler and heuristic algorithms for
//! the multi-dimensional resource packing problem to compute a weighted
//! score for each of the mapping pairs between the available server and
//! unscheduled tasks; then, Tetris assigns a task with the highest score
//! to the available servers."*
//!
//! The score of a `(task, server)` pair is the alignment inner product
//! `demand · free` plus `ε ×` an SRPT bonus that favours jobs with little
//! remaining work. With the paper's small `ε` the packing term dominates,
//! reproducing the Fig. 2 behaviour where Tetris runs the large,
//! well-aligned job first.
//!
//! [`Tetris::with_cloning`] adds the *best-effort* cloning of §2's
//! motivating example (leftover resources cloned in score order without
//! any job-scheduling coordination) — the strawman DollyMP is compared
//! against.

use crate::common::{ready_tasks_of, FreeTracker, ReadyTask};
use dollymp_cluster::prelude::*;
use dollymp_core::job::{JobId, TaskRef};
use dollymp_core::online::best_fit_score;
use std::collections::HashMap;

/// The Tetris multi-resource packer.
#[derive(Debug, Clone)]
pub struct Tetris {
    /// Weight of the SRPT term relative to the alignment term.
    pub epsilon: f64,
    /// Maximum concurrent copies per task (1 = no cloning, the Tetris
    /// default; ≥ 2 enables the best-effort cloning variant).
    pub max_copies: u32,
}

impl Tetris {
    /// Plain Tetris: packing + SRPT, no redundancy.
    pub fn new() -> Self {
        Tetris {
            epsilon: 0.2,
            max_copies: 1,
        }
    }

    /// Tetris with best-effort cloning of up to `clones` extra copies out
    /// of leftover resources.
    pub fn with_cloning(clones: u32) -> Self {
        Tetris {
            epsilon: 0.2,
            max_copies: clones + 1,
        }
    }

    /// SRPT bonus of a job: larger for shorter remaining work.
    fn srpt_bonus(&self, job: &JobState) -> f64 {
        1.0 / (1.0 + job.remaining_etime(0.0))
    }

    fn pair_score(
        &self,
        demand: dollymp_core::resources::Resources,
        free: dollymp_core::resources::Resources,
        srpt: f64,
    ) -> f64 {
        best_fit_score(demand, free) + self.epsilon * srpt
    }
}

impl Default for Tetris {
    fn default() -> Self {
        Tetris::new()
    }
}

impl Scheduler for Tetris {
    fn name(&self) -> String {
        if self.max_copies > 1 {
            format!("tetris+clone{}", self.max_copies - 1)
        } else {
            "tetris".into()
        }
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        let mut free = FreeTracker::new(view);
        let mut out = Vec::new();

        // Per-job SRPT bonus and remaining ready tasks.
        let srpt: HashMap<JobId, f64> = view.jobs().map(|j| (j.id(), self.srpt_bonus(j))).collect();
        let mut ready: Vec<(JobId, ReadyTask)> = view
            .jobs()
            .flat_map(|j| ready_tasks_of(j).into_iter().map(move |rt| (j.id(), rt)))
            .collect();

        // Primary pass: per server, repeatedly place the highest-scoring
        // fitting task.
        for s in 0..free.len() as u32 {
            let server = ServerId(s);
            loop {
                let avail = free.free(server);
                if avail.is_zero() || ready.is_empty() {
                    break;
                }
                let mut best: Option<(f64, usize)> = None;
                for (idx, (jid, rt)) in ready.iter().enumerate() {
                    if !rt.demand.fits_in(avail) {
                        continue;
                    }
                    let score = self.pair_score(rt.demand, avail, srpt[jid]);
                    if best.map(|(b, _)| score > b).unwrap_or(true) {
                        best = Some((score, idx));
                    }
                }
                let Some((_, idx)) = best else { break };
                let (_, rt) = ready.swap_remove(idx);
                free.commit(server, rt.demand);
                free.note_copy(rt.task);
                out.push(Assignment {
                    task: rt.task,
                    server,
                    kind: CopyKind::Primary,
                });
            }
        }

        // Best-effort clone pass (only in the cloning variant): leftover
        // resources go to running tasks in descending SRPT bonus order —
        // uncoordinated with the job schedule, which is exactly the
        // behaviour §2 criticizes.
        if self.max_copies > 1 {
            let mut placed_primary: HashMap<JobId, Vec<TaskRef>> = HashMap::new();
            for a in &out {
                placed_primary.entry(a.task.job).or_default().push(a.task);
            }
            let mut jobs: Vec<&JobState> = view.jobs().collect();
            jobs.sort_by(|a, b| {
                srpt[&b.id()]
                    .partial_cmp(&srpt[&a.id()])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for job in jobs {
                let mut candidates = job.running_tasks();
                if let Some(extra) = placed_primary.get(&job.id()) {
                    candidates.extend(extra.iter().copied());
                }
                for task in candidates {
                    if free.effective_copies(view, task) >= self.max_copies {
                        continue;
                    }
                    let demand = job.spec().phase(task.phase).demand;
                    if let Some(server) = free.best_fit(demand) {
                        free.commit(server, demand);
                        free.note_copy(task);
                        out.push(Assignment {
                            task,
                            server,
                            kind: CopyKind::Clone,
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dollymp_cluster::engine::{simulate, EngineConfig};
    use dollymp_core::job::JobSpec;
    use dollymp_core::resources::Resources;

    fn det() -> DurationSampler {
        DurationSampler::new(1, StragglerModel::Deterministic)
    }

    #[test]
    fn names() {
        assert_eq!(Tetris::new().name(), "tetris");
        assert_eq!(Tetris::with_cloning(2).name(), "tetris+clone2");
    }

    #[test]
    fn packs_the_best_aligned_job_first() {
        // The Fig. 2 pathology: one unit-capacity server, a fat job and
        // two small jobs. Tetris runs the fat job first (highest
        // alignment), so the small jobs wait behind it.
        let cluster = ClusterSpec::homogeneous(1, 1.0, 1.0);
        let fat = JobSpec::single_phase(JobId(0), 1, Resources::new(0.8, 0.8), 10.0, 0.0);
        let s1 = JobSpec::single_phase(JobId(1), 1, Resources::new(0.5, 0.5), 8.0, 0.0);
        let s2 = JobSpec::single_phase(JobId(2), 1, Resources::new(0.45, 0.45), 8.0, 0.0);
        let mut t = Tetris::new();
        let r = simulate(
            &cluster,
            vec![fat, s1, s2],
            &det(),
            &mut t,
            &EngineConfig::default(),
        );
        let by_id = r.by_id();
        assert_eq!(by_id[&JobId(0)].flowtime, 10, "fat job first");
        assert_eq!(by_id[&JobId(1)].flowtime, 18, "small jobs behind it");
        assert_eq!(by_id[&JobId(2)].flowtime, 18);
        // Total = 46 s: exactly the Tetris number of Fig. 2.
        assert_eq!(r.total_flowtime(), 46);
    }

    #[test]
    fn plain_tetris_never_clones() {
        let cluster = ClusterSpec::homogeneous(4, 8.0, 8.0);
        let jobs: Vec<JobSpec> = (0..3)
            .map(|i| JobSpec::single_phase(JobId(i), 2, Resources::new(1.0, 1.0), 5.0, 2.0))
            .collect();
        let sampler = DurationSampler::new(4, StragglerModel::ParetoFit);
        let mut t = Tetris::new();
        let r = simulate(&cluster, jobs, &sampler, &mut t, &EngineConfig::default());
        assert!(r.jobs.iter().all(|j| j.clone_copies == 0));
    }

    #[test]
    fn cloning_variant_uses_leftovers() {
        let cluster = ClusterSpec::homogeneous(4, 2.0, 2.0);
        let job = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 10.0, 4.0);
        let sampler = DurationSampler::new(4, StragglerModel::ParetoFit);
        let mut t = Tetris::with_cloning(1);
        let r = simulate(
            &cluster,
            vec![job],
            &sampler,
            &mut t,
            &EngineConfig::default(),
        );
        assert_eq!(r.jobs[0].clone_copies, 1, "idle cluster → one clone");
    }

    #[test]
    fn srpt_term_breaks_packing_ties() {
        // Two jobs with identical demands but different durations on one
        // server: equal alignment, so the ε·SRPT term must favour the
        // short one.
        let cluster = ClusterSpec::homogeneous(1, 1.0, 1.0);
        let long = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 50.0, 0.0);
        let short = JobSpec::single_phase(JobId(1), 1, Resources::new(1.0, 1.0), 2.0, 0.0);
        let mut t = Tetris::new();
        let r = simulate(
            &cluster,
            vec![long, short],
            &det(),
            &mut t,
            &EngineConfig::default(),
        );
        let by_id = r.by_id();
        assert_eq!(by_id[&JobId(1)].flowtime, 2, "short job first on ties");
    }
}
