//! The DollyMP scheduler — Algorithm 2 of the paper.
//!
//! On every job arrival, the priorities of *all* unfinished jobs are
//! recomputed by the transient Algorithm 1 over their remaining volumes
//! and critical paths (Eq. 16/17); between arrivals the order is frozen
//! (§5: "the scheduling order of all jobs in the cluster won't be updated
//! until the next job arrival").
//!
//! At each decision point the scheduler then:
//!
//! 1. **Primary pass** — per server, repeatedly pick the highest-priority
//!    level that has a fitting ready task and, within the level, the task
//!    with the best Tetris alignment (`R·c` inner product, Algorithm 2
//!    step 12);
//! 2. **Clone passes** — with the leftover resources, walk tasks of jobs
//!    in the same priority order and give each *running* task of a
//!    clone-eligible (small, §4.1-gated) job up to
//!    `max_copies − 1` extra copies; the pass is repeated twice, mirroring
//!    Algorithm 2's "Repeat Step 9 twice".

use crate::common::{FreeTracker, ReadyTask};
use dollymp_cluster::prelude::*;
use dollymp_core::hash::FxHashMap;
use dollymp_core::job::{JobId, PhaseId, TaskId, TaskRef};
use dollymp_core::online::{best_fit_score, ClonePolicy, PriorityTable};
use dollymp_core::resources::Resources;
use dollymp_core::transient::{
    transient_schedule, SummaryCache, SummaryInput, TransientConfig, TransientJob,
};

/// A cloning candidate: a task of a §4.1-eligible job, with its demand
/// and *effective* copy count (view-side live copies plus the primary
/// placed for it earlier in this batch, if any) cached so the per-pass
/// budget filter needs no map lookups at all.
#[derive(Debug, Clone, Copy)]
struct CloneCandidate {
    task: TaskRef,
    demand: Resources,
    effective_copies: u32,
}

/// Placeholder for arena `resize` calls; always overwritten before read.
const EMPTY_READY: ReadyTask = ReadyTask {
    task: TaskRef {
        job: JobId(0),
        phase: PhaseId(0),
        task: TaskId(0),
    },
    demand: Resources::ZERO,
};

/// One (job, distinct-demand) bucket of ready tasks: `len` tasks stored
/// contiguously in the scratch task arena from `start`, consumed LIFO
/// (mirroring the historical `Vec::pop`).
#[derive(Debug, Clone, Copy)]
struct Bucket {
    demand: Resources,
    start: u32,
    len: u32,
}

/// A FIFO of placement requests sharing one demand vector; entries live
/// in a scratch entry arena at `[head, end)` and are consumed by
/// advancing `head`.
#[derive(Debug, Clone, Copy)]
struct DemandQueue {
    demand: Resources,
    head: u32,
    end: u32,
}

/// Iterates the servers of one placement walk: either a caller-supplied
/// explicit order (every listed server is visited), or the identity
/// order driven by the capacity index, whose `next_fit_at_or_after`
/// skips servers that cannot even hold `min_demand` in O(log n) per hop.
/// The two modes visit exactly the same fitting servers in the same
/// order, since a server without room for the smallest demand can never
/// receive a placement.
enum ServerWalk<'o> {
    Identity { cursor: usize },
    Custom { order: &'o [ServerId], next: usize },
}

impl<'o> ServerWalk<'o> {
    fn new(order: Option<&'o [ServerId]>) -> Self {
        match order {
            None => ServerWalk::Identity { cursor: 0 },
            Some(order) => ServerWalk::Custom { order, next: 0 },
        }
    }

    fn next(&mut self, free: &FreeTracker, min_demand: Resources) -> Option<ServerId> {
        match self {
            ServerWalk::Identity { cursor } => {
                let sv = free.next_fit_at_or_after(*cursor, min_demand)?;
                *cursor = sv.0 as usize + 1;
                Some(sv)
            }
            ServerWalk::Custom { order, next } => {
                let sv = *order.get(*next)?;
                *next += 1;
                Some(sv)
            }
        }
    }
}

/// Reusable buffers for one decision point. Everything here is cleared
/// and refilled each pass, so at steady state a full Algorithm 2 pass
/// performs no heap allocation beyond the returned batch itself.
#[derive(Debug, Clone, Default)]
struct Scratch {
    /// Sort scratch for `PriorityTable::grouped_into`.
    tagged: Vec<(u32, JobId)>,
    /// Per priority level: `(start, end)` range into `members`.
    levels: Vec<(u32, u32)>,
    /// Flattened members of all levels, in ascending (level, id) order.
    members: Vec<JobId>,
    /// Ready-task arena, contiguous per bucket.
    tasks: Vec<ReadyTask>,
    /// One entry per (job, distinct-demand), contiguous per job.
    buckets: Vec<Bucket>,
    /// Bucket range of each job with ready tasks.
    job_buckets: FxHashMap<JobId, (u32, u32)>,
    /// Demand queues of all levels, contiguous per level.
    queues: Vec<DemandQueue>,
    /// Per priority level: `(start, end)` range into `queues`.
    level_queues: Vec<(u32, u32)>,
    /// Per priority level: ready tasks not yet placed (drives the
    /// skip-empty-prefix cursor of the placement loop).
    level_remaining: Vec<u32>,
    /// Entry arena for `queues`: `(group position, bucket index)`.
    entries: Vec<(u32, u32)>,
    /// Remaining volume per job (Eq. 16), aligned with ascending-id view
    /// order, for the §4.1 gate.
    vols: Vec<f64>,
    /// Candidate arena in ascending-id view order; reshuffled into
    /// priority order via `cand_ranges`.
    cand_arena: Vec<CloneCandidate>,
    /// Per gated-in job: `(start, end)` range into `cand_arena`.
    cand_ranges: FxHashMap<JobId, (u32, u32)>,
    /// Per job: `(fill, start)` range of its newly placed primaries in
    /// `placed_arena` (`[start, fill)` once scattered).
    placed_ranges: FxHashMap<JobId, (u32, u32)>,
    /// Primaries of this batch, grouped contiguously per job.
    placed_arena: Vec<TaskRef>,
    /// Clone candidates of this decision point, in priority order.
    candidates: Vec<CloneCandidate>,
    /// `cloned[i]`: candidate `i` received a clone in this batch.
    cloned: Vec<bool>,
    /// Demand queues of the current clone pass.
    clone_queues: Vec<DemandQueue>,
    /// Entry arena for `clone_queues`: candidate indices.
    clone_entries: Vec<u32>,
}

/// The DollyMP scheduler (Algorithm 2). `DollyMP::with_clones(r)` builds
/// the paper's DollyMP^r variants.
#[derive(Debug, Clone)]
pub struct DollyMP {
    /// Algorithm 1 configuration (σ-weight `w = 1.5` by default).
    pub transient: TransientConfig,
    /// Cloning budget and §4.1 small-job gate.
    pub clone_policy: ClonePolicy,
    table: PriorityTable,
    /// Eq. 16/17 job summaries memoized across arrivals (jobs whose
    /// remaining work is unchanged are not re-summarized).
    cache: SummaryCache,
    use_summary_cache: bool,
    /// Fault-induced task losses per job. A loss re-queues a task without
    /// changing the remaining-task counts, so the summary-cache
    /// fingerprint alone cannot see it; the epoch keeps the cache honest
    /// (see `SummaryInput::loss_epoch`).
    loss_epochs: FxHashMap<JobId, u64>,
    /// Reusable per-decision-point buffers (see [`Scratch`]).
    scratch: Scratch,
    /// Prepare/placement stage timing of the most recent pass, surfaced
    /// via [`Scheduler::pass_span`] for the flight recorder.
    last_span: PassSpan,
}

impl DollyMP {
    /// DollyMP with the paper's defaults (two clones, `δ = 0.3`,
    /// `w = 1.5`) — the DollyMP² configuration.
    pub fn new() -> Self {
        DollyMP::with_clones(2)
    }

    /// DollyMP^r: at most `clones` extra copies per task.
    pub fn with_clones(clones: u32) -> Self {
        let clone_policy = if clones == 0 {
            ClonePolicy::disabled()
        } else {
            ClonePolicy::with_clones(clones)
        };
        DollyMP {
            transient: TransientConfig {
                max_copies: clones + 1,
                ..TransientConfig::default()
            },
            clone_policy,
            table: PriorityTable::default(),
            cache: SummaryCache::new(),
            use_summary_cache: true,
            loss_epochs: FxHashMap::default(),
            scratch: Scratch::default(),
            last_span: PassSpan::default(),
        }
    }

    /// Disable the Algorithm 1 summary cache and recompute every job
    /// summary from scratch at each arrival. Decisions are identical
    /// either way — this hook exists so tests can pin that equivalence
    /// (and to measure the cache's benefit in benchmarks).
    pub fn without_summary_cache(mut self) -> Self {
        self.use_summary_cache = false;
        self.cache.clear();
        self
    }

    /// Override the §4.1 small-job gate `δ`.
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.clone_policy.delta = delta;
        self
    }

    /// Override the σ-weight of effective processing times.
    pub fn with_sigma_weight(mut self, w: f64) -> Self {
        self.transient.sigma_weight = w;
        self
    }

    fn refresh_priorities(&mut self, view: &ClusterView<'_>) {
        let totals = view.totals();
        let w = self.transient.sigma_weight;
        let inputs: Vec<SummaryInput<'_>> = view
            .jobs()
            .map(|j| SummaryInput {
                spec: j.spec(),
                remaining_tasks: j.remaining_tasks(),
                finished_phases: j.finished_phases(),
                loss_epoch: self.loss_epochs.get(&j.id()).copied().unwrap_or(0),
            })
            .collect();
        let summaries: Vec<TransientJob> = if self.use_summary_cache {
            self.cache.summarize(&inputs, totals, w)
        } else {
            inputs
                .iter()
                .map(|i| {
                    TransientJob::from_remaining(
                        i.spec,
                        &i.remaining_tasks,
                        &i.finished_phases,
                        totals,
                        w,
                    )
                })
                .collect()
        };
        let out = transient_schedule(&summaries, &self.transient);
        self.table = PriorityTable::from_output(&summaries, &out);
    }

    /// The primary placement pass (Algorithm 2 steps 6–15).
    ///
    /// Tasks of one phase are statistically identical, so candidates are
    /// *bucketed* by (job, demand): the per-server best-fit argmax scans
    /// one entry per distinct demand instead of one per task, which is
    /// what keeps a full pass over 30 000 servers within the paper's
    /// §6.3.3 overhead budget. All intermediate structures are flattened
    /// arenas living in [`Scratch`] (tasks, buckets, per-level demand
    /// queues), so the pass allocates nothing at steady state:
    ///
    /// * a bucket is a contiguous `[start, start+len)` slice of the task
    ///   arena, consumed LIFO like the historical per-bucket `Vec::pop`;
    /// * a level's demand queues collapse its buckets by distinct demand
    ///   — buckets sharing a demand have the same Tetris score against
    ///   any server, and the scan's strict `score > best` keeps the first
    ///   seen, so the argmax only needs the frontmost alive bucket per
    ///   demand, with exact-score ties across demands breaking toward the
    ///   smaller group position (first-seen-wins, verbatim);
    /// * fully drained levels are skipped by a monotone cursor — a level
    ///   with no tasks left can never match again.
    ///
    /// When `order` is `None` (the identity walk of plain `schedule`),
    /// the next server is found with the capacity index's
    /// `next_fit_at_or_after`, which hops over non-fitting servers in
    /// O(log n) instead of probing each id.
    fn place_primaries(
        &self,
        view: &ClusterView<'_>,
        order: Option<&[ServerId]>,
        free: &mut FreeTracker,
        s: &mut Scratch,
        out: &mut Vec<Assignment>,
    ) {
        s.tasks.clear();
        s.buckets.clear();
        s.job_buckets.clear();
        let mut ready_count: usize = 0;
        let mut min_demand: Option<Resources> = None;
        for j in view.jobs() {
            let bstart = s.buckets.len();
            // Pass 1: one bucket per distinct demand, counting tasks.
            for task in j.iter_ready() {
                let demand = j.spec().phase(task.phase).demand;
                min_demand = Some(match min_demand {
                    Some(m) => m.min(demand),
                    None => demand,
                });
                match s.buckets[bstart..].iter_mut().find(|b| b.demand == demand) {
                    Some(b) => b.len += 1,
                    None => s.buckets.push(Bucket {
                        demand,
                        start: 0,
                        len: 1,
                    }),
                }
            }
            if s.buckets.len() == bstart {
                continue;
            }
            let mut cursor = s.tasks.len() as u32;
            for b in &mut s.buckets[bstart..] {
                b.start = cursor;
                cursor += b.len;
                ready_count += b.len as usize;
                b.len = 0;
            }
            s.tasks.resize(cursor as usize, EMPTY_READY);
            // Pass 2: scatter tasks into their bucket slices in ready
            // order (so LIFO consumption matches the historical pops).
            for task in j.iter_ready() {
                let demand = j.spec().phase(task.phase).demand;
                let b = s.buckets[bstart..]
                    .iter_mut()
                    .find(|b| b.demand == demand)
                    .expect("bucket created in pass 1");
                s.tasks[(b.start + b.len) as usize] = ReadyTask { task, demand };
                b.len += 1;
            }
            s.job_buckets
                .insert(j.id(), (bstart as u32, s.buckets.len() as u32));
        }
        if ready_count == 0 {
            return;
        }
        let min_demand = min_demand.expect("ready_count > 0");
        if !free.could_fit(min_demand) {
            // Nothing fits anywhere in the cluster — skip the server walk.
            return;
        }

        // Per-level demand queues, two-pass into flat arenas.
        s.queues.clear();
        s.level_queues.clear();
        s.level_remaining.clear();
        s.entries.clear();
        for &(mstart, mend) in &s.levels {
            let qstart = s.queues.len();
            let estart = s.entries.len() as u32;
            let mut level_tasks = 0u32;
            for &jid in &s.members[mstart as usize..mend as usize] {
                let Some(&(lo, hi)) = s.job_buckets.get(&jid) else {
                    continue;
                };
                for bidx in lo..hi {
                    let b = s.buckets[bidx as usize];
                    level_tasks += b.len;
                    match s.queues[qstart..].iter_mut().find(|q| q.demand == b.demand) {
                        Some(q) => q.end += 1,
                        None => s.queues.push(DemandQueue {
                            demand: b.demand,
                            head: 0,
                            end: 1,
                        }),
                    }
                }
            }
            let mut cursor = estart;
            for q in &mut s.queues[qstart..] {
                let count = q.end;
                q.head = cursor;
                q.end = cursor;
                cursor += count;
            }
            s.entries.resize(cursor as usize, (0, 0));
            let mut pos = 0u32;
            for &jid in &s.members[mstart as usize..mend as usize] {
                let Some(&(lo, hi)) = s.job_buckets.get(&jid) else {
                    continue;
                };
                for bidx in lo..hi {
                    let demand = s.buckets[bidx as usize].demand;
                    let q = s.queues[qstart..]
                        .iter_mut()
                        .find(|q| q.demand == demand)
                        .expect("queue created in the counting pass");
                    s.entries[q.end as usize] = (pos, bidx);
                    q.end += 1;
                    pos += 1;
                }
            }
            s.level_queues.push((qstart as u32, s.queues.len() as u32));
            s.level_remaining.push(level_tasks);
        }

        out.reserve(ready_count);
        let nlevels = s.level_queues.len();
        let mut first_active = 0usize;
        let mut walk = ServerWalk::new(order);
        while let Some(server) = walk.next(free, min_demand) {
            // The index is only queried again when moving to the next
            // server, so the server's placements accumulate locally and
            // commit to the tree once, on leaving it.
            let mut avail = free.free(server);
            let mut used = Resources::ZERO;
            'server: loop {
                // Component-wise lower bound: if even the smallest demand
                // cannot fit, nothing can — leave this server instantly.
                if !min_demand.fits_in(avail) {
                    break;
                }
                while first_active < nlevels && s.level_remaining[first_active] == 0 {
                    first_active += 1;
                }
                // Highest-priority level with a fitting task; within the
                // level, the best-aligned demand queue (step 12).
                for li in first_active..nlevels {
                    if s.level_remaining[li] == 0 {
                        continue;
                    }
                    let (qs, qe) = s.level_queues[li];
                    let mut best: Option<(f64, u32, u32)> = None;
                    for qi in qs..qe {
                        let q = s.queues[qi as usize];
                        if q.head == q.end || !q.demand.fits_in(avail) {
                            continue;
                        }
                        let (pos, _) = s.entries[q.head as usize];
                        let score = best_fit_score(q.demand, avail);
                        let better = match best {
                            None => true,
                            Some((b, bpos, _)) => score > b || (score == b && pos < bpos),
                        };
                        if better {
                            best = Some((score, pos, qi));
                        }
                    }
                    if let Some((_, _, qi)) = best {
                        let head = s.queues[qi as usize].head;
                        let (_, bidx) = s.entries[head as usize];
                        let b = &mut s.buckets[bidx as usize];
                        b.len -= 1;
                        let rt = s.tasks[(b.start + b.len) as usize];
                        if b.len == 0 {
                            s.queues[qi as usize].head += 1;
                        }
                        avail -= rt.demand; // fits_in checked above
                        used += rt.demand;
                        out.push(Assignment {
                            task: rt.task,
                            server,
                            kind: CopyKind::Primary,
                        });
                        s.level_remaining[li] -= 1;
                        ready_count -= 1;
                        if ready_count == 0 {
                            free.commit(server, used);
                            return;
                        }
                        continue 'server;
                    }
                }
                break;
            }
            if used != Resources::ZERO {
                free.commit(server, used);
            }
        }
    }

    /// Clone candidates for this decision point, in priority order
    /// (Algorithm 2 step 16's input set).
    ///
    /// Candidates are the tasks already running in the view *plus* the
    /// primaries placed earlier in this very batch (`newly_placed`) — the
    /// paper clones small jobs "when they are scheduled" (Fig. 2), not one
    /// decision point later. The §4.1 gate, remaining volumes, and the
    /// candidate walk depend only on the immutable view and the primary
    /// batch, so this is computed **once** per decision point and shared
    /// by both clone passes; the per-pass copy-budget filters are applied
    /// at queue-build time inside [`Self::place_clones`].
    fn clone_candidates(&self, view: &ClusterView<'_>, batch: &[Assignment], s: &mut Scratch) {
        s.candidates.clear();
        s.cloned.clear();
        if self.clone_policy.max_copies <= 1 {
            return;
        }
        // Group this batch's primaries by job via a counting scatter into
        // a reused arena (each job's tasks stay in batch order). Entry
        // layout: `(fill, start)` — the count lands in `fill` first, then
        // the prefix pass turns it into a cursor starting at `start`, so
        // `[start, fill)` is the final range.
        s.placed_ranges.clear();
        s.placed_arena.clear();
        for a in batch {
            s.placed_ranges.entry(a.task.job).or_insert((0, 0)).0 += 1;
        }
        let mut cursor = 0u32;
        for range in s.placed_ranges.values_mut() {
            let count = range.0;
            *range = (cursor, cursor);
            cursor += count;
        }
        s.placed_arena.resize(cursor as usize, EMPTY_READY.task);
        for a in batch {
            let range = s
                .placed_ranges
                .get_mut(&a.task.job)
                .expect("counted in the first pass");
            s.placed_arena[range.0 as usize] = a.task;
            range.0 += 1;
        }
        let w = self.transient.sigma_weight;
        // Remaining volumes, computed once (the §4.1 gate needs every
        // job's volume against the sum of the others'; recomputing per
        // candidate would make this pass quadratic). The total is summed
        // in ascending-JobId view order so it cannot depend on any map's
        // iteration order.
        let totals = view.totals();
        s.vols.clear();
        let mut total_volume = 0.0f64;
        for j in view.jobs() {
            let v = j.remaining_volume(totals, w);
            total_volume += v;
            s.vols.push(v);
        }
        // Single pass over the view (no per-member job lookups): gate
        // each job and emit its candidates into an id-ordered arena;
        // the arena is then reshuffled into priority order below.
        s.cand_arena.clear();
        s.cand_ranges.clear();
        for (j, &mine) in view.jobs().zip(s.vols.iter()) {
            // §4.1 small-job gate.
            let others = (total_volume - mine).max(0.0);
            if !self.clone_policy.small_job_gate(mine, others) {
                continue;
            }
            let start = s.cand_arena.len() as u32;
            for task in j.iter_running() {
                s.cand_arena.push(CloneCandidate {
                    task,
                    demand: j.spec().phase(task.phase).demand,
                    // Copies live in the (immutable) view — cached so
                    // the per-pass budget filter needs no job lookup.
                    effective_copies: j.task(task.phase, task.task).live_copies(),
                });
            }
            if let Some(&(fill, pstart)) = s.placed_ranges.get(&j.id()) {
                for &task in &s.placed_arena[pstart as usize..fill as usize] {
                    debug_assert_eq!(
                        j.task(task.phase, task.task).live_copies(),
                        0,
                        "a task placed as primary this batch was ready, hence copy-free"
                    );
                    s.cand_arena.push(CloneCandidate {
                        task,
                        demand: j.spec().phase(task.phase).demand,
                        // A primary placed this very batch is one copy the
                        // view cannot see yet.
                        effective_copies: 1,
                    });
                }
            }
            if s.cand_arena.len() as u32 > start {
                s.cand_ranges
                    .insert(j.id(), (start, s.cand_arena.len() as u32));
            }
        }
        // Reshuffle into priority order (Algorithm 2 step 16 walks jobs
        // in the frozen Algorithm 1 order).
        for &(mstart, mend) in &s.levels {
            for &jid in &s.members[mstart as usize..mend as usize] {
                if let Some(&(start, end)) = s.cand_ranges.get(&jid) {
                    s.candidates
                        .extend_from_slice(&s.cand_arena[start as usize..end as usize]);
                }
            }
        }
        s.cloned.resize(s.candidates.len(), false);
    }

    /// One clone pass over leftover resources (Algorithm 2 step 16).
    ///
    /// `candidates` comes from [`Self::clone_candidates`]; the filters
    /// that change between passes (copy budget, one-new-clone-per-task)
    /// are applied here.
    ///
    /// The priority-ordered request queue is kept as one FIFO per
    /// *distinct demand* over flattened arenas in [`Scratch`]. Free
    /// capacity on a server only shrinks during its scan, so a request
    /// that does not fit when passed over never fits later on that server
    /// — picking the earliest-position request that fits, repeatedly,
    /// places exactly the same set as a sequential walk of the flat
    /// queue, while costing `O(placements × #demands)` instead of
    /// `O(queue length)` per server. Queue entries are candidate indices;
    /// the index is a monotone relabeling of the historical per-pass
    /// position counter, so the earliest-fitting selection is unchanged.
    ///
    /// Returns the number of clones placed (appended to `out`).
    fn place_clones(
        &self,
        order: Option<&[ServerId]>,
        free: &mut FreeTracker,
        s: &mut Scratch,
        out: &mut Vec<Assignment>,
    ) -> usize {
        s.clone_queues.clear();
        s.clone_entries.clear();
        let mut remaining = 0usize;
        let mut min_demand: Option<Resources> = None;
        // Per-pass filters, two-pass into the flat queue arenas. At most
        // one new clone per task per decision point (`cloned`): the RM
        // grants clone containers round by round ("repeat Step 9" spans
        // allocation rounds, not one batch), so a task's second clone can
        // only arrive at a later decision point.
        let eligible = |s: &Scratch, i: usize, c: &CloneCandidate| {
            !s.cloned[i] && c.effective_copies < self.clone_policy.max_copies
        };
        for (i, c) in s.candidates.iter().enumerate() {
            if !eligible(s, i, c) {
                continue;
            }
            min_demand = Some(match min_demand {
                Some(m) => m.min(c.demand),
                None => c.demand,
            });
            match s.clone_queues.iter_mut().find(|q| q.demand == c.demand) {
                Some(q) => q.end += 1,
                None => s.clone_queues.push(DemandQueue {
                    demand: c.demand,
                    head: 0,
                    end: 1,
                }),
            }
            remaining += 1;
        }
        if remaining == 0 {
            return 0;
        }
        let mut cursor = 0u32;
        for q in &mut s.clone_queues {
            let count = q.end;
            q.head = cursor;
            q.end = cursor;
            cursor += count;
        }
        s.clone_entries.resize(cursor as usize, 0);
        for i in 0..s.candidates.len() {
            let c = s.candidates[i];
            if !eligible(s, i, &c) {
                continue;
            }
            let q = s
                .clone_queues
                .iter_mut()
                .find(|q| q.demand == c.demand)
                .expect("queue created in the counting pass");
            s.clone_entries[q.end as usize] = i as u32;
            q.end += 1;
        }

        // Server-driven placement (the RM hands leftover capacity to
        // clone requests as heartbeats come in): walk servers in order and
        // satisfy the queue in priority order. A global min-demand bound
        // skips exhausted servers (O(1) per probe in an explicit order,
        // O(log n) hops in the index-driven identity walk).
        let min_demand = min_demand.expect("remaining > 0");
        if !free.could_fit(min_demand) {
            // No server in the whole cluster has room for even the
            // smallest request — skip the server walk entirely.
            return 0;
        }
        let placed_before = out.len();
        let mut walk = ServerWalk::new(order);
        while remaining > 0 {
            let Some(server) = walk.next(free, min_demand) else {
                break;
            };
            // As in the primary pass, placements on one server accumulate
            // locally and commit to the index once, on leaving it.
            let mut avail = free.free(server);
            if !min_demand.fits_in(avail) {
                continue;
            }
            let mut used = Resources::ZERO;
            loop {
                // Earliest-position request that fits the current free.
                let mut best: Option<(u32, usize)> = None;
                for (qi, q) in s.clone_queues.iter().enumerate() {
                    if q.head == q.end || !q.demand.fits_in(avail) {
                        continue;
                    }
                    let p = s.clone_entries[q.head as usize];
                    if best.map(|(bp, _)| p < bp).unwrap_or(true) {
                        best = Some((p, qi));
                    }
                }
                let Some((ci, qi)) = best else { break };
                s.clone_queues[qi].head += 1;
                let c = s.candidates[ci as usize];
                avail -= c.demand; // fits_in checked above
                used += c.demand;
                s.cloned[ci as usize] = true;
                out.push(Assignment {
                    task: c.task,
                    server,
                    kind: CopyKind::Clone,
                });
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
            }
            if used != Resources::ZERO {
                free.commit(server, used);
            }
        }
        out.len() - placed_before
    }
}

impl Default for DollyMP {
    fn default() -> Self {
        DollyMP::new()
    }
}

impl Scheduler for DollyMP {
    fn name(&self) -> String {
        format!("dollymp{}", self.clone_policy.max_copies - 1)
    }

    fn on_job_arrival(&mut self, view: &ClusterView<'_>, _job: JobId) {
        self.refresh_priorities(view);
    }

    fn on_job_finish(&mut self, job: &dollymp_cluster::state::JobState) {
        self.table.remove(job.id());
        self.cache.remove(job.id());
        self.loss_epochs.remove(&job.id());
    }

    fn on_task_lost(&mut self, view: &ClusterView<'_>, task: TaskRef) {
        // The re-queued task's job lost work the remaining-task
        // fingerprint cannot see; bump its epoch and re-run Algorithm 1 so
        // the frozen order reflects the post-crash state of the cluster
        // (a crash is as much a scheduling shock as an arrival).
        *self.loss_epochs.entry(task.job).or_insert(0) += 1;
        self.refresh_priorities(view);
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        self.schedule_inner(view, None)
    }

    fn pass_span(&self) -> Option<PassSpan> {
        Some(self.last_span)
    }
}

impl DollyMP {
    /// Run one full Algorithm 2 pass visiting servers in the given order
    /// — the hook the `learned` extension uses to prefer fast machines.
    /// `schedule` calls the identity-order equivalent, driven directly by
    /// the capacity index (no materialized server list).
    pub fn schedule_with_server_order(
        &mut self,
        view: &ClusterView<'_>,
        server_order: &[ServerId],
    ) -> Vec<Assignment> {
        self.schedule_inner(view, Some(server_order))
    }

    /// One full Algorithm 2 decision point: primary pass, then up to two
    /// clone passes over the leftovers. `order` is `None` for the
    /// identity server walk.
    fn schedule_inner(
        &mut self,
        view: &ClusterView<'_>,
        order: Option<&[ServerId]>,
    ) -> Vec<Assignment> {
        // The scratch moves out of `self` for the duration of the pass so
        // the `&self` helper methods can borrow it mutably alongside.
        let mut s = std::mem::take(&mut self.scratch);
        let pass_start = std::time::Instant::now();
        self.table.grouped_into(
            view.jobs().map(|j| j.id()),
            &mut s.tagged,
            &mut s.levels,
            &mut s.members,
        );
        let prepare_ns = pass_start.elapsed().as_nanos() as u64;
        let mut free = FreeTracker::new(view);
        let mut batch: Vec<Assignment> = Vec::new();
        self.place_primaries(view, order, &mut free, &mut s, &mut batch);
        // "Repeat Step 9 twice if there are available resources" — but at
        // most one *new* clone per task per decision point (clone
        // containers are granted round by round). The candidate set is
        // invariant across the two passes, so it is collected once.
        self.clone_candidates(view, &batch, &mut s);
        if !s.candidates.is_empty() {
            for _ in 0..2 {
                if self.place_clones(order, &mut free, &mut s, &mut batch) == 0 {
                    break;
                }
            }
        }
        self.scratch = s;
        self.last_span = PassSpan {
            prepare_ns,
            placement_ns: (pass_start.elapsed().as_nanos() as u64).saturating_sub(prepare_ns),
        };
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dollymp_cluster::engine::{simulate, EngineConfig};
    use dollymp_core::job::JobSpec;
    use dollymp_core::resources::Resources;

    fn det_sampler() -> DurationSampler {
        DurationSampler::new(7, StragglerModel::Deterministic)
    }

    #[test]
    fn names_encode_clone_budget() {
        assert_eq!(DollyMP::with_clones(0).name(), "dollymp0");
        assert_eq!(DollyMP::with_clones(1).name(), "dollymp1");
        assert_eq!(DollyMP::new().name(), "dollymp2");
    }

    #[test]
    fn completes_a_simple_workload() {
        let cluster = ClusterSpec::homogeneous(2, 4.0, 8.0);
        let jobs: Vec<JobSpec> = (0..5)
            .map(|i| JobSpec::single_phase(JobId(i), 2, Resources::new(1.0, 2.0), 6.0, 2.0))
            .collect();
        let mut s = DollyMP::new();
        let sampler = DurationSampler::new(3, StragglerModel::ParetoFit);
        let r = simulate(&cluster, jobs, &sampler, &mut s, &EngineConfig::default());
        assert_eq!(r.jobs.len(), 5);
        assert!(r.total_flowtime() > 0);
    }

    #[test]
    fn prioritizes_small_jobs_over_large() {
        // One server; a long fat job (id 0) and a short thin job (id 1)
        // arriving together. DollyMP must run the small one first.
        let cluster = ClusterSpec::homogeneous(1, 1.0, 1.0);
        let big = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 50.0, 0.0);
        let small = JobSpec::single_phase(JobId(1), 1, Resources::new(1.0, 1.0), 2.0, 0.0);
        let mut s = DollyMP::with_clones(0);
        let r = simulate(
            &cluster,
            vec![big, small],
            &det_sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        let by_id = r.by_id();
        assert_eq!(by_id[&JobId(1)].flowtime, 2, "small job first");
        assert_eq!(by_id[&JobId(0)].flowtime, 52);
    }

    #[test]
    fn clones_when_idle_resources_exist() {
        // Heterogeneous speeds: primary may land on the slow server; the
        // clone pass must exploit the idle fast server.
        let cluster = ClusterSpec::new(vec![
            ServerSpec::new(1.0, 1.0).with_speed(0.25),
            ServerSpec::new(1.0, 1.0).with_speed(1.0),
        ]);
        let job = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 8.0, 0.0);
        let mut s = DollyMP::new();
        let r = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        let m = &r.jobs[0];
        assert_eq!(m.clone_copies, 1, "one clone on the idle server");
        // Primary lands on the fast server (best fit tie → both equal →
        // server order favors 0? free is identical; score ties → first
        // seen wins, i.e. server 0, the slow one at 32 slots; the clone on
        // server 1 takes 8 slots and wins.
        assert_eq!(m.flowtime, 8);
    }

    #[test]
    fn dollymp0_never_clones() {
        let cluster = ClusterSpec::homogeneous(4, 4.0, 4.0);
        let jobs: Vec<JobSpec> = (0..3)
            .map(|i| JobSpec::single_phase(JobId(i), 2, Resources::new(1.0, 1.0), 5.0, 3.0))
            .collect();
        let mut s = DollyMP::with_clones(0);
        let sampler = DurationSampler::new(5, StragglerModel::ParetoFit);
        let r = simulate(&cluster, jobs, &sampler, &mut s, &EngineConfig::default());
        assert!(r.jobs.iter().all(|j| j.clone_copies == 0));
    }

    #[test]
    fn clone_budget_respected() {
        // Plenty of idle capacity: DollyMP¹ must cap at 1 clone per task.
        let cluster = ClusterSpec::homogeneous(8, 4.0, 4.0);
        let job = JobSpec::single_phase(JobId(0), 2, Resources::new(1.0, 1.0), 10.0, 5.0);
        let sampler = DurationSampler::new(11, StragglerModel::ParetoFit);
        let mut s1 = DollyMP::with_clones(1);
        let r1 = simulate(
            &cluster,
            vec![job.clone()],
            &sampler,
            &mut s1,
            &EngineConfig::default(),
        );
        assert!(r1.jobs[0].clone_copies <= 2, "≤ 1 clone × 2 tasks");
        assert!(
            r1.jobs[0].clone_copies >= 1,
            "idle cluster → clones expected"
        );
        let mut s2 = DollyMP::new();
        let r2 = simulate(
            &cluster,
            vec![job],
            &sampler,
            &mut s2,
            &EngineConfig::default(),
        );
        assert!(r2.jobs[0].clone_copies <= 4, "≤ 2 clones × 2 tasks");
        assert!(r2.jobs[0].clone_copies >= r1.jobs[0].clone_copies);
    }

    #[test]
    fn large_jobs_are_not_cloned_while_backlog_exists() {
        // Two equal big jobs with idle servers to spare: while BOTH are
        // active, neither passes the δ = 0.3 small-job gate (each equals
        // the other's backlog), so the job finishing first must have zero
        // clones. Once it completes, the survivor runs alone (no backlog)
        // and may legitimately be cloned.
        let cluster = ClusterSpec::homogeneous(4, 1.0, 1.0);
        let jobs: Vec<JobSpec> = (0..2)
            .map(|i| JobSpec::single_phase(JobId(i), 1, Resources::new(1.0, 1.0), 20.0, 8.0))
            .collect();
        let sampler = DurationSampler::new(13, StragglerModel::ParetoFit);
        let mut s = DollyMP::new();
        let r = simulate(&cluster, jobs, &sampler, &mut s, &EngineConfig::default());
        let first_finisher = r
            .jobs
            .iter()
            .min_by_key(|j| (j.finish, j.id))
            .expect("two jobs ran");
        assert_eq!(
            first_finisher.clone_copies, 0,
            "no clones while the equal-size backlog existed"
        );
    }

    #[test]
    fn summary_cache_equivalent_under_faults() {
        // Crashes re-queue tasks without changing remaining-task counts;
        // the loss-epoch must keep cached and uncached DollyMP decision-
        // identical through fault recovery.
        use dollymp_cluster::engine::simulate_with_faults;
        use dollymp_cluster::fault::{FaultEvent, FaultTimeline, TimedFault};
        let cluster = ClusterSpec::paper_30_node();
        let jobs: Vec<JobSpec> = (0..12)
            .map(|i| JobSpec::single_phase(JobId(i), 10, Resources::new(2.0, 4.0), 15.0, 5.0))
            .collect();
        let sampler = DurationSampler::new(23, StragglerModel::ParetoFit);
        let tl = FaultTimeline::new(vec![
            TimedFault {
                at: 6,
                event: FaultEvent::Crash(ServerId(2)),
            },
            TimedFault {
                at: 40,
                event: FaultEvent::Restore(ServerId(2)),
            },
            TimedFault {
                at: 10,
                event: FaultEvent::Crash(ServerId(20)),
            },
            TimedFault {
                at: 55,
                event: FaultEvent::Restore(ServerId(20)),
            },
        ]);
        let cfg = EngineConfig::default();
        let mut cached = DollyMP::new();
        let r1 = simulate_with_faults(&cluster, jobs.clone(), &sampler, &mut cached, &cfg, &tl);
        let mut uncached = DollyMP::new().without_summary_cache();
        let r2 = simulate_with_faults(&cluster, jobs, &sampler, &mut uncached, &cfg, &tl);
        assert!(r1.faults.copies_evicted > 0, "the crashes must bite");
        assert_eq!(r1.jobs, r2.jobs);
        assert_eq!(r1.faults, r2.faults);
        assert_eq!(r1.makespan, r2.makespan);
    }

    #[test]
    fn recovers_requeued_tasks_after_crash() {
        use dollymp_cluster::engine::simulate_with_faults;
        use dollymp_cluster::fault::{FaultEvent, FaultTimeline, TimedFault};
        // Single server: every copy dies with it, so each loss is a full
        // re-queue DollyMP must re-place after the restore.
        let cluster = ClusterSpec::homogeneous(1, 4.0, 4.0);
        let job = JobSpec::single_phase(JobId(0), 4, Resources::new(1.0, 1.0), 10.0, 0.0);
        let tl = FaultTimeline::new(vec![
            TimedFault {
                at: 5,
                event: FaultEvent::Crash(ServerId(0)),
            },
            TimedFault {
                at: 9,
                event: FaultEvent::Restore(ServerId(0)),
            },
        ]);
        let mut s = DollyMP::with_clones(0);
        let r = simulate_with_faults(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut s,
            &EngineConfig::default(),
            &tl,
        );
        assert_eq!(r.jobs.len(), 1, "the job still completes");
        assert_eq!(r.faults.tasks_requeued, 4);
        // 5 slots lost + 4 idle + full 10-slot rerun.
        assert_eq!(r.jobs[0].finish, 19);
    }

    #[test]
    fn beats_fifo_on_mixed_sizes() {
        // The headline behaviour: on a mix of small and large jobs with
        // stragglers, DollyMP² must achieve lower total flowtime than
        // FIFO first-fit.
        let cluster = ClusterSpec::paper_30_node();
        let mut jobs = Vec::new();
        for i in 0..30u64 {
            let (n, theta) = if i % 3 == 0 { (20, 40.0) } else { (4, 8.0) };
            jobs.push(
                JobSpec::builder(JobId(i))
                    .arrival(i * 2)
                    .phase(dollymp_core::job::PhaseSpec::new(
                        n,
                        Resources::new(2.0, 4.0),
                        theta,
                        theta / 2.0,
                    ))
                    .build()
                    .unwrap(),
            );
        }
        let sampler = DurationSampler::new(17, StragglerModel::ParetoFit);
        let mut fifo = FifoFirstFit;
        let r_fifo = simulate(
            &cluster,
            jobs.clone(),
            &sampler,
            &mut fifo,
            &EngineConfig::default(),
        );
        let mut dmp = DollyMP::new();
        let r_dmp = simulate(&cluster, jobs, &sampler, &mut dmp, &EngineConfig::default());
        assert!(
            r_dmp.total_flowtime() < r_fifo.total_flowtime(),
            "DollyMP {} ≥ FIFO {}",
            r_dmp.total_flowtime(),
            r_fifo.total_flowtime()
        );
    }
}
