//! The DollyMP scheduler — Algorithm 2 of the paper.
//!
//! On every job arrival, the priorities of *all* unfinished jobs are
//! recomputed by the transient Algorithm 1 over their remaining volumes
//! and critical paths (Eq. 16/17); between arrivals the order is frozen
//! (§5: "the scheduling order of all jobs in the cluster won't be updated
//! until the next job arrival").
//!
//! At each decision point the scheduler then:
//!
//! 1. **Primary pass** — per server, repeatedly pick the highest-priority
//!    level that has a fitting ready task and, within the level, the task
//!    with the best Tetris alignment (`R·c` inner product, Algorithm 2
//!    step 12);
//! 2. **Clone passes** — with the leftover resources, walk tasks of jobs
//!    in the same priority order and give each *running* task of a
//!    clone-eligible (small, §4.1-gated) job up to
//!    `max_copies − 1` extra copies; the pass is repeated twice, mirroring
//!    Algorithm 2's "Repeat Step 9 twice".

use crate::common::{ready_tasks_of, FreeTracker, ReadyTask};
use dollymp_cluster::prelude::*;
use dollymp_core::job::{JobId, TaskRef};
use dollymp_core::online::{best_fit_score, ClonePolicy, PriorityTable};
use dollymp_core::resources::Resources;
use dollymp_core::transient::{
    transient_schedule, SummaryCache, SummaryInput, TransientConfig, TransientJob,
};
use std::collections::{HashMap, HashSet};

/// A cloning candidate: a task of a §4.1-eligible job, with its demand
/// and view-side copy count cached so the per-pass budget filter does
/// not have to re-resolve the job.
#[derive(Debug, Clone, Copy)]
struct CloneCandidate {
    task: TaskRef,
    demand: Resources,
    live_copies: u32,
}

/// The DollyMP scheduler (Algorithm 2). `DollyMP::with_clones(r)` builds
/// the paper's DollyMP^r variants.
#[derive(Debug, Clone)]
pub struct DollyMP {
    /// Algorithm 1 configuration (σ-weight `w = 1.5` by default).
    pub transient: TransientConfig,
    /// Cloning budget and §4.1 small-job gate.
    pub clone_policy: ClonePolicy,
    table: PriorityTable,
    /// Eq. 16/17 job summaries memoized across arrivals (jobs whose
    /// remaining work is unchanged are not re-summarized).
    cache: SummaryCache,
    use_summary_cache: bool,
    /// Fault-induced task losses per job. A loss re-queues a task without
    /// changing the remaining-task counts, so the summary-cache
    /// fingerprint alone cannot see it; the epoch keeps the cache honest
    /// (see `SummaryInput::loss_epoch`).
    loss_epochs: HashMap<JobId, u64>,
}

impl DollyMP {
    /// DollyMP with the paper's defaults (two clones, `δ = 0.3`,
    /// `w = 1.5`) — the DollyMP² configuration.
    pub fn new() -> Self {
        DollyMP::with_clones(2)
    }

    /// DollyMP^r: at most `clones` extra copies per task.
    pub fn with_clones(clones: u32) -> Self {
        let clone_policy = if clones == 0 {
            ClonePolicy::disabled()
        } else {
            ClonePolicy::with_clones(clones)
        };
        DollyMP {
            transient: TransientConfig {
                max_copies: clones + 1,
                ..TransientConfig::default()
            },
            clone_policy,
            table: PriorityTable::default(),
            cache: SummaryCache::new(),
            use_summary_cache: true,
            loss_epochs: HashMap::new(),
        }
    }

    /// Disable the Algorithm 1 summary cache and recompute every job
    /// summary from scratch at each arrival. Decisions are identical
    /// either way — this hook exists so tests can pin that equivalence
    /// (and to measure the cache's benefit in benchmarks).
    pub fn without_summary_cache(mut self) -> Self {
        self.use_summary_cache = false;
        self.cache.clear();
        self
    }

    /// Override the §4.1 small-job gate `δ`.
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.clone_policy.delta = delta;
        self
    }

    /// Override the σ-weight of effective processing times.
    pub fn with_sigma_weight(mut self, w: f64) -> Self {
        self.transient.sigma_weight = w;
        self
    }

    fn refresh_priorities(&mut self, view: &ClusterView<'_>) {
        let totals = view.totals();
        let w = self.transient.sigma_weight;
        let inputs: Vec<SummaryInput<'_>> = view
            .jobs()
            .map(|j| SummaryInput {
                spec: j.spec(),
                remaining_tasks: j.remaining_tasks(),
                finished_phases: j.finished_phases(),
                loss_epoch: self.loss_epochs.get(&j.id()).copied().unwrap_or(0),
            })
            .collect();
        let summaries: Vec<TransientJob> = if self.use_summary_cache {
            self.cache.summarize(&inputs, totals, w)
        } else {
            inputs
                .iter()
                .map(|i| {
                    TransientJob::from_remaining(
                        i.spec,
                        &i.remaining_tasks,
                        &i.finished_phases,
                        totals,
                        w,
                    )
                })
                .collect()
        };
        let out = transient_schedule(&summaries, &self.transient);
        self.table = PriorityTable::from_output(&summaries, &out);
    }

    /// Jobs grouped by ascending priority level.
    fn priority_groups(&self, view: &ClusterView<'_>) -> Vec<(u32, Vec<JobId>)> {
        self.table.grouped(view.jobs().map(|j| j.id()))
    }

    /// The primary placement pass (Algorithm 2 steps 6–15).
    ///
    /// Tasks of one phase are statistically identical, so candidates are
    /// *bucketed* by (job, phase): the per-server best-fit argmax scans
    /// one entry per distinct demand instead of one per task, which is
    /// what keeps a full pass over 30 000 servers within the paper's
    /// §6.3.3 overhead budget.
    fn place_primaries(
        &self,
        view: &ClusterView<'_>,
        groups: &[(u32, Vec<JobId>)],
        server_order: &[ServerId],
        free: &mut FreeTracker,
    ) -> Vec<Assignment> {
        let mut out = Vec::new();
        // Flat bucket store (one bucket per (job, demand)), indexed per
        // priority group, so the hot argmax loop below is pure array
        // traversal with no hashing.
        let mut flat: Vec<(Resources, Vec<ReadyTask>)> = Vec::new();
        let mut job_buckets: HashMap<JobId, (usize, usize)> = HashMap::new();
        let mut ready_count: usize = 0;
        let mut min_demand: Option<Resources> = None;
        for j in view.jobs() {
            let tasks = ready_tasks_of(j);
            if tasks.is_empty() {
                continue;
            }
            ready_count += tasks.len();
            let start = flat.len();
            for rt in tasks {
                min_demand = Some(match min_demand {
                    Some(m) => m.min(rt.demand),
                    None => rt.demand,
                });
                match flat[start..].iter_mut().find(|(d, _)| *d == rt.demand) {
                    Some((_, v)) => v.push(rt),
                    None => flat.push((rt.demand, vec![rt])),
                }
            }
            job_buckets.insert(j.id(), (start, flat.len()));
        }
        if ready_count == 0 {
            return out;
        }
        let min_demand = min_demand.expect("ready_count > 0");
        if !free.could_fit(min_demand) {
            // Nothing fits anywhere in the cluster — skip the server walk.
            return out;
        }
        // Per priority group, buckets collapsed by *distinct demand*: all
        // buckets sharing a demand have the same Tetris score against any
        // server, and the scan's strict `score > best` keeps the first
        // seen, so the argmax only needs one entry per distinct demand —
        // its frontmost alive bucket in group order. Exact-score ties
        // *across* demands break toward the smaller group position,
        // reproducing the first-seen-wins bucket scan verbatim. Task
        // demands are coarse in practice, so this turns an O(#jobs)
        // per-placement scan into an O(#distinct demands) one.
        struct DemandQueue {
            demand: Resources,
            /// (group-order position, bucket index) — FIFO in group order.
            buckets: std::collections::VecDeque<(u32, u32)>,
        }
        let mut group_queues: Vec<Vec<DemandQueue>> = groups
            .iter()
            .map(|(_, members)| {
                let mut qs: Vec<DemandQueue> = Vec::new();
                let mut pos = 0u32;
                for &jid in members {
                    let Some(&(lo, hi)) = job_buckets.get(&jid) else {
                        continue;
                    };
                    for (bidx, &(demand, _)) in flat.iter().enumerate().take(hi).skip(lo) {
                        match qs.iter_mut().find(|q| q.demand == demand) {
                            Some(q) => q.buckets.push_back((pos, bidx as u32)),
                            None => qs.push(DemandQueue {
                                demand,
                                buckets: std::collections::VecDeque::from([(pos, bidx as u32)]),
                            }),
                        }
                        pos += 1;
                    }
                }
                qs
            })
            .collect();

        for &server in server_order {
            'server: loop {
                let avail = free.free(server);
                // Component-wise lower bound: if even the smallest demand
                // cannot fit, nothing can — skip this server instantly.
                if !min_demand.fits_in(avail) {
                    break;
                }
                // Highest-priority level with a fitting task; within the
                // level, the best-aligned demand bucket (step 12).
                for qs in &mut group_queues {
                    let mut best: Option<(f64, u32, usize)> = None;
                    for (qi, q) in qs.iter().enumerate() {
                        let Some(&(pos, _)) = q.buckets.front() else {
                            continue;
                        };
                        if !q.demand.fits_in(avail) {
                            continue;
                        }
                        let score = best_fit_score(q.demand, avail);
                        let better = match best {
                            None => true,
                            Some((b, bpos, _)) => score > b || (score == b && pos < bpos),
                        };
                        if better {
                            best = Some((score, pos, qi));
                        }
                    }
                    if let Some((_, _, qi)) = best {
                        let q = &mut qs[qi];
                        let &(_, bidx) = q.buckets.front().expect("non-empty queue");
                        let bucket = &mut flat[bidx as usize].1;
                        let rt = bucket.pop().expect("non-empty bucket");
                        if bucket.is_empty() {
                            q.buckets.pop_front();
                        }
                        free.commit(server, rt.demand);
                        free.note_copy(rt.task);
                        out.push(Assignment {
                            task: rt.task,
                            server,
                            kind: CopyKind::Primary,
                        });
                        ready_count -= 1;
                        if ready_count == 0 {
                            return out;
                        }
                        continue 'server;
                    }
                }
                break;
            }
        }
        out
    }

    /// Clone candidates for this decision point, in priority order
    /// (Algorithm 2 step 16's input set).
    ///
    /// Candidates are the tasks already running in the view *plus* the
    /// primaries placed earlier in this very batch (`newly_placed`) — the
    /// paper clones small jobs "when they are scheduled" (Fig. 2), not one
    /// decision point later. The §4.1 gate, remaining volumes, and the
    /// candidate walk depend only on the immutable view and the primary
    /// batch, so this is computed **once** per decision point and shared
    /// by both clone passes; the per-pass copy-budget filters are applied
    /// at queue-build time inside [`Self::place_clones`].
    fn clone_candidates(
        &self,
        view: &ClusterView<'_>,
        groups: &[(u32, Vec<JobId>)],
        newly_placed: &HashMap<JobId, Vec<TaskRef>>,
    ) -> Vec<CloneCandidate> {
        if self.clone_policy.max_copies <= 1 {
            return Vec::new();
        }
        let w = self.transient.sigma_weight;
        // Remaining volumes, computed once (the §4.1 gate needs every
        // job's volume against the sum of the others'; recomputing per
        // candidate would make this pass quadratic).
        let totals = view.totals();
        let volumes: HashMap<JobId, f64> = view
            .jobs()
            .map(|j| (j.id(), j.remaining_volume(totals, w)))
            .collect();
        let total_volume: f64 = volumes.values().sum();
        let mut out: Vec<CloneCandidate> = Vec::new();
        for (_, members) in groups {
            for &jid in members {
                let Some(job) = view.job(jid) else { continue };
                // §4.1 small-job gate.
                let mine = volumes.get(&jid).copied().unwrap_or(0.0);
                let others = (total_volume - mine).max(0.0);
                if !self.clone_policy.small_job_gate(mine, others) {
                    continue;
                }
                let mut candidates = job.running_tasks();
                if let Some(extra) = newly_placed.get(&jid) {
                    candidates.extend(extra.iter().copied());
                }
                for task in candidates {
                    out.push(CloneCandidate {
                        task,
                        demand: job.spec().phase(task.phase).demand,
                        // Copies live in the (immutable) view — cached so
                        // the per-pass budget filter needs no job lookup.
                        live_copies: job.task(task.phase, task.task).live_copies(),
                    });
                }
            }
        }
        out
    }

    /// One clone pass over leftover resources (Algorithm 2 step 16).
    ///
    /// `candidates` comes from [`Self::clone_candidates`]; the filters
    /// that change between passes (copy budget, one-new-clone-per-task)
    /// are applied here.
    ///
    /// The priority-ordered request queue is kept as one FIFO per
    /// *distinct demand*. Free capacity on a server only shrinks during
    /// its scan, so a request that does not fit when passed over never
    /// fits later on that server — picking the earliest-position request
    /// that fits, repeatedly, places exactly the same set as a sequential
    /// walk of the flat queue, while costing `O(placements × #demands)`
    /// instead of `O(queue length)` per server.
    fn place_clones(
        &self,
        candidates: &[CloneCandidate],
        cloned_this_batch: &mut HashSet<TaskRef>,
        server_order: &[ServerId],
        free: &mut FreeTracker,
    ) -> Vec<Assignment> {
        let mut out = Vec::new();
        struct CloneQueue {
            demand: Resources,
            /// (priority-order position, task) — FIFO in priority order.
            tasks: std::collections::VecDeque<(u32, TaskRef)>,
        }
        let mut queues: Vec<CloneQueue> = Vec::new();
        let mut pos = 0u32;
        let mut remaining = 0usize;
        let mut min_demand: Option<Resources> = None;
        for &CloneCandidate {
            task,
            demand,
            live_copies,
        } in candidates
        {
            // At most one new clone per task per decision point: the RM
            // grants clone containers round by round ("repeat Step 9"
            // spans allocation rounds, not one batch), so a task's second
            // clone can only arrive at a later decision point.
            if cloned_this_batch.contains(&task) {
                continue;
            }
            if live_copies + free.pending_copies_of(task) >= self.clone_policy.max_copies {
                continue;
            }
            min_demand = Some(match min_demand {
                Some(m) => m.min(demand),
                None => demand,
            });
            match queues.iter_mut().find(|q| q.demand == demand) {
                Some(q) => q.tasks.push_back((pos, task)),
                None => queues.push(CloneQueue {
                    demand,
                    tasks: std::collections::VecDeque::from([(pos, task)]),
                }),
            }
            pos += 1;
            remaining += 1;
        }
        if remaining == 0 {
            return out;
        }

        // Server-driven placement (the RM hands leftover capacity to
        // clone requests as heartbeats come in): walk servers in order and
        // satisfy the queue in priority order. A global min-demand bound
        // skips exhausted servers in O(1).
        let min_demand = min_demand.expect("remaining > 0");
        if !free.could_fit(min_demand) {
            // No server in the whole cluster has room for even the
            // smallest request — skip the server walk entirely.
            return out;
        }
        for &server in server_order {
            if remaining == 0 {
                break;
            }
            if !min_demand.fits_in(free.free(server)) {
                continue;
            }
            loop {
                let avail = free.free(server);
                // Earliest-position request that fits the current free.
                let mut best: Option<(u32, usize)> = None;
                for (qi, q) in queues.iter().enumerate() {
                    let Some(&(p, _)) = q.tasks.front() else {
                        continue;
                    };
                    if !q.demand.fits_in(avail) {
                        continue;
                    }
                    if best.map(|(bp, _)| p < bp).unwrap_or(true) {
                        best = Some((p, qi));
                    }
                }
                let Some((_, qi)) = best else { break };
                let q = &mut queues[qi];
                let (_, task) = q.tasks.pop_front().expect("non-empty queue");
                let demand = q.demand;
                free.commit(server, demand);
                free.note_copy(task);
                cloned_this_batch.insert(task);
                out.push(Assignment {
                    task,
                    server,
                    kind: CopyKind::Clone,
                });
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
            }
        }
        out
    }
}

impl Default for DollyMP {
    fn default() -> Self {
        DollyMP::new()
    }
}

impl Scheduler for DollyMP {
    fn name(&self) -> String {
        format!("dollymp{}", self.clone_policy.max_copies - 1)
    }

    fn on_job_arrival(&mut self, view: &ClusterView<'_>, _job: JobId) {
        self.refresh_priorities(view);
    }

    fn on_job_finish(&mut self, job: &dollymp_cluster::state::JobState) {
        self.table.remove(job.id());
        self.cache.remove(job.id());
        self.loss_epochs.remove(&job.id());
    }

    fn on_task_lost(&mut self, view: &ClusterView<'_>, task: TaskRef) {
        // The re-queued task's job lost work the remaining-task
        // fingerprint cannot see; bump its epoch and re-run Algorithm 1 so
        // the frozen order reflects the post-crash state of the cluster
        // (a crash is as much a scheduling shock as an arrival).
        *self.loss_epochs.entry(task.job).or_insert(0) += 1;
        self.refresh_priorities(view);
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        let order: Vec<ServerId> = (0..view.cluster().len() as u32).map(ServerId).collect();
        self.schedule_with_server_order(view, &order)
    }
}

impl DollyMP {
    /// Run one full Algorithm 2 pass visiting servers in the given order
    /// — the hook the `learned` extension uses to prefer fast machines.
    /// `schedule` calls this with the identity order.
    pub fn schedule_with_server_order(
        &mut self,
        view: &ClusterView<'_>,
        server_order: &[ServerId],
    ) -> Vec<Assignment> {
        let groups = self.priority_groups(view);
        let mut free = FreeTracker::new(view);
        let batch = self.place_primaries(view, &groups, server_order, &mut free);
        let mut newly_placed: HashMap<JobId, Vec<TaskRef>> = HashMap::new();
        for a in &batch {
            newly_placed.entry(a.task.job).or_default().push(a.task);
        }
        let mut batch = batch;
        // "Repeat Step 9 twice if there are available resources" — but at
        // most one *new* clone per task per decision point (clone
        // containers are granted round by round). The candidate set is
        // invariant across the two passes, so it is collected once.
        let candidates = self.clone_candidates(view, &groups, &newly_placed);
        let mut cloned_this_batch = HashSet::new();
        for _ in 0..2 {
            let clones =
                self.place_clones(&candidates, &mut cloned_this_batch, server_order, &mut free);
            if clones.is_empty() {
                break;
            }
            batch.extend(clones);
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dollymp_cluster::engine::{simulate, EngineConfig};
    use dollymp_core::job::JobSpec;
    use dollymp_core::resources::Resources;

    fn det_sampler() -> DurationSampler {
        DurationSampler::new(7, StragglerModel::Deterministic)
    }

    #[test]
    fn names_encode_clone_budget() {
        assert_eq!(DollyMP::with_clones(0).name(), "dollymp0");
        assert_eq!(DollyMP::with_clones(1).name(), "dollymp1");
        assert_eq!(DollyMP::new().name(), "dollymp2");
    }

    #[test]
    fn completes_a_simple_workload() {
        let cluster = ClusterSpec::homogeneous(2, 4.0, 8.0);
        let jobs: Vec<JobSpec> = (0..5)
            .map(|i| JobSpec::single_phase(JobId(i), 2, Resources::new(1.0, 2.0), 6.0, 2.0))
            .collect();
        let mut s = DollyMP::new();
        let sampler = DurationSampler::new(3, StragglerModel::ParetoFit);
        let r = simulate(&cluster, jobs, &sampler, &mut s, &EngineConfig::default());
        assert_eq!(r.jobs.len(), 5);
        assert!(r.total_flowtime() > 0);
    }

    #[test]
    fn prioritizes_small_jobs_over_large() {
        // One server; a long fat job (id 0) and a short thin job (id 1)
        // arriving together. DollyMP must run the small one first.
        let cluster = ClusterSpec::homogeneous(1, 1.0, 1.0);
        let big = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 50.0, 0.0);
        let small = JobSpec::single_phase(JobId(1), 1, Resources::new(1.0, 1.0), 2.0, 0.0);
        let mut s = DollyMP::with_clones(0);
        let r = simulate(
            &cluster,
            vec![big, small],
            &det_sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        let by_id = r.by_id();
        assert_eq!(by_id[&JobId(1)].flowtime, 2, "small job first");
        assert_eq!(by_id[&JobId(0)].flowtime, 52);
    }

    #[test]
    fn clones_when_idle_resources_exist() {
        // Heterogeneous speeds: primary may land on the slow server; the
        // clone pass must exploit the idle fast server.
        let cluster = ClusterSpec::new(vec![
            ServerSpec::new(1.0, 1.0).with_speed(0.25),
            ServerSpec::new(1.0, 1.0).with_speed(1.0),
        ]);
        let job = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 8.0, 0.0);
        let mut s = DollyMP::new();
        let r = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        let m = &r.jobs[0];
        assert_eq!(m.clone_copies, 1, "one clone on the idle server");
        // Primary lands on the fast server (best fit tie → both equal →
        // server order favors 0? free is identical; score ties → first
        // seen wins, i.e. server 0, the slow one at 32 slots; the clone on
        // server 1 takes 8 slots and wins.
        assert_eq!(m.flowtime, 8);
    }

    #[test]
    fn dollymp0_never_clones() {
        let cluster = ClusterSpec::homogeneous(4, 4.0, 4.0);
        let jobs: Vec<JobSpec> = (0..3)
            .map(|i| JobSpec::single_phase(JobId(i), 2, Resources::new(1.0, 1.0), 5.0, 3.0))
            .collect();
        let mut s = DollyMP::with_clones(0);
        let sampler = DurationSampler::new(5, StragglerModel::ParetoFit);
        let r = simulate(&cluster, jobs, &sampler, &mut s, &EngineConfig::default());
        assert!(r.jobs.iter().all(|j| j.clone_copies == 0));
    }

    #[test]
    fn clone_budget_respected() {
        // Plenty of idle capacity: DollyMP¹ must cap at 1 clone per task.
        let cluster = ClusterSpec::homogeneous(8, 4.0, 4.0);
        let job = JobSpec::single_phase(JobId(0), 2, Resources::new(1.0, 1.0), 10.0, 5.0);
        let sampler = DurationSampler::new(11, StragglerModel::ParetoFit);
        let mut s1 = DollyMP::with_clones(1);
        let r1 = simulate(
            &cluster,
            vec![job.clone()],
            &sampler,
            &mut s1,
            &EngineConfig::default(),
        );
        assert!(r1.jobs[0].clone_copies <= 2, "≤ 1 clone × 2 tasks");
        assert!(
            r1.jobs[0].clone_copies >= 1,
            "idle cluster → clones expected"
        );
        let mut s2 = DollyMP::new();
        let r2 = simulate(
            &cluster,
            vec![job],
            &sampler,
            &mut s2,
            &EngineConfig::default(),
        );
        assert!(r2.jobs[0].clone_copies <= 4, "≤ 2 clones × 2 tasks");
        assert!(r2.jobs[0].clone_copies >= r1.jobs[0].clone_copies);
    }

    #[test]
    fn large_jobs_are_not_cloned_while_backlog_exists() {
        // Two equal big jobs with idle servers to spare: while BOTH are
        // active, neither passes the δ = 0.3 small-job gate (each equals
        // the other's backlog), so the job finishing first must have zero
        // clones. Once it completes, the survivor runs alone (no backlog)
        // and may legitimately be cloned.
        let cluster = ClusterSpec::homogeneous(4, 1.0, 1.0);
        let jobs: Vec<JobSpec> = (0..2)
            .map(|i| JobSpec::single_phase(JobId(i), 1, Resources::new(1.0, 1.0), 20.0, 8.0))
            .collect();
        let sampler = DurationSampler::new(13, StragglerModel::ParetoFit);
        let mut s = DollyMP::new();
        let r = simulate(&cluster, jobs, &sampler, &mut s, &EngineConfig::default());
        let first_finisher = r
            .jobs
            .iter()
            .min_by_key(|j| (j.finish, j.id))
            .expect("two jobs ran");
        assert_eq!(
            first_finisher.clone_copies, 0,
            "no clones while the equal-size backlog existed"
        );
    }

    #[test]
    fn summary_cache_equivalent_under_faults() {
        // Crashes re-queue tasks without changing remaining-task counts;
        // the loss-epoch must keep cached and uncached DollyMP decision-
        // identical through fault recovery.
        use dollymp_cluster::engine::simulate_with_faults;
        use dollymp_cluster::fault::{FaultEvent, FaultTimeline, TimedFault};
        let cluster = ClusterSpec::paper_30_node();
        let jobs: Vec<JobSpec> = (0..12)
            .map(|i| JobSpec::single_phase(JobId(i), 10, Resources::new(2.0, 4.0), 15.0, 5.0))
            .collect();
        let sampler = DurationSampler::new(23, StragglerModel::ParetoFit);
        let tl = FaultTimeline::new(vec![
            TimedFault {
                at: 6,
                event: FaultEvent::Crash(ServerId(2)),
            },
            TimedFault {
                at: 40,
                event: FaultEvent::Restore(ServerId(2)),
            },
            TimedFault {
                at: 10,
                event: FaultEvent::Crash(ServerId(20)),
            },
            TimedFault {
                at: 55,
                event: FaultEvent::Restore(ServerId(20)),
            },
        ]);
        let cfg = EngineConfig::default();
        let mut cached = DollyMP::new();
        let r1 = simulate_with_faults(&cluster, jobs.clone(), &sampler, &mut cached, &cfg, &tl);
        let mut uncached = DollyMP::new().without_summary_cache();
        let r2 = simulate_with_faults(&cluster, jobs, &sampler, &mut uncached, &cfg, &tl);
        assert!(r1.faults.copies_evicted > 0, "the crashes must bite");
        assert_eq!(r1.jobs, r2.jobs);
        assert_eq!(r1.faults, r2.faults);
        assert_eq!(r1.makespan, r2.makespan);
    }

    #[test]
    fn recovers_requeued_tasks_after_crash() {
        use dollymp_cluster::engine::simulate_with_faults;
        use dollymp_cluster::fault::{FaultEvent, FaultTimeline, TimedFault};
        // Single server: every copy dies with it, so each loss is a full
        // re-queue DollyMP must re-place after the restore.
        let cluster = ClusterSpec::homogeneous(1, 4.0, 4.0);
        let job = JobSpec::single_phase(JobId(0), 4, Resources::new(1.0, 1.0), 10.0, 0.0);
        let tl = FaultTimeline::new(vec![
            TimedFault {
                at: 5,
                event: FaultEvent::Crash(ServerId(0)),
            },
            TimedFault {
                at: 9,
                event: FaultEvent::Restore(ServerId(0)),
            },
        ]);
        let mut s = DollyMP::with_clones(0);
        let r = simulate_with_faults(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut s,
            &EngineConfig::default(),
            &tl,
        );
        assert_eq!(r.jobs.len(), 1, "the job still completes");
        assert_eq!(r.faults.tasks_requeued, 4);
        // 5 slots lost + 4 idle + full 10-slot rerun.
        assert_eq!(r.jobs[0].finish, 19);
    }

    #[test]
    fn beats_fifo_on_mixed_sizes() {
        // The headline behaviour: on a mix of small and large jobs with
        // stragglers, DollyMP² must achieve lower total flowtime than
        // FIFO first-fit.
        let cluster = ClusterSpec::paper_30_node();
        let mut jobs = Vec::new();
        for i in 0..30u64 {
            let (n, theta) = if i % 3 == 0 { (20, 40.0) } else { (4, 8.0) };
            jobs.push(
                JobSpec::builder(JobId(i))
                    .arrival(i * 2)
                    .phase(dollymp_core::job::PhaseSpec::new(
                        n,
                        Resources::new(2.0, 4.0),
                        theta,
                        theta / 2.0,
                    ))
                    .build()
                    .unwrap(),
            );
        }
        let sampler = DurationSampler::new(17, StragglerModel::ParetoFit);
        let mut fifo = FifoFirstFit;
        let r_fifo = simulate(
            &cluster,
            jobs.clone(),
            &sampler,
            &mut fifo,
            &EngineConfig::default(),
        );
        let mut dmp = DollyMP::new();
        let r_dmp = simulate(&cluster, jobs, &sampler, &mut dmp, &EngineConfig::default());
        assert!(
            r_dmp.total_flowtime() < r_fifo.total_flowtime(),
            "DollyMP {} ≥ FIFO {}",
            r_dmp.total_flowtime(),
            r_fifo.total_flowtime()
        );
    }
}
