//! Shared placement machinery used by every scheduler implementation.
//!
//! Schedulers receive an immutable [`ClusterView`] and must return a
//! self-consistent batch of assignments; [`FreeTracker`] layers the
//! batch's tentative commitments (and per-task copy counts) over the
//! engine's shared capacity index, so a scheduler can never over-commit —
//! without cloning the per-server free vector each pass.

use dollymp_cluster::capacity::CapacityOverlay;
use dollymp_cluster::prelude::*;
use dollymp_core::hash::FxHashMap;
use dollymp_core::job::TaskRef;
use dollymp_core::resources::Resources;

/// Tracks tentative resource commitments while one scheduling batch is
/// being constructed.
///
/// Since the capacity-index rework this is a thin wrapper over a
/// [`CapacityOverlay`] borrowed from the view's shared
/// [`dollymp_cluster::capacity::CapacityIndex`]: constructing a tracker is
/// O(1) — no clone of the per-server free vector — and the first-fit /
/// best-fit / max-free queries run on the segment tree in O(log n) with
/// results identical to the historical linear scans.
pub struct FreeTracker<'a> {
    ovl: CapacityOverlay<'a>,
    /// Extra copies committed in this batch, per task.
    pending_copies: FxHashMap<TaskRef, u32>,
}

impl<'a> FreeTracker<'a> {
    /// Start tracking a batch over the view's free resources (O(1)).
    pub fn new(view: &ClusterView<'a>) -> FreeTracker<'a> {
        FreeTracker {
            ovl: view.capacity().begin_batch(),
            pending_copies: FxHashMap::default(),
        }
    }

    /// Remaining free resources on a server, net of this batch.
    pub fn free(&self, s: ServerId) -> Resources {
        self.ovl.free(s)
    }

    /// Per-dimension max of free resources over all servers, net of this
    /// batch (O(1) — the tree root).
    pub fn max_free(&self) -> Resources {
        self.ovl.max_free()
    }

    /// O(1) pre-check: if `demand` does not fit the per-dimension max of
    /// free capacity, it fits **no** server and the full scan can be
    /// skipped. (The converse does not hold — the max mixes dimensions
    /// from different servers — so a `true` still requires a real query.)
    pub fn could_fit(&self, demand: Resources) -> bool {
        self.ovl.could_fit(demand)
    }

    /// Total remaining free resources, net of this batch.
    pub fn total_free(&self) -> Resources {
        self.ovl.total_free()
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.ovl.len()
    }

    /// True when there are no servers (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.ovl.is_empty()
    }

    /// Does `demand` fit some server right now?
    pub fn fits_anywhere(&self, demand: Resources) -> bool {
        self.ovl.fits_anywhere(demand)
    }

    /// First server (by id) with room for `demand`.
    pub fn first_fit(&self, demand: Resources) -> Option<ServerId> {
        self.ovl.first_fit(demand)
    }

    /// First server with id ≥ `start` that has room for `demand` — lets a
    /// left-to-right placement walk skip non-fitting servers in O(log n)
    /// instead of probing each one.
    pub fn next_fit_at_or_after(&self, start: usize, demand: Resources) -> Option<ServerId> {
        self.ovl.next_fit_at_or_after(start, demand)
    }

    /// Server maximizing the Tetris alignment score `demand · free`
    /// among those with room.
    pub fn best_fit(&self, demand: Resources) -> Option<ServerId> {
        self.ovl.best_fit(demand)
    }

    /// Commit `demand` on `server`.
    ///
    /// # Panics
    /// Panics if it does not fit — callers must check first.
    pub fn commit(&mut self, server: ServerId, demand: Resources) {
        assert!(
            self.ovl.try_commit(server, demand),
            "FreeTracker::commit without a fit check"
        );
    }

    /// Return `amount` of capacity to `server` — the inverse of
    /// [`FreeTracker::commit`], used when a long-lived tracker learns of
    /// *growing* capacity (a crashed server restored by fault recovery;
    /// see `Scheduler::on_server_up`).
    ///
    /// The historical cached max summary was shrink-only (a commit can
    /// only lower it), so growth had to raise it explicitly: a stale max
    /// would make [`FreeTracker::could_fit`] reject demands the recovered
    /// server can in fact hold, silently idling restored capacity. The
    /// overlay's tree maintains the max on every write, which preserves
    /// that fix (pinned by `release_raises_the_cached_max` below).
    pub fn release(&mut self, server: ServerId, amount: Resources) {
        self.ovl.release(server, amount);
    }

    /// Copies of `task` live in the view **plus** committed in this batch.
    pub fn effective_copies(&self, view: &ClusterView<'_>, task: TaskRef) -> u32 {
        let live = view
            .job(task.job)
            .map(|j| j.task(task.phase, task.task).live_copies())
            .unwrap_or(0);
        live + self.pending_copies_of(task)
    }

    /// Copies committed to `task` in this batch only (no view lookup —
    /// for callers that already know the live count).
    pub fn pending_copies_of(&self, task: TaskRef) -> u32 {
        self.pending_copies.get(&task).copied().unwrap_or(0)
    }

    /// Record that this batch adds one copy to `task`.
    pub fn note_copy(&mut self, task: TaskRef) {
        *self.pending_copies.entry(task).or_insert(0) += 1;
    }
}

/// A ready task together with its demand (avoids re-deriving the phase
/// spec at every comparison).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadyTask {
    /// The task.
    pub task: TaskRef,
    /// Its per-copy resource demand.
    pub demand: Resources,
}

/// Collect the ready tasks of one job.
pub fn ready_tasks_of(job: &JobState) -> Vec<ReadyTask> {
    job.ready_tasks()
        .into_iter()
        .map(|task| ReadyTask {
            task,
            demand: job.spec().phase(task.phase).demand,
        })
        .collect()
}

/// Greedy work-conserving pass: walk jobs in the given order and place
/// every ready task that fits (first-fit). Returns the assignments and
/// updates `free`. The workhorse of the FIFO/SRPT/SVF family.
pub fn place_in_job_order(
    view: &ClusterView<'_>,
    order: &[dollymp_core::job::JobId],
    free: &mut FreeTracker,
) -> Vec<Assignment> {
    let mut out = Vec::new();
    for &jid in order {
        let Some(job) = view.job(jid) else { continue };
        for task in job.iter_ready() {
            let demand = job.spec().phase(task.phase).demand;
            if let Some(server) = free.first_fit(demand) {
                free.commit(server, demand);
                free.note_copy(task);
                out.push(Assignment {
                    task,
                    server,
                    kind: CopyKind::Primary,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dollymp_cluster::engine::{simulate, EngineConfig};
    use dollymp_core::job::{JobId, JobSpec};

    /// FreeTracker logic is exercised through a scheduler that uses it;
    /// the pure parts are tested here via a synthetic run.
    struct Probe {
        observed_fit: bool,
    }
    impl Scheduler for Probe {
        fn name(&self) -> String {
            "probe".into()
        }
        fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
            let mut free = FreeTracker::new(view);
            assert_eq!(free.len(), 2);
            let order: Vec<JobId> = view.jobs().map(|j| j.id()).collect();
            let batch = place_in_job_order(view, &order, &mut free);
            if !batch.is_empty() {
                self.observed_fit = true;
                // Every committed server's free shrank by exactly the sum
                // of demands placed on it.
                let mut committed: Vec<(ServerId, Resources)> = Vec::new();
                for a in &batch {
                    let demand = view
                        .job(a.task.job)
                        .expect("placed job is active")
                        .spec()
                        .phase(a.task.phase)
                        .demand;
                    match committed.iter_mut().find(|(s, _)| *s == a.server) {
                        Some((_, d)) => *d += demand,
                        None => committed.push((a.server, demand)),
                    }
                }
                for &(server, demand) in &committed {
                    let expected = view
                        .free(server)
                        .checked_sub(demand)
                        .expect("tracker never over-commits");
                    assert_eq!(
                        free.free(server),
                        expected,
                        "server {server:?} free did not shrink by the committed demand"
                    );
                }
            }
            batch
        }
    }

    #[test]
    fn place_in_job_order_is_work_conserving() {
        let cluster = ClusterSpec::homogeneous(2, 2.0, 2.0);
        let jobs: Vec<JobSpec> = (0..4)
            .map(|i| JobSpec::single_phase(JobId(i), 1, Resources::new(2.0, 2.0), 3.0, 0.0))
            .collect();
        let sampler = DurationSampler::new(1, StragglerModel::Deterministic);
        let mut p = Probe {
            observed_fit: false,
        };
        let r = simulate(&cluster, jobs, &sampler, &mut p, &EngineConfig::default());
        assert!(p.observed_fit);
        // 4 single-server jobs on 2 servers: two waves of 3 slots.
        assert_eq!(r.makespan, 6);
        assert_eq!(r.total_flowtime(), 3 + 3 + 6 + 6);
    }

    #[test]
    fn release_raises_the_cached_max() {
        // Regression: the max-free fast-reject was shrink-only. After a
        // recovered server grows its free capacity, a stale cached max
        // must not make could_fit()/first_fit() skip it.
        use std::collections::BTreeMap;
        let spec = ClusterSpec::new(vec![
            ServerSpec::new(4.0, 4.0),
            ServerSpec::new(1.0, 1.0),
            ServerSpec::new(8.0, 8.0), // currently down: free = 0
        ]);
        let free = CapacityIndex::from_free(&[
            Resources::new(4.0, 4.0),
            Resources::new(1.0, 1.0),
            Resources::new(0.0, 0.0),
        ]);
        let jobs = BTreeMap::new();
        let view = ClusterView::new(0, &spec, &free, &jobs);
        let mut tracker = FreeTracker::new(&view);

        // Fill the max holder; the lazy max recomputes to (1, 1).
        tracker.commit(ServerId(0), Resources::new(4.0, 4.0));
        assert!(!tracker.could_fit(Resources::new(2.0, 2.0)));
        assert_eq!(tracker.first_fit(Resources::new(2.0, 2.0)), None);

        // Server 2 recovers mid-batch: its full capacity returns.
        tracker.release(ServerId(2), Resources::new(8.0, 8.0));
        assert!(
            tracker.could_fit(Resources::new(2.0, 2.0)),
            "stale max must not reject the recovered server"
        );
        assert_eq!(
            tracker.first_fit(Resources::new(2.0, 2.0)),
            Some(ServerId(2))
        );
        assert_eq!(tracker.free(ServerId(2)), Resources::new(8.0, 8.0));

        // And release composes with later commits.
        tracker.commit(ServerId(2), Resources::new(8.0, 8.0));
        assert!(!tracker.fits_anywhere(Resources::new(2.0, 2.0)));
    }

    #[test]
    fn best_fit_prefers_fuller_alignment() {
        // Construct through a probe: a CPU-heavy task must land on the
        // CPU-rich server under best_fit.
        struct BestFitProbe;
        impl Scheduler for BestFitProbe {
            fn name(&self) -> String {
                "bf".into()
            }
            fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
                let mut free = FreeTracker::new(view);
                let mut out = Vec::new();
                for job in view.jobs() {
                    for rt in ready_tasks_of(job) {
                        if let Some(s) = free.best_fit(rt.demand) {
                            free.commit(s, rt.demand);
                            out.push(Assignment {
                                task: rt.task,
                                server: s,
                                kind: CopyKind::Primary,
                            });
                        }
                    }
                }
                out
            }
        }
        let cluster = ClusterSpec::new(vec![
            ServerSpec::new(2.0, 16.0), // memory-rich
            ServerSpec::new(16.0, 2.0), // CPU-rich
        ]);
        let job = JobSpec::single_phase(JobId(0), 1, Resources::new(2.0, 1.0), 3.0, 0.0);
        let sampler = DurationSampler::new(1, StragglerModel::Deterministic);
        let r = simulate(
            &cluster,
            vec![job],
            &sampler,
            &mut BestFitProbe,
            &EngineConfig::default(),
        );
        assert_eq!(r.jobs.len(), 1);
        // Can't observe the server from the report directly, but the run
        // completing proves the placement was valid; the alignment choice
        // itself is asserted below on the pure function.
        let cpu_heavy = Resources::new(2.0, 1.0);
        let a = dollymp_core::online::best_fit_score(cpu_heavy, Resources::new(16.0, 2.0));
        let b = dollymp_core::online::best_fit_score(cpu_heavy, Resources::new(2.0, 16.0));
        assert!(a > b);
    }
}
