//! The Hadoop **Capacity Scheduler** baseline (§6.1) with Hadoop-style
//! speculative execution.
//!
//! YARN's Capacity Scheduler serves jobs in arrival (FIFO) order within a
//! queue and hands out containers first-fit. MapReduce adds *speculative
//! execution* on top: the progress of running tasks is monitored and a
//! backup copy is launched for a task running much slower than its phase's
//! completed peers. §2 observes exactly why this under-performs: the
//! backup launches *late*, once enough peers have finished for the
//! straggler to be detectable — for small jobs there may never be enough
//! statistically significant samples.
//!
//! The monitor here reproduces that behaviour: a task is speculated only
//! when (a) a minimum fraction of its phase has already completed, and
//! (b) its elapsed time exceeds `slowdown_threshold ×` the observed mean
//! duration of its phase.

use crate::common::{place_in_job_order, ready_tasks_of, FreeTracker};
use dollymp_cluster::prelude::*;
use dollymp_core::job::{JobId, TaskRef};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Speculative-execution tunables (Hadoop-like defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeculationConfig {
    /// A task is a straggler when its elapsed time exceeds this multiple
    /// of the phase's observed mean completed duration.
    pub slowdown_threshold: f64,
    /// Minimum fraction of the phase's tasks that must have completed
    /// before speculation may trigger (statistical significance — the
    /// source of the "late backup" pathology for small jobs).
    pub min_completed_frac: f64,
    /// Maximum backup copies per task.
    pub max_backups: u32,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        SpeculationConfig {
            slowdown_threshold: 1.5,
            min_completed_frac: 0.25,
            max_backups: 1,
        }
    }
}

/// FIFO + first-fit with optional speculative execution.
#[derive(Debug, Clone, Default)]
pub struct CapacityScheduler {
    /// `None` disables speculation entirely.
    pub speculation: Option<SpeculationConfig>,
    /// Tasks whose last copy a crash evicted, in loss order. YARN retries
    /// failed attempts ahead of fresh containers, so these jump the FIFO
    /// queue until re-placed (empty in fault-free runs — the scheduling
    /// path is then exactly the pre-fault one).
    recovering: Vec<TaskRef>,
}

impl CapacityScheduler {
    /// The production default: speculation enabled.
    pub fn new() -> Self {
        CapacityScheduler {
            speculation: Some(SpeculationConfig::default()),
            recovering: Vec::new(),
        }
    }

    /// Pure FIFO, no speculation.
    pub fn without_speculation() -> Self {
        CapacityScheduler {
            speculation: None,
            recovering: Vec::new(),
        }
    }

    /// Place crash-recovered tasks before anything else, then run the
    /// normal FIFO pass over the remaining ready tasks.
    fn place_with_recovery(
        &mut self,
        view: &ClusterView<'_>,
        order: &[JobId],
        free: &mut FreeTracker,
    ) -> Vec<Assignment> {
        let mut out = Vec::new();
        let mut placed: HashSet<TaskRef> = HashSet::new();
        self.recovering.retain(|&task| {
            // Drop stale entries: job retired, or the task was already
            // re-launched (e.g. speculation) and is no longer Ready.
            let Some(job) = view.job(task.job) else {
                return false;
            };
            if job.task(task.phase, task.task).status != dollymp_cluster::state::TaskStatus::Ready {
                return false;
            }
            let demand = job.spec().phase(task.phase).demand;
            if let Some(server) = free.first_fit(demand) {
                free.commit(server, demand);
                free.note_copy(task);
                placed.insert(task);
                out.push(Assignment {
                    task,
                    server,
                    kind: CopyKind::Primary,
                });
                false
            } else {
                // No room yet; keep it at the head of the queue.
                true
            }
        });
        for &jid in order {
            let Some(job) = view.job(jid) else { continue };
            for rt in ready_tasks_of(job) {
                if placed.contains(&rt.task) {
                    continue;
                }
                if let Some(server) = free.first_fit(rt.demand) {
                    free.commit(server, rt.demand);
                    free.note_copy(rt.task);
                    out.push(Assignment {
                        task: rt.task,
                        server,
                        kind: CopyKind::Primary,
                    });
                }
            }
        }
        out
    }

    fn speculate(
        &self,
        view: &ClusterView<'_>,
        order: &[JobId],
        free: &mut FreeTracker,
    ) -> Vec<Assignment> {
        let Some(cfg) = self.speculation else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for &jid in order {
            let Some(job) = view.job(jid) else { continue };
            for task in job.running_tasks() {
                let phase = job.spec().phase(task.phase);
                let ps = job.phase_state(task.phase);
                // (a) enough peers finished for significance…
                let completed = phase.ntasks - ps.remaining;
                if (completed as f64) < cfg.min_completed_frac * phase.ntasks as f64
                    || completed == 0
                {
                    continue;
                }
                // (b) …and this copy looks slow against them.
                let mean = ps.observed.mean();
                if mean <= 0.0 {
                    continue;
                }
                let ts = job.task(task.phase, task.task);
                let slow = ts
                    .copies
                    .iter()
                    .filter(|c| c.is_live())
                    .all(|c| c.elapsed(view.now) as f64 > cfg.slowdown_threshold * mean);
                if !slow {
                    continue;
                }
                if free.effective_copies(view, task) > cfg.max_backups {
                    continue;
                }
                if let Some(server) = free.first_fit(phase.demand) {
                    free.commit(server, phase.demand);
                    free.note_copy(task);
                    out.push(Assignment {
                        task,
                        server,
                        kind: CopyKind::Clone,
                    });
                }
            }
        }
        out
    }
}

impl Scheduler for CapacityScheduler {
    fn name(&self) -> String {
        if self.speculation.is_some() {
            "capacity".into()
        } else {
            "capacity-nospec".into()
        }
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        let mut order: Vec<(dollymp_core::time::Time, JobId)> =
            view.jobs().map(|j| (j.spec().arrival, j.id())).collect();
        order.sort();
        let order: Vec<JobId> = order.into_iter().map(|(_, id)| id).collect();

        let mut free = FreeTracker::new(view);
        let mut batch = if self.recovering.is_empty() {
            place_in_job_order(view, &order, &mut free)
        } else {
            self.place_with_recovery(view, &order, &mut free)
        };
        batch.extend(self.speculate(view, &order, &mut free));
        batch
    }

    fn on_task_lost(&mut self, _view: &ClusterView<'_>, task: TaskRef) {
        if !self.recovering.contains(&task) {
            self.recovering.push(task);
        }
    }

    fn on_job_finish(&mut self, job: &JobState) {
        self.recovering.retain(|t| t.job != job.id());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dollymp_cluster::engine::{simulate, EngineConfig};
    use dollymp_core::job::JobSpec;
    use dollymp_core::resources::Resources;

    fn det() -> DurationSampler {
        DurationSampler::new(1, StragglerModel::Deterministic)
    }

    #[test]
    fn fifo_order_is_arrival_order() {
        let cluster = ClusterSpec::homogeneous(1, 1.0, 1.0);
        let mk = |id: u64, arr, theta: f64| {
            JobSpec::builder(JobId(id))
                .arrival(arr)
                .phase(dollymp_core::job::PhaseSpec::new(
                    1,
                    Resources::new(1.0, 1.0),
                    theta,
                    0.0,
                ))
                .build()
                .unwrap()
        };
        // A long job arrives first; FIFO makes the short one wait.
        let jobs = vec![mk(0, 0, 20.0), mk(1, 1, 2.0)];
        let mut s = CapacityScheduler::without_speculation();
        let r = simulate(&cluster, jobs, &det(), &mut s, &EngineConfig::default());
        let by_id = r.by_id();
        assert_eq!(by_id[&JobId(0)].flowtime, 20);
        assert_eq!(by_id[&JobId(1)].flowtime, 21, "head-of-line blocking");
    }

    #[test]
    fn speculation_launches_late_backup_for_straggler() {
        // A 4-task phase on a cluster with one very slow server. The three
        // fast copies finish quickly; the straggler gets a backup only
        // after peers complete — the §2 "late backup" behaviour.
        let cluster = ClusterSpec::new(vec![
            ServerSpec::new(3.0, 3.0),                 // fast, 3 tasks
            ServerSpec::new(1.0, 1.0).with_speed(0.1), // 10× slow
        ]);
        let job = JobSpec::single_phase(JobId(0), 4, Resources::new(1.0, 1.0), 10.0, 0.0);
        let mut s = CapacityScheduler::new();
        // Progress monitoring needs periodic decision points (a real
        // MapReduce AM polls task progress); tick every slot.
        let cfg = EngineConfig {
            tick: Some(1),
            ..Default::default()
        };
        let r = simulate(&cluster, vec![job], &det(), &mut s, &cfg);
        let m = &r.jobs[0];
        assert_eq!(m.clone_copies, 1, "exactly one backup for the straggler");
        // Peers finish at t=10 (observed mean 10). The straggler (10×
        // slow, would finish at 100) trips the 1.5× threshold at t=16;
        // the backup then runs 10 slots on a fast server → done at 26.
        assert_eq!(m.flowtime, 26);
        assert_eq!(m.tasks_cloned, 1);
    }

    #[test]
    fn no_speculation_variant_never_clones() {
        let cluster = ClusterSpec::homogeneous(4, 4.0, 4.0);
        let jobs: Vec<JobSpec> = (0..3)
            .map(|i| JobSpec::single_phase(JobId(i), 4, Resources::new(1.0, 1.0), 10.0, 6.0))
            .collect();
        let sampler = DurationSampler::new(9, StragglerModel::ParetoFit);
        let mut s = CapacityScheduler::without_speculation();
        let r = simulate(&cluster, jobs, &sampler, &mut s, &EngineConfig::default());
        assert!(r.jobs.iter().all(|j| j.clone_copies == 0));
    }

    #[test]
    fn recovered_task_jumps_the_fifo_queue() {
        use dollymp_cluster::engine::simulate_with_faults;

        // Two unit servers. Job 0 is a two-phase chain (θ=8 each); job 1
        // is a single 20-slot task that starts on server 1. Server 1
        // crashes at t=3, losing job 1's only copy. When server 0 frees
        // at t=8, plain FIFO would hand it to job 0's newly-ready second
        // phase (earlier arrival); the recovery hook instead retries the
        // crashed attempt first, YARN-style.
        let cluster = ClusterSpec::homogeneous(2, 1.0, 1.0);
        let mk_phase = || dollymp_core::job::PhaseSpec::new(1, Resources::new(1.0, 1.0), 8.0, 0.0);
        let chain = JobSpec::chain(JobId(0), vec![mk_phase(), mk_phase()]).unwrap();
        let lone = JobSpec::single_phase(JobId(1), 1, Resources::new(1.0, 1.0), 20.0, 0.0);
        let faults = FaultTimeline::new(vec![TimedFault {
            at: 3,
            event: FaultEvent::Crash(ServerId(1)),
        }]);
        let mut s = CapacityScheduler::without_speculation();
        let r = simulate_with_faults(
            &cluster,
            vec![chain, lone],
            &det(),
            &mut s,
            &EngineConfig::default(),
            &faults,
        );
        assert_eq!(r.faults.tasks_requeued, 1);
        let by_id = r.by_id();
        // Job 1 restarts at t=8 on the freed server (3..8 nothing fits),
        // finishing at 28; job 0's phase 2 then runs 28..36. Without the
        // hook the finishes would be 16 and 36 the other way round.
        assert_eq!(by_id[&JobId(1)].flowtime, 28, "lost task retried first");
        assert_eq!(by_id[&JobId(0)].flowtime, 36);
    }

    #[test]
    fn on_task_lost_retries_in_loss_order_ahead_of_fifo() {
        use dollymp_cluster::view::ClusterView;
        use dollymp_core::job::{PhaseId, TaskId};
        use std::collections::BTreeMap;

        // Direct unit coverage of the recovery queue (the sim-level test
        // above only shows the end-to-end effect): two losses reported in
        // a specific order must be replayed in exactly that order, ahead
        // of every FIFO placement — even though the lost tasks belong to
        // the *later*-arriving job.
        let cluster = ClusterSpec::homogeneous(4, 1.0, 1.0);
        let sampler = det();
        let mk = |id: u64, arrival: u64| {
            JobSpec::builder(JobId(id))
                .arrival(arrival)
                .phase(dollymp_core::job::PhaseSpec::new(
                    2,
                    Resources::new(1.0, 1.0),
                    8.0,
                    0.0,
                ))
                .build()
                .unwrap()
        };
        let mut jobs: BTreeMap<JobId, JobState> = BTreeMap::new();
        for spec in [mk(0, 0), mk(1, 1)] {
            let tables: Vec<Vec<f64>> = spec
                .phases()
                .iter()
                .enumerate()
                .map(|(pi, p)| sampler.phase_table(spec.id, PhaseId(pi as u32), p))
                .collect();
            jobs.insert(spec.id, JobState::new(spec, tables));
        }
        let free = dollymp_cluster::capacity::CapacityIndex::from_capacities(&cluster);
        let view = ClusterView::new(5, &cluster, &free, &jobs);

        let tref = |job: u64, task: u32| TaskRef {
            job: JobId(job),
            phase: PhaseId(0),
            task: TaskId(task),
        };
        let mut s = CapacityScheduler::without_speculation();
        // Loss order: job 1's task 1 first, then its task 0.
        s.on_task_lost(&view, tref(1, 1));
        s.on_task_lost(&view, tref(1, 0));
        s.on_task_lost(&view, tref(1, 1)); // duplicate report is a no-op
        assert_eq!(s.recovering, vec![tref(1, 1), tref(1, 0)]);

        let batch = s.schedule(&view);
        let order: Vec<TaskRef> = batch.iter().map(|a| a.task).collect();
        assert_eq!(
            order,
            vec![tref(1, 1), tref(1, 0), tref(0, 0), tref(0, 1)],
            "lost attempts replay in loss order, ahead of the FIFO queue"
        );
        assert!(s.recovering.is_empty(), "replayed entries are consumed");
    }

    #[test]
    fn names() {
        assert_eq!(CapacityScheduler::new().name(), "capacity");
        assert_eq!(
            CapacityScheduler::without_speculation().name(),
            "capacity-nospec"
        );
    }
}
