//! # dollymp-schedulers
//!
//! Every scheduling policy evaluated in the DollyMP paper, implemented
//! behind the single [`dollymp_cluster::scheduler::Scheduler`] trait so
//! that all of them run on the identical simulation substrate:
//!
//! | Policy | Paper role | Module |
//! |---|---|---|
//! | [`DollyMP`] (`DollyMP::with_clones(r)` = DollyMP^r) | the contribution | [`dollymp`] |
//! | [`Tetris`] / [`Tetris::with_cloning`] | multi-resource packing baseline (§6.1, Fig. 2) | [`tetris`] |
//! | [`Drf`] | fairness baseline (§6.1) | [`drf`] |
//! | [`CapacityScheduler`] | YARN default + speculative execution (§6.1) | [`capacity`] |
//! | [`Carbyne`] | state-of-the-art altruistic scheduler (§6.3.2) | [`carbyne`] |
//! | [`PriorityScheduler::srpt`] / [`PriorityScheduler::svf`] | the §4.2 building blocks | [`priority`] |
//! | [`Hopper`] | §7's speculation-aware prior work (documented approximation) | [`hopper`] |
//! | [`LearnedDollyMP`] | §8 future work: server-reputation learning | [`learned`] |
//!
//! Use [`by_name`] to build a scheduler from its string name (the
//! experiment binaries' CLI contract).
//!
//! The [`adversarial`] module additionally provides
//! [`AdversarialScheduler`] — an intentionally misbehaving policy used
//! to exercise `dollymp_cluster::guard::GuardedScheduler`. It is *not*
//! part of [`ALL_NAMES`] (those must survive strict, unguarded runs).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod adversarial;
pub mod capacity;
pub mod carbyne;
pub mod common;
pub mod dollymp;
pub mod drf;
pub mod hopper;
pub mod learned;
pub mod priority;
pub mod tetris;

pub use adversarial::{AdversarialConfig, AdversarialScheduler};
pub use capacity::{CapacityScheduler, SpeculationConfig};
pub use carbyne::Carbyne;
pub use dollymp::DollyMP;
pub use drf::Drf;
pub use hopper::{Hopper, HopperConfig};
pub use learned::{LearnedDollyMP, ServerReputation};
pub use priority::PriorityScheduler;
pub use tetris::Tetris;

use dollymp_cluster::prelude::{FifoFirstFit, Scheduler};

/// Construct a scheduler from its canonical name.
///
/// Recognized names: `fifo`, `capacity`, `capacity-nospec`, `drf`,
/// `tetris`, `tetris+cloneN`, `carbyne`, `srpt`, `svf`, `dollymp0` …
/// `dollymp8`, and `learned-dollymp0` … `learned-dollymp8`.
///
/// ```
/// use dollymp_schedulers::by_name;
/// assert!(by_name("dollymp2").is_some());
/// assert!(by_name("tetris+clone1").is_some());
/// assert!(by_name("made-up").is_none());
/// ```
pub fn by_name(name: &str) -> Option<Box<dyn Scheduler>> {
    match name {
        "fifo" => Some(Box::new(FifoFirstFit)),
        "capacity" => Some(Box::new(CapacityScheduler::new())),
        "capacity-nospec" => Some(Box::new(CapacityScheduler::without_speculation())),
        "drf" => Some(Box::new(Drf)),
        "tetris" => Some(Box::new(Tetris::new())),
        "carbyne" => Some(Box::new(Carbyne)),
        "hopper" => Some(Box::new(Hopper::new())),
        "srpt" => Some(Box::new(PriorityScheduler::srpt())),
        "svf" => Some(Box::new(PriorityScheduler::svf())),
        _ => {
            if let Some(r) = name.strip_prefix("learned-dollymp") {
                let clones: u32 = r.parse().ok()?;
                if clones > 8 {
                    return None;
                }
                return Some(Box::new(LearnedDollyMP::with_clones(clones)));
            }
            if let Some(r) = name.strip_prefix("dollymp") {
                let clones: u32 = r.parse().ok()?;
                if clones > 8 {
                    return None;
                }
                return Some(Box::new(DollyMP::with_clones(clones)));
            }
            if let Some(r) = name.strip_prefix("tetris+clone") {
                let clones: u32 = r.parse().ok()?;
                if clones == 0 || clones > 8 {
                    return None;
                }
                return Some(Box::new(Tetris::with_cloning(clones)));
            }
            None
        }
    }
}

/// All scheduler names [`by_name`] recognizes (one representative per
/// family) — used by experiment binaries to enumerate baselines.
pub const ALL_NAMES: &[&str] = &[
    "fifo",
    "capacity",
    "capacity-nospec",
    "drf",
    "tetris",
    "tetris+clone1",
    "carbyne",
    "hopper",
    "srpt",
    "svf",
    "dollymp0",
    "dollymp1",
    "dollymp2",
    "dollymp3",
    "learned-dollymp2",
];

#[cfg(test)]
mod tests {
    use super::*;
    use dollymp_cluster::engine::{simulate, EngineConfig};
    use dollymp_cluster::execution::{DurationSampler, StragglerModel};
    use dollymp_cluster::spec::ClusterSpec;
    use dollymp_core::job::{JobId, JobSpec};
    use dollymp_core::resources::Resources;

    #[test]
    fn factory_covers_all_names() {
        for &n in ALL_NAMES {
            let s = by_name(n).unwrap_or_else(|| panic!("unknown scheduler {n}"));
            assert_eq!(s.name(), n, "factory name round-trip");
        }
        assert!(by_name("dollymp99").is_none());
        assert!(by_name("tetris+clone0").is_none());
        assert!(by_name("").is_none());
    }

    /// Cross-scheduler smoke test: every policy completes the same
    /// workload on the paper's 30-node cluster, conserves resources (the
    /// engine asserts that) and reports sane metrics.
    #[test]
    fn every_scheduler_completes_the_same_workload() {
        let cluster = ClusterSpec::paper_30_node();
        let jobs: Vec<JobSpec> = (0..20u64)
            .map(|i| {
                JobSpec::builder(JobId(i))
                    .arrival(i * 3)
                    .label(if i % 2 == 0 { "wordcount" } else { "pagerank" })
                    .phase(dollymp_core::job::PhaseSpec::new(
                        (2 + i % 6) as u32,
                        Resources::new(1.0 + (i % 3) as f64, 2.0),
                        10.0 + (i % 5) as f64,
                        4.0,
                    ))
                    .build()
                    .unwrap()
            })
            .collect();
        let sampler = DurationSampler::new(99, StragglerModel::ParetoFit);
        for &n in ALL_NAMES {
            let mut s = by_name(n).unwrap();
            let r = simulate(
                &cluster,
                jobs.clone(),
                &sampler,
                s.as_mut(),
                &EngineConfig::default(),
            );
            assert_eq!(r.jobs.len(), 20, "{n} must complete all jobs");
            assert!(r.total_flowtime() > 0, "{n}");
            assert!(r.makespan > 0, "{n}");
            for j in &r.jobs {
                assert!(j.finish >= j.first_start, "{n}");
                assert!(j.first_start >= j.arrival, "{n}");
                assert!(j.usage > 0.0, "{n}");
            }
        }
    }

    /// The headline comparison shape (§6.2.2): under heavy load DollyMP²
    /// beats Tetris and the Capacity scheduler on total flowtime.
    #[test]
    fn dollymp_beats_baselines_under_heavy_load() {
        let cluster = ClusterSpec::paper_30_node();
        let jobs: Vec<JobSpec> = (0..60u64)
            .map(|i| {
                let (n, theta) = if i % 4 == 0 { (24, 30.0) } else { (4, 6.0) };
                JobSpec::builder(JobId(i))
                    .arrival(i)
                    .phase(dollymp_core::job::PhaseSpec::new(
                        n,
                        Resources::new(2.0, 4.0),
                        theta,
                        theta * 0.6,
                    ))
                    .build()
                    .unwrap()
            })
            .collect();
        let sampler = DurationSampler::new(7, StragglerModel::ParetoFit);
        let run = |name: &str| {
            let mut s = by_name(name).unwrap();
            simulate(
                &cluster,
                jobs.clone(),
                &sampler,
                s.as_mut(),
                &EngineConfig::default(),
            )
            .total_flowtime()
        };
        let dollymp = run("dollymp2");
        let tetris = run("tetris");
        let capacity = run("capacity-nospec");
        assert!(
            dollymp < tetris,
            "dollymp2 {dollymp} should beat tetris {tetris}"
        );
        assert!(
            dollymp < capacity,
            "dollymp2 {dollymp} should beat capacity {capacity}"
        );
    }
}
