//! Decision-level scheduler tests: hand-built cluster views, exact
//! assertions on the assignment batches each policy produces — no
//! simulation in the loop, so failures point straight at decision logic.

use dollymp_cluster::prelude::*;
use dollymp_cluster::view::ClusterView;
use dollymp_core::job::{JobId, JobSpec, PhaseSpec};
use dollymp_core::resources::Resources;
use dollymp_schedulers::{by_name, DollyMP, LearnedDollyMP, Tetris};
use std::collections::BTreeMap;

fn job_state(id: u64, ntasks: u32, cpu: f64, mem: f64, theta: f64) -> JobState {
    let spec = JobSpec::single_phase(JobId(id), ntasks, Resources::new(cpu, mem), theta, 0.0);
    let tables = vec![vec![theta; ntasks as usize]];
    JobState::new(spec, tables)
}

fn view_fixture<'a>(
    cluster: &'a ClusterSpec,
    cap: &'a dollymp_cluster::capacity::CapacityIndex,
    jobs: &'a BTreeMap<JobId, JobState>,
) -> ClusterView<'a> {
    ClusterView::new(0, cluster, cap, jobs)
}

#[test]
fn dollymp_assigns_small_job_before_large() {
    let cluster = ClusterSpec::homogeneous(1, 2.0, 2.0);
    let free = vec![Resources::new(2.0, 2.0)];
    let mut jobs = BTreeMap::new();
    jobs.insert(JobId(0), job_state(0, 1, 2.0, 2.0, 100.0)); // huge
    jobs.insert(JobId(1), job_state(1, 1, 2.0, 2.0, 2.0)); // tiny
    let cap = dollymp_cluster::capacity::CapacityIndex::from_free(&free);
    let view = view_fixture(&cluster, &cap, &jobs);

    let mut s = DollyMP::with_clones(0);
    s.on_job_arrival(&view, JobId(1));
    let batch = s.schedule(&view);
    // Only one fits; it must be the tiny job.
    assert_eq!(batch.len(), 1);
    assert_eq!(batch[0].task.job, JobId(1));
    assert_eq!(batch[0].kind, CopyKind::Primary);
}

#[test]
fn dollymp_batch_never_overcommits_a_server() {
    let cluster = ClusterSpec::homogeneous(2, 4.0, 4.0);
    let free = vec![Resources::new(4.0, 4.0), Resources::new(1.0, 1.0)];
    let mut jobs = BTreeMap::new();
    jobs.insert(JobId(0), job_state(0, 6, 2.0, 2.0, 5.0));
    let cap = dollymp_cluster::capacity::CapacityIndex::from_free(&free);
    let view = view_fixture(&cluster, &cap, &jobs);
    let mut s = DollyMP::new();
    s.on_job_arrival(&view, JobId(0));
    let batch = s.schedule(&view);
    // Server 0 fits two 2-core tasks, server 1 none → at most 2 + clones
    // that fit (none: leftover is zero).
    let mut used = [Resources::ZERO; 2];
    for a in &batch {
        used[a.server.0 as usize] += Resources::new(2.0, 2.0);
    }
    assert!(used[0].fits_in(free[0]));
    assert!(used[1].fits_in(free[1]));
    assert_eq!(batch.len(), 2);
}

#[test]
fn dollymp_clones_small_job_with_leftovers() {
    let cluster = ClusterSpec::homogeneous(1, 4.0, 4.0);
    let free = vec![Resources::new(4.0, 4.0)];
    let mut jobs = BTreeMap::new();
    jobs.insert(JobId(0), job_state(0, 1, 1.0, 1.0, 3.0));
    let cap = dollymp_cluster::capacity::CapacityIndex::from_free(&free);
    let view = view_fixture(&cluster, &cap, &jobs);
    let mut s = DollyMP::new(); // 2 clones allowed
    s.on_job_arrival(&view, JobId(0));
    let batch = s.schedule(&view);
    let primaries = batch.iter().filter(|a| a.kind == CopyKind::Primary).count();
    let clones = batch.iter().filter(|a| a.kind == CopyKind::Clone).count();
    assert_eq!(primaries, 1);
    assert_eq!(
        clones, 1,
        "one clone in the same round; the second comes at a later decision point"
    );
}

#[test]
fn dollymp0_emits_no_clones_ever() {
    let cluster = ClusterSpec::homogeneous(2, 8.0, 8.0);
    let free = vec![Resources::new(8.0, 8.0); 2];
    let mut jobs = BTreeMap::new();
    jobs.insert(JobId(0), job_state(0, 2, 1.0, 1.0, 5.0));
    let cap = dollymp_cluster::capacity::CapacityIndex::from_free(&free);
    let view = view_fixture(&cluster, &cap, &jobs);
    let mut s = DollyMP::with_clones(0);
    s.on_job_arrival(&view, JobId(0));
    let batch = s.schedule(&view);
    assert!(batch.iter().all(|a| a.kind == CopyKind::Primary));
}

#[test]
fn tetris_prefers_the_aligned_task() {
    // CPU-rich free vector: the CPU-heavy task scores higher.
    let cluster = ClusterSpec::homogeneous(1, 16.0, 4.0);
    let free = vec![Resources::new(16.0, 4.0)];
    let mut jobs = BTreeMap::new();
    jobs.insert(JobId(0), job_state(0, 1, 1.0, 3.9, 10.0)); // memory-heavy
    jobs.insert(JobId(1), job_state(1, 1, 8.0, 1.0, 10.0)); // CPU-heavy
    let cap = dollymp_cluster::capacity::CapacityIndex::from_free(&free);
    let view = view_fixture(&cluster, &cap, &jobs);
    let mut s = Tetris::new();
    let batch = s.schedule(&view);
    assert_eq!(
        batch[0].task.job,
        JobId(1),
        "alignment with the CPU-rich server wins"
    );
}

#[test]
fn drf_round_robins_equal_jobs() {
    let cluster = ClusterSpec::homogeneous(1, 4.0, 4.0);
    let free = vec![Resources::new(4.0, 4.0)];
    let mut jobs = BTreeMap::new();
    jobs.insert(JobId(0), job_state(0, 4, 1.0, 1.0, 5.0));
    jobs.insert(JobId(1), job_state(1, 4, 1.0, 1.0, 5.0));
    let cap = dollymp_cluster::capacity::CapacityIndex::from_free(&free);
    let view = view_fixture(&cluster, &cap, &jobs);
    let mut s = by_name("drf").unwrap();
    let batch = s.schedule(&view);
    assert_eq!(batch.len(), 4, "capacity for exactly 4 unit tasks");
    let a = batch.iter().filter(|x| x.task.job == JobId(0)).count();
    let b = batch.iter().filter(|x| x.task.job == JobId(1)).count();
    assert_eq!(a, 2, "equal dominant shares → equal split");
    assert_eq!(b, 2);
}

#[test]
fn capacity_is_strict_fifo_when_everything_fits_the_head() {
    let cluster = ClusterSpec::homogeneous(1, 2.0, 2.0);
    let free = vec![Resources::new(2.0, 2.0)];
    let mut jobs = BTreeMap::new();
    // Later-arriving short job must NOT jump the queue head.
    let early = {
        let spec = JobSpec::builder(JobId(0))
            .arrival(0)
            .phase(PhaseSpec::new(4, Resources::new(1.0, 1.0), 50.0, 0.0))
            .build()
            .unwrap();
        JobState::new(spec, vec![vec![50.0; 4]])
    };
    let late = {
        let spec = JobSpec::builder(JobId(1))
            .arrival(5)
            .phase(PhaseSpec::new(4, Resources::new(1.0, 1.0), 1.0, 0.0))
            .build()
            .unwrap();
        JobState::new(spec, vec![vec![1.0; 4]])
    };
    jobs.insert(JobId(0), early);
    jobs.insert(JobId(1), late);
    let cap = dollymp_cluster::capacity::CapacityIndex::from_free(&free);
    let view = view_fixture(&cluster, &cap, &jobs);
    let mut s = by_name("capacity-nospec").unwrap();
    let batch = s.schedule(&view);
    assert_eq!(batch.len(), 2);
    assert!(
        batch.iter().all(|a| a.task.job == JobId(0)),
        "FIFO head takes all capacity first"
    );
}

#[test]
fn srpt_and_svf_disagree_exactly_when_they_should() {
    // Job 0: short but fat; job 1: longer but thin (same as the unit test
    // in priority.rs, but asserted at the decision level).
    let cluster = ClusterSpec::homogeneous(1, 10.0, 10.0);
    let free = vec![Resources::new(10.0, 10.0)];
    let mut jobs = BTreeMap::new();
    jobs.insert(JobId(0), job_state(0, 1, 10.0, 10.0, 4.0));
    jobs.insert(JobId(1), job_state(1, 1, 1.0, 1.0, 6.0));
    let cap = dollymp_cluster::capacity::CapacityIndex::from_free(&free);
    let view = view_fixture(&cluster, &cap, &jobs);

    let mut srpt = by_name("srpt").unwrap();
    let b = srpt.schedule(&view);
    assert_eq!(b[0].task.job, JobId(0), "SRPT: shortest first");

    let mut svf = by_name("svf").unwrap();
    let b = svf.schedule(&view);
    assert_eq!(b[0].task.job, JobId(1), "SVF: smallest volume first");
}

#[test]
fn learned_dollymp_prefers_reputable_servers() {
    let cluster = ClusterSpec::homogeneous(3, 2.0, 2.0);
    let free = vec![Resources::new(2.0, 2.0); 3];
    let mut jobs = BTreeMap::new();
    jobs.insert(JobId(0), job_state(0, 1, 1.0, 1.0, 10.0));
    let cap = dollymp_cluster::capacity::CapacityIndex::from_free(&free);
    let view = view_fixture(&cluster, &cap, &jobs);

    // Teach the learner that server 0 is terrible and server 2 is great
    // by feeding completion records through a finished job.
    let mut s = LearnedDollyMP::with_clones(0);
    // Directly exercise the reputation via a warm-up simulation is the
    // integration test's job; here we check the visit order logic through
    // the public reputation view after observing a synthetic history.
    // (Reputation is only mutated via on_job_finish, so run a tiny sim.)
    let warm_cluster = ClusterSpec::new(vec![
        ServerSpec::new(2.0, 2.0).with_speed(0.2), // server 0: slow
        ServerSpec::new(2.0, 2.0),
        ServerSpec::new(2.0, 2.0),
    ]);
    let warm_jobs: Vec<JobSpec> = (0..12)
        .map(|i| JobSpec::single_phase(JobId(100 + i), 3, Resources::new(2.0, 2.0), 10.0, 0.0))
        .collect();
    let sampler = DurationSampler::new(1, StragglerModel::Deterministic);
    let _ = dollymp_cluster::engine::simulate(
        &warm_cluster,
        warm_jobs,
        &sampler,
        &mut s,
        &EngineConfig::default(),
    );
    assert!(
        s.reputation().slowdown(ServerId(0)) > 1.2,
        "slow server learnt"
    );

    // Now the placement on the fresh view must avoid server 0.
    s.on_job_arrival(&view, JobId(0));
    let batch = s.schedule(&view);
    assert_eq!(batch.len(), 1);
    assert_ne!(batch[0].server, ServerId(0), "slow server dodged");
}
