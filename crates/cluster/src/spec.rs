//! Static cluster descriptions: servers, racks, capacities.
//!
//! The paper's testbed (§6.1) is a 30-node heterogeneous cluster — two
//! powerful 24-core servers, seven 16-core servers and twenty-one 8-core
//! nodes, 328 cores in total, within two racks. [`ClusterSpec::paper_30_node`]
//! reproduces that shape; [`ClusterSpec::google_like`] builds the 30K-server
//! mix used by the trace-driven simulations (§6.3).

use dollymp_core::resources::Resources;
use serde::{Deserialize, Serialize};

/// Identifies one server in a [`ClusterSpec`] (its index).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ServerId(pub u32);

/// One physical server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Total capacity (CPU cores, memory GB).
    pub capacity: Resources,
    /// Rack the server sits in (locality domain).
    pub rack: u32,
    /// Processing speed multiplier: task durations are divided by this.
    /// `1.0` is a nominal node; `< 1.0` models the slow/contended servers
    /// that cause stragglers, `> 1.0` the "powerful servers" of §6.1.
    pub speed: f64,
}

impl ServerSpec {
    /// A nominal-speed server.
    pub fn new(cpu_cores: f64, mem_gb: f64) -> Self {
        ServerSpec {
            capacity: Resources::new(cpu_cores, mem_gb),
            rack: 0,
            speed: 1.0,
        }
    }

    /// Set the rack.
    pub fn with_rack(mut self, rack: u32) -> Self {
        self.rack = rack;
        self
    }

    /// Set the speed multiplier.
    ///
    /// # Panics
    /// Panics unless `speed` is positive and finite.
    pub fn with_speed(mut self, speed: f64) -> Self {
        assert!(speed.is_finite() && speed > 0.0, "speed must be > 0");
        self.speed = speed;
        self
    }
}

/// An immutable cluster description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    servers: Vec<ServerSpec>,
    totals: Resources,
}

impl ClusterSpec {
    /// Build from a server list.
    ///
    /// # Panics
    /// Panics on an empty list or a zero-capacity server.
    pub fn new(servers: Vec<ServerSpec>) -> Self {
        assert!(!servers.is_empty(), "cluster needs at least one server");
        for (i, s) in servers.iter().enumerate() {
            assert!(!s.capacity.is_zero(), "server {i} has zero capacity");
        }
        let totals = servers.iter().map(|s| s.capacity).sum();
        ClusterSpec { servers, totals }
    }

    /// `n` identical nominal servers.
    pub fn homogeneous(n: u32, cpu_cores: f64, mem_gb: f64) -> Self {
        assert!(n >= 1);
        ClusterSpec::new(vec![ServerSpec::new(cpu_cores, mem_gb); n as usize])
    }

    /// The paper's 30-node private cluster (§6.1): two 24-core/48 GB
    /// powerhouses, seven 16-core nodes (32–64 GB), twenty-one 8-core/16 GB
    /// nodes, spread over two racks. The powerful servers run at 1.25×
    /// nominal speed and a few of the small nodes run slow (0.5×),
    /// modelling the background-load interference the paper observes in §2.
    pub fn paper_30_node() -> Self {
        let mut servers = Vec::with_capacity(30);
        for i in 0..2u32 {
            servers.push(
                ServerSpec::new(24.0, 48.0)
                    .with_rack(0)
                    .with_speed(1.25 + 0.05 * i as f64),
            );
        }
        for i in 0..7u32 {
            // 32–64 GB spread across the seven mid nodes.
            let mem = 32.0 + (i % 3) as f64 * 16.0;
            servers.push(ServerSpec::new(16.0, mem).with_rack(i % 2));
        }
        for i in 0..21u32 {
            // Every fifth small node is a slow, contended VM.
            let speed = if i % 5 == 4 { 0.5 } else { 1.0 };
            servers.push(
                ServerSpec::new(8.0, 16.0)
                    .with_rack(i % 2)
                    .with_speed(speed),
            );
        }
        ClusterSpec::new(servers)
    }

    /// A Google-like fleet of `n` servers for the §6.3 trace simulations:
    /// a mix of three machine shapes in the proportions of the public
    /// cluster traces, with 10 % of machines running slow.
    pub fn google_like(n: u32, rng_seed: u64) -> Self {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        assert!(n >= 1);
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        let mut servers = Vec::with_capacity(n as usize);
        for i in 0..n {
            let shape = rng.gen_range(0..10);
            let base = match shape {
                0..=5 => ServerSpec::new(16.0, 32.0), // 60 %: standard
                6..=8 => ServerSpec::new(32.0, 64.0), // 30 %: big
                _ => ServerSpec::new(8.0, 16.0),      // 10 %: small
            };
            let speed = if rng.gen_bool(0.1) {
                rng.gen_range(0.4..0.8) // contended machine
            } else {
                rng.gen_range(0.9..1.2)
            };
            servers.push(base.with_rack(i / 40).with_speed(speed));
        }
        ClusterSpec::new(servers)
    }

    /// The servers, indexed by [`ServerId`].
    pub fn servers(&self) -> &[ServerSpec] {
        &self.servers
    }

    /// A single server.
    pub fn server(&self, id: ServerId) -> &ServerSpec {
        &self.servers[id.0 as usize]
    }

    /// Number of servers `M`.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Always false — construction rejects empty clusters.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total capacity `(Σ C_i, Σ M_i)` — the denominator of Eq. (9)/(15).
    pub fn totals(&self) -> Resources {
        self.totals
    }

    /// Iterate `(ServerId, &ServerSpec)`.
    pub fn iter(&self) -> impl Iterator<Item = (ServerId, &ServerSpec)> {
        self.servers
            .iter()
            .enumerate()
            .map(|(i, s)| (ServerId(i as u32), s))
    }

    /// A copy of this cluster with every CPU capacity scaled by `factor`
    /// — how the §6.3 load sweep (Fig. 10) varies cluster load while
    /// keeping the workload fixed.
    pub fn scale_cpu(&self, factor: f64) -> ClusterSpec {
        assert!(factor.is_finite() && factor > 0.0);
        let servers = self
            .servers
            .iter()
            .map(|s| ServerSpec {
                capacity: Resources::new((s.capacity.cpu() * factor).max(0.001), s.capacity.mem()),
                ..*s
            })
            .collect();
        ClusterSpec::new(servers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_matches_section_6_1() {
        let c = ClusterSpec::paper_30_node();
        assert_eq!(c.len(), 30);
        // 2×24 + 7×16 + 21×8 = 328 cores.
        assert!((c.totals().cpu() - 328.0).abs() < 1e-9);
        // Two racks.
        let racks: std::collections::HashSet<u32> = c.servers().iter().map(|s| s.rack).collect();
        assert_eq!(racks.len(), 2);
        // Contains both fast and slow machines (heterogeneity).
        assert!(c.servers().iter().any(|s| s.speed > 1.0));
        assert!(c.servers().iter().any(|s| s.speed < 1.0));
    }

    #[test]
    fn homogeneous_totals() {
        let c = ClusterSpec::homogeneous(4, 8.0, 16.0);
        assert_eq!(c.totals(), Resources::new(32.0, 64.0));
        assert_eq!(c.server(ServerId(3)).capacity, Resources::new(8.0, 16.0));
    }

    #[test]
    fn google_like_is_deterministic_per_seed() {
        let a = ClusterSpec::google_like(100, 42);
        let b = ClusterSpec::google_like(100, 42);
        let c = ClusterSpec::google_like(100, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn scale_cpu_scales_only_cpu() {
        let c = ClusterSpec::homogeneous(2, 8.0, 16.0).scale_cpu(0.5);
        assert_eq!(c.totals(), Resources::new(8.0, 32.0));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_cluster_rejected() {
        let _ = ClusterSpec::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "zero capacity")]
    fn zero_capacity_server_rejected() {
        let _ = ClusterSpec::new(vec![ServerSpec::new(0.0, 0.0)]);
    }
}
