//! Simulation outputs: per-job metrics, report aggregation and the CDF /
//! percentile helpers the paper's figures are built from.

use crate::error::RejectReason;
use crate::spec::ServerId;
use crate::state::CopyKind;
use dollymp_core::job::{JobId, TaskRef};
use dollymp_core::time::Time;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// How a copy's occupancy ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CopyOutcome {
    /// This copy finished first and its output was used.
    Won,
    /// A sibling finished first; this copy was killed.
    Killed,
    /// Its server crashed; the copy's work was lost.
    Evicted,
}

/// One copy's lifetime on a server — the unit of the execution timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CopySpan {
    /// The task this copy belonged to.
    pub task: TaskRef,
    /// Copy index (0 = primary).
    pub copy_idx: u32,
    /// Where it ran.
    pub server: ServerId,
    /// Primary or clone.
    pub kind: CopyKind,
    /// Start slot.
    pub start: Time,
    /// End slot (completion or kill).
    pub end: Time,
    /// Won or killed.
    pub outcome: CopyOutcome,
}

/// Render copy spans as a Chrome-tracing (`chrome://tracing`,
/// [Perfetto](https://ui.perfetto.dev)) JSON document: one duration event
/// per copy, grouped by server (pid) — open the file to *see* clones
/// racing their primaries and losing copies being killed.
pub fn timeline_to_chrome_trace(spans: &[CopySpan], slot_secs: f64) -> String {
    let mut out = String::from("[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let us = |t: Time| (t as f64 * slot_secs * 1e6) as u64;
        let kind = match s.kind {
            CopyKind::Primary => "primary",
            CopyKind::Clone => "clone",
        };
        let outcome = match s.outcome {
            CopyOutcome::Won => "won",
            CopyOutcome::Killed => "killed",
            CopyOutcome::Evicted => "evicted",
        };
        // name: j<job>p<phase>t<task>#<copy>; pid = server, tid = task hash.
        let _ = write!(
            out,
            "{{\"name\":\"{} {kind}/{outcome}\",\"cat\":\"{kind}\",\"ph\":\"X\",\
             \"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}}}",
            s.task,
            us(s.start),
            us(s.end.saturating_sub(s.start)),
            s.server.0,
            (s.task.job.0 % 1_000_000) * 100 + s.copy_idx as u64,
        );
    }
    out.push(']');
    out
}

/// Final metrics of one completed job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobMetrics {
    /// Job identity.
    pub id: JobId,
    /// Application label (e.g. `"pagerank"`).
    pub label: String,
    /// Arrival slot `a_j`.
    pub arrival: Time,
    /// First copy launch slot.
    pub first_start: Time,
    /// Completion slot `f_j`.
    pub finish: Time,
    /// Flowtime `f_j − a_j` (§3.1's objective).
    pub flowtime: Time,
    /// Running time `f_j − first_start` — the "actual job execution time"
    /// of §6.1's metrics.
    pub running_time: Time,
    /// Total tasks in the job.
    pub tasks: u64,
    /// Clone copies launched for this job.
    pub clone_copies: u64,
    /// Tasks that ever held more than one copy.
    pub tasks_cloned: u64,
    /// Normalized resource usage: Σ over copies of
    /// `(cpu/ΣC + mem/ΣM) × occupied_slots` (§6.3.1's usage metric;
    /// killed clones count for the time they actually held resources).
    pub usage: f64,
}

/// Wall-clock scheduling overhead, summarized over the run's decision
/// points — the §6.3.3 metric (the paper reports < 20 ms per pass for
/// 1 000 pending jobs and a < 50 ms end-to-end budget).
///
/// One sample per decision point, covering the scheduler work done at
/// that point: the `Scheduler::schedule` call **plus** any on-arrival
/// priority refresh (`on_job_arrival`) that preceded it in the same
/// slot. Measured inside [`crate::engine::simulate`].
///
/// Percentiles use the **nearest-rank** convention: `pq` is the smallest
/// sample whose rank `r` (1-based, ascending) satisfies `r ≥ ⌈q·n⌉` —
/// i.e. an actual observed sample, never an interpolated value. For
/// `n = 1` every percentile equals that single sample; `p99` of exactly
/// 100 samples is the 99th-smallest (the second-largest), and of 101
/// samples the 100th-smallest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedOverhead {
    /// Number of decision points (= samples).
    pub decision_points: u64,
    /// Sum of all samples, in nanoseconds.
    pub total_ns: u64,
    /// Mean sample, in nanoseconds (0 for empty runs).
    pub mean_ns: u64,
    /// Median sample (nearest-rank), in nanoseconds. Defaults to 0 when
    /// deserializing artifacts written before this field existed.
    #[serde(default)]
    pub p50_ns: u64,
    /// 99th-percentile sample (nearest-rank), in nanoseconds.
    pub p99_ns: u64,
    /// Largest sample, in nanoseconds.
    pub max_ns: u64,
}

/// Nearest-rank `q`-percentile of an **ascending-sorted** sample set:
/// the element at 1-based rank `⌈q·n⌉` (clamped to `[1, n]`). Panics on
/// an empty slice — callers handle that case (see
/// [`SchedOverhead::from_samples`]).
fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len();
    let rank = ((n as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

impl SchedOverhead {
    /// Summarize per-decision-point samples (nanoseconds each).
    pub fn from_samples(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return SchedOverhead::default();
        }
        let n = samples.len();
        let total: u64 = samples.iter().sum();
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        SchedOverhead {
            decision_points: n as u64,
            total_ns: total,
            mean_ns: total / n as u64,
            p50_ns: nearest_rank(&sorted, 0.50),
            p99_ns: nearest_rank(&sorted, 0.99),
            max_ns: sorted[n - 1],
        }
    }
}

/// Fault-injection and recovery counters for one run (all zero when the
/// fault timeline was empty — see `dollymp_cluster::fault`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Server-down transitions (a rack blackout counts once per server).
    pub server_crashes: u64,
    /// Server-up transitions.
    pub server_recoveries: u64,
    /// Fail-slow onsets applied.
    pub server_degradations: u64,
    /// Copies evicted by crashes (primaries and clones).
    pub copies_evicted: u64,
    /// Eviction victims that survived because another live copy of the
    /// same task kept running — the clone-as-failure-insurance counter.
    pub tasks_saved_by_clone: u64,
    /// Tasks whose *last* live copy was evicted: fully lost, returned to
    /// the ready queue and re-executed from scratch.
    pub tasks_requeued: u64,
    /// Normalized work destroyed by evictions: Σ over evicted copies of
    /// `(cpu/ΣC + mem/ΣM) × slots held` — the same unit as
    /// [`JobMetrics::usage`], so wasted work is directly comparable to
    /// useful usage.
    pub work_lost_norm: f64,
}

/// Containment-layer counters for one run (all zero when no
/// [`crate::guard::GuardedScheduler`] was in the loop, or when the
/// wrapped policy behaved — so a clean guarded run's report equals the
/// unguarded one).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuardStats {
    /// Assignments dropped for over-committing free capacity.
    pub rejected_overcommit: u64,
    /// Assignments dropped for naming an unknown/blocked job, phase or
    /// task.
    pub rejected_unknown_job: u64,
    /// Assignments dropped for targeting an unknown or crashed server.
    pub rejected_server_down: u64,
    /// Assignments dropped for illegal extra copies (duplicate primary,
    /// clone of a non-running task, copy-cap excess).
    pub rejected_duplicate_copy: u64,
    /// Policy panics caught by `catch_unwind` (each one quarantines the
    /// policy — its internal state is poisoned).
    pub policy_panics: u64,
    /// Decision passes whose wall-clock time exceeded the watchdog
    /// budget.
    pub budget_overruns: u64,
    /// Passes where the policy returned nothing while the cluster was
    /// otherwise idle and the safe fallback could place work (each one a
    /// prevented engine stall).
    pub stall_rescues: u64,
    /// Decision passes served by the safe-fallback policy (panic passes,
    /// stall rescues, and every pass after quarantine).
    pub fallback_passes: u64,
    /// Clone assignments dropped by saturation backpressure.
    pub clones_throttled: u64,
    /// Assignments deferred to a later pass by the bounded pending
    /// queue.
    pub deferred: u64,
    /// Deferred assignments dropped because the pending queue was full.
    pub deferrals_dropped: u64,
    /// Slot at which the policy was quarantined and permanently replaced
    /// by the fallback, if that happened.
    pub quarantined_at: Option<Time>,
}

impl GuardStats {
    /// Total dropped assignments across all rejection reasons.
    pub fn total_rejections(&self) -> u64 {
        self.rejected_overcommit
            + self.rejected_unknown_job
            + self.rejected_server_down
            + self.rejected_duplicate_copy
    }

    /// Record one dropped assignment under its taxonomy bucket.
    /// `Stalled` maps to a stall rescue and `ClockOverrun` to a budget
    /// overrun, so every [`RejectReason`] has a home.
    pub fn record_rejection(&mut self, reason: RejectReason) {
        match reason {
            RejectReason::OverCommit => self.rejected_overcommit += 1,
            RejectReason::UnknownJob => self.rejected_unknown_job += 1,
            RejectReason::ServerDown => self.rejected_server_down += 1,
            RejectReason::DuplicateCopy => self.rejected_duplicate_copy += 1,
            RejectReason::Stalled => self.stall_rescues += 1,
            RejectReason::ClockOverrun => self.budget_overruns += 1,
        }
    }

    /// True when the guard never had to intervene (the report is then
    /// identical to an unguarded run's).
    pub fn is_clean(&self) -> bool {
        *self == GuardStats::default()
    }

    /// Counter-wise difference `self − prev` (saturating), with
    /// `quarantined_at` carried only when it changed. The flight
    /// recorder emits this per decision point; summing the deltas with
    /// [`GuardStats::accumulate`] reconstructs the final stats.
    pub fn diff(&self, prev: &GuardStats) -> GuardStats {
        GuardStats {
            rejected_overcommit: self.rejected_overcommit - prev.rejected_overcommit,
            rejected_unknown_job: self.rejected_unknown_job - prev.rejected_unknown_job,
            rejected_server_down: self.rejected_server_down - prev.rejected_server_down,
            rejected_duplicate_copy: self.rejected_duplicate_copy - prev.rejected_duplicate_copy,
            policy_panics: self.policy_panics - prev.policy_panics,
            budget_overruns: self.budget_overruns - prev.budget_overruns,
            stall_rescues: self.stall_rescues - prev.stall_rescues,
            fallback_passes: self.fallback_passes - prev.fallback_passes,
            clones_throttled: self.clones_throttled - prev.clones_throttled,
            deferred: self.deferred - prev.deferred,
            deferrals_dropped: self.deferrals_dropped - prev.deferrals_dropped,
            quarantined_at: if self.quarantined_at == prev.quarantined_at {
                None
            } else {
                self.quarantined_at
            },
        }
    }

    /// Add a [`GuardStats::diff`] delta onto an accumulator.
    /// `quarantined_at` adopts the delta's value when present (it is set
    /// at most once per run).
    pub fn accumulate(&mut self, delta: &GuardStats) {
        self.rejected_overcommit += delta.rejected_overcommit;
        self.rejected_unknown_job += delta.rejected_unknown_job;
        self.rejected_server_down += delta.rejected_server_down;
        self.rejected_duplicate_copy += delta.rejected_duplicate_copy;
        self.policy_panics += delta.policy_panics;
        self.budget_overruns += delta.budget_overruns;
        self.stall_rescues += delta.stall_rescues;
        self.fallback_passes += delta.fallback_passes;
        self.clones_throttled += delta.clones_throttled;
        self.deferred += delta.deferred;
        self.deferrals_dropped += delta.deferrals_dropped;
        if delta.quarantined_at.is_some() {
            self.quarantined_at = delta.quarantined_at;
        }
    }
}

/// Everything a simulation run produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Scheduler that produced this run.
    pub scheduler: String,
    /// Per-job metrics, in completion order.
    pub jobs: Vec<JobMetrics>,
    /// Completion slot of the last job (0 when no jobs ran).
    pub makespan: Time,
    /// Number of scheduling decision points.
    pub decision_points: u64,
    /// Wall-clock spent inside `Scheduler::schedule`, in nanoseconds —
    /// the §6.3.3 scheduling-overhead metric.
    pub scheduling_ns: u64,
    /// Per-decision-point overhead summary (schedule + on-arrival
    /// refresh). `#[serde(default)]` so reports written before this field
    /// existed still deserialize.
    #[serde(default)]
    pub sched_overhead: SchedOverhead,
    /// Fault/recovery counters — all zero for fault-free runs.
    /// `#[serde(default)]` so reports written before fault injection
    /// existed still deserialize.
    #[serde(default)]
    pub faults: FaultStats,
    /// Containment counters — all zero for unguarded runs or guarded
    /// runs of a well-behaved policy. `#[serde(default)]` so reports
    /// written before the guard existed still deserialize.
    #[serde(default)]
    pub guard: GuardStats,
    /// Cluster utilization samples `(slot, cpu fraction, mem fraction)`
    /// taken after every decision point — empty unless
    /// `EngineConfig::record_utilization` was set.
    pub utilization: Vec<(Time, f64, f64)>,
    /// Every copy's lifetime — empty unless
    /// `EngineConfig::record_timeline` was set. Export with
    /// [`timeline_to_chrome_trace`].
    pub timeline: Vec<CopySpan>,
}

impl SimReport {
    /// Total flowtime `Σ_j (f_j − a_j)` — the (OPT) objective.
    pub fn total_flowtime(&self) -> u64 {
        self.jobs.iter().map(|j| j.flowtime).sum()
    }

    /// Mean flowtime (0 for empty runs).
    pub fn mean_flowtime(&self) -> f64 {
        if self.jobs.is_empty() {
            0.0
        } else {
            self.total_flowtime() as f64 / self.jobs.len() as f64
        }
    }

    /// Mean running time (0 for empty runs).
    pub fn mean_running_time(&self) -> f64 {
        if self.jobs.is_empty() {
            0.0
        } else {
            self.jobs.iter().map(|j| j.running_time).sum::<u64>() as f64 / self.jobs.len() as f64
        }
    }

    /// Total normalized resource usage across jobs.
    pub fn total_usage(&self) -> f64 {
        self.jobs.iter().map(|j| j.usage).sum()
    }

    /// Fraction of tasks that received at least one clone.
    pub fn cloned_task_fraction(&self) -> f64 {
        let tasks: u64 = self.jobs.iter().map(|j| j.tasks).sum();
        if tasks == 0 {
            0.0
        } else {
            self.jobs.iter().map(|j| j.tasks_cloned).sum::<u64>() as f64 / tasks as f64
        }
    }

    /// Jobs with a given label.
    pub fn jobs_labeled<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a JobMetrics> {
        self.jobs.iter().filter(move |j| j.label == label)
    }

    /// Metrics keyed by job id (for cross-scheduler joins).
    pub fn by_id(&self) -> std::collections::HashMap<JobId, &JobMetrics> {
        self.jobs.iter().map(|j| (j.id, j)).collect()
    }

    /// Per-job slowdowns `flowtime / running_time` — how much queueing
    /// and dependency waiting stretched each job beyond its execution.
    pub fn slowdowns(&self) -> Vec<f64> {
        self.jobs
            .iter()
            .map(|j| j.flowtime as f64 / j.running_time.max(1) as f64)
            .collect()
    }

    /// Time-weighted mean CPU utilization over the run (0 when the
    /// utilization series was not recorded or has fewer than 2 samples).
    pub fn mean_cpu_utilization(&self) -> f64 {
        time_weighted_mean(&self.utilization, |&(_, c, _)| c)
    }

    /// Time-weighted mean memory utilization (see
    /// [`SimReport::mean_cpu_utilization`]).
    pub fn mean_mem_utilization(&self) -> f64 {
        time_weighted_mean(&self.utilization, |&(_, _, m)| m)
    }

    /// Cumulative flowtime ordered by arrival — the Fig. 7 series.
    pub fn cumulative_flowtime_by_arrival(&self) -> Vec<(Time, u64)> {
        let mut jobs: Vec<_> = self.jobs.iter().collect();
        jobs.sort_by_key(|j| (j.arrival, j.id));
        let mut acc = 0u64;
        jobs.iter()
            .map(|j| {
                acc += j.flowtime;
                (j.arrival, acc)
            })
            .collect()
    }

    /// Per-job metrics as CSV (header + one row per job, arrival order) —
    /// the interchange format of the experiment binaries and the CLI.
    pub fn jobs_to_csv(&self) -> String {
        let mut out = String::from(
            "job,label,arrival,first_start,finish,flowtime,running_time,tasks,\
             clone_copies,tasks_cloned,usage\n",
        );
        let mut jobs: Vec<_> = self.jobs.iter().collect();
        jobs.sort_by_key(|j| (j.arrival, j.id));
        for j in jobs {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{:.6}",
                j.id.0,
                j.label,
                j.arrival,
                j.first_start,
                j.finish,
                j.flowtime,
                j.running_time,
                j.tasks,
                j.clone_copies,
                j.tasks_cloned,
                j.usage
            );
        }
        out
    }
}

fn time_weighted_mean<F: Fn(&(Time, f64, f64)) -> f64>(
    series: &[(Time, f64, f64)],
    pick: F,
) -> f64 {
    if series.len() < 2 {
        return 0.0;
    }
    let mut weighted = 0.0;
    let mut span = 0.0;
    for w in series.windows(2) {
        let dt = w[1].0.saturating_sub(w[0].0) as f64;
        weighted += pick(&w[0]) * dt;
        span += dt;
    }
    if span > 0.0 {
        weighted / span
    } else {
        0.0
    }
}

/// Jain's fairness index over non-negative samples:
/// `(Σx)² / (n · Σx²)` — 1.0 means perfectly equal, `1/n` means one
/// sample holds everything. Returns 1.0 for empty/degenerate input.
pub fn jain_index(values: &[f64]) -> f64 {
    let v: Vec<f64> = values
        .iter()
        .copied()
        .filter(|x| x.is_finite() && *x >= 0.0)
        .collect();
    if v.is_empty() {
        return 1.0;
    }
    let sum: f64 = v.iter().sum();
    let sumsq: f64 = v.iter().map(|x| x * x).sum();
    if sumsq <= 0.0 {
        return 1.0;
    }
    sum * sum / (v.len() as f64 * sumsq)
}

/// An empirical CDF over `f64` samples: sorted `(value, fraction ≤ value)`
/// pairs. The building block of Figs. 4–6, 8, 9, 11.
pub fn cdf(mut values: Vec<f64>) -> Vec<(f64, f64)> {
    values.retain(|v| v.is_finite());
    values.sort_by(f64::total_cmp);
    let n = values.len();
    values
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n as f64))
        .collect()
}

/// Fraction of samples `≤ x` in a CDF built by [`cdf`].
pub fn cdf_at(curve: &[(f64, f64)], x: f64) -> f64 {
    match curve.iter().rev().find(|&&(v, _)| v <= x) {
        Some(&(_, p)) => p,
        None => 0.0,
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample set (nearest-rank).
/// Returns 0 for empty input.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(f64::total_cmp);
    let idx = ((q.clamp(0.0, 1.0) * v.len() as f64).ceil() as usize).clamp(1, v.len()) - 1;
    v[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jm(id: u64, arrival: Time, finish: Time, first_start: Time) -> JobMetrics {
        JobMetrics {
            id: JobId(id),
            label: "t".into(),
            arrival,
            first_start,
            finish,
            flowtime: finish - arrival,
            running_time: finish - first_start,
            tasks: 2,
            clone_copies: 1,
            tasks_cloned: 1,
            usage: 1.0,
        }
    }

    fn report(jobs: Vec<JobMetrics>) -> SimReport {
        let makespan = jobs.iter().map(|j| j.finish).max().unwrap_or(0);
        SimReport {
            scheduler: "test".into(),
            jobs,
            makespan,
            decision_points: 0,
            scheduling_ns: 0,
            sched_overhead: SchedOverhead::default(),
            faults: FaultStats::default(),
            guard: GuardStats::default(),
            utilization: Vec::new(),
            timeline: Vec::new(),
        }
    }

    #[test]
    fn sched_overhead_defaults_when_absent_from_json() {
        // A report written before the field existed must still load.
        let json = r#"{"scheduler":"t","jobs":[],"makespan":0,
                       "decision_points":3,"scheduling_ns":9,
                       "utilization":[],"timeline":[]}"#;
        let r: SimReport = serde_json::from_str(json).expect("old report loads");
        assert_eq!(r.sched_overhead, SchedOverhead::default());
        assert_eq!(r.decision_points, 3);
        // And a freshly serialized report round-trips the field.
        let mut r2 = report(vec![]);
        r2.sched_overhead = SchedOverhead::from_samples(&[5, 10, 15]);
        let back: SimReport = serde_json::from_str(&serde_json::to_string(&r2).unwrap()).unwrap();
        assert_eq!(back.sched_overhead, r2.sched_overhead);
    }

    #[test]
    fn guard_stats_bucket_every_reason() {
        let mut g = GuardStats::default();
        assert!(g.is_clean());
        for r in [
            RejectReason::OverCommit,
            RejectReason::UnknownJob,
            RejectReason::ServerDown,
            RejectReason::DuplicateCopy,
            RejectReason::Stalled,
            RejectReason::ClockOverrun,
        ] {
            g.record_rejection(r);
        }
        assert_eq!(g.total_rejections(), 4, "engine-level reasons excluded");
        assert_eq!(g.stall_rescues, 1);
        assert_eq!(g.budget_overruns, 1);
        assert!(!g.is_clean());
    }

    #[test]
    fn guard_stats_diff_and_accumulate_round_trip() {
        let mut a = GuardStats::default();
        a.record_rejection(RejectReason::OverCommit);
        a.record_rejection(RejectReason::Stalled);
        a.fallback_passes = 2;
        let mut b = a;
        b.record_rejection(RejectReason::OverCommit);
        b.clones_throttled = 5;
        b.quarantined_at = Some(17);
        let delta = b.diff(&a);
        assert_eq!(delta.rejected_overcommit, 1);
        assert_eq!(delta.clones_throttled, 5);
        assert_eq!(delta.stall_rescues, 0);
        assert_eq!(delta.quarantined_at, Some(17), "newly set ⇒ carried");
        // Unchanged quarantine is not re-carried.
        assert_eq!(b.diff(&b).quarantined_at, None);
        // Accumulating the per-pass deltas reconstructs the final state.
        let mut acc = GuardStats::default();
        acc.accumulate(&a.diff(&GuardStats::default()));
        acc.accumulate(&delta);
        assert_eq!(acc, b);
    }

    #[test]
    fn sched_overhead_summary() {
        assert_eq!(SchedOverhead::from_samples(&[]), SchedOverhead::default());
        let samples: Vec<u64> = (1..=100).collect();
        let o = SchedOverhead::from_samples(&samples);
        assert_eq!(o.decision_points, 100);
        assert_eq!(o.total_ns, 5050);
        assert_eq!(o.mean_ns, 50);
        assert_eq!(o.p50_ns, 50, "nearest-rank p50 of 1..=100");
        assert_eq!(o.p99_ns, 99, "nearest-rank p99 of 1..=100");
        assert_eq!(o.max_ns, 100);
        let one = SchedOverhead::from_samples(&[7]);
        assert_eq!(one.p99_ns, 7);
        assert_eq!(one.mean_ns, 7);
    }

    #[test]
    fn sched_overhead_percentiles_at_rank_boundaries() {
        // Nearest-rank percentiles around the ⌈q·n⌉ boundaries, over
        // 1..=n so the expected value *is* the rank.
        for (n, p50, p99) in [
            (1u64, 1u64, 1u64), // single sample: every percentile is it
            (2, 1, 2),          // ⌈0.5·2⌉ = 1, ⌈0.99·2⌉ = 2
            (99, 50, 99),       // ⌈0.99·99⌉ = 99 (= max)
            (100, 50, 99),      // ⌈0.99·100⌉ = 99 (second-largest)
            (101, 51, 100),     // ⌈0.99·101⌉ = 100
        ] {
            // Feed samples in descending order to prove sorting happens.
            let samples: Vec<u64> = (1..=n).rev().collect();
            let o = SchedOverhead::from_samples(&samples);
            assert_eq!(o.p50_ns, p50, "p50 of 1..={n}");
            assert_eq!(o.p99_ns, p99, "p99 of 1..={n}");
            assert_eq!(o.max_ns, n, "max of 1..={n}");
        }
    }

    #[test]
    fn sched_overhead_p50_defaults_on_old_artifacts() {
        // Artifacts serialized before `p50_ns` existed must still load.
        let old = r#"{"decision_points":3,"total_ns":30,"mean_ns":10,"p99_ns":15,"max_ns":15}"#;
        let o: SchedOverhead = serde_json::from_str(old).unwrap();
        assert_eq!(o.p50_ns, 0);
        assert_eq!(o.p99_ns, 15);
    }

    #[test]
    fn aggregates() {
        let r = report(vec![jm(0, 0, 10, 2), jm(1, 5, 9, 6)]);
        assert_eq!(r.total_flowtime(), 14);
        assert!((r.mean_flowtime() - 7.0).abs() < 1e-12);
        assert!((r.mean_running_time() - 5.5).abs() < 1e-12);
        assert!((r.total_usage() - 2.0).abs() < 1e-12);
        assert!((r.cloned_task_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_all_zero() {
        let r = report(vec![]);
        assert_eq!(r.total_flowtime(), 0);
        assert_eq!(r.mean_flowtime(), 0.0);
        assert_eq!(r.cloned_task_fraction(), 0.0);
        assert_eq!(r.makespan, 0);
    }

    #[test]
    fn cumulative_series_sorted_by_arrival() {
        let r = report(vec![jm(0, 10, 30, 10), jm(1, 0, 50, 0)]);
        let series = r.cumulative_flowtime_by_arrival();
        assert_eq!(series, vec![(0, 50), (10, 70)]);
    }

    #[test]
    fn csv_export_is_sorted_and_complete() {
        let r = report(vec![jm(1, 10, 30, 12), jm(0, 0, 20, 1)]);
        let csv = r.jobs_to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 rows");
        assert!(lines[0].starts_with("job,label,arrival"));
        assert!(
            lines[1].starts_with("0,t,0,"),
            "arrival order: {}",
            lines[1]
        );
        assert!(lines[2].starts_with("1,t,10,"));
        // Row fields count matches the header.
        assert_eq!(lines[1].split(',').count(), lines[0].split(',').count());
    }

    #[test]
    fn cdf_basic_properties() {
        let c = cdf(vec![3.0, 1.0, 2.0, f64::NAN]);
        assert_eq!(c.len(), 3);
        assert_eq!(c[0], (1.0, 1.0 / 3.0));
        assert_eq!(c[2], (3.0, 1.0));
        assert!((cdf_at(&c, 2.5) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cdf_at(&c, 0.5), 0.0);
        assert_eq!(cdf_at(&c, 99.0), 1.0);
    }

    #[test]
    fn slowdowns_and_jain() {
        let r = report(vec![jm(0, 0, 10, 5), jm(1, 0, 20, 10)]);
        // flow 10 / run 5 = 2; flow 20 / run 10 = 2.
        assert_eq!(r.slowdowns(), vec![2.0, 2.0]);
        assert!(
            (jain_index(&r.slowdowns()) - 1.0).abs() < 1e-12,
            "equal → 1"
        );
        // One dominant sample → index tends to 1/n.
        assert!((jain_index(&[1.0, 0.0]) - 0.5).abs() < 1e-12);
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert_eq!(jain_index(&[f64::NAN, 3.0]), 1.0, "single finite value");
    }

    #[test]
    fn utilization_means_are_time_weighted() {
        let mut r = report(vec![jm(0, 0, 10, 2)]);
        // 100% CPU for 1 slot, then 0% for 9 slots → mean 0.1.
        r.utilization = vec![(0, 1.0, 0.5), (1, 0.0, 0.0), (10, 0.0, 0.0)];
        assert!((r.mean_cpu_utilization() - 0.1).abs() < 1e-12);
        assert!((r.mean_mem_utilization() - 0.05).abs() < 1e-12);
        // Unrecorded series → 0.
        r.utilization.clear();
        assert_eq!(r.mean_cpu_utilization(), 0.0);
    }

    #[test]
    fn quantiles() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.5), 2.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }
}
