//! Stochastic task execution: straggler models and paired duration
//! sampling.
//!
//! ## Straggler model
//!
//! The analytical model (§3) fits a Type-I Pareto distribution to each
//! phase's `(θ, σ)`; the trace simulator (§6.3) replays empirical
//! durations where stragglers run up to 20× slower than normal tasks.
//! [`StragglerModel`] supports both views plus a deterministic mode for
//! worked examples like Fig. 2.
//!
//! ## Paired sampling
//!
//! Comparing schedulers fairly requires that the *same* task observe the
//! *same* base duration under every scheduler (§6's experiments replay one
//! workload against many schedulers). All draws therefore come from
//! counter-based RNGs seeded by `(workload_seed, job, phase)` — completely
//! independent of scheduling decisions. Per §6.3, *"the running time of
//! each clone \[is\] the same as that of a task randomly chosen from the
//! same job phase"*: a phase's durations are pre-drawn into a table; the
//! primary copy of task `l` reads `table[l]`, and clone copy `k` reads a
//! random index chosen by a seed derived from `(job, phase, task, k)`.
//!
//! Server effects (speed, locality) are applied *at placement* by the
//! engine, on top of the paired base duration.

use dollymp_core::job::{JobId, PhaseId, PhaseSpec, TaskId};
use dollymp_core::speedup::ParetoDist;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How base task durations are drawn around a phase's mean `θ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StragglerModel {
    /// Every task takes exactly `θ` (worked examples, Fig. 2).
    Deterministic,
    /// Durations are Pareto with the phase's `(θ, σ)` moments — the
    /// analytical model of §3. Falls back to deterministic when `σ = 0`.
    ParetoFit,
    /// Empirical-trace style: a task is normal (`≈ θ`) with probability
    /// `1 − straggler_frac`, otherwise inflated by a Pareto factor in
    /// `[1, max_slowdown]`. Matches the §6.3 statistics (70 % of phases
    /// contain > 15 % stragglers, up to 20× slow).
    Bimodal {
        /// Fraction of straggling tasks within a phase.
        straggler_frac: f64,
        /// Pareto tail index of the slowdown factor (heavier when closer
        /// to 1).
        tail_alpha: f64,
        /// Slowdowns are capped here (the traces report up to 20×).
        max_slowdown: f64,
    },
    /// Expectation-based cloning, for worked examples (Fig. 2): primary
    /// copies take exactly `θ`, and the `k`-th copy of a task takes
    /// `θ / h(k+1)` with the Eq. (3) Pareto speedup — so a task with `r`
    /// simultaneous copies finishes in exactly its expected duration
    /// `θ / h(r)`.
    ExpectedSpeedup {
        /// Pareto tail index of the speedup (Fig. 2 uses α = 2.5, where
        /// `h(2) = 4/3` turns 8 s into 6 s).
        alpha: f64,
    },
}

impl StragglerModel {
    /// The §6.3 trace statistics: 15 % stragglers per phase, up to 20×.
    pub fn google_traces() -> Self {
        StragglerModel::Bimodal {
            straggler_frac: 0.15,
            tail_alpha: 1.25,
            max_slowdown: 20.0,
        }
    }
}

/// Deterministic, scheduler-independent duration source for one workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DurationSampler {
    /// Workload-level seed; two runs with equal seeds observe identical
    /// durations regardless of scheduling.
    pub seed: u64,
    /// The straggler model.
    pub model: StragglerModel,
}

impl DurationSampler {
    /// Build a sampler.
    pub fn new(seed: u64, model: StragglerModel) -> Self {
        DurationSampler { seed, model }
    }

    /// The pre-drawn duration table of one phase: `table[l]` is the base
    /// duration (in the phase's `θ` units) of task `l`'s primary copy.
    pub fn phase_table(&self, job: JobId, phase: PhaseId, spec: &PhaseSpec) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(mix(self.seed, job.0, phase.0 as u64, 0x9e37));
        (0..spec.ntasks)
            .map(|_| self.draw(&mut rng, spec))
            .collect()
    }

    /// Base duration of copy `copy_idx` of a task. Copy 0 (the primary)
    /// reads its own table slot; clones re-draw a uniformly random slot of
    /// the same phase, per §6.3. For a *degenerate* (single-task) phase
    /// that rule would make the clone an exact duplicate of the primary
    /// — physically a clone is an independent execution — so clones of
    /// singleton phases draw a fresh i.i.d. duration from the phase's
    /// model instead.
    pub fn copy_duration(
        &self,
        job: JobId,
        phase: PhaseId,
        task: TaskId,
        copy_idx: u32,
        spec: &PhaseSpec,
        table: &[f64],
    ) -> f64 {
        debug_assert!(!table.is_empty());
        if let StragglerModel::ExpectedSpeedup { alpha } = self.model {
            use dollymp_core::speedup::{ParetoSpeedup, Speedup};
            let theta = table[task.0 as usize % table.len()];
            return theta / ParetoSpeedup::new(alpha).factor(copy_idx + 1);
        }
        if copy_idx == 0 {
            table[task.0 as usize % table.len()]
        } else {
            let mut rng = SmallRng::seed_from_u64(mix(
                self.seed,
                job.0,
                ((phase.0 as u64) << 32) | task.0 as u64,
                copy_idx as u64,
            ));
            if table.len() == 1 {
                self.draw(&mut rng, spec)
            } else {
                table[rng.gen_range(0..table.len())]
            }
        }
    }

    fn draw(&self, rng: &mut SmallRng, spec: &PhaseSpec) -> f64 {
        match self.model {
            StragglerModel::Deterministic | StragglerModel::ExpectedSpeedup { .. } => spec.theta,
            StragglerModel::ParetoFit => match ParetoDist::fit_from_moments(spec.theta, spec.sigma)
            {
                Some(d) => d.sample_from_uniform(rng.gen_range(f64::MIN_POSITIVE..=1.0)),
                None => spec.theta,
            },
            StragglerModel::Bimodal {
                straggler_frac,
                tail_alpha,
                max_slowdown,
            } => {
                // Normal tasks jitter ±10 % around θ; stragglers inflate by
                // a truncated Pareto factor.
                let base = spec.theta * rng.gen_range(0.9..1.1);
                if rng.gen_bool(straggler_frac.clamp(0.0, 1.0)) {
                    let factor = ParetoDist::new(1.0, tail_alpha.max(1.01))
                        .sample_from_uniform(rng.gen_range(f64::MIN_POSITIVE..=1.0))
                        .min(max_slowdown.max(1.0));
                    base * factor
                } else {
                    base
                }
            }
        }
    }
}

/// The two HDFS-style replica servers holding a task's input block,
/// derived by hashing the task identity over the cluster — the shared
/// block map used by both the engine's locality penalty and the YARN
/// AM's container preferences (§5: "each data block usually keeps two
/// replicas … two clones can maintain a good data locality").
///
/// Deterministic; the two replicas differ whenever the cluster has more
/// than one server.
pub fn block_replicas(
    task: dollymp_core::job::TaskRef,
    nservers: usize,
) -> [crate::spec::ServerId; 2] {
    use crate::spec::ServerId;
    let m = nservers.max(1) as u64;
    let h = mix(
        task.job.0,
        (task.phase.0 as u64) << 32 | task.task.0 as u64,
        0xB10C,
        0,
    );
    let r1 = h % m;
    let mut r2 = (h / m) % m;
    if r2 == r1 {
        r2 = (r1 + 1) % m;
    }
    [ServerId(r1 as u32), ServerId(r2 as u32)]
}

/// SplitMix64-style mixing of several ids into one RNG seed.
fn mix(a: u64, b: u64, c: u64, d: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(b.wrapping_mul(0xBF58476D1CE4E5B9))
        .wrapping_add(c.wrapping_mul(0x94D049BB133111EB))
        .wrapping_add(d.wrapping_mul(0xD6E8FEB86659FD93));
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58476D1CE4E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dollymp_core::resources::Resources;

    fn phase(theta: f64, sigma: f64, n: u32) -> PhaseSpec {
        PhaseSpec::new(n, Resources::new(1.0, 1.0), theta, sigma)
    }

    #[test]
    fn deterministic_model_returns_theta() {
        let s = DurationSampler::new(1, StragglerModel::Deterministic);
        let t = s.phase_table(JobId(0), PhaseId(0), &phase(7.0, 3.0, 5));
        assert!(t.iter().all(|&d| (d - 7.0).abs() < 1e-12));
    }

    #[test]
    fn tables_are_reproducible_and_seed_sensitive() {
        let p = phase(10.0, 4.0, 8);
        let a = DurationSampler::new(5, StragglerModel::ParetoFit);
        let t1 = a.phase_table(JobId(3), PhaseId(1), &p);
        let t2 = a.phase_table(JobId(3), PhaseId(1), &p);
        assert_eq!(t1, t2, "same ids → same table");
        let b = DurationSampler::new(6, StragglerModel::ParetoFit);
        assert_ne!(t1, b.phase_table(JobId(3), PhaseId(1), &p), "seed matters");
        assert_ne!(
            t1,
            a.phase_table(JobId(4), PhaseId(1), &p),
            "job id matters"
        );
    }

    #[test]
    fn pareto_fit_tables_have_roughly_right_mean() {
        let p = phase(10.0, 5.0, 4000);
        let s = DurationSampler::new(9, StragglerModel::ParetoFit);
        let t = s.phase_table(JobId(0), PhaseId(0), &p);
        let mean = t.iter().sum::<f64>() / t.len() as f64;
        assert!(
            (mean - 10.0).abs() < 1.0,
            "sample mean {mean} too far from θ = 10"
        );
        assert!(t.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn primary_copy_reads_its_slot_clones_resample() {
        let p = phase(10.0, 5.0, 16);
        let s = DurationSampler::new(11, StragglerModel::ParetoFit);
        let table = s.phase_table(JobId(1), PhaseId(0), &p);
        for l in 0..16u32 {
            let d = s.copy_duration(JobId(1), PhaseId(0), TaskId(l), 0, &p, &table);
            assert_eq!(d, table[l as usize]);
        }
        // Clone draws come from the table and are deterministic per copy.
        let c1 = s.copy_duration(JobId(1), PhaseId(0), TaskId(3), 1, &p, &table);
        let c1_again = s.copy_duration(JobId(1), PhaseId(0), TaskId(3), 1, &p, &table);
        assert_eq!(c1, c1_again);
        assert!(table.contains(&c1));
        // Different copy indices are (very likely) independent draws.
        let c2 = s.copy_duration(JobId(1), PhaseId(0), TaskId(3), 2, &p, &table);
        assert!(table.contains(&c2));
    }

    #[test]
    fn bimodal_inflates_some_tasks() {
        let p = phase(10.0, 0.0, 4000);
        let s = DurationSampler::new(2, StragglerModel::google_traces());
        let t = s.phase_table(JobId(0), PhaseId(0), &p);
        let stragglers = t.iter().filter(|&&d| d > 12.0).count();
        let frac = stragglers as f64 / t.len() as f64;
        assert!(
            (0.08..0.25).contains(&frac),
            "straggler fraction {frac} should be near 0.15"
        );
        assert!(
            t.iter().all(|&d| d <= 10.0 * 1.1 * 20.0 + 1e-9),
            "capped at 20×"
        );
    }

    #[test]
    fn expected_speedup_model_shrinks_clones_exactly() {
        use dollymp_core::resources::Resources as R;
        let _ = R::ZERO;
        let p = phase(8.0, 0.0, 2);
        let s = DurationSampler::new(0, StragglerModel::ExpectedSpeedup { alpha: 2.5 });
        let table = s.phase_table(JobId(0), PhaseId(0), &p);
        assert_eq!(table, vec![8.0, 8.0]);
        // Copy 0 = θ; copy 1 = θ / h(2) = 8 / (4/3) = 6.
        assert_eq!(
            s.copy_duration(JobId(0), PhaseId(0), TaskId(0), 0, &p, &table),
            8.0
        );
        let c1 = s.copy_duration(JobId(0), PhaseId(0), TaskId(0), 1, &p, &table);
        assert!((c1 - 6.0).abs() < 1e-9);
        // Copy 2 = θ / h(3) = 8 / ((2.5 − 1/3)/1.5).
        let c2 = s.copy_duration(JobId(0), PhaseId(0), TaskId(0), 2, &p, &table);
        assert!(c2 < c1);
    }

    #[test]
    fn zero_sigma_pareto_fit_degenerates() {
        let s = DurationSampler::new(3, StragglerModel::ParetoFit);
        let t = s.phase_table(JobId(0), PhaseId(0), &phase(4.0, 0.0, 3));
        assert!(t.iter().all(|&d| (d - 4.0).abs() < 1e-12));
    }
}
