//! Typed admission and simulation errors — the non-panicking face of the
//! engine's strict validation.
//!
//! The engine historically `panic!`ed on every scheduler bug (fail-loud,
//! so a buggy policy cannot silently skew an experiment). That is the
//! right default for research runs but the wrong one for a control plane
//! that must *contain* third-party policies: a panic aborts the whole
//! sweep. This module gives every abort path a typed representation:
//!
//! * [`RejectReason`] — the coarse taxonomy shared by the engine, the
//!   [`crate::guard::GuardedScheduler`] containment layer and the YARN
//!   Resource Manager's request validation;
//! * [`AdmissionError`] — one rejected assignment with full context;
//! * [`SimError`] — everything that can abort a run, returned by
//!   [`crate::engine::try_simulate`] /
//!   [`crate::engine::try_simulate_with_faults`].
//!
//! [`crate::engine::simulate`] keeps its fail-loud semantics by
//! unwrapping the `Result`: the panic message is the error's `Display`
//! form, which preserves the historical message fragments
//! (`"over-commitment"`, `"stalled"`, `"fits no server"`, …) that tests
//! and operators grep for.

use crate::scheduler::Assignment;
use dollymp_core::job::JobId;
use dollymp_core::resources::Resources;
use dollymp_core::time::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why an input (an assignment batch entry, an AM container request, or
/// the run as a whole) was refused. One taxonomy across layers so that
/// guard statistics, RM rejection counters and engine errors aggregate
/// on the same axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RejectReason {
    /// The demand does not fit the target's remaining free capacity (or,
    /// for an up-front check, fits no server at all).
    OverCommit,
    /// The job, task or phase named by the input does not exist or is not
    /// in a schedulable state (unknown id, out-of-range index, blocked
    /// phase).
    UnknownJob,
    /// The target server does not exist or is currently crashed.
    ServerDown,
    /// An illegal extra copy: a primary for an already-running task, a
    /// clone for a non-running task, or a launch beyond the per-task copy
    /// cap.
    DuplicateCopy,
    /// The scheduler made no progress while the cluster had runnable work
    /// and nothing else pending.
    Stalled,
    /// The decision pass (or the whole run) exceeded its time budget: the
    /// per-pass wall-clock watchdog of the guard, or the engine's
    /// `max_slots` safety valve.
    ClockOverrun,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RejectReason::OverCommit => "over-commit",
            RejectReason::UnknownJob => "unknown-job",
            RejectReason::ServerDown => "server-down",
            RejectReason::DuplicateCopy => "duplicate-copy",
            RejectReason::Stalled => "stalled",
            RejectReason::ClockOverrun => "clock-overrun",
        };
        f.write_str(s)
    }
}

/// One rejected assignment, with enough context to debug the policy that
/// produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionError {
    /// Slot at which the batch was validated.
    pub at: Time,
    /// The offending assignment.
    pub assignment: Assignment,
    /// Coarse classification.
    pub reason: RejectReason,
    /// Human-readable specifics (preserves the engine's historical panic
    /// phrasing, e.g. `"over-commitment on server 3: …"`).
    pub detail: String,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid assignment at slot {} ({}): {}",
            self.at, self.reason, self.detail
        )
    }
}

impl std::error::Error for AdmissionError {}

/// A snapshot of scheduler-visible progress state, embedded in stall and
/// clock-overrun errors so an aborted run is debuggable from the message
/// alone.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ProgressSnapshot {
    /// Active (arrived, unfinished) job ids — capped at
    /// [`ProgressSnapshot::MAX_LISTED`] entries.
    pub active_jobs: Vec<JobId>,
    /// Total active jobs (may exceed `active_jobs.len()`).
    pub total_active: usize,
    /// Ready tasks awaiting placement across all active jobs — the
    /// pending-queue depth.
    pub pending_tasks: usize,
    /// Last slot at which anything happened (an arrival was admitted, a
    /// copy launched, or a copy retired).
    pub last_progress: Time,
}

impl ProgressSnapshot {
    /// Cap on the job ids listed in messages (keeps errors bounded on
    /// 30 000-server sweeps).
    pub const MAX_LISTED: usize = 16;
}

impl fmt::Display for ProgressSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ids: Vec<u64> = self.active_jobs.iter().map(|j| j.0).collect();
        let ellipsis = if self.total_active > ids.len() {
            format!(" (+{} more)", self.total_active - ids.len())
        } else {
            String::new()
        };
        write!(
            f,
            "{} active job(s) {:?}{}, {} ready task(s) pending, last progress at slot {}",
            self.total_active, ids, ellipsis, self.pending_tasks, self.last_progress
        )
    }
}

/// Everything that can abort a simulation, returned by the fallible
/// engine entry points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimError {
    /// A job's phase demand fits no server: the job could never run.
    Unsatisfiable {
        /// The impossible job.
        job: JobId,
        /// Offending phase index.
        phase: u32,
        /// Its per-task demand.
        demand: Resources,
    },
    /// Two jobs in the workload share an id.
    DuplicateJob {
        /// The duplicated id.
        job: JobId,
    },
    /// The scheduler produced an invalid assignment (strict mode only —
    /// under [`crate::guard::GuardedScheduler`] these are dropped and
    /// counted instead).
    Rejected(AdmissionError),
    /// Active jobs, nothing running, nothing arriving, and an empty
    /// scheduling batch: the run would hang forever.
    Stalled {
        /// Name of the stalled policy.
        scheduler: String,
        /// Slot at which the stall was detected.
        at: Time,
        /// Progress context for debugging.
        progress: ProgressSnapshot,
    },
    /// The clock passed `EngineConfig::max_slots` (livelock safety
    /// valve).
    ClockOverrun {
        /// Name of the livelocked policy.
        scheduler: String,
        /// The configured ceiling.
        max_slots: Time,
        /// Slot the clock reached.
        at: Time,
        /// Progress context for debugging.
        progress: ProgressSnapshot,
    },
    /// The fault timeline itself is malformed (generator bug): an event
    /// for an unknown server, or a `Restore` for a server that is up.
    InvalidTimeline {
        /// Slot of the offending event.
        at: Time,
        /// What was wrong.
        detail: String,
    },
}

impl SimError {
    /// The coarse [`RejectReason`] bucket this error falls into.
    pub fn reason(&self) -> RejectReason {
        match self {
            SimError::Unsatisfiable { .. } => RejectReason::OverCommit,
            SimError::DuplicateJob { .. } => RejectReason::UnknownJob,
            SimError::Rejected(e) => e.reason,
            SimError::Stalled { .. } => RejectReason::Stalled,
            SimError::ClockOverrun { .. } => RejectReason::ClockOverrun,
            SimError::InvalidTimeline { .. } => RejectReason::ServerDown,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Unsatisfiable { job, phase, demand } => {
                write!(
                    f,
                    "job {} phase {phase} demand {demand} fits no server",
                    job.0
                )
            }
            SimError::DuplicateJob { job } => {
                write!(f, "duplicate job id {} in workload", job.0)
            }
            SimError::Rejected(e) => e.fmt(f),
            SimError::Stalled {
                scheduler,
                at,
                progress,
            } => write!(
                f,
                "scheduler {scheduler} stalled at slot {at}: returned no assignments with \
                 {progress}, nothing running, nothing arriving"
            ),
            SimError::ClockOverrun {
                scheduler,
                max_slots,
                at,
                progress,
            } => write!(
                f,
                "simulation exceeded {max_slots} slots (clock at {at}) — livelocked \
                 scheduler {scheduler}? {progress}"
            ),
            SimError::InvalidTimeline { at, detail } => {
                write!(f, "invalid fault timeline at slot {at}: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<AdmissionError> for SimError {
    fn from(e: AdmissionError) -> Self {
        SimError::Rejected(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ServerId;
    use crate::state::CopyKind;
    use dollymp_core::job::{PhaseId, TaskId, TaskRef};

    fn admission(reason: RejectReason, detail: &str) -> AdmissionError {
        AdmissionError {
            at: 7,
            assignment: Assignment {
                task: TaskRef {
                    job: JobId(1),
                    phase: PhaseId(0),
                    task: TaskId(2),
                },
                server: ServerId(3),
                kind: CopyKind::Primary,
            },
            reason,
            detail: detail.to_string(),
        }
    }

    #[test]
    fn display_preserves_legacy_fragments() {
        // The substrings the pre-existing `should_panic` tests (and any
        // operator grepping logs) rely on.
        let e = SimError::Unsatisfiable {
            job: JobId(4),
            phase: 1,
            demand: Resources::new(8.0, 2.0),
        };
        assert!(e.to_string().contains("fits no server"));

        let e = SimError::DuplicateJob { job: JobId(9) };
        assert!(e.to_string().contains("duplicate job id 9"));

        let e = SimError::Stalled {
            scheduler: "lazy".into(),
            at: 12,
            progress: ProgressSnapshot {
                active_jobs: vec![JobId(0), JobId(3)],
                total_active: 2,
                pending_tasks: 5,
                last_progress: 8,
            },
        };
        let msg = e.to_string();
        assert!(msg.contains("stalled"));
        assert!(msg.contains("[0, 3]"), "job ids listed: {msg}");
        assert!(
            msg.contains("5 ready task(s) pending"),
            "queue depth: {msg}"
        );
        assert!(msg.contains("last progress at slot 8"), "{msg}");

        let e = SimError::Rejected(admission(
            RejectReason::OverCommit,
            "over-commitment on server 3: demand (2, 2) > free (1, 1)",
        ));
        assert!(e.to_string().contains("over-commitment"));
    }

    #[test]
    fn overrun_message_names_the_budget_and_progress() {
        let e = SimError::ClockOverrun {
            scheduler: "spin".into(),
            max_slots: 100,
            at: 101,
            progress: ProgressSnapshot {
                active_jobs: (0..20).map(JobId).collect::<Vec<_>>()[..16].to_vec(),
                total_active: 20,
                pending_tasks: 40,
                last_progress: 33,
            },
        };
        let msg = e.to_string();
        assert!(msg.contains("exceeded 100 slots"));
        assert!(msg.contains("livelocked"));
        assert!(msg.contains("(+4 more)"), "capped id list: {msg}");
        assert!(msg.contains("last progress at slot 33"));
    }

    #[test]
    fn reasons_map_to_taxonomy() {
        assert_eq!(
            SimError::DuplicateJob { job: JobId(0) }.reason(),
            RejectReason::UnknownJob
        );
        assert_eq!(
            SimError::Rejected(admission(RejectReason::ServerDown, "x")).reason(),
            RejectReason::ServerDown
        );
        let stall = SimError::Stalled {
            scheduler: "s".into(),
            at: 0,
            progress: ProgressSnapshot::default(),
        };
        assert_eq!(stall.reason(), RejectReason::Stalled);
    }

    #[test]
    fn errors_serialize_round_trip() {
        let e = SimError::Rejected(admission(RejectReason::DuplicateCopy, "d"));
        let s = serde_json::to_string(&e).unwrap();
        let back: SimError = serde_json::from_str(&s).unwrap();
        assert_eq!(e, back);
    }
}
