//! Timed fault events delivered to the engine: server crashes, repairs
//! and persistent fail-slow degradation.
//!
//! The *mechanism* lives here (event types, the sorted timeline the
//! engine consumes, and the engine-side counters in
//! [`crate::metrics::FaultStats`]); the *models* that generate schedules
//! — Poisson per-server crashes, correlated rack blackouts, fail-slow
//! onset — live in the `dollymp-faults` crate, keeping stochastic policy
//! out of the simulation substrate.
//!
//! Semantics (see DESIGN.md "Failure model"):
//!
//! * **Crash** takes a server offline: every copy running there is
//!   *evicted*. A task with another live copy elsewhere survives — the
//!   paper's cloning semantics extended to failures — while a task whose
//!   last copy was lost returns to `Ready` and is re-executed from
//!   scratch (map-style tasks are idempotent; there is no checkpoint).
//! * **Restore** brings the server back empty; its capacity becomes
//!   schedulable again at the same slot.
//! * **Degrade** is a persistent fail-slow onset: the server's effective
//!   speed is multiplied by the factor, stretching both the remaining
//!   work of in-flight copies and every future placement. Fail-slow
//!   servers keep accepting work — that is precisely what makes them
//!   dangerous (§2's stragglers, made permanent).
//!
//! Crash/Restore pairs may overlap (an individual crash inside a rack
//! blackout window): the engine keeps a per-server down-*count* and a
//! server is up only when its count is zero.

use crate::spec::ServerId;
use dollymp_core::time::Time;
use serde::{Deserialize, Serialize};

/// One fault-injection action.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Server goes offline; running copies there are evicted.
    Crash(ServerId),
    /// Server comes back online, empty.
    Restore(ServerId),
    /// Persistent fail-slow onset: effective speed is multiplied by the
    /// factor (`0 < factor ≤ 1`).
    Degrade(ServerId, f64),
}

impl FaultEvent {
    /// The server this event targets.
    pub fn server(&self) -> ServerId {
        match *self {
            FaultEvent::Crash(s) | FaultEvent::Restore(s) | FaultEvent::Degrade(s, _) => s,
        }
    }
}

/// A fault event pinned to a slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedFault {
    /// Slot at which the event fires (before arrivals and scheduling of
    /// that slot, after completions of that slot are retired).
    pub at: Time,
    /// What happens.
    pub event: FaultEvent,
}

/// A deterministic, time-sorted fault schedule for one simulation run.
///
/// An empty timeline makes `simulate_with_faults` byte-identical to
/// [`crate::engine::simulate`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultTimeline {
    events: Vec<TimedFault>,
}

impl FaultTimeline {
    /// No faults at all.
    pub fn empty() -> Self {
        FaultTimeline::default()
    }

    /// Build a timeline, sorting events by slot (stable: events sharing a
    /// slot keep their given order, so generators control tie-breaks
    /// deterministically).
    pub fn new(mut events: Vec<TimedFault>) -> Self {
        events.sort_by_key(|e| e.at);
        for e in &events {
            if let FaultEvent::Degrade(_, f) = e.event {
                assert!(
                    f.is_finite() && f > 0.0 && f <= 1.0,
                    "degrade factor {f} must be in (0, 1]"
                );
            }
        }
        FaultTimeline { events }
    }

    /// The events, ascending in time.
    pub fn events(&self) -> &[TimedFault] {
        &self.events
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Number of crash events (for quick sanity checks in experiments).
    pub fn crash_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.event, FaultEvent::Crash(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_sorts_and_counts() {
        let t = FaultTimeline::new(vec![
            TimedFault {
                at: 9,
                event: FaultEvent::Restore(ServerId(0)),
            },
            TimedFault {
                at: 3,
                event: FaultEvent::Crash(ServerId(0)),
            },
            TimedFault {
                at: 5,
                event: FaultEvent::Degrade(ServerId(1), 0.5),
            },
        ]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.crash_count(), 1);
        assert_eq!(t.events()[0].at, 3);
        assert_eq!(t.events()[2].at, 9);
        assert!(!t.is_empty());
        assert!(FaultTimeline::empty().is_empty());
    }

    #[test]
    fn stable_order_within_a_slot() {
        // Crash and Restore of different servers at the same slot keep
        // their construction order.
        let t = FaultTimeline::new(vec![
            TimedFault {
                at: 4,
                event: FaultEvent::Crash(ServerId(1)),
            },
            TimedFault {
                at: 4,
                event: FaultEvent::Restore(ServerId(0)),
            },
        ]);
        assert_eq!(t.events()[0].event, FaultEvent::Crash(ServerId(1)));
        assert_eq!(t.events()[1].event, FaultEvent::Restore(ServerId(0)));
    }

    #[test]
    #[should_panic(expected = "degrade factor")]
    fn bad_degrade_factor_rejected() {
        let _ = FaultTimeline::new(vec![TimedFault {
            at: 0,
            event: FaultEvent::Degrade(ServerId(0), 0.0),
        }]);
    }

    #[test]
    fn serde_round_trip() {
        let t = FaultTimeline::new(vec![TimedFault {
            at: 7,
            event: FaultEvent::Degrade(ServerId(2), 0.25),
        }]);
        let json = serde_json::to_string(&t).unwrap();
        let back: FaultTimeline = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
