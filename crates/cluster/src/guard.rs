//! Containment layer between the engine and untrusted scheduling
//! policies.
//!
//! The engine's validation is deliberately strict — a bad assignment
//! aborts the run (the engine's internal `check_assignment`). That
//! is the right contract for *our* policies under test, but a production
//! control plane must keep serving when a third-party policy misbehaves
//! (ROADMAP north-star; the paper's §6.3.3 <20 ms/pass overhead budget is
//! likewise a contract, not an observation). [`GuardedScheduler`] wraps
//! any [`Scheduler`] and turns fatal misbehaviour into graceful
//! degradation:
//!
//! * **Admission validation** — every batch is checked against a
//!   batch-local replica of the engine's own rules before the engine
//!   sees it; invalid assignments are dropped and counted by
//!   [`RejectReason`] instead of aborting the run.
//! * **Watchdog** — each decision pass is timed against a wall-clock
//!   budget (default: the paper's 20 ms contract). Overruns count as
//!   strikes.
//! * **Panic isolation** — a panicking policy is caught via
//!   `catch_unwind`; its internal state is then considered poisoned and
//!   it is quarantined immediately.
//! * **Quarantine + safe fallback** — a repeat offender (configurable
//!   strike count) is permanently replaced by a deterministic greedy
//!   first-fit, no-clone fallback ([`FifoFirstFit`]) so the simulation
//!   still completes.
//! * **Overload backpressure** — an optional per-pass batch cap with a
//!   bounded deferral queue, and a clone throttle that disables cloning
//!   while cluster utilization sits above a saturation threshold
//!   (re-enabling below a lower hysteresis threshold; clones only ever
//!   come from leftover capacity per Algorithm 2, so under saturation
//!   they are pure overhead).
//!
//! Everything the guard did is recorded in [`GuardStats`] and lands on
//! [`crate::metrics::SimReport::guard`]. With the default config and a
//! well-behaved policy the guard never intervenes and the report is
//! byte-identical to an unguarded run.

use crate::error::RejectReason;
use crate::metrics::GuardStats;
use crate::scheduler::{Assignment, FifoFirstFit, Scheduler};
use crate::spec::ServerId;
use crate::state::{CopyKind, TaskStatus};
use crate::view::ClusterView;
use dollymp_core::job::{JobId, TaskRef};
use dollymp_core::resources::Resources;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Clone-throttle hysteresis thresholds on cluster utilization (the max
/// of the CPU and memory used fractions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloneThrottle {
    /// Throttling engages when utilization reaches this fraction.
    pub high: f64,
    /// Throttling releases when utilization falls back below this
    /// fraction (must be ≤ `high`; the gap is the hysteresis band that
    /// prevents oscillation at the boundary).
    pub low: f64,
}

impl Default for CloneThrottle {
    fn default() -> Self {
        CloneThrottle {
            high: 0.95,
            low: 0.80,
        }
    }
}

/// Tunables for [`GuardedScheduler`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Wall-clock budget for one decision pass (watchdog). Defaults to
    /// the paper's §6.3.3 scheduling-overhead contract of 20 ms.
    pub budget: Duration,
    /// Offending passes (any rejection, a budget overrun, or a rescued
    /// stall) tolerated before the policy is quarantined and replaced by
    /// the safe fallback. A caught panic quarantines immediately
    /// regardless — the policy's state is poisoned.
    pub max_strikes: u32,
    /// Per-task live-copy cap used for validation. Must match
    /// [`crate::engine::EngineConfig::max_copies_per_task`] (both default
    /// to 8), otherwise the guard admits batches the engine rejects or
    /// vice versa.
    pub max_copies_per_task: u32,
    /// Overload backpressure: cap on assignments admitted per pass.
    /// Excess assignments are deferred to a bounded pending queue and
    /// replayed (re-validated) on later passes. `None` (the default)
    /// disables the cap.
    pub max_batch: Option<usize>,
    /// Capacity of the deferral queue; overflow is dropped (and
    /// counted). Only meaningful with `max_batch`.
    pub pending_cap: usize,
    /// Clone throttling under saturation. `None` (the default) disables
    /// it.
    pub clone_throttle: Option<CloneThrottle>,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            budget: Duration::from_millis(20),
            max_strikes: 3,
            max_copies_per_task: 8,
            max_batch: None,
            pending_cap: 4096,
            clone_throttle: None,
        }
    }
}

impl GuardConfig {
    /// Preset for overload experiments: defaults plus the clone throttle
    /// engaged (see `bench_guard`).
    pub fn overload() -> Self {
        GuardConfig {
            clone_throttle: Some(CloneThrottle::default()),
            ..GuardConfig::default()
        }
    }
}

/// A [`Scheduler`] wrapper that contains misbehaving policies instead of
/// letting them abort the run. See the module docs for the mechanism.
///
/// `name()` delegates to the inner policy so guarded and unguarded
/// reports compare directly; [`Scheduler::guard_stats`] returns the
/// containment counters, which the engine stores on the report.
pub struct GuardedScheduler<S> {
    inner: S,
    cfg: GuardConfig,
    fallback: FifoFirstFit,
    stats: GuardStats,
    strikes: u32,
    quarantined: bool,
    /// Servers currently down, tracked from the engine's fault hooks
    /// (the view alone cannot distinguish a crashed server from a full
    /// one).
    down: BTreeSet<usize>,
    /// Clone-throttle hysteresis state.
    throttling: bool,
    /// Deferred assignments awaiting replay (bounded by
    /// `cfg.pending_cap`).
    pending: VecDeque<Assignment>,
}

impl<S: Scheduler> GuardedScheduler<S> {
    /// Wrap `inner` with the default guard configuration.
    pub fn new(inner: S) -> Self {
        Self::with_config(inner, GuardConfig::default())
    }

    /// Wrap `inner` with an explicit configuration.
    pub fn with_config(inner: S, cfg: GuardConfig) -> Self {
        GuardedScheduler {
            inner,
            cfg,
            fallback: FifoFirstFit,
            stats: GuardStats::default(),
            strikes: 0,
            quarantined: false,
            down: BTreeSet::new(),
            throttling: false,
            pending: VecDeque::new(),
        }
    }

    /// Containment counters so far.
    pub fn stats(&self) -> GuardStats {
        self.stats
    }

    /// True once the inner policy has been replaced by the fallback.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// The wrapped policy (e.g. to inspect its state after a run).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn quarantine(&mut self, now: dollymp_core::time::Time) {
        if !self.quarantined {
            self.quarantined = true;
            self.stats.quarantined_at = Some(now);
        }
    }

    fn strike(&mut self, now: dollymp_core::time::Time) {
        self.strikes += 1;
        if self.strikes >= self.cfg.max_strikes {
            self.quarantine(now);
        }
    }

    /// Run one inner-policy callback with panic isolation. A panic
    /// poisons the policy: it is quarantined on the spot.
    fn contained<R: Default>(
        &mut self,
        now: dollymp_core::time::Time,
        f: impl FnOnce(&mut S) -> R,
    ) -> R {
        if self.quarantined {
            return R::default();
        }
        // The inner policy's state may be torn mid-panic; we never call
        // it again afterwards, which is what makes the unwind-safety
        // assertion sound.
        match catch_unwind(AssertUnwindSafe(|| f(&mut self.inner))) {
            Ok(r) => r,
            Err(_) => {
                self.stats.policy_panics += 1;
                self.quarantine(now);
                R::default()
            }
        }
    }

    /// Update the clone-throttle hysteresis from the current view and
    /// return whether clones are currently suppressed.
    fn update_throttle(&mut self, view: &ClusterView<'_>) -> bool {
        let Some(th) = self.cfg.clone_throttle else {
            return false;
        };
        let totals = view.totals();
        let used = totals - view.total_free();
        let cpu = if totals.cpu() > 0.0 {
            used.cpu() / totals.cpu()
        } else {
            0.0
        };
        let mem = if totals.mem() > 0.0 {
            used.mem() / totals.mem()
        } else {
            0.0
        };
        let util = cpu.max(mem);
        if self.throttling {
            if util < th.low {
                self.throttling = false;
            }
        } else if util >= th.high {
            self.throttling = true;
        }
        self.throttling
    }

    /// Validate `batch` against a batch-local replica of the engine's
    /// admission rules, admitting entries in order and tracking their
    /// effects (so e.g. a clone right after its primary in the same
    /// batch is legal, exactly as in the engine). Rejections are
    /// recorded in the stats only for entries at index ≥ `count_from` —
    /// replayed deferrals (the prefix) going stale is expected, not an
    /// offence, and the fallback's own batches pass `usize::MAX`.
    ///
    /// Returns `(admitted, any_counted_rejection)`.
    fn validate(
        &mut self,
        view: &ClusterView<'_>,
        batch: Vec<Assignment>,
        count_from: usize,
    ) -> (Vec<Assignment>, bool) {
        // Batch-local capacity accounting on an overlay: O(1) to start,
        // no per-batch clone of the per-server free vector.
        let free = view.capacity().begin_batch();
        // Effective (status, live copies) per task touched this batch.
        let mut effect: BTreeMap<TaskRef, (TaskStatus, u32)> = BTreeMap::new();
        let mut admitted = Vec::with_capacity(batch.len());
        let mut rejected_any = false;
        for (i, a) in batch.into_iter().enumerate() {
            match self.admit_one(view, &free, &effect, &a) {
                Ok(demand) => {
                    let committed = free.try_commit(a.server, demand);
                    debug_assert!(committed, "admit_one checked the fit");
                    let e = effect.entry(a.task).or_insert_with(|| {
                        // `admit_one` verified the lookups.
                        let t = view
                            .job(a.task.job)
                            .map(|j| j.task(a.task.phase, a.task.task));
                        t.map(|t| (t.status, t.live_copies()))
                            .unwrap_or((TaskStatus::Ready, 0))
                    });
                    e.0 = TaskStatus::Running;
                    e.1 += 1;
                    admitted.push(a);
                }
                Err(reason) => {
                    if i >= count_from {
                        rejected_any = true;
                        self.stats.record_rejection(reason);
                    }
                }
            }
        }
        (admitted, rejected_any)
    }

    /// Check one assignment against the batch-local state; `Ok` carries
    /// the phase demand so the caller can charge it.
    fn admit_one(
        &self,
        view: &ClusterView<'_>,
        free: &crate::capacity::CapacityOverlay<'_>,
        effect: &BTreeMap<TaskRef, (TaskStatus, u32)>,
        a: &Assignment,
    ) -> Result<Resources, RejectReason> {
        let Some(job) = view.job(a.task.job) else {
            return Err(RejectReason::UnknownJob);
        };
        let pi = a.task.phase.0 as usize;
        let ti = a.task.task.0 as usize;
        if pi >= job.spec().num_phases() || ti >= job.spec().phase(a.task.phase).ntasks as usize {
            return Err(RejectReason::UnknownJob);
        }
        if !job.phase_state(a.task.phase).runnable {
            return Err(RejectReason::UnknownJob);
        }
        let (status, live) = effect.get(&a.task).copied().unwrap_or_else(|| {
            let t = job.task(a.task.phase, a.task.task);
            (t.status, t.live_copies())
        });
        match a.kind {
            CopyKind::Primary => {
                if status != TaskStatus::Ready || live > 0 {
                    return Err(RejectReason::DuplicateCopy);
                }
            }
            CopyKind::Clone => {
                if status != TaskStatus::Running {
                    return Err(RejectReason::DuplicateCopy);
                }
                if live >= self.cfg.max_copies_per_task {
                    return Err(RejectReason::DuplicateCopy);
                }
            }
        }
        let sid = a.server.0 as usize;
        if sid >= view.cluster().len() || self.down.contains(&sid) {
            return Err(RejectReason::ServerDown);
        }
        let demand = job.spec().phase(a.task.phase).demand;
        if !demand.fits_in(free.free(a.server)) {
            return Err(RejectReason::OverCommit);
        }
        Ok(demand)
    }

    /// One safe-fallback pass: deterministic greedy first-fit, no
    /// clones, validated like everything else (silently — the fallback
    /// is ours).
    fn fallback_pass(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        self.stats.fallback_passes += 1;
        let batch = self.fallback.schedule(view);
        self.validate(view, batch, usize::MAX).0
    }
}

impl<S: Scheduler> Scheduler for GuardedScheduler<S> {
    /// Delegates to the inner policy: a guarded report names the policy
    /// it guards, keeping guarded/unguarded comparisons apples-to-
    /// apples. (After quarantine the report still carries the inner
    /// name; `GuardStats::quarantined_at` records the substitution.)
    fn name(&self) -> String {
        self.inner.name()
    }

    fn on_job_arrival(&mut self, view: &ClusterView<'_>, job: JobId) {
        self.contained(view.now, |s| s.on_job_arrival(view, job));
    }

    fn on_job_finish(&mut self, job: &crate::state::JobState) {
        let at = job.finish_time().unwrap_or(0);
        self.contained(at, |s| s.on_job_finish(job));
    }

    fn on_server_down(&mut self, view: &ClusterView<'_>, server: ServerId) {
        self.down.insert(server.0 as usize);
        self.contained(view.now, |s| s.on_server_down(view, server));
    }

    fn on_server_up(&mut self, view: &ClusterView<'_>, server: ServerId) {
        self.down.remove(&(server.0 as usize));
        self.contained(view.now, |s| s.on_server_up(view, server));
    }

    fn on_task_lost(&mut self, view: &ClusterView<'_>, task: TaskRef) {
        self.contained(view.now, |s| s.on_task_lost(view, task));
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        let now = view.now;
        let throttle = self.update_throttle(view);

        // Raw batch: fallback if quarantined, otherwise the inner policy
        // under panic isolation and the watchdog clock.
        let mut offended = false;
        let mut raw = if self.quarantined {
            self.stats.fallback_passes += 1;
            self.fallback.schedule(view)
        } else {
            let t0 = std::time::Instant::now();
            let batch = self.contained(now, |s| s.schedule(view));
            if t0.elapsed() > self.cfg.budget {
                self.stats.budget_overruns += 1;
                offended = true;
            }
            if self.quarantined {
                // The policy panicked mid-pass; serve the slot with the
                // fallback so the run keeps moving.
                self.stats.fallback_passes += 1;
                self.fallback.schedule(view)
            } else {
                batch
            }
        };

        // Saturation backpressure: under sustained overload clones are
        // pure overhead (Algorithm 2 only grants them leftovers), so
        // drop them before validation charges capacity for them.
        if throttle {
            let before = raw.len();
            raw.retain(|a| a.kind == CopyKind::Primary);
            self.stats.clones_throttled += (before - raw.len()) as u64;
        }

        // Replayed deferrals go first (they have been waiting), then the
        // fresh batch; one sequential validation pass over both, with
        // only the fresh tail eligible to count as offences.
        let mut combined: Vec<Assignment> = Vec::with_capacity(self.pending.len() + raw.len());
        let n_replayed = self.pending.len();
        combined.extend(self.pending.drain(..));
        combined.extend(raw);
        let (mut admitted, rejected_any) = self.validate(view, combined, n_replayed);
        if rejected_any {
            offended = true;
        }

        // Bounded per-pass cap: defer the excess, drop on queue
        // overflow.
        if let Some(cap) = self.cfg.max_batch {
            if admitted.len() > cap {
                let excess = admitted.split_off(cap);
                for a in excess {
                    if self.pending.len() < self.cfg.pending_cap {
                        self.pending.push_back(a);
                        self.stats.deferred += 1;
                    } else {
                        self.stats.deferrals_dropped += 1;
                    }
                }
            }
        }

        // Stall rescue: nothing admitted, nothing running anywhere, and
        // ready work exists — without intervention the engine would
        // abort the run as stalled. Only a *productive* rescue is an
        // offence (an all-down cluster legitimately idles).
        if admitted.is_empty()
            && !self.quarantined
            && view.jobs().any(|j| j.iter_ready().next().is_some())
            && view.jobs().all(|j| j.iter_running().next().is_none())
        {
            let rescue = self.fallback_pass(view);
            if !rescue.is_empty() {
                self.stats.stall_rescues += 1;
                offended = true;
                admitted = rescue;
            } else {
                self.stats.fallback_passes -= 1; // unproductive probe
            }
        }

        if offended && !self.quarantined {
            self.strike(now);
        }
        admitted
    }

    fn guard_stats(&self) -> Option<GuardStats> {
        Some(self.stats)
    }

    fn pass_span(&self) -> Option<crate::trace::PassSpan> {
        self.inner.pass_span()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, try_simulate, EngineConfig};
    use crate::execution::{DurationSampler, StragglerModel};
    use crate::spec::ClusterSpec;
    use dollymp_core::job::JobSpec;
    use dollymp_core::resources::Resources;

    fn cluster() -> ClusterSpec {
        ClusterSpec::homogeneous(4, 8.0, 16.0)
    }

    fn jobs(n: u64) -> Vec<JobSpec> {
        (0..n)
            .map(|i| JobSpec::single_phase(JobId(i), 6, Resources::new(2.0, 4.0), 12.0, 4.0))
            .collect()
    }

    fn sampler() -> DurationSampler {
        DurationSampler::new(11, StragglerModel::ParetoFit)
    }

    /// A policy that panics on its `k`-th scheduling pass.
    struct PanicAt {
        k: u32,
        calls: u32,
    }

    impl Scheduler for PanicAt {
        fn name(&self) -> String {
            "panic-at".into()
        }
        fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
            self.calls += 1;
            assert!(self.calls < self.k, "deliberate test panic");
            FifoFirstFit.schedule(view)
        }
    }

    /// A policy that always over-commits server 0.
    struct OverCommitter;

    impl Scheduler for OverCommitter {
        fn name(&self) -> String {
            "overcommitter".into()
        }
        fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
            // Legal batch, then repeat it verbatim: every repeat is a
            // duplicate primary and/or over-commitment.
            let mut b = FifoFirstFit.schedule(view);
            let extra: Vec<Assignment> = b.clone();
            b.extend(extra);
            b
        }
    }

    #[test]
    fn clean_policy_is_byte_identical_and_clean() {
        let c = cluster();
        let s = sampler();
        let cfg = EngineConfig::default();
        let unguarded = simulate(&c, jobs(4), &s, &mut FifoFirstFit, &cfg);
        let mut guard = GuardedScheduler::new(FifoFirstFit);
        let guarded = simulate(&c, jobs(4), &s, &mut guard, &cfg);
        assert!(guarded.guard.is_clean());
        assert_eq!(guard.stats().total_rejections(), 0);
        // Wall-clock fields differ run to run; everything else must not.
        let scrub = |mut r: crate::metrics::SimReport| {
            r.scheduling_ns = 0;
            r.sched_overhead = Default::default();
            r
        };
        assert_eq!(scrub(unguarded), scrub(guarded));
    }

    #[test]
    fn panic_is_contained_and_quarantines() {
        let c = cluster();
        let s = sampler();
        let cfg = EngineConfig::default();
        let mut guard = GuardedScheduler::new(PanicAt { k: 2, calls: 0 });
        let report = try_simulate(&c, jobs(4), &s, &mut guard, &cfg).expect("contained");
        assert_eq!(report.jobs.len(), 4, "every job completes");
        assert_eq!(report.guard.policy_panics, 1);
        assert!(report.guard.quarantined_at.is_some());
        assert!(report.guard.fallback_passes > 0);
        assert!(guard.is_quarantined());
    }

    #[test]
    fn invalid_assignments_are_dropped_not_fatal() {
        let c = cluster();
        let s = sampler();
        let cfg = EngineConfig::default();
        // 24 tasks on 16 slots of capacity force ≥2 placing passes, and
        // every placing pass of this policy offends: 2 strikes ⇒
        // quarantine is deterministic.
        let mut guard = GuardedScheduler::with_config(
            OverCommitter,
            GuardConfig {
                max_strikes: 2,
                ..GuardConfig::default()
            },
        );
        let report = try_simulate(&c, jobs(4), &s, &mut guard, &cfg).expect("contained");
        assert_eq!(report.jobs.len(), 4);
        assert!(report.guard.total_rejections() > 0);
        assert!(report.guard.quarantined_at.is_some());
    }

    #[test]
    fn watchdog_counts_overruns() {
        struct Slow;
        impl Scheduler for Slow {
            fn name(&self) -> String {
                "slow".into()
            }
            fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
                std::thread::sleep(Duration::from_millis(3));
                FifoFirstFit.schedule(view)
            }
        }
        let c = cluster();
        let s = sampler();
        let cfg = EngineConfig::default();
        let mut guard = GuardedScheduler::with_config(
            Slow,
            GuardConfig {
                budget: Duration::from_micros(100),
                // Keep the (valid) batches flowing: overruns strike, and
                // we want several recorded before quarantine.
                max_strikes: u32::MAX,
                ..GuardConfig::default()
            },
        );
        let report = try_simulate(&c, jobs(2), &s, &mut guard, &cfg).expect("contained");
        assert!(report.guard.budget_overruns > 0);
        assert!(report.guard.quarantined_at.is_none());
    }

    #[test]
    fn stall_rescue_completes_the_run() {
        struct Lazy;
        impl Scheduler for Lazy {
            fn name(&self) -> String {
                "lazy".into()
            }
            fn schedule(&mut self, _view: &ClusterView<'_>) -> Vec<Assignment> {
                Vec::new()
            }
        }
        let c = cluster();
        let s = sampler();
        let cfg = EngineConfig::default();
        let mut guard = GuardedScheduler::with_config(
            Lazy,
            GuardConfig {
                max_strikes: 1,
                ..GuardConfig::default()
            },
        );
        let report = try_simulate(&c, jobs(3), &s, &mut guard, &cfg).expect("rescued");
        assert_eq!(report.jobs.len(), 3);
        assert!(report.guard.stall_rescues > 0);
        assert!(
            report.guard.quarantined_at.is_some(),
            "chronic staller gets quarantined"
        );
    }

    #[test]
    fn clone_throttle_hysteresis_engages_and_releases() {
        // Drive update_throttle directly with synthetic views.
        let c = ClusterSpec::homogeneous(2, 10.0, 10.0);
        let jobs_map = std::collections::BTreeMap::new();
        let mut g = GuardedScheduler::with_config(FifoFirstFit, GuardConfig::overload());

        let full = crate::capacity::CapacityIndex::from_free(&[
            Resources::new(0.0, 0.0),
            Resources::new(0.5, 0.5),
        ]);
        let view = ClusterView::new(0, &c, &full, &jobs_map);
        assert!(g.update_throttle(&view), "≥95% used engages the throttle");

        // 90% used: inside the hysteresis band — still throttling.
        let band = crate::capacity::CapacityIndex::from_free(&[
            Resources::new(1.0, 1.0),
            Resources::new(1.0, 1.0),
        ]);
        let view = ClusterView::new(1, &c, &band, &jobs_map);
        assert!(g.update_throttle(&view), "hysteresis holds above low");

        // 50% used: below low — released.
        let idle = crate::capacity::CapacityIndex::from_free(&[
            Resources::new(5.0, 5.0),
            Resources::new(5.0, 5.0),
        ]);
        let view = ClusterView::new(2, &c, &idle, &jobs_map);
        assert!(!g.update_throttle(&view), "below low releases");
    }

    #[test]
    fn batch_cap_defers_and_replays() {
        let c = cluster();
        let s = sampler();
        let cfg = EngineConfig::default();
        let mut guard = GuardedScheduler::with_config(
            FifoFirstFit,
            GuardConfig {
                max_batch: Some(2),
                ..GuardConfig::default()
            },
        );
        let report = try_simulate(&c, jobs(4), &s, &mut guard, &cfg).expect("capped");
        assert_eq!(report.jobs.len(), 4, "deferral still completes the run");
        assert!(report.guard.deferred > 0, "the cap bit at least once");
        assert_eq!(report.guard.deferrals_dropped, 0);
    }
}
