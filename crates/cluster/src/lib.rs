//! # dollymp-cluster
//!
//! A time-slotted simulator of heterogeneous computing clusters with
//! stochastic stragglers and first-class task **clones** — the substrate
//! on which the DollyMP paper's experiments run (the 30-node YARN testbed
//! of §6.1–6.2 and the 30 000-server trace-driven simulator of §6.3 are
//! both instances of this engine; see DESIGN.md for the substitution
//! rationale).
//!
//! * [`spec`] — static cluster shapes (including the paper's 30-node
//!   cluster and Google-like fleets);
//! * [`execution`] — straggler models and *paired* duration sampling
//!   (identical task durations across schedulers for fair comparisons);
//! * [`capacity`] — the hierarchical free-capacity index (segment tree
//!   over per-server free resources) the engine maintains incrementally
//!   and every scheduler queries in O(log n);
//! * [`state`] — runtime job/phase/task/copy state;
//! * [`view`] — the read-only snapshot schedulers decide on;
//! * [`scheduler`] — the [`scheduler::Scheduler`] trait every policy
//!   implements, plus a FIFO/first-fit reference policy;
//! * [`engine`] — the simulation loop ([`engine::simulate`] and its
//!   fault-injected variant [`engine::simulate_with_faults`], plus the
//!   non-panicking [`engine::try_simulate`] /
//!   [`engine::try_simulate_with_faults`]);
//! * [`error`] — the typed admission/abort taxonomy
//!   ([`error::RejectReason`], [`error::SimError`]);
//! * [`guard`] — the [`guard::GuardedScheduler`] containment wrapper
//!   (validation, watchdog, panic isolation, safe fallback, overload
//!   backpressure);
//! * [`fault`] — timed fault events (crash / restore / fail-slow) and
//!   the sorted timeline the engine consumes;
//! * [`trace`] — the flight-recorder event schema ([`trace::Event`]) and
//!   the [`trace::Recorder`] sink trait the engine emits through
//!   ([`engine::simulate_recorded`]); consumers (journal, metrics
//!   registry, replay verifier) live in the `dollymp-obs` crate;
//! * [`metrics`] — per-job metrics, reports, CDF helpers.
//!
//! ## Quick start
//!
//! ```
//! use dollymp_cluster::prelude::*;
//! use dollymp_core::prelude::*;
//!
//! let cluster = ClusterSpec::homogeneous(4, 8.0, 16.0);
//! let jobs = vec![JobSpec::single_phase(JobId(0), 8, Resources::new(1.0, 2.0), 10.0, 3.0)];
//! let sampler = DurationSampler::new(42, StragglerModel::ParetoFit);
//! let mut policy = FifoFirstFit;
//! let report = simulate(&cluster, jobs, &sampler, &mut policy, &EngineConfig::default());
//! assert_eq!(report.jobs.len(), 1);
//! assert!(report.jobs[0].flowtime > 0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]
// Containment discipline: non-test library code must not take shortcut
// aborts — every deliberate fail-loud site carries a local `#[allow]`
// with a justification comment.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod capacity;
pub mod engine;
pub mod error;
pub mod execution;
pub mod fault;
pub mod guard;
pub mod metrics;
pub mod scheduler;
pub mod spec;
pub mod state;
pub mod trace;
pub mod view;

/// Commonly used simulator types.
pub mod prelude {
    pub use crate::capacity::{CapacityIndex, CapacityOverlay, LinearQueriesGuard};
    pub use crate::engine::{
        simulate, simulate_recorded, simulate_with_faults, try_simulate, try_simulate_with_faults,
        try_simulate_with_faults_recorded, EngineConfig,
    };
    pub use crate::error::{AdmissionError, ProgressSnapshot, RejectReason, SimError};
    pub use crate::execution::{DurationSampler, StragglerModel};
    pub use crate::fault::{FaultEvent, FaultTimeline, TimedFault};
    pub use crate::guard::{CloneThrottle, GuardConfig, GuardedScheduler};
    pub use crate::metrics::{
        cdf, cdf_at, jain_index, quantile, FaultStats, GuardStats, JobMetrics, SchedOverhead,
        SimReport,
    };
    pub use crate::scheduler::{clone_allowed, Assignment, FifoFirstFit, Scheduler};
    pub use crate::spec::{ClusterSpec, ServerId, ServerSpec};
    pub use crate::state::{CopyKind, CopyState, JobState, PhaseState, TaskState, TaskStatus};
    pub use crate::trace::{Event as TraceEvent, NullRecorder, PassSpan, Recorder};
    pub use crate::view::ClusterView;
}
