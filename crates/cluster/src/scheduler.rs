//! The scheduler interface and a reference FIFO/first-fit implementation.
//!
//! Every policy in `dollymp-schedulers` (DollyMP itself, Tetris, DRF,
//! Carbyne, the Capacity scheduler, …) implements [`Scheduler`] and is
//! driven by the same engine through the same [`ClusterView`] — keeping
//! cross-scheduler comparisons apples-to-apples (DESIGN.md §4.2).

use crate::spec::ServerId;
use crate::state::{CopyKind, TaskStatus};
use crate::view::ClusterView;
use dollymp_core::job::{JobId, TaskRef};
use serde::{Deserialize, Serialize};

/// One placement decision: launch a copy of `task` on `server`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// The task receiving a copy.
    pub task: TaskRef,
    /// Target server.
    pub server: ServerId,
    /// Primary launch or redundant clone.
    pub kind: CopyKind,
}

/// A cluster scheduling policy.
///
/// The engine calls [`Scheduler::schedule`] once per decision point (job
/// arrival or any task/copy completion — which, in the slotted model, is
/// always a slot boundary). The returned batch must be *self-consistent*:
/// the scheduler is responsible for not over-committing the free resources
/// it sees in the view, because the engine validates each assignment
/// against remaining capacity and panics on violations (scheduler bugs
/// should fail loudly, not silently skew experiments).
pub trait Scheduler {
    /// Human-readable policy name (used in reports).
    fn name(&self) -> String;

    /// Called when a job enters the cluster, before the scheduling pass of
    /// the same slot. DollyMP refreshes Algorithm 1 priorities here (§5).
    fn on_job_arrival(&mut self, _view: &ClusterView<'_>, _job: JobId) {}

    /// Called when a job fully completes, with its final runtime state
    /// (so estimation layers can archive observed statistics).
    fn on_job_finish(&mut self, _job: &crate::state::JobState) {}

    /// Called when a server crashes (fault injection), after its copies
    /// were evicted but before the slot's scheduling pass. The view
    /// already shows the server with zero free capacity.
    fn on_server_down(&mut self, _view: &ClusterView<'_>, _server: ServerId) {}

    /// Called when a crashed server is repaired and its capacity returns
    /// to the pool, before the slot's scheduling pass. Policies keeping
    /// incremental free-capacity summaries must account for capacity
    /// *growing* here (see `FreeTracker::release` in
    /// `dollymp-schedulers`).
    fn on_server_up(&mut self, _view: &ClusterView<'_>, _server: ServerId) {}

    /// Called when a task's *last* live copy was evicted by a crash: the
    /// task is back in `Ready` state and will be re-executed from
    /// scratch. Estimation or caching layers keyed on a job's remaining
    /// work must invalidate here — evicted progress is lost work the
    /// fingerprint cannot see.
    fn on_task_lost(&mut self, _view: &ClusterView<'_>, _task: TaskRef) {}

    /// Produce the placement batch for this decision point.
    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment>;

    /// Containment counters, for policies wrapped in
    /// [`crate::guard::GuardedScheduler`]. The engine stores the returned
    /// value on [`crate::metrics::SimReport::guard`] when the run drains.
    /// `None` (the default) means "not guarded" and records as all-zero
    /// stats, so unguarded and cleanly-guarded reports are identical.
    fn guard_stats(&self) -> Option<crate::metrics::GuardStats> {
        None
    }

    /// Stage breakdown (prepare vs placement, in nanoseconds) of the most
    /// recent [`Scheduler::schedule`] call, for the flight recorder's
    /// [`crate::trace::Event::SchedSpan`]. `None` (the default) means the
    /// policy does not instrument its pass; the engine then records the
    /// span without a stage breakdown.
    fn pass_span(&self) -> Option<crate::trace::PassSpan> {
        None
    }
}

impl Scheduler for Box<dyn Scheduler> {
    fn name(&self) -> String {
        self.as_ref().name()
    }

    fn on_job_arrival(&mut self, view: &ClusterView<'_>, job: JobId) {
        self.as_mut().on_job_arrival(view, job)
    }

    fn on_job_finish(&mut self, job: &crate::state::JobState) {
        self.as_mut().on_job_finish(job)
    }

    fn on_server_down(&mut self, view: &ClusterView<'_>, server: ServerId) {
        self.as_mut().on_server_down(view, server)
    }

    fn on_server_up(&mut self, view: &ClusterView<'_>, server: ServerId) {
        self.as_mut().on_server_up(view, server)
    }

    fn on_task_lost(&mut self, view: &ClusterView<'_>, task: TaskRef) {
        self.as_mut().on_task_lost(view, task)
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        self.as_mut().schedule(view)
    }

    fn guard_stats(&self) -> Option<crate::metrics::GuardStats> {
        self.as_ref().guard_stats()
    }

    fn pass_span(&self) -> Option<crate::trace::PassSpan> {
        self.as_ref().pass_span()
    }
}

/// Reference policy: FIFO job order, first-fit placement, no cloning.
///
/// Used by the engine's own tests and as the simplest baseline. Jobs are
/// visited in arrival order (ties by id), tasks in (phase, task) order,
/// and each task goes to the first server with room.
#[derive(Debug, Default, Clone)]
pub struct FifoFirstFit;

impl Scheduler for FifoFirstFit {
    fn name(&self) -> String {
        "fifo".into()
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        // Tentative commitments go on a capacity overlay (O(1) to start);
        // first_fit is the index's O(log n) leftmost-fitting-server query,
        // which visits exactly the servers a linear scan would accept.
        let free = view.capacity().begin_batch();
        let mut out = Vec::new();
        let mut jobs: Vec<_> = view.jobs().collect();
        jobs.sort_by_key(|j| (j.spec().arrival, j.id()));
        for job in jobs {
            for task in job.iter_ready() {
                let demand = job.spec().phase(task.phase).demand;
                if let Some(server) = free.first_fit(demand) {
                    let committed = free.try_commit(server, demand);
                    debug_assert!(committed, "first_fit returned a non-fitting server");
                    out.push(Assignment {
                        task,
                        server,
                        kind: CopyKind::Primary,
                    });
                }
            }
        }
        out
    }
}

/// Helper shared by schedulers: true when `task` may legally receive a
/// clone right now (running, short of the copy budget).
pub fn clone_allowed(view: &ClusterView<'_>, task: TaskRef, max_copies: u32) -> bool {
    view.job(task.job)
        .map(|j| {
            let t = j.task(task.phase, task.task);
            t.status == TaskStatus::Running && t.live_copies() < max_copies
        })
        .unwrap_or(false)
}
