//! Runtime state of jobs, phases, tasks and copies inside the simulator.
//!
//! The engine owns and mutates this state; schedulers observe it read-only
//! through [`crate::view::ClusterView`]. Task *copies* (a primary plus up
//! to two clones, §5) are first-class: each copy occupies resources on one
//! server from its start until it finishes or is killed when a sibling
//! finishes first.

use crate::spec::ServerId;
use dollymp_core::job::{JobId, JobSpec, PhaseId, TaskId, TaskRef};
use dollymp_core::resources::Resources;
use dollymp_core::stats::RunningStats;
use dollymp_core::time::Time;
use serde::{Deserialize, Serialize};

/// Whether a copy is the first launch of a task or an extra clone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CopyKind {
    /// The task's first copy.
    Primary,
    /// A redundant copy racing the primary (straggler mitigation).
    Clone,
}

/// One running (or finished/killed) copy of a task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CopyState {
    /// Copy index (0 = primary).
    pub copy_idx: u32,
    /// Where it runs.
    pub server: ServerId,
    /// When it started.
    pub start: Time,
    /// When it would finish if not killed (engine-internal; hidden from
    /// scheduler views, which only see elapsed time).
    pub(crate) finish: Time,
    /// Primary or clone.
    pub kind: CopyKind,
    /// Still occupying resources?
    pub(crate) live: bool,
}

impl CopyState {
    /// Elapsed running time at `now`.
    pub fn elapsed(&self, now: Time) -> Time {
        now.saturating_sub(self.start)
    }

    /// Is this copy still running?
    pub fn is_live(&self) -> bool {
        self.live
    }
}

/// Lifecycle of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskStatus {
    /// Waiting on parent phases (Eq. 7).
    Blocked,
    /// All parents finished; may be launched.
    Ready,
    /// At least one copy is running.
    Running,
    /// Finished (first copy to complete wins).
    Done,
}

/// Runtime state of one task.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskState {
    /// Current lifecycle stage.
    pub status: TaskStatus,
    /// All copies ever launched (live and dead).
    pub copies: Vec<CopyState>,
    /// Completion time, once done.
    pub finish: Option<Time>,
    /// Index of the copy that finished first (set when done).
    pub winner: Option<u32>,
}

impl TaskState {
    fn new(blocked: bool) -> Self {
        TaskState {
            status: if blocked {
                TaskStatus::Blocked
            } else {
                TaskStatus::Ready
            },
            copies: Vec::new(),
            finish: None,
            winner: None,
        }
    }

    /// Number of live copies.
    pub fn live_copies(&self) -> u32 {
        self.copies.iter().filter(|c| c.live).count() as u32
    }

    /// Total copies ever launched.
    pub fn launched_copies(&self) -> u32 {
        self.copies.len() as u32
    }
}

/// Runtime state of one phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseState {
    /// Tasks not yet finished.
    pub remaining: u32,
    /// Parents all complete → tasks may run.
    pub runnable: bool,
    /// Observed durations of completed copies (feeds speculation and the
    /// AM statistics estimator).
    pub observed: RunningStats,
}

/// Runtime state of one job inside the engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobState {
    spec: JobSpec,
    /// Pre-drawn per-phase duration tables (paired sampling).
    pub(crate) tables: Vec<Vec<f64>>,
    /// Per-phase runtime state.
    pub(crate) phases: Vec<PhaseState>,
    /// Per-phase, per-task runtime state.
    pub(crate) tasks: Vec<Vec<TaskState>>,
    /// First copy start across the whole job.
    pub(crate) first_start: Option<Time>,
    /// Job completion time.
    pub(crate) finish: Option<Time>,
    /// Accumulated normalized resource usage (Σ normalized demand ×
    /// occupied slots over every copy, clones and killed copies included)
    /// — the §6.3.1 usage metric.
    pub(crate) usage_norm: f64,
    /// Clone copies launched.
    pub(crate) clone_launches: u64,
}

impl JobState {
    /// Instantiate runtime state for a job. Called by the engine when a
    /// job is admitted; public so that control-plane layers (the YARN
    /// simulation) and tests can build job states directly.
    pub fn new(spec: JobSpec, tables: Vec<Vec<f64>>) -> Self {
        let phases: Vec<PhaseState> = spec
            .phases()
            .iter()
            .map(|p| PhaseState {
                remaining: p.ntasks,
                runnable: p.parents.is_empty(),
                observed: RunningStats::new(),
            })
            .collect();
        let tasks: Vec<Vec<TaskState>> = spec
            .phases()
            .iter()
            .map(|p| {
                (0..p.ntasks)
                    .map(|_| TaskState::new(!p.parents.is_empty()))
                    .collect()
            })
            .collect();
        JobState {
            spec,
            tables,
            phases,
            tasks,
            first_start: None,
            finish: None,
            usage_norm: 0.0,
            clone_launches: 0,
        }
    }

    /// The immutable job description.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// This job's id.
    pub fn id(&self) -> JobId {
        self.spec.id
    }

    /// Runtime state of one task.
    pub fn task(&self, phase: PhaseId, task: TaskId) -> &TaskState {
        &self.tasks[phase.0 as usize][task.0 as usize]
    }

    /// Runtime state of one phase.
    pub fn phase_state(&self, phase: PhaseId) -> &PhaseState {
        &self.phases[phase.0 as usize]
    }

    /// All tasks currently in [`TaskStatus::Ready`], in (phase, task)
    /// order — the schedulable frontier. Allocation-free variant of
    /// [`JobState::ready_tasks`] for hot scheduler loops.
    pub fn iter_ready(&self) -> impl Iterator<Item = TaskRef> + '_ {
        let id = self.spec.id;
        self.tasks.iter().enumerate().flat_map(move |(pi, tasks)| {
            let runnable = self.phases[pi].runnable;
            tasks
                .iter()
                .enumerate()
                .filter(move |(_, t)| runnable && t.status == TaskStatus::Ready)
                .map(move |(ti, _)| TaskRef {
                    job: id,
                    phase: PhaseId(pi as u32),
                    task: TaskId(ti as u32),
                })
        })
    }

    /// All tasks currently in [`TaskStatus::Ready`], in (phase, task)
    /// order — the schedulable frontier.
    pub fn ready_tasks(&self) -> Vec<TaskRef> {
        self.iter_ready().collect()
    }

    /// All tasks currently running, in (phase, task) order.
    /// Allocation-free variant of [`JobState::running_tasks`].
    pub fn iter_running(&self) -> impl Iterator<Item = TaskRef> + '_ {
        let id = self.spec.id;
        self.tasks.iter().enumerate().flat_map(move |(pi, tasks)| {
            tasks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == TaskStatus::Running)
                .map(move |(ti, _)| TaskRef {
                    job: id,
                    phase: PhaseId(pi as u32),
                    task: TaskId(ti as u32),
                })
        })
    }

    /// All tasks currently running (clone candidates), in (phase, task)
    /// order.
    pub fn running_tasks(&self) -> Vec<TaskRef> {
        self.iter_running().collect()
    }

    /// Unfinished task count per phase (`n_j^k(t)` of Eq. 16).
    pub fn remaining_tasks(&self) -> Vec<u32> {
        self.phases.iter().map(|p| p.remaining).collect()
    }

    /// Per-phase completion flags (for Eq. 17).
    pub fn finished_phases(&self) -> Vec<bool> {
        self.phases.iter().map(|p| p.remaining == 0).collect()
    }

    /// Remaining effective volume `v_j(t)` (Eq. 16). Computed directly
    /// from the per-phase remaining counts (same term order as
    /// `JobSpec::remaining_volume`, without materializing the counts).
    pub fn remaining_volume(&self, totals: Resources, sigma_weight: f64) -> f64 {
        self.spec
            .phases()
            .iter()
            .zip(self.phases.iter())
            .map(|(p, st)| {
                st.remaining as f64 * p.effective_time(sigma_weight) * p.dominant_share(totals)
            })
            .sum()
    }

    /// Remaining effective processing time `e_j(t)` (Eq. 17).
    pub fn remaining_etime(&self, sigma_weight: f64) -> f64 {
        self.spec
            .remaining_effective_time(&self.finished_phases(), sigma_weight)
    }

    /// Has every phase completed?
    pub fn is_done(&self) -> bool {
        self.phases.iter().all(|p| p.remaining == 0)
    }

    /// When the job finished, if it has.
    pub fn finish_time(&self) -> Option<Time> {
        self.finish
    }

    /// When the job's first copy started, if any has.
    pub fn first_start(&self) -> Option<Time> {
        self.first_start
    }

    /// Normalized resource usage accumulated so far.
    pub fn usage(&self) -> f64 {
        self.usage_norm
    }

    /// Clone copies launched so far.
    pub fn clone_launches(&self) -> u64 {
        self.clone_launches
    }

    /// Record a completed-copy duration observation for a phase. The
    /// engine calls this when a task's winning copy finishes; exposed for
    /// control-plane layers and tests that replay observations.
    pub fn push_observed(&mut self, phase: PhaseId, duration: f64) {
        self.phases[phase.0 as usize].observed.push(duration);
    }

    /// Completion records of every *finished* task: the server its
    /// winning copy ran on, the phase, the observed winner duration (in
    /// slots) and the phase's mean `θ`. These are past events, so exposing
    /// them to schedulers leaks no future information — they feed the
    /// server-reputation learner (the paper's §8 future work, implemented
    /// in `dollymp-schedulers::learned`).
    pub fn completion_records(&self) -> Vec<(ServerId, PhaseId, f64, f64)> {
        let mut out = Vec::new();
        for (pi, tasks) in self.tasks.iter().enumerate() {
            let theta = self.spec.phase(PhaseId(pi as u32)).theta;
            for t in tasks {
                let (Some(finish), Some(winner)) = (t.finish, t.winner) else {
                    continue;
                };
                if let Some(c) = t.copies.iter().find(|c| c.copy_idx == winner) {
                    out.push((
                        c.server,
                        PhaseId(pi as u32),
                        finish.saturating_sub(c.start) as f64,
                        theta,
                    ));
                }
            }
        }
        out
    }

    /// Number of tasks that ever received a clone copy. (Counted by copy
    /// kind, not launch count: a task re-executed after a crash eviction
    /// launches a second *primary*, which is not cloning.)
    pub fn tasks_cloned(&self) -> u64 {
        self.tasks
            .iter()
            .flatten()
            .filter(|t| t.copies.iter().any(|c| c.kind == CopyKind::Clone))
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dollymp_core::job::PhaseSpec;

    fn two_phase_job() -> JobState {
        let spec = JobSpec::chain(
            JobId(1),
            vec![
                PhaseSpec::new(2, Resources::new(1.0, 1.0), 10.0, 0.0),
                PhaseSpec::new(1, Resources::new(1.0, 1.0), 5.0, 0.0),
            ],
        )
        .unwrap();
        let tables = vec![vec![10.0, 10.0], vec![5.0]];
        JobState::new(spec, tables)
    }

    #[test]
    fn initial_frontier_is_root_phase_only() {
        let j = two_phase_job();
        let ready = j.ready_tasks();
        assert_eq!(ready.len(), 2);
        assert!(ready.iter().all(|t| t.phase == PhaseId(0)));
        assert_eq!(j.task(PhaseId(1), TaskId(0)).status, TaskStatus::Blocked);
        assert!(!j.is_done());
        assert_eq!(j.remaining_tasks(), vec![2, 1]);
    }

    #[test]
    fn remaining_metrics_delegate_to_spec() {
        let j = two_phase_job();
        let totals = Resources::new(10.0, 10.0);
        // v = 2·10·0.1 + 1·5·0.1 = 2.5 (w = 0)
        assert!((j.remaining_volume(totals, 0.0) - 2.5).abs() < 1e-12);
        assert!((j.remaining_etime(0.0) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn copy_counters() {
        let mut j = two_phase_job();
        let t = &mut j.tasks[0][0];
        t.copies.push(CopyState {
            copy_idx: 0,
            server: ServerId(0),
            start: 0,
            finish: 10,
            kind: CopyKind::Primary,
            live: true,
        });
        t.copies.push(CopyState {
            copy_idx: 1,
            server: ServerId(1),
            start: 2,
            finish: 8,
            kind: CopyKind::Clone,
            live: true,
        });
        t.status = TaskStatus::Running;
        assert_eq!(j.task(PhaseId(0), TaskId(0)).live_copies(), 2);
        assert_eq!(j.tasks_cloned(), 1);
        assert_eq!(j.running_tasks().len(), 1);
        assert_eq!(j.task(PhaseId(0), TaskId(0)).copies[1].elapsed(5), 3);
    }
}
