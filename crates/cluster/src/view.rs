//! The read-only cluster snapshot handed to schedulers.
//!
//! At every decision point the engine exposes a [`ClusterView`]: per-server
//! free resources, the active jobs with their full runtime state, and the
//! clock. Schedulers never see a copy's *future* finish time — only its
//! start and elapsed time — so speculation policies must infer progress
//! the way a real cluster manager would.
//!
//! Free capacity is not a snapshot `Vec` — the view borrows the engine's
//! incrementally-maintained [`CapacityIndex`] and always reads its *base*
//! values. Schedulers that need to tentatively commit resources while
//! building a batch call [`ClusterView::capacity`] and layer a
//! [`crate::capacity::CapacityOverlay`] on top (O(1) to start, no
//! per-decision-point clone of the cluster).

use crate::capacity::CapacityIndex;
use crate::spec::{ClusterSpec, ServerId, ServerSpec};
use crate::state::JobState;
use dollymp_core::job::JobId;
use dollymp_core::resources::Resources;
use dollymp_core::time::Time;
use std::collections::BTreeMap;

/// Immutable snapshot of the simulated cluster at one decision point.
pub struct ClusterView<'a> {
    /// Current slot.
    pub now: Time,
    pub(crate) spec: &'a ClusterSpec,
    pub(crate) cap: &'a CapacityIndex,
    pub(crate) jobs: &'a BTreeMap<JobId, JobState>,
}

impl<'a> ClusterView<'a> {
    /// Assemble a view from its parts. The engine builds views
    /// internally; this constructor exists for benchmarks and control-
    /// plane tests that drive a [`crate::scheduler::Scheduler`] directly
    /// (build the index once with [`CapacityIndex::from_free`]).
    ///
    /// # Panics
    /// Panics when `cap` does not have one entry per server.
    pub fn new(
        now: Time,
        spec: &'a ClusterSpec,
        cap: &'a CapacityIndex,
        jobs: &'a BTreeMap<JobId, JobState>,
    ) -> Self {
        assert_eq!(cap.len(), spec.len(), "one free entry per server");
        ClusterView {
            now,
            spec,
            cap,
            jobs,
        }
    }

    /// The static cluster description.
    pub fn cluster(&self) -> &'a ClusterSpec {
        self.spec
    }

    /// The free-capacity index backing this view. Read-only here; call
    /// [`CapacityIndex::begin_batch`] to stack tentative commitments.
    pub fn capacity(&self) -> &'a CapacityIndex {
        self.cap
    }

    /// Total cluster capacity `(Σ C_i, Σ M_i)`.
    pub fn totals(&self) -> Resources {
        self.spec.totals()
    }

    /// Free resources on one server right now.
    pub fn free(&self, server: ServerId) -> Resources {
        self.cap.free(server)
    }

    /// Total free resources across the cluster (O(1) — the index keeps a
    /// running sum).
    pub fn total_free(&self) -> Resources {
        self.cap.total_free()
    }

    /// Iterate `(ServerId, &ServerSpec, free)` over all servers.
    pub fn servers(&self) -> impl Iterator<Item = (ServerId, &'a ServerSpec, Resources)> + '_ {
        self.spec
            .iter()
            .map(move |(id, s)| (id, s, self.cap.free(id)))
    }

    /// Active (arrived, unfinished) jobs in ascending [`JobId`] order.
    pub fn jobs(&self) -> impl Iterator<Item = &'a JobState> + '_ {
        self.jobs.values()
    }

    /// Number of active jobs.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Look up one active job.
    pub fn job(&self, id: JobId) -> Option<&'a JobState> {
        self.jobs.get(&id)
    }

    /// Sum of remaining effective volume over active jobs *excluding*
    /// `except` — the "other jobs' demand" of the §4.1 small-job cloning
    /// gate.
    pub fn other_remaining_volume(&self, except: JobId, sigma_weight: f64) -> f64 {
        let totals = self.totals();
        self.jobs
            .values()
            .filter(|j| j.id() != except)
            .map(|j| j.remaining_volume(totals, sigma_weight))
            .sum()
    }
}
