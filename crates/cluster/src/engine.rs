//! The time-slotted simulation engine (§3's model, §6.3's simulator).
//!
//! The engine advances an integer slot clock, but *event-accelerated*: all
//! arrivals and durations are integer slots, so every state change lands
//! on a slot boundary and the engine jumps directly to the next one with
//! work to do. At each decision point it
//!
//! 1. retires every copy finishing at that slot (the first copy of a task
//!    to finish wins; all sibling copies are killed and their resources
//!    freed, per the kill-on-first-finish rule of §5.2),
//! 2. unlocks phases whose parents completed (Eq. 7),
//! 3. admits arriving jobs (notifying the scheduler),
//! 4. invokes [`Scheduler::schedule`] once and applies the returned batch.
//!
//! Assignment validation is strict: an over-committing or ill-typed
//! assignment aborts the run, because a buggy scheduler must fail loudly
//! rather than silently skew an experiment. Two fail-loud flavours exist:
//! [`simulate`] / [`simulate_with_faults`] panic (the historical research
//! contract), while [`try_simulate`] / [`try_simulate_with_faults`]
//! return a typed [`SimError`] so a sweep harness can contain one bad
//! run without dying. To *tolerate* a misbehaving policy instead of
//! aborting on it, wrap it in [`crate::guard::GuardedScheduler`].

use crate::capacity::CapacityIndex;
use crate::error::{AdmissionError, ProgressSnapshot, RejectReason, SimError};
use crate::execution::DurationSampler;
use crate::fault::{FaultEvent, FaultTimeline};
use crate::metrics::{CopyOutcome, CopySpan, FaultStats, JobMetrics, SchedOverhead, SimReport};
use crate::scheduler::{Assignment, Scheduler};
use crate::spec::{ClusterSpec, ServerId};
use crate::state::{CopyKind, CopyState, JobState, TaskStatus};
use crate::trace::{Event as TraceEvent, NullRecorder, Recorder};
use crate::view::ClusterView;
use dollymp_core::job::{JobId, JobSpec, PhaseId, TaskId, TaskRef};
use dollymp_core::resources::Resources;
use dollymp_core::time::Time;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Engine tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Hard mechanism cap on concurrent copies per task (original +
    /// clones). The engine default (8) is deliberately loose: the
    /// *policy* budget — the paper's 3-copy limit of §5, or the DollyMP³
    /// ablation's 4 — belongs to the scheduler; this cap only catches
    /// runaway cloning bugs.
    pub max_copies_per_task: u32,
    /// Safety valve: panic if the clock passes this slot (a scheduler
    /// livelock would otherwise spin forever).
    pub max_slots: Time,
    /// Extra periodic decision points every `tick` slots while jobs are
    /// active (§6.3: "at the beginning of each interval, DollyMP shall
    /// check the amount of available resources"). `None` (the default)
    /// schedules only on arrivals/completions — sufficient for policies
    /// without progress monitoring and much faster; speculative execution
    /// needs a tick to observe stragglers mid-flight.
    pub tick: Option<Time>,
    /// Remote-read penalty for data locality: a copy of a *root-phase*
    /// task (one that reads its input block from the distributed file
    /// system) placed on neither of the block's two replica servers (see
    /// [`crate::execution::block_replicas`]) has its duration multiplied
    /// by this factor. `1.0` (the default) disables locality modelling;
    /// the paper's YARN layer places clones on replicas to avoid exactly
    /// this cost.
    pub remote_penalty: f64,
    /// Record cluster utilization `(slot, cpu fraction, memory fraction)`
    /// after every decision point into [`SimReport::utilization`].
    /// Off by default — the series can be large on long runs.
    pub record_utilization: bool,
    /// Record every copy's lifetime into [`SimReport::timeline`]
    /// (exportable as a Chrome trace). Off by default.
    pub record_timeline: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_copies_per_task: 8,
            max_slots: 500_000_000,
            tick: None,
            remote_penalty: 1.0,
            record_utilization: false,
            record_timeline: false,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    finish: Time,
    seq: u64,
    task: TaskRef,
    copy_idx: u32,
}

/// Run one simulation to completion and return the report.
///
/// Jobs are admitted at their `arrival` slots; the run ends when every job
/// has completed. Durations come from `sampler` (scheduler-independent —
/// see [`crate::execution`]) scaled by server speed at placement.
///
/// # Panics
/// * if any phase demand fits no server in the cluster (the job could
///   never run);
/// * on invalid assignments (unknown job/task, over-commitment, cloning a
///   non-running task, exceeding the copy cap);
/// * if the scheduler stalls (active jobs, no running copies, no future
///   arrivals, and an empty scheduling batch);
/// * if the clock exceeds `cfg.max_slots`.
pub fn simulate(
    cluster: &ClusterSpec,
    jobs: Vec<JobSpec>,
    sampler: &DurationSampler,
    scheduler: &mut dyn Scheduler,
    cfg: &EngineConfig,
) -> SimReport {
    simulate_with_faults(
        cluster,
        jobs,
        sampler,
        scheduler,
        cfg,
        &FaultTimeline::empty(),
    )
}

/// Non-panicking [`simulate`]: every abort path comes back as a typed
/// [`SimError`] instead of a panic, so one bad policy or workload cannot
/// kill a whole sweep. The happy path is byte-identical to [`simulate`].
pub fn try_simulate(
    cluster: &ClusterSpec,
    jobs: Vec<JobSpec>,
    sampler: &DurationSampler,
    scheduler: &mut dyn Scheduler,
    cfg: &EngineConfig,
) -> Result<SimReport, SimError> {
    try_simulate_with_faults(
        cluster,
        jobs,
        sampler,
        scheduler,
        cfg,
        &FaultTimeline::empty(),
    )
}

/// Deferred scheduler callback for a fault applied this slot: mutations
/// happen first, then every hook runs against one consistent view.
enum FaultHook {
    Down(ServerId),
    Up(ServerId),
    Lost(TaskRef),
}

/// [`simulate`] under a fault schedule (see [`crate::fault`]).
///
/// Fault events fire at their slot *after* completions of that slot are
/// retired and *before* arrivals and the scheduling pass, so a task
/// re-queued by a crash is schedulable in the same slot its copies died.
/// With an empty timeline this is byte-identical to [`simulate`].
///
/// Additional panics over [`simulate`]:
/// * an assignment targeting a downed server;
/// * a `Restore` for a server that is not down (generator bug).
pub fn simulate_with_faults(
    cluster: &ClusterSpec,
    jobs: Vec<JobSpec>,
    sampler: &DurationSampler,
    scheduler: &mut dyn Scheduler,
    cfg: &EngineConfig,
    faults: &FaultTimeline,
) -> SimReport {
    match try_simulate_with_faults(cluster, jobs, sampler, scheduler, cfg, faults) {
        Ok(report) => report,
        // Fail-loud contract: the panic message is the typed error's
        // Display form (it preserves the historical phrasing).
        Err(e) => panic!("{e}"),
    }
}

/// Snapshot of the engine's progress state for stall/overrun errors.
fn progress_snapshot(active: &BTreeMap<JobId, JobState>, last_progress: Time) -> ProgressSnapshot {
    ProgressSnapshot {
        active_jobs: active
            .keys()
            .copied()
            .take(ProgressSnapshot::MAX_LISTED)
            .collect(),
        total_active: active.len(),
        pending_tasks: active.values().map(|j| j.iter_ready().count()).sum(),
        last_progress,
    }
}

/// Non-panicking [`simulate_with_faults`]: returns `Err` where the
/// panicking entry points abort, byte-identical reports otherwise.
pub fn try_simulate_with_faults(
    cluster: &ClusterSpec,
    jobs: Vec<JobSpec>,
    sampler: &DurationSampler,
    scheduler: &mut dyn Scheduler,
    cfg: &EngineConfig,
    faults: &FaultTimeline,
) -> Result<SimReport, SimError> {
    try_simulate_with_faults_recorded(
        cluster,
        jobs,
        sampler,
        scheduler,
        cfg,
        faults,
        &mut NullRecorder,
    )
}

/// [`simulate_with_faults`] with a flight recorder attached: every
/// observable state transition is emitted as a [`TraceEvent`] (see
/// [`crate::trace`]). With a [`NullRecorder`] this is byte-identical to
/// the unrecorded entry points — the recorder's `enabled()` flag is read
/// once and every emission site is skipped.
///
/// # Panics
/// Exactly where [`simulate_with_faults`] panics.
pub fn simulate_recorded(
    cluster: &ClusterSpec,
    jobs: Vec<JobSpec>,
    sampler: &DurationSampler,
    scheduler: &mut dyn Scheduler,
    cfg: &EngineConfig,
    faults: &FaultTimeline,
    recorder: &mut dyn Recorder,
) -> SimReport {
    match try_simulate_with_faults_recorded(
        cluster, jobs, sampler, scheduler, cfg, faults, recorder,
    ) {
        Ok(report) => report,
        // Fail-loud contract: identical to `simulate_with_faults`.
        Err(e) => panic!("{e}"),
    }
}

/// Non-panicking [`simulate_recorded`]: the recorded counterpart of
/// [`try_simulate_with_faults`]. Events are emitted in deterministic
/// engine order; on an `Err` return the journal simply stops at the
/// abort point (replay is only defined for completed runs).
#[allow(clippy::too_many_arguments)]
pub fn try_simulate_with_faults_recorded(
    cluster: &ClusterSpec,
    jobs: Vec<JobSpec>,
    sampler: &DurationSampler,
    scheduler: &mut dyn Scheduler,
    cfg: &EngineConfig,
    faults: &FaultTimeline,
    recorder: &mut dyn Recorder,
) -> Result<SimReport, SimError> {
    // Read once: the journal is either fully on or fully off for a run,
    // and a disabled recorder must cost nothing on the hot path (no
    // event construction, one dead branch per emission site).
    let recording = recorder.enabled();
    for j in &jobs {
        for (pi, p) in j.phases().iter().enumerate() {
            if !cluster
                .servers()
                .iter()
                .any(|s| p.demand.fits_in(s.capacity))
            {
                return Err(SimError::Unsatisfiable {
                    job: j.id,
                    phase: pi as u32,
                    demand: p.demand,
                });
            }
        }
    }

    let totals = cluster.totals();
    let mut arrivals: Vec<JobSpec> = jobs;
    // Pop from the back ⇒ ascending (arrival, id).
    arrivals.sort_by_key(|j| std::cmp::Reverse((j.arrival, j.id)));

    let mut active: BTreeMap<JobId, JobState> = BTreeMap::new();
    // Hierarchical free-capacity index, incrementally maintained across
    // launch/retire/fault events — never re-snapshotted per decision point.
    let mut free = CapacityIndex::from_capacities(cluster);
    let mut events: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut done: Vec<JobMetrics> = Vec::new();
    let mut decision_points = 0u64;
    let mut scheduling_ns = 0u64;
    // One entry per decision point: schedule() plus the on-arrival
    // refreshes that preceded it in the same slot (§6.3.3 overhead).
    let mut overhead_samples: Vec<u64> = Vec::new();
    let mut utilization: Vec<(Time, f64, f64)> = Vec::new();
    let mut timeline: Vec<CopySpan> = Vec::new();
    let mut now: Time = 0;
    // Last slot at which anything observable happened (admission, launch
    // or retirement) — surfaced in stall/overrun errors for debugging.
    let mut last_progress: Time = 0;
    // Fault machinery. `down` is a *count* so overlapping crash windows
    // (rack blackout + individual crash) compose; a server is up iff 0.
    let mut down: Vec<u32> = vec![0; cluster.len()];
    let mut speed_factor: Vec<f64> = vec![1.0; cluster.len()];
    let mut fault_idx = 0usize;
    let mut fstats = FaultStats::default();
    // Guard counters as of the previous pass, for per-pass journal deltas.
    let mut prev_guard = crate::metrics::GuardStats::default();
    // Scratch buffers reused across decision points so the steady-state
    // loop allocates nothing.
    let mut finished_jobs: Vec<JobId> = Vec::new();
    let mut hooks: Vec<FaultHook> = Vec::new();
    let mut children_scratch: Vec<PhaseId> = Vec::new();

    while !arrivals.is_empty() || !active.is_empty() {
        // Drop stale events (killed copies) from the heap front.
        while let Some(Reverse(ev)) = events.peek() {
            if copy_is_live(&active, ev) {
                break;
            }
            events.pop();
        }
        let next_event = events.peek().map(|Reverse(e)| e.finish);
        let next_arrival = arrivals.last().map(|j| j.arrival);
        let next_fault = faults.events().get(fault_idx).map(|f| f.at);
        // A periodic tick only matters while copies are in flight (it
        // exists to let progress monitors observe running stragglers).
        let next_tick = match (cfg.tick, next_event) {
            (Some(k), Some(_)) if !active.is_empty() => Some(now + k.max(1)),
            _ => None,
        };
        let t = match [next_event, next_arrival, next_tick, next_fault]
            .into_iter()
            .flatten()
            .min()
        {
            Some(t) => t,
            None => {
                return Err(SimError::Stalled {
                    scheduler: scheduler.name(),
                    at: now,
                    progress: progress_snapshot(&active, last_progress),
                })
            }
        };
        now = now.max(t);
        if now > cfg.max_slots {
            return Err(SimError::ClockOverrun {
                scheduler: scheduler.name(),
                max_slots: cfg.max_slots,
                at: now,
                progress: progress_snapshot(&active, last_progress),
            });
        }
        if recording {
            recorder.record(TraceEvent::SlotTick { at: now });
        }

        // 1) Retire copies finishing now (and any stale events en route).
        finished_jobs.clear();
        while let Some(Reverse(ev)) = events.peek() {
            if ev.finish > now {
                break;
            }
            #[allow(clippy::expect_used)] // loop condition peeked it
            let ev = events.pop().expect("peeked").0;
            if !copy_is_live(&active, &ev) {
                continue;
            }
            retire_copy(
                &mut active,
                &mut free,
                totals,
                now,
                &ev,
                &mut finished_jobs,
                &mut children_scratch,
                cfg.record_timeline.then_some(&mut timeline),
                recording,
                recorder,
            );
            last_progress = now;
        }
        for id in finished_jobs.drain(..) {
            #[allow(clippy::expect_used)] // retire_copy listed it from `active`
            let job = active.remove(&id).expect("finished job present");
            let metrics = job_metrics(&job, now);
            if recording {
                recorder.record(TraceEvent::JobCompletion {
                    at: now,
                    metrics: metrics.clone(),
                });
            }
            done.push(metrics);
            scheduler.on_job_finish(&job);
        }

        // 1b) Apply fault events due now — after completions (a copy
        // finishing exactly at the crash slot completed first), before
        // arrivals and scheduling (re-queued tasks compete this slot).
        hooks.clear();
        while faults.events().get(fault_idx).is_some_and(|f| f.at <= now) {
            let f = faults.events()[fault_idx];
            fault_idx += 1;
            apply_fault(
                f.event,
                now,
                cluster,
                totals,
                &mut active,
                &mut free,
                &mut down,
                &mut speed_factor,
                &mut events,
                &mut seq,
                &mut fstats,
                cfg.record_timeline.then_some(&mut timeline),
                &mut hooks,
                recording,
                recorder,
            )?;
        }
        if !hooks.is_empty() {
            let view = ClusterView {
                now,
                spec: cluster,
                cap: &free,
                jobs: &active,
            };
            for h in &hooks {
                match *h {
                    FaultHook::Down(s) => scheduler.on_server_down(&view, s),
                    FaultHook::Up(s) => scheduler.on_server_up(&view, s),
                    FaultHook::Lost(t) => scheduler.on_task_lost(&view, t),
                }
            }
        }

        // 2) Admit arrivals.
        let mut arrival_ns = 0u64;
        while arrivals.last().is_some_and(|j| j.arrival <= now) {
            #[allow(clippy::expect_used)] // loop condition peeked it
            let spec = arrivals.pop().expect("peeked");
            let id = spec.id;
            if active.contains_key(&id) {
                return Err(SimError::DuplicateJob { job: id });
            }
            last_progress = now;
            let tables: Vec<Vec<f64>> = spec
                .phases()
                .iter()
                .enumerate()
                .map(|(pi, p)| sampler.phase_table(id, PhaseId(pi as u32), p))
                .collect();
            active.insert(id, JobState::new(spec, tables));
            if recording {
                recorder.record(TraceEvent::JobArrival { at: now, job: id });
            }
            let view = ClusterView {
                now,
                spec: cluster,
                cap: &free,
                jobs: &active,
            };
            let t0 = std::time::Instant::now();
            scheduler.on_job_arrival(&view, id);
            arrival_ns += t0.elapsed().as_nanos() as u64;
        }

        // 3) One scheduling pass.
        if !active.is_empty() {
            let view = ClusterView {
                now,
                spec: cluster,
                cap: &free,
                jobs: &active,
            };
            let t0 = std::time::Instant::now();
            let batch = scheduler.schedule(&view);
            let schedule_ns = t0.elapsed().as_nanos() as u64;
            scheduling_ns += schedule_ns;
            overhead_samples.push(arrival_ns + schedule_ns);
            decision_points += 1;
            if recording {
                // The span precedes the batch's CopyLaunch events, so a
                // journal reader sees "decided, then placed".
                recorder.record(TraceEvent::SchedSpan {
                    at: now,
                    decision_point: decision_points,
                    arrival_ns,
                    schedule_ns,
                    batch: batch.len() as u64,
                    detail: scheduler.pass_span(),
                });
                if let Some(gs) = scheduler.guard_stats() {
                    let delta = gs.diff(&prev_guard);
                    if delta != crate::metrics::GuardStats::default() {
                        recorder.record(TraceEvent::GuardDelta { at: now, delta });
                    }
                    prev_guard = gs;
                }
            }

            // Pending fault events are future decision points too: a
            // fully-crashed cluster legitimately idles until a Restore.
            let stalled_risk =
                events.is_empty() && arrivals.is_empty() && fault_idx >= faults.len();
            if stalled_risk && batch.is_empty() {
                return Err(SimError::Stalled {
                    scheduler: scheduler.name(),
                    at: now,
                    progress: progress_snapshot(&active, last_progress),
                });
            }
            for a in batch {
                check_assignment(cluster, cfg, now, &active, &free, &down, &a)?;
                apply_assignment(
                    cluster,
                    sampler,
                    cfg,
                    now,
                    &mut active,
                    &mut free,
                    &speed_factor,
                    &mut events,
                    &mut seq,
                    a,
                    recording,
                    recorder,
                );
                last_progress = now;
            }
        }
        if cfg.record_utilization {
            // O(1): the index keeps the total-free running sum up to date
            // across launch/retire/fault events (exact integer milli-unit
            // arithmetic, so it equals a full re-summation bit-for-bit).
            let total_free = free.total_free();
            debug_assert_eq!(
                total_free,
                free.fold_total_free(),
                "incremental total-free counter drifted from the re-summed value"
            );
            let used = totals - total_free;
            let cpu = if totals.cpu() > 0.0 {
                used.cpu() / totals.cpu()
            } else {
                0.0
            };
            let mem = if totals.mem() > 0.0 {
                used.mem() / totals.mem()
            } else {
                0.0
            };
            utilization.push((now, cpu, mem));
            if recording {
                recorder.record(TraceEvent::UtilSample { at: now, cpu, mem });
            }
        }
    }

    debug_assert!(
        cluster.servers().iter().enumerate().all(|(i, s)| {
            let f = free.free(ServerId(i as u32));
            if down[i] > 0 {
                f == Resources::ZERO
            } else {
                f == s.capacity
            }
        }),
        "resource leak: free != capacity after drain"
    );

    let makespan = done.iter().map(|j| j.finish).max().unwrap_or(0);
    Ok(SimReport {
        scheduler: scheduler.name(),
        jobs: done,
        makespan,
        decision_points,
        scheduling_ns,
        sched_overhead: SchedOverhead::from_samples(&overhead_samples),
        utilization,
        timeline,
        faults: fstats,
        guard: scheduler.guard_stats().unwrap_or_default(),
    })
}

fn copy_is_live(active: &BTreeMap<JobId, JobState>, ev: &Event) -> bool {
    active
        .get(&ev.task.job)
        .map(|j| {
            j.task(ev.task.phase, ev.task.task)
                .copies
                .iter()
                // The finish check drops events obsoleted by a fail-slow
                // stretch (the copy re-queued a later event); without
                // faults a copy's finish never changes, so it is inert.
                .any(|c| c.copy_idx == ev.copy_idx && c.live && c.finish == ev.finish)
        })
        .unwrap_or(false)
}

/// Apply one fault event: mutate cluster/job state and queue the
/// scheduler hooks to run once every event of the slot has landed.
///
/// A malformed timeline (unknown server, restore of a server that is
/// not down) yields [`SimError::InvalidTimeline`] instead of mutating
/// anything.
#[allow(clippy::too_many_arguments)]
fn apply_fault(
    event: FaultEvent,
    now: Time,
    cluster: &ClusterSpec,
    totals: Resources,
    active: &mut BTreeMap<JobId, JobState>,
    free: &mut CapacityIndex,
    down: &mut [u32],
    speed_factor: &mut [f64],
    events: &mut BinaryHeap<Reverse<Event>>,
    seq: &mut u64,
    stats: &mut FaultStats,
    mut timeline: Option<&mut Vec<CopySpan>>,
    hooks: &mut Vec<FaultHook>,
    recording: bool,
    recorder: &mut dyn Recorder,
) -> Result<(), SimError> {
    let server = event.server();
    let sid = server.0 as usize;
    if sid >= cluster.len() {
        return Err(SimError::InvalidTimeline {
            at: now,
            detail: format!("fault event for unknown server {sid}"),
        });
    }
    match event {
        FaultEvent::Crash(_) => {
            down[sid] += 1;
            if down[sid] > 1 {
                // Already offline (overlapping blackout window): counted,
                // nothing left to evict.
                return Ok(());
            }
            stats.server_crashes += 1;
            if recording {
                recorder.record(TraceEvent::ServerCrash { at: now, server });
            }
            free.set_free(server, Resources::ZERO);
            hooks.push(FaultHook::Down(server));
            for (&jid, job) in active.iter_mut() {
                for pi in 0..job.tasks.len() {
                    let demand_norm = job
                        .spec()
                        .phase(PhaseId(pi as u32))
                        .demand
                        .normalized_sum(totals);
                    for ti in 0..job.tasks[pi].len() {
                        let tref = TaskRef {
                            job: jid,
                            phase: PhaseId(pi as u32),
                            task: TaskId(ti as u32),
                        };
                        let task = &mut job.tasks[pi][ti];
                        if task.status != TaskStatus::Running {
                            continue;
                        }
                        let mut evicted = false;
                        for c in task
                            .copies
                            .iter_mut()
                            .filter(|c| c.live && c.server == server)
                        {
                            c.live = false;
                            evicted = true;
                            let wasted = demand_norm * now.saturating_sub(c.start) as f64;
                            job.usage_norm += wasted;
                            stats.copies_evicted += 1;
                            stats.work_lost_norm += wasted;
                            if recording {
                                recorder.record(TraceEvent::CopyEvict {
                                    at: now,
                                    task: tref,
                                    copy_idx: c.copy_idx,
                                    server: c.server,
                                    kind: c.kind,
                                    start: c.start,
                                    work_lost_norm: wasted,
                                });
                            }
                            if let Some(tl) = timeline.as_deref_mut() {
                                tl.push(CopySpan {
                                    task: tref,
                                    copy_idx: c.copy_idx,
                                    server: c.server,
                                    kind: c.kind,
                                    start: c.start,
                                    end: now,
                                    outcome: CopyOutcome::Evicted,
                                });
                            }
                        }
                        if !evicted {
                            continue;
                        }
                        if task.copies.iter().any(|c| c.live) {
                            // A live clone elsewhere carries the task —
                            // cloning as fault tolerance (§5.2's mechanism
                            // repurposed).
                            stats.tasks_saved_by_clone += 1;
                            if recording {
                                recorder.record(TraceEvent::TaskSaved {
                                    at: now,
                                    task: tref,
                                });
                            }
                        } else {
                            // Work-conserving re-queue: all progress lost,
                            // the task re-enters the ready pool.
                            task.status = TaskStatus::Ready;
                            stats.tasks_requeued += 1;
                            if recording {
                                recorder.record(TraceEvent::TaskLost {
                                    at: now,
                                    task: tref,
                                });
                            }
                            hooks.push(FaultHook::Lost(tref));
                        }
                    }
                }
            }
        }
        FaultEvent::Restore(_) => {
            if down[sid] == 0 {
                return Err(SimError::InvalidTimeline {
                    at: now,
                    detail: format!("restore at slot {now} for server {sid} that is not down"),
                });
            }
            down[sid] -= 1;
            if down[sid] == 0 {
                free.set_free(server, cluster.server(server).capacity);
                stats.server_recoveries += 1;
                if recording {
                    recorder.record(TraceEvent::ServerRestore { at: now, server });
                }
                hooks.push(FaultHook::Up(server));
            }
        }
        FaultEvent::Degrade(_, factor) => {
            speed_factor[sid] *= factor;
            stats.server_degradations += 1;
            if recording {
                recorder.record(TraceEvent::ServerDegrade {
                    at: now,
                    server,
                    factor,
                });
            }
            // Stretch in-flight copies: the remaining slots inflate by the
            // factor; the superseded heap event goes stale via the finish
            // check in `copy_is_live`.
            for (&jid, job) in active.iter_mut() {
                for pi in 0..job.tasks.len() {
                    for ti in 0..job.tasks[pi].len() {
                        let tref = TaskRef {
                            job: jid,
                            phase: PhaseId(pi as u32),
                            task: TaskId(ti as u32),
                        };
                        let task = &mut job.tasks[pi][ti];
                        for c in task
                            .copies
                            .iter_mut()
                            .filter(|c| c.live && c.server == server)
                        {
                            let remaining = c.finish.saturating_sub(now).max(1);
                            c.finish = now + ((remaining as f64 / factor).ceil() as Time).max(1);
                            *seq += 1;
                            events.push(Reverse(Event {
                                finish: c.finish,
                                seq: *seq,
                                task: tref,
                                copy_idx: c.copy_idx,
                            }));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Retire the copy named by `ev` as the task's winner; kill siblings,
/// update phase/job bookkeeping, and record fully finished jobs.
#[allow(clippy::too_many_arguments)]
fn retire_copy(
    active: &mut BTreeMap<JobId, JobState>,
    free: &mut CapacityIndex,
    totals: Resources,
    now: Time,
    ev: &Event,
    finished_jobs: &mut Vec<JobId>,
    children_scratch: &mut Vec<PhaseId>,
    mut timeline: Option<&mut Vec<CopySpan>>,
    recording: bool,
    recorder: &mut dyn Recorder,
) {
    #[allow(clippy::expect_used)] // copy_is_live gated the event on this
    let job = active
        .get_mut(&ev.task.job)
        .expect("live copy ⇒ job active");
    let demand = job.spec().phase(ev.task.phase).demand;
    let demand_norm = demand.normalized_sum(totals);
    let pi = ev.task.phase.0 as usize;
    let ti = ev.task.task.0 as usize;

    let task = &mut job.tasks[pi][ti];
    debug_assert_eq!(task.status, TaskStatus::Running);
    let mut winner_start = now;
    // End every live copy: the winner completes, the rest are killed.
    for c in task.copies.iter_mut().filter(|c| c.live) {
        c.live = false;
        free.add_free(c.server, demand);
        job.usage_norm += demand_norm * now.saturating_sub(c.start) as f64;
        if c.copy_idx == ev.copy_idx {
            winner_start = c.start;
        }
        if recording {
            recorder.record(TraceEvent::CopyRetire {
                at: now,
                task: ev.task,
                copy_idx: c.copy_idx,
                server: c.server,
                kind: c.kind,
                start: c.start,
                outcome: if c.copy_idx == ev.copy_idx {
                    CopyOutcome::Won
                } else {
                    CopyOutcome::Killed
                },
            });
        }
        if let Some(tl) = timeline.as_deref_mut() {
            tl.push(CopySpan {
                task: ev.task,
                copy_idx: c.copy_idx,
                server: c.server,
                kind: c.kind,
                start: c.start,
                end: now,
                outcome: if c.copy_idx == ev.copy_idx {
                    CopyOutcome::Won
                } else {
                    CopyOutcome::Killed
                },
            });
        }
    }
    task.status = TaskStatus::Done;
    task.finish = Some(now);
    task.winner = Some(ev.copy_idx);
    job.phases[pi]
        .observed
        .push(now.saturating_sub(winner_start) as f64);

    debug_assert!(job.phases[pi].remaining > 0);
    job.phases[pi].remaining -= 1;
    if job.phases[pi].remaining == 0 {
        // Unlock children whose parents are now all complete (Eq. 7).
        // Copied into a reused scratch buffer to release the spec borrow.
        children_scratch.clear();
        children_scratch.extend_from_slice(job.spec().children(ev.task.phase));
        for &child in children_scratch.iter() {
            let ready = job
                .spec()
                .phase(child)
                .parents
                .iter()
                .all(|p| job.phases[p.0 as usize].remaining == 0);
            if ready && !job.phases[child.0 as usize].runnable {
                job.phases[child.0 as usize].runnable = true;
                for t in &mut job.tasks[child.0 as usize] {
                    debug_assert_eq!(t.status, TaskStatus::Blocked);
                    t.status = TaskStatus::Ready;
                }
            }
        }
        if job.is_done() {
            job.finish = Some(now);
            finished_jobs.push(job.id());
        }
    }
}

/// Validate one assignment against current engine state *before* any
/// mutation, classifying each failure mode on the [`RejectReason`]
/// taxonomy. [`crate::guard::GuardedScheduler`] performs the same checks
/// (against its batch-local view) so that guarded batches always pass
/// here.
fn check_assignment(
    cluster: &ClusterSpec,
    cfg: &EngineConfig,
    now: Time,
    active: &BTreeMap<JobId, JobState>,
    free: &CapacityIndex,
    down: &[u32],
    a: &Assignment,
) -> Result<(), AdmissionError> {
    let reject = |reason: RejectReason, detail: String| {
        Err(AdmissionError {
            at: now,
            assignment: *a,
            reason,
            detail,
        })
    };
    let Some(job) = active.get(&a.task.job) else {
        return reject(
            RejectReason::UnknownJob,
            format!("assignment for unknown job {}", a.task.job.0),
        );
    };
    let pi = a.task.phase.0 as usize;
    let ti = a.task.task.0 as usize;
    if pi >= job.spec().num_phases() || ti >= job.spec().phase(a.task.phase).ntasks as usize {
        return reject(
            RejectReason::UnknownJob,
            format!("assignment for out-of-range task {}", a.task),
        );
    }
    if !job.phases[pi].runnable {
        return reject(
            RejectReason::UnknownJob,
            format!("assignment for blocked phase of task {}", a.task),
        );
    }

    let task = &job.tasks[pi][ti];
    match a.kind {
        // A re-queued task (crash evicted its last copy) carries dead
        // copies from the lost attempt, so Ready + no *live* copy is the
        // invariant, not an empty copy list.
        CopyKind::Primary => {
            if task.status != TaskStatus::Ready || task.copies.iter().any(|c| c.live) {
                return reject(
                    RejectReason::DuplicateCopy,
                    format!(
                        "primary copy for task {} in state {:?}",
                        a.task, task.status
                    ),
                );
            }
        }
        CopyKind::Clone => {
            if task.status != TaskStatus::Running {
                return reject(
                    RejectReason::DuplicateCopy,
                    format!("clone for non-running task {}", a.task),
                );
            }
            if task.live_copies() >= cfg.max_copies_per_task {
                return reject(
                    RejectReason::DuplicateCopy,
                    format!(
                        "task {} exceeds the {}-copy cap",
                        a.task, cfg.max_copies_per_task
                    ),
                );
            }
        }
    }

    let sid = a.server.0 as usize;
    if sid >= cluster.len() {
        return reject(
            RejectReason::ServerDown,
            format!("assignment to unknown server {sid}"),
        );
    }
    if down[sid] > 0 {
        return reject(
            RejectReason::ServerDown,
            format!("assignment to downed server {sid} (task {})", a.task),
        );
    }
    let demand = job.spec().phase(a.task.phase).demand;
    let avail = free.free(a.server);
    if !demand.fits_in(avail) {
        return reject(
            RejectReason::OverCommit,
            format!(
                "over-commitment on server {sid}: demand {demand} > free {avail} (task {})",
                a.task
            ),
        );
    }
    Ok(())
}

/// Launch the (pre-validated) copy: charge capacity, sample a duration,
/// and queue the finish event. Infallible — callers run
/// [`check_assignment`] first.
#[allow(clippy::too_many_arguments)]
fn apply_assignment(
    cluster: &ClusterSpec,
    sampler: &DurationSampler,
    cfg: &EngineConfig,
    now: Time,
    active: &mut BTreeMap<JobId, JobState>,
    free: &mut CapacityIndex,
    speed_factor: &[f64],
    events: &mut BinaryHeap<Reverse<Event>>,
    seq: &mut u64,
    a: Assignment,
    recording: bool,
    recorder: &mut dyn Recorder,
) {
    #[allow(clippy::expect_used)] // check_assignment verified the job exists
    let job = active
        .get_mut(&a.task.job)
        .expect("checked: assignment for known job");
    let spec_phase = job.spec().phase(a.task.phase).clone();
    let pi = a.task.phase.0 as usize;
    let ti = a.task.task.0 as usize;
    let task = &mut job.tasks[pi][ti];

    let sid = a.server.0 as usize;
    free.sub_free(a.server, spec_phase.demand);

    let copy_idx = task.launched_copies();
    let mut base = sampler.copy_duration(
        a.task.job,
        a.task.phase,
        a.task.task,
        copy_idx,
        &spec_phase,
        &job.tables[pi],
    );
    // Data locality: root-phase tasks read their input block remotely
    // when placed off-replica.
    if cfg.remote_penalty > 1.0 && spec_phase.parents.is_empty() {
        let replicas = crate::execution::block_replicas(a.task, cluster.len());
        if !replicas.contains(&a.server) {
            base *= cfg.remote_penalty;
        }
    }
    // Fail-slow degradation compounds with the server's nominal speed.
    let speed = cluster.server(a.server).speed * speed_factor[sid];
    let dur = ((base / speed).ceil() as Time).max(1);
    let finish = now + dur;

    task.copies.push(CopyState {
        copy_idx,
        server: a.server,
        start: now,
        finish,
        kind: a.kind,
        live: true,
    });
    task.status = TaskStatus::Running;
    if a.kind == CopyKind::Clone {
        job.clone_launches += 1;
    }
    job.first_start.get_or_insert(now);

    *seq += 1;
    events.push(Reverse(Event {
        finish,
        seq: *seq,
        task: a.task,
        copy_idx,
    }));
    if recording {
        recorder.record(TraceEvent::CopyLaunch {
            at: now,
            task: a.task,
            copy_idx,
            server: a.server,
            kind: a.kind,
            finish,
        });
    }
}

fn job_metrics(job: &JobState, now: Time) -> JobMetrics {
    let finish = job.finish.unwrap_or(now);
    let first_start = job.first_start.unwrap_or(job.spec().arrival);
    JobMetrics {
        id: job.id(),
        label: job.spec().label.clone(),
        arrival: job.spec().arrival,
        first_start,
        finish,
        flowtime: finish - job.spec().arrival,
        running_time: finish - first_start,
        tasks: job.spec().total_tasks(),
        clone_copies: job.clone_launches,
        tasks_cloned: job.tasks_cloned(),
        usage: job.usage_norm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::StragglerModel;
    use crate::scheduler::FifoFirstFit;
    use crate::spec::{ServerId, ServerSpec};
    use dollymp_core::job::PhaseSpec;

    fn det_sampler() -> DurationSampler {
        DurationSampler::new(1, StragglerModel::Deterministic)
    }

    fn one_server(cpu: f64, mem: f64) -> ClusterSpec {
        ClusterSpec::new(vec![ServerSpec::new(cpu, mem)])
    }

    #[test]
    fn single_task_job_runs_to_completion() {
        let cluster = one_server(4.0, 8.0);
        let job = JobSpec::single_phase(JobId(0), 1, Resources::new(2.0, 2.0), 7.0, 0.0);
        let mut s = FifoFirstFit;
        let r = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        assert_eq!(r.jobs.len(), 1);
        assert_eq!(r.jobs[0].flowtime, 7);
        assert_eq!(r.jobs[0].running_time, 7);
        assert_eq!(r.makespan, 7);
        assert_eq!(r.jobs[0].clone_copies, 0);
        // usage = (2/4 + 2/8) × 7 = 5.25
        assert!((r.jobs[0].usage - 5.25).abs() < 1e-9);
    }

    #[test]
    fn parallel_tasks_share_the_server() {
        let cluster = one_server(4.0, 8.0);
        // Two tasks of 2 cores each fit simultaneously.
        let job = JobSpec::single_phase(JobId(0), 2, Resources::new(2.0, 2.0), 5.0, 0.0);
        let mut s = FifoFirstFit;
        let r = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        assert_eq!(r.jobs[0].flowtime, 5, "tasks must run in parallel");
    }

    #[test]
    fn serial_when_capacity_binds() {
        let cluster = one_server(2.0, 8.0);
        let job = JobSpec::single_phase(JobId(0), 2, Resources::new(2.0, 2.0), 5.0, 0.0);
        let mut s = FifoFirstFit;
        let r = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        assert_eq!(r.jobs[0].flowtime, 10, "tasks must serialize");
    }

    #[test]
    fn phase_dependency_is_honored() {
        let cluster = one_server(8.0, 8.0);
        let job = JobSpec::chain(
            JobId(0),
            vec![
                PhaseSpec::new(2, Resources::new(1.0, 1.0), 4.0, 0.0),
                PhaseSpec::new(1, Resources::new(1.0, 1.0), 3.0, 0.0),
            ],
        )
        .unwrap();
        let mut s = FifoFirstFit;
        let r = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        assert_eq!(r.jobs[0].flowtime, 7, "map (4) then reduce (3)");
    }

    #[test]
    fn arrivals_are_respected() {
        let cluster = one_server(1.0, 1.0);
        let j0 = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 5.0, 0.0);
        let mut j1 = JobSpec::single_phase(JobId(1), 1, Resources::new(1.0, 1.0), 5.0, 0.0);
        j1 = JobSpec::builder(JobId(1))
            .arrival(100)
            .phase(j1.phases()[0].clone())
            .build()
            .unwrap();
        let mut s = FifoFirstFit;
        let r = simulate(
            &cluster,
            vec![j0, j1],
            &det_sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        let by_id = r.by_id();
        assert_eq!(by_id[&JobId(0)].finish, 5);
        assert_eq!(by_id[&JobId(1)].finish, 105);
        assert_eq!(by_id[&JobId(1)].flowtime, 5, "no queueing after idle gap");
    }

    #[test]
    fn server_speed_scales_duration() {
        let cluster = ClusterSpec::new(vec![ServerSpec::new(1.0, 1.0).with_speed(2.0)]);
        let job = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 10.0, 0.0);
        let mut s = FifoFirstFit;
        let r = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        assert_eq!(r.jobs[0].flowtime, 5, "2× speed halves the duration");
    }

    /// A test policy: primary on server 0, then one clone on server 1.
    struct PrimaryPlusClone;
    impl Scheduler for PrimaryPlusClone {
        fn name(&self) -> String {
            "primary-plus-clone".into()
        }
        fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
            let mut out = Vec::new();
            for job in view.jobs() {
                for task in job.ready_tasks() {
                    out.push(Assignment {
                        task,
                        server: ServerId(0),
                        kind: CopyKind::Primary,
                    });
                }
                for task in job.running_tasks() {
                    let t = job.task(task.phase, task.task);
                    if t.live_copies() == 1 && t.launched_copies() == 1 {
                        out.push(Assignment {
                            task,
                            server: ServerId(1),
                            kind: CopyKind::Clone,
                        });
                    }
                }
            }
            out
        }
    }

    #[test]
    fn clone_on_faster_server_wins_and_kills_primary() {
        // Server 0 is slow (0.5×), server 1 fast (2×). θ = 10 ⇒ primary
        // takes 20 slots, clone takes 5. Clone launched one decision point
        // after the primary — same slot 0 here (clone opportunity appears
        // only at the next decision point, which is the primary's...).
        let cluster = ClusterSpec::new(vec![
            ServerSpec::new(1.0, 1.0).with_speed(0.5),
            ServerSpec::new(1.0, 1.0).with_speed(2.0),
        ]);
        let job = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 10.0, 0.0);
        let mut s = PrimaryPlusClone;
        let r = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        let m = &r.jobs[0];
        // Primary starts at 0 (would finish at 20). The clone can only be
        // launched at the next decision point — the primary's finish at 20
        // — unless the engine reschedules earlier. With a single job there
        // is no earlier event, so the job completes at 20 with one copy...
        // unless the clone went out in the same batch, which
        // PrimaryPlusClone cannot do (the task is not yet Running in its
        // view). This documents the decision-point contract.
        assert_eq!(m.flowtime, 20);
        assert_eq!(m.clone_copies, 0);
    }

    /// Like PrimaryPlusClone but issues primary and clone in one batch by
    /// tracking its own pending placements.
    struct AtomicCloner;
    impl Scheduler for AtomicCloner {
        fn name(&self) -> String {
            "atomic-cloner".into()
        }
        fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
            let mut out = Vec::new();
            for job in view.jobs() {
                for task in job.ready_tasks() {
                    out.push(Assignment {
                        task,
                        server: ServerId(0),
                        kind: CopyKind::Primary,
                    });
                    out.push(Assignment {
                        task,
                        server: ServerId(1),
                        kind: CopyKind::Clone,
                    });
                }
            }
            out
        }
    }

    #[test]
    fn same_batch_clone_races_the_primary() {
        let cluster = ClusterSpec::new(vec![
            ServerSpec::new(1.0, 1.0).with_speed(0.5),
            ServerSpec::new(1.0, 1.0).with_speed(2.0),
        ]);
        let job = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 10.0, 0.0);
        let mut s = AtomicCloner;
        let r = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        let m = &r.jobs[0];
        assert_eq!(m.flowtime, 5, "fast clone wins");
        assert_eq!(m.clone_copies, 1);
        assert_eq!(m.tasks_cloned, 1);
        // Usage: both copies occupy 1 core+1 GB for 5 slots; totals are
        // (2, 2) so each copy's normalized rate is 1.0 ⇒ usage = 10.
        assert!((m.usage - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "over-commitment")]
    fn overcommitting_scheduler_panics() {
        struct Greedy;
        impl Scheduler for Greedy {
            fn name(&self) -> String {
                "greedy".into()
            }
            fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
                // Assign both tasks to server 0 ignoring capacity.
                view.jobs()
                    .flat_map(|j| j.ready_tasks())
                    .map(|task| Assignment {
                        task,
                        server: ServerId(0),
                        kind: CopyKind::Primary,
                    })
                    .collect()
            }
        }
        let cluster = one_server(1.0, 1.0);
        let job = JobSpec::single_phase(JobId(0), 2, Resources::new(1.0, 1.0), 5.0, 0.0);
        let _ = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut Greedy,
            &EngineConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "stalled")]
    fn lazy_scheduler_panics() {
        struct Lazy;
        impl Scheduler for Lazy {
            fn name(&self) -> String {
                "lazy".into()
            }
            fn schedule(&mut self, _view: &ClusterView<'_>) -> Vec<Assignment> {
                Vec::new()
            }
        }
        let cluster = one_server(1.0, 1.0);
        let job = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 5.0, 0.0);
        let _ = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut Lazy,
            &EngineConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "fits no server")]
    fn oversized_job_rejected_up_front() {
        let cluster = one_server(1.0, 1.0);
        let job = JobSpec::single_phase(JobId(0), 1, Resources::new(2.0, 1.0), 5.0, 0.0);
        let _ = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut FifoFirstFit,
            &EngineConfig::default(),
        );
    }

    #[test]
    fn timeline_records_winners_and_kills() {
        use crate::metrics::{timeline_to_chrome_trace, CopyOutcome};
        let cluster = ClusterSpec::new(vec![
            ServerSpec::new(1.0, 1.0).with_speed(0.5),
            ServerSpec::new(1.0, 1.0).with_speed(2.0),
        ]);
        let job = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 10.0, 0.0);
        let cfg = EngineConfig {
            record_timeline: true,
            ..Default::default()
        };
        let mut s = AtomicCloner;
        let r = simulate(&cluster, vec![job], &det_sampler(), &mut s, &cfg);
        assert_eq!(r.timeline.len(), 2, "primary + clone both recorded");
        let winner = r
            .timeline
            .iter()
            .find(|c| c.outcome == CopyOutcome::Won)
            .expect("a winner exists");
        let killed = r
            .timeline
            .iter()
            .find(|c| c.outcome == CopyOutcome::Killed)
            .expect("the loser was killed");
        assert_eq!(winner.server, ServerId(1), "fast clone wins");
        assert_eq!(winner.end, 5);
        assert_eq!(killed.end, 5, "killed at the winner's finish");
        assert_eq!(killed.start, 0);

        // The Chrome trace export is well-formed JSON with both events.
        let json = timeline_to_chrome_trace(&r.timeline, 5.0);
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(parsed.as_array().unwrap().len(), 2);
        assert!(json.contains("clone/won"));
        assert!(json.contains("primary/killed"));
    }

    #[test]
    fn timeline_off_by_default() {
        let cluster = one_server(2.0, 2.0);
        let job = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 3.0, 0.0);
        let r = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut FifoFirstFit,
            &EngineConfig::default(),
        );
        assert!(r.timeline.is_empty());
        assert!(r.utilization.is_empty());
    }

    #[test]
    fn utilization_series_tracks_busy_cluster() {
        let cluster = one_server(2.0, 4.0);
        let job = JobSpec::single_phase(JobId(0), 2, Resources::new(1.0, 2.0), 4.0, 0.0);
        let cfg = EngineConfig {
            record_utilization: true,
            ..Default::default()
        };
        let r = simulate(&cluster, vec![job], &det_sampler(), &mut FifoFirstFit, &cfg);
        // After the first decision point both tasks run: 100 % CPU + mem.
        assert!(!r.utilization.is_empty());
        let (_, cpu, mem) = r.utilization[0];
        assert!((cpu - 1.0).abs() < 1e-9);
        assert!((mem - 1.0).abs() < 1e-9);
    }

    /// The incremental used-capacity counters behind the O(1) utilization
    /// probe must agree with an *independent* re-summation, bit for bit:
    /// every recorded sample is re-derived from the copy timeline (the
    /// demands of all copies live at the sample slot) and compared with
    /// `==` on the raw `f64`s — integer milli-unit arithmetic on both
    /// sides, so there is no tolerance to hide drift behind.
    #[test]
    fn utilization_samples_match_timeline_resum_exactly() {
        let cluster = ClusterSpec::paper_30_node();
        let mut jobs = Vec::new();
        for i in 0..12u64 {
            jobs.push(
                JobSpec::builder(JobId(i))
                    .arrival(i * 2)
                    .phase(PhaseSpec::new(
                        3 + (i % 4) as u32,
                        Resources::new(1.0 + (i % 3) as f64, 2.0 + (i % 2) as f64),
                        6.0 + (i % 5) as f64,
                        3.0,
                    ))
                    .build()
                    .expect("valid spec"),
            );
        }
        let specs: Vec<JobSpec> = jobs.clone();
        let cfg = EngineConfig {
            record_utilization: true,
            record_timeline: true,
            ..Default::default()
        };
        let sampler = DurationSampler::new(5, StragglerModel::ParetoFit);
        let r = simulate(&cluster, jobs, &sampler, &mut FifoFirstFit, &cfg);
        assert!(r.utilization.len() >= 12, "one sample per decision point");
        let totals = cluster.totals();
        for &(slot, cpu, mem) in &r.utilization {
            // A copy occupies its server over [start, end): launches of
            // this decision point are sampled, completions retired just
            // before the sample are not.
            let used: Resources = r
                .timeline
                .iter()
                .filter(|c| c.start <= slot && slot < c.end)
                .map(|c| specs[c.task.job.0 as usize].phase(c.task.phase).demand)
                .sum();
            assert_eq!(cpu, used.cpu() / totals.cpu(), "cpu sample at slot {slot}");
            assert_eq!(mem, used.mem() / totals.mem(), "mem sample at slot {slot}");
        }
    }

    #[test]
    fn remote_penalty_inflates_off_replica_root_tasks() {
        use crate::execution::block_replicas;
        use dollymp_core::job::TaskRef;
        let cluster = ClusterSpec::homogeneous(4, 1.0, 1.0);
        let task = TaskRef {
            job: JobId(0),
            phase: PhaseId(0),
            task: dollymp_core::job::TaskId(0),
        };
        let replicas = block_replicas(task, 4);
        // FifoFirstFit places on server 0; pick a job id whose replicas
        // exclude server 0 so the penalty must apply. Search a job id
        // deterministically.
        let mut off_replica_job = None;
        for id in 0..64u64 {
            let t = TaskRef {
                job: JobId(id),
                ..task
            };
            if !block_replicas(t, 4).contains(&ServerId(0)) {
                off_replica_job = Some(id);
                break;
            }
        }
        let id = off_replica_job.expect("some job hashes off server 0");
        let job = JobSpec::single_phase(JobId(id), 1, Resources::new(1.0, 1.0), 10.0, 0.0);
        let cfg_local = EngineConfig::default();
        let cfg_penalty = EngineConfig {
            remote_penalty: 2.0,
            ..Default::default()
        };
        let r_local = simulate(
            &cluster,
            vec![job.clone()],
            &det_sampler(),
            &mut FifoFirstFit,
            &cfg_local,
        );
        let r_remote = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut FifoFirstFit,
            &cfg_penalty,
        );
        assert_eq!(r_local.jobs[0].flowtime, 10);
        assert_eq!(r_remote.jobs[0].flowtime, 20, "2× remote-read penalty");
        // Sanity: replicas are two distinct servers.
        assert_ne!(replicas[0], replicas[1]);
    }

    #[test]
    fn remote_penalty_skips_non_root_phases() {
        // The reduce phase reads shuffled data, not a DFS block: no
        // penalty even off-replica.
        let cluster = ClusterSpec::homogeneous(1, 1.0, 1.0);
        let job = JobSpec::chain(
            JobId(3),
            vec![
                PhaseSpec::new(1, Resources::new(1.0, 1.0), 4.0, 0.0),
                PhaseSpec::new(1, Resources::new(1.0, 1.0), 6.0, 0.0),
            ],
        )
        .unwrap();
        let cfg = EngineConfig {
            remote_penalty: 3.0,
            ..Default::default()
        };
        let r = simulate(&cluster, vec![job], &det_sampler(), &mut FifoFirstFit, &cfg);
        // Map may or may not be on-replica (single server IS the replica
        // set here — with 1 server, both replicas are server 0), so no
        // penalty anywhere: 4 + 6.
        assert_eq!(r.jobs[0].flowtime, 10);
    }

    #[test]
    fn report_counts_decision_points() {
        let cluster = one_server(1.0, 1.0);
        let jobs: Vec<JobSpec> = (0..3)
            .map(|i| JobSpec::single_phase(JobId(i), 1, Resources::new(1.0, 1.0), 2.0, 0.0))
            .collect();
        let mut s = FifoFirstFit;
        let r = simulate(
            &cluster,
            jobs,
            &det_sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        assert_eq!(r.jobs.len(), 3);
        assert!(r.decision_points >= 3);
        assert_eq!(r.makespan, 6, "three serial 2-slot jobs");
        // One overhead sample per decision point, covering at least the
        // schedule() time itself.
        let o = r.sched_overhead;
        assert_eq!(o.decision_points, r.decision_points);
        assert!(o.total_ns >= r.scheduling_ns);
        assert!(o.mean_ns <= o.p99_ns && o.p99_ns <= o.max_ns);
        assert!(o.max_ns <= o.total_ns);
    }

    mod faults {
        use super::*;
        use crate::fault::{FaultEvent, FaultTimeline, TimedFault};

        fn crash(at: Time, s: u32) -> TimedFault {
            TimedFault {
                at,
                event: FaultEvent::Crash(ServerId(s)),
            }
        }
        fn restore(at: Time, s: u32) -> TimedFault {
            TimedFault {
                at,
                event: FaultEvent::Restore(ServerId(s)),
            }
        }

        #[test]
        fn empty_timeline_matches_plain_simulate() {
            let cluster = ClusterSpec::paper_30_node();
            let jobs: Vec<JobSpec> = (0..6)
                .map(|i| JobSpec::single_phase(JobId(i), 20, Resources::new(2.0, 4.0), 12.0, 4.0))
                .collect();
            let sampler = DurationSampler::new(7, StragglerModel::ParetoFit);
            let cfg = EngineConfig::default();
            let a = simulate(&cluster, jobs.clone(), &sampler, &mut FifoFirstFit, &cfg);
            let b = simulate_with_faults(
                &cluster,
                jobs,
                &sampler,
                &mut FifoFirstFit,
                &cfg,
                &FaultTimeline::empty(),
            );
            assert_eq!(a.jobs, b.jobs);
            assert_eq!(a.makespan, b.makespan);
            assert_eq!(a.decision_points, b.decision_points);
            assert_eq!(b.faults, crate::metrics::FaultStats::default());
        }

        #[test]
        fn crash_evicts_and_requeues_lone_task() {
            // Two 1×1 servers; FifoFirstFit starts the task on server 0.
            // Server 0 crashes at slot 4: the only copy dies, the task is
            // re-queued and restarts on server 1 the same slot.
            let cluster = ClusterSpec::homogeneous(2, 1.0, 1.0);
            let job = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 10.0, 0.0);
            let tl = FaultTimeline::new(vec![crash(4, 0), restore(6, 0)]);
            let cfg = EngineConfig {
                record_timeline: true,
                ..Default::default()
            };
            let r = simulate_with_faults(
                &cluster,
                vec![job],
                &det_sampler(),
                &mut FifoFirstFit,
                &cfg,
                &tl,
            );
            assert_eq!(r.jobs[0].flowtime, 14, "4 lost + full 10-slot rerun");
            assert_eq!(r.faults.server_crashes, 1);
            assert_eq!(r.faults.server_recoveries, 1);
            assert_eq!(r.faults.copies_evicted, 1);
            assert_eq!(r.faults.tasks_requeued, 1);
            assert_eq!(r.faults.tasks_saved_by_clone, 0);
            // Lost work: demand (1,1) on totals (2,2) ⇒ rate 1.0, 4 slots.
            assert!((r.faults.work_lost_norm - 4.0).abs() < 1e-9);
            // Re-execution is a fresh primary, not a clone.
            assert_eq!(r.jobs[0].clone_copies, 0);
            assert_eq!(r.jobs[0].tasks_cloned, 0);
            let evicted: Vec<_> = r
                .timeline
                .iter()
                .filter(|c| c.outcome == CopyOutcome::Evicted)
                .collect();
            assert_eq!(evicted.len(), 1);
            assert_eq!(evicted[0].server, ServerId(0));
            assert_eq!(evicted[0].end, 4);
            let winner = r
                .timeline
                .iter()
                .find(|c| c.outcome == CopyOutcome::Won)
                .expect("rerun wins");
            assert_eq!(winner.server, ServerId(1));
            assert_eq!(winner.copy_idx, 1, "second launch of the task");
        }

        #[test]
        fn live_clone_saves_task_from_crash() {
            // AtomicCloner races a clone on server 1; server 0 crashes
            // mid-flight, but the clone carries the task to completion on
            // schedule — no re-execution.
            let cluster = ClusterSpec::homogeneous(2, 1.0, 1.0);
            let job = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 10.0, 0.0);
            let tl = FaultTimeline::new(vec![crash(2, 0)]);
            let r = simulate_with_faults(
                &cluster,
                vec![job],
                &det_sampler(),
                &mut AtomicCloner,
                &EngineConfig::default(),
                &tl,
            );
            assert_eq!(r.jobs[0].flowtime, 10, "clone finishes on time");
            assert_eq!(r.faults.copies_evicted, 1);
            assert_eq!(r.faults.tasks_saved_by_clone, 1);
            assert_eq!(r.faults.tasks_requeued, 0);
            assert_eq!(r.jobs[0].tasks_cloned, 1);
        }

        #[test]
        fn degrade_stretches_inflight_and_future_copies() {
            let cluster = ClusterSpec::homogeneous(1, 1.0, 1.0);
            let j0 = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 10.0, 0.0);
            let j1 = JobSpec::builder(JobId(1))
                .arrival(20)
                .phase(dollymp_core::job::PhaseSpec::new(
                    1,
                    Resources::new(1.0, 1.0),
                    10.0,
                    0.0,
                ))
                .build()
                .unwrap();
            let tl = FaultTimeline::new(vec![TimedFault {
                at: 5,
                event: FaultEvent::Degrade(ServerId(0), 0.5),
            }]);
            let r = simulate_with_faults(
                &cluster,
                vec![j0, j1],
                &det_sampler(),
                &mut FifoFirstFit,
                &EngineConfig::default(),
                &tl,
            );
            let by_id = r.by_id();
            // 5 slots done, 5 remaining stretched 2× ⇒ finish at 15.
            assert_eq!(by_id[&JobId(0)].finish, 15);
            // Placed after the onset: full 2× stretch, 20 slots.
            assert_eq!(by_id[&JobId(1)].flowtime, 20);
            assert_eq!(r.faults.server_degradations, 1);
            assert_eq!(r.faults.copies_evicted, 0);
        }

        #[test]
        fn overlapping_crash_windows_need_both_restores() {
            // Blackout [2, 5) overlaps an individual crash [3, 8): the
            // server is up only at 8 (down-count reaches zero).
            let cluster = ClusterSpec::homogeneous(1, 1.0, 1.0);
            let job = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 3.0, 0.0);
            let tl =
                FaultTimeline::new(vec![crash(2, 0), crash(3, 0), restore(5, 0), restore(8, 0)]);
            let r = simulate_with_faults(
                &cluster,
                vec![job],
                &det_sampler(),
                &mut FifoFirstFit,
                &EngineConfig::default(),
                &tl,
            );
            assert_eq!(r.jobs[0].finish, 11, "rerun starts at the second restore");
            assert_eq!(
                r.faults.server_crashes, 1,
                "second crash found it already down"
            );
            assert_eq!(r.faults.server_recoveries, 1);
            assert_eq!(r.faults.copies_evicted, 1);
        }

        #[test]
        #[should_panic(expected = "not down")]
        fn restore_of_up_server_panics() {
            let cluster = ClusterSpec::homogeneous(1, 1.0, 1.0);
            let job = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 3.0, 0.0);
            let tl = FaultTimeline::new(vec![restore(1, 0)]);
            let _ = simulate_with_faults(
                &cluster,
                vec![job],
                &det_sampler(),
                &mut FifoFirstFit,
                &EngineConfig::default(),
                &tl,
            );
        }

        #[test]
        #[should_panic(expected = "downed server")]
        fn assignment_to_downed_server_panics() {
            struct Blind;
            impl Scheduler for Blind {
                fn name(&self) -> String {
                    "blind".into()
                }
                fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
                    view.jobs()
                        .flat_map(|j| j.ready_tasks())
                        .map(|task| Assignment {
                            task,
                            server: ServerId(0),
                            kind: CopyKind::Primary,
                        })
                        .collect()
                }
            }
            let cluster = ClusterSpec::homogeneous(2, 1.0, 1.0);
            let job = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 3.0, 0.0);
            let tl = FaultTimeline::new(vec![crash(0, 0), restore(9, 0)]);
            let _ = simulate_with_faults(
                &cluster,
                vec![job],
                &det_sampler(),
                &mut Blind,
                &EngineConfig::default(),
                &tl,
            );
        }

        #[test]
        fn same_seed_and_timeline_reproduce_identical_reports() {
            let cluster = ClusterSpec::paper_30_node();
            let jobs: Vec<JobSpec> = (0..8)
                .map(|i| JobSpec::single_phase(JobId(i), 15, Resources::new(2.0, 4.0), 10.0, 3.0))
                .collect();
            let sampler = DurationSampler::new(11, StragglerModel::ParetoFit);
            let tl = FaultTimeline::new(vec![
                crash(5, 3),
                restore(25, 3),
                crash(12, 17),
                restore(30, 17),
                TimedFault {
                    at: 8,
                    event: FaultEvent::Degrade(ServerId(9), 0.6),
                },
            ]);
            let cfg = EngineConfig::default();
            let a = simulate_with_faults(
                &cluster,
                jobs.clone(),
                &sampler,
                &mut FifoFirstFit,
                &cfg,
                &tl,
            );
            let b = simulate_with_faults(&cluster, jobs, &sampler, &mut FifoFirstFit, &cfg, &tl);
            assert_eq!(a.jobs, b.jobs);
            assert_eq!(a.faults, b.faults);
            assert_eq!(a.makespan, b.makespan);
        }
    }

    #[test]
    fn diamond_dag_executes_in_dependency_order() {
        let cluster = one_server(8.0, 8.0);
        let d = Resources::new(1.0, 1.0);
        let job = JobSpec::builder(JobId(0))
            .phase(PhaseSpec::new(1, d, 2.0, 0.0))
            .phase(PhaseSpec::new(1, d, 3.0, 0.0).with_parents(vec![PhaseId(0)]))
            .phase(PhaseSpec::new(1, d, 5.0, 0.0).with_parents(vec![PhaseId(0)]))
            .phase(PhaseSpec::new(1, d, 1.0, 0.0).with_parents(vec![PhaseId(1), PhaseId(2)]))
            .build()
            .unwrap();
        let mut s = FifoFirstFit;
        let r = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        // 2 + max(3, 5) + 1 = 8.
        assert_eq!(r.jobs[0].flowtime, 8);
    }
}
