//! The time-slotted simulation engine (§3's model, §6.3's simulator).
//!
//! The engine advances an integer slot clock, but *event-accelerated*: all
//! arrivals and durations are integer slots, so every state change lands
//! on a slot boundary and the engine jumps directly to the next one with
//! work to do. At each decision point it
//!
//! 1. retires every copy finishing at that slot (the first copy of a task
//!    to finish wins; all sibling copies are killed and their resources
//!    freed, per the kill-on-first-finish rule of §5.2),
//! 2. unlocks phases whose parents completed (Eq. 7),
//! 3. admits arriving jobs (notifying the scheduler),
//! 4. invokes [`Scheduler::schedule`] once and applies the returned batch.
//!
//! Assignment validation is strict: an over-committing or ill-typed
//! assignment panics, because a buggy scheduler must fail loudly rather
//! than silently skew an experiment.

use crate::execution::DurationSampler;
use crate::metrics::{CopyOutcome, CopySpan, JobMetrics, SchedOverhead, SimReport};
use crate::scheduler::{Assignment, Scheduler};
use crate::spec::ClusterSpec;
use crate::state::{CopyKind, CopyState, JobState, TaskStatus};
use crate::view::ClusterView;
use dollymp_core::job::{JobId, JobSpec, PhaseId, TaskRef};
use dollymp_core::resources::Resources;
use dollymp_core::time::Time;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Engine tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Hard mechanism cap on concurrent copies per task (original +
    /// clones). The engine default (8) is deliberately loose: the
    /// *policy* budget — the paper's 3-copy limit of §5, or the DollyMP³
    /// ablation's 4 — belongs to the scheduler; this cap only catches
    /// runaway cloning bugs.
    pub max_copies_per_task: u32,
    /// Safety valve: panic if the clock passes this slot (a scheduler
    /// livelock would otherwise spin forever).
    pub max_slots: Time,
    /// Extra periodic decision points every `tick` slots while jobs are
    /// active (§6.3: "at the beginning of each interval, DollyMP shall
    /// check the amount of available resources"). `None` (the default)
    /// schedules only on arrivals/completions — sufficient for policies
    /// without progress monitoring and much faster; speculative execution
    /// needs a tick to observe stragglers mid-flight.
    pub tick: Option<Time>,
    /// Remote-read penalty for data locality: a copy of a *root-phase*
    /// task (one that reads its input block from the distributed file
    /// system) placed on neither of the block's two replica servers (see
    /// [`crate::execution::block_replicas`]) has its duration multiplied
    /// by this factor. `1.0` (the default) disables locality modelling;
    /// the paper's YARN layer places clones on replicas to avoid exactly
    /// this cost.
    pub remote_penalty: f64,
    /// Record cluster utilization `(slot, cpu fraction, memory fraction)`
    /// after every decision point into [`SimReport::utilization`].
    /// Off by default — the series can be large on long runs.
    pub record_utilization: bool,
    /// Record every copy's lifetime into [`SimReport::timeline`]
    /// (exportable as a Chrome trace). Off by default.
    pub record_timeline: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_copies_per_task: 8,
            max_slots: 500_000_000,
            tick: None,
            remote_penalty: 1.0,
            record_utilization: false,
            record_timeline: false,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    finish: Time,
    seq: u64,
    task: TaskRef,
    copy_idx: u32,
}

/// Run one simulation to completion and return the report.
///
/// Jobs are admitted at their `arrival` slots; the run ends when every job
/// has completed. Durations come from `sampler` (scheduler-independent —
/// see [`crate::execution`]) scaled by server speed at placement.
///
/// # Panics
/// * if any phase demand fits no server in the cluster (the job could
///   never run);
/// * on invalid assignments (unknown job/task, over-commitment, cloning a
///   non-running task, exceeding the copy cap);
/// * if the scheduler stalls (active jobs, no running copies, no future
///   arrivals, and an empty scheduling batch);
/// * if the clock exceeds `cfg.max_slots`.
pub fn simulate(
    cluster: &ClusterSpec,
    jobs: Vec<JobSpec>,
    sampler: &DurationSampler,
    scheduler: &mut dyn Scheduler,
    cfg: &EngineConfig,
) -> SimReport {
    for j in &jobs {
        for (pi, p) in j.phases().iter().enumerate() {
            assert!(
                cluster
                    .servers()
                    .iter()
                    .any(|s| p.demand.fits_in(s.capacity)),
                "job {} phase {pi} demand {} fits no server",
                j.id.0,
                p.demand
            );
        }
    }

    let totals = cluster.totals();
    let mut arrivals: Vec<JobSpec> = jobs;
    // Pop from the back ⇒ ascending (arrival, id).
    arrivals.sort_by_key(|j| std::cmp::Reverse((j.arrival, j.id)));

    let mut active: BTreeMap<JobId, JobState> = BTreeMap::new();
    let mut free: Vec<Resources> = cluster.servers().iter().map(|s| s.capacity).collect();
    let mut events: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut done: Vec<JobMetrics> = Vec::new();
    let mut decision_points = 0u64;
    let mut scheduling_ns = 0u64;
    // One entry per decision point: schedule() plus the on-arrival
    // refreshes that preceded it in the same slot (§6.3.3 overhead).
    let mut overhead_samples: Vec<u64> = Vec::new();
    let mut utilization: Vec<(Time, f64, f64)> = Vec::new();
    let mut timeline: Vec<CopySpan> = Vec::new();
    let mut now: Time = 0;

    while !arrivals.is_empty() || !active.is_empty() {
        // Drop stale events (killed copies) from the heap front.
        while let Some(Reverse(ev)) = events.peek() {
            if copy_is_live(&active, ev) {
                break;
            }
            events.pop();
        }
        let next_event = events.peek().map(|Reverse(e)| e.finish);
        let next_arrival = arrivals.last().map(|j| j.arrival);
        // A periodic tick only matters while copies are in flight (it
        // exists to let progress monitors observe running stragglers).
        let next_tick = match (cfg.tick, next_event) {
            (Some(k), Some(_)) if !active.is_empty() => Some(now + k.max(1)),
            _ => None,
        };
        let t = match [next_event, next_arrival, next_tick]
            .into_iter()
            .flatten()
            .min()
        {
            Some(t) => t,
            None => panic!(
                "scheduler stalled at slot {now}: {} active job(s), nothing running, \
                 nothing arriving",
                active.len()
            ),
        };
        now = now.max(t);
        assert!(
            now <= cfg.max_slots,
            "simulation exceeded {} slots — livelocked scheduler?",
            cfg.max_slots
        );

        // 1) Retire copies finishing now (and any stale events en route).
        let mut finished_jobs: Vec<JobId> = Vec::new();
        while let Some(Reverse(ev)) = events.peek() {
            if ev.finish > now {
                break;
            }
            let ev = events.pop().expect("peeked").0;
            if !copy_is_live(&active, &ev) {
                continue;
            }
            retire_copy(
                &mut active,
                &mut free,
                totals,
                now,
                &ev,
                &mut finished_jobs,
                cfg.record_timeline.then_some(&mut timeline),
            );
        }
        for id in finished_jobs {
            let job = active.remove(&id).expect("finished job present");
            done.push(job_metrics(&job, now));
            scheduler.on_job_finish(&job);
        }

        // 2) Admit arrivals.
        let mut arrival_ns = 0u64;
        while arrivals.last().is_some_and(|j| j.arrival <= now) {
            let spec = arrivals.pop().expect("peeked");
            let id = spec.id;
            assert!(
                !active.contains_key(&id),
                "duplicate job id {} in workload",
                id.0
            );
            let tables: Vec<Vec<f64>> = spec
                .phases()
                .iter()
                .enumerate()
                .map(|(pi, p)| sampler.phase_table(id, PhaseId(pi as u32), p))
                .collect();
            active.insert(id, JobState::new(spec, tables));
            let view = ClusterView {
                now,
                spec: cluster,
                free: &free,
                jobs: &active,
            };
            let t0 = std::time::Instant::now();
            scheduler.on_job_arrival(&view, id);
            arrival_ns += t0.elapsed().as_nanos() as u64;
        }

        // 3) One scheduling pass.
        if !active.is_empty() {
            let view = ClusterView {
                now,
                spec: cluster,
                free: &free,
                jobs: &active,
            };
            let t0 = std::time::Instant::now();
            let batch = scheduler.schedule(&view);
            let schedule_ns = t0.elapsed().as_nanos() as u64;
            scheduling_ns += schedule_ns;
            overhead_samples.push(arrival_ns + schedule_ns);
            decision_points += 1;

            let stalled_risk = events.is_empty() && arrivals.is_empty();
            assert!(
                !(stalled_risk && batch.is_empty()),
                "scheduler {} stalled at slot {now}: returned no assignments with \
                 {} active job(s) and an otherwise idle cluster",
                scheduler.name(),
                active.len()
            );
            for a in batch {
                apply_assignment(
                    cluster,
                    sampler,
                    cfg,
                    now,
                    &mut active,
                    &mut free,
                    &mut events,
                    &mut seq,
                    a,
                );
            }
        }
        if cfg.record_utilization {
            let used = totals - free.iter().copied().sum::<Resources>();
            utilization.push((
                now,
                if totals.cpu() > 0.0 {
                    used.cpu() / totals.cpu()
                } else {
                    0.0
                },
                if totals.mem() > 0.0 {
                    used.mem() / totals.mem()
                } else {
                    0.0
                },
            ));
        }
    }

    debug_assert!(
        free.iter()
            .zip(cluster.servers())
            .all(|(f, s)| *f == s.capacity),
        "resource leak: free != capacity after drain"
    );

    let makespan = done.iter().map(|j| j.finish).max().unwrap_or(0);
    SimReport {
        scheduler: scheduler.name(),
        jobs: done,
        makespan,
        decision_points,
        scheduling_ns,
        sched_overhead: SchedOverhead::from_samples(&overhead_samples),
        utilization,
        timeline,
    }
}

fn copy_is_live(active: &BTreeMap<JobId, JobState>, ev: &Event) -> bool {
    active
        .get(&ev.task.job)
        .map(|j| {
            j.task(ev.task.phase, ev.task.task)
                .copies
                .iter()
                .any(|c| c.copy_idx == ev.copy_idx && c.live)
        })
        .unwrap_or(false)
}

/// Retire the copy named by `ev` as the task's winner; kill siblings,
/// update phase/job bookkeeping, and record fully finished jobs.
#[allow(clippy::too_many_arguments)]
fn retire_copy(
    active: &mut BTreeMap<JobId, JobState>,
    free: &mut [Resources],
    totals: Resources,
    now: Time,
    ev: &Event,
    finished_jobs: &mut Vec<JobId>,
    mut timeline: Option<&mut Vec<CopySpan>>,
) {
    let job = active
        .get_mut(&ev.task.job)
        .expect("live copy ⇒ job active");
    let demand = job.spec().phase(ev.task.phase).demand;
    let demand_norm = demand.normalized_sum(totals);
    let pi = ev.task.phase.0 as usize;
    let ti = ev.task.task.0 as usize;

    let task = &mut job.tasks[pi][ti];
    debug_assert_eq!(task.status, TaskStatus::Running);
    let mut winner_start = now;
    // End every live copy: the winner completes, the rest are killed.
    for c in task.copies.iter_mut().filter(|c| c.live) {
        c.live = false;
        free[c.server.0 as usize] += demand;
        job.usage_norm += demand_norm * now.saturating_sub(c.start) as f64;
        if c.copy_idx == ev.copy_idx {
            winner_start = c.start;
        }
        if let Some(tl) = timeline.as_deref_mut() {
            tl.push(CopySpan {
                task: ev.task,
                copy_idx: c.copy_idx,
                server: c.server,
                kind: c.kind,
                start: c.start,
                end: now,
                outcome: if c.copy_idx == ev.copy_idx {
                    CopyOutcome::Won
                } else {
                    CopyOutcome::Killed
                },
            });
        }
    }
    task.status = TaskStatus::Done;
    task.finish = Some(now);
    task.winner = Some(ev.copy_idx);
    job.phases[pi]
        .observed
        .push(now.saturating_sub(winner_start) as f64);

    debug_assert!(job.phases[pi].remaining > 0);
    job.phases[pi].remaining -= 1;
    if job.phases[pi].remaining == 0 {
        // Unlock children whose parents are now all complete (Eq. 7).
        let children: Vec<PhaseId> = job.spec().children(ev.task.phase).to_vec();
        for child in children {
            let ready = job
                .spec()
                .phase(child)
                .parents
                .iter()
                .all(|p| job.phases[p.0 as usize].remaining == 0);
            if ready && !job.phases[child.0 as usize].runnable {
                job.phases[child.0 as usize].runnable = true;
                for t in &mut job.tasks[child.0 as usize] {
                    debug_assert_eq!(t.status, TaskStatus::Blocked);
                    t.status = TaskStatus::Ready;
                }
            }
        }
        if job.is_done() {
            job.finish = Some(now);
            finished_jobs.push(job.id());
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn apply_assignment(
    cluster: &ClusterSpec,
    sampler: &DurationSampler,
    cfg: &EngineConfig,
    now: Time,
    active: &mut BTreeMap<JobId, JobState>,
    free: &mut [Resources],
    events: &mut BinaryHeap<Reverse<Event>>,
    seq: &mut u64,
    a: Assignment,
) {
    let job = active
        .get_mut(&a.task.job)
        .unwrap_or_else(|| panic!("assignment for unknown job {}", a.task.job.0));
    let spec_phase = job.spec().phase(a.task.phase).clone();
    let pi = a.task.phase.0 as usize;
    let ti = a.task.task.0 as usize;
    assert!(
        pi < job.spec().num_phases() && ti < spec_phase.ntasks as usize,
        "assignment for out-of-range task {}",
        a.task
    );
    assert!(
        job.phases[pi].runnable,
        "assignment for blocked phase of task {}",
        a.task
    );

    let task = &mut job.tasks[pi][ti];
    match a.kind {
        CopyKind::Primary => assert!(
            task.status == TaskStatus::Ready && task.copies.is_empty(),
            "primary copy for task {} in state {:?}",
            a.task,
            task.status
        ),
        CopyKind::Clone => {
            assert!(
                task.status == TaskStatus::Running,
                "clone for non-running task {}",
                a.task
            );
            assert!(
                task.live_copies() < cfg.max_copies_per_task,
                "task {} exceeds the {}-copy cap",
                a.task,
                cfg.max_copies_per_task
            );
        }
    }

    let sid = a.server.0 as usize;
    assert!(sid < cluster.len(), "assignment to unknown server {sid}");
    assert!(
        spec_phase.demand.fits_in(free[sid]),
        "over-commitment on server {sid}: demand {} > free {} (task {})",
        spec_phase.demand,
        free[sid],
        a.task
    );
    free[sid] -= spec_phase.demand;

    let copy_idx = task.launched_copies();
    let mut base = sampler.copy_duration(
        a.task.job,
        a.task.phase,
        a.task.task,
        copy_idx,
        &spec_phase,
        &job.tables[pi],
    );
    // Data locality: root-phase tasks read their input block remotely
    // when placed off-replica.
    if cfg.remote_penalty > 1.0 && spec_phase.parents.is_empty() {
        let replicas = crate::execution::block_replicas(a.task, cluster.len());
        if !replicas.contains(&a.server) {
            base *= cfg.remote_penalty;
        }
    }
    let speed = cluster.server(a.server).speed;
    let dur = ((base / speed).ceil() as Time).max(1);
    let finish = now + dur;

    task.copies.push(CopyState {
        copy_idx,
        server: a.server,
        start: now,
        finish,
        kind: a.kind,
        live: true,
    });
    task.status = TaskStatus::Running;
    if a.kind == CopyKind::Clone {
        job.clone_launches += 1;
    }
    job.first_start.get_or_insert(now);

    *seq += 1;
    events.push(Reverse(Event {
        finish,
        seq: *seq,
        task: a.task,
        copy_idx,
    }));
}

fn job_metrics(job: &JobState, now: Time) -> JobMetrics {
    let finish = job.finish.unwrap_or(now);
    let first_start = job.first_start.unwrap_or(job.spec().arrival);
    JobMetrics {
        id: job.id(),
        label: job.spec().label.clone(),
        arrival: job.spec().arrival,
        first_start,
        finish,
        flowtime: finish - job.spec().arrival,
        running_time: finish - first_start,
        tasks: job.spec().total_tasks(),
        clone_copies: job.clone_launches,
        tasks_cloned: job.tasks_cloned(),
        usage: job.usage_norm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::StragglerModel;
    use crate::scheduler::FifoFirstFit;
    use crate::spec::{ServerId, ServerSpec};
    use dollymp_core::job::PhaseSpec;

    fn det_sampler() -> DurationSampler {
        DurationSampler::new(1, StragglerModel::Deterministic)
    }

    fn one_server(cpu: f64, mem: f64) -> ClusterSpec {
        ClusterSpec::new(vec![ServerSpec::new(cpu, mem)])
    }

    #[test]
    fn single_task_job_runs_to_completion() {
        let cluster = one_server(4.0, 8.0);
        let job = JobSpec::single_phase(JobId(0), 1, Resources::new(2.0, 2.0), 7.0, 0.0);
        let mut s = FifoFirstFit;
        let r = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        assert_eq!(r.jobs.len(), 1);
        assert_eq!(r.jobs[0].flowtime, 7);
        assert_eq!(r.jobs[0].running_time, 7);
        assert_eq!(r.makespan, 7);
        assert_eq!(r.jobs[0].clone_copies, 0);
        // usage = (2/4 + 2/8) × 7 = 5.25
        assert!((r.jobs[0].usage - 5.25).abs() < 1e-9);
    }

    #[test]
    fn parallel_tasks_share_the_server() {
        let cluster = one_server(4.0, 8.0);
        // Two tasks of 2 cores each fit simultaneously.
        let job = JobSpec::single_phase(JobId(0), 2, Resources::new(2.0, 2.0), 5.0, 0.0);
        let mut s = FifoFirstFit;
        let r = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        assert_eq!(r.jobs[0].flowtime, 5, "tasks must run in parallel");
    }

    #[test]
    fn serial_when_capacity_binds() {
        let cluster = one_server(2.0, 8.0);
        let job = JobSpec::single_phase(JobId(0), 2, Resources::new(2.0, 2.0), 5.0, 0.0);
        let mut s = FifoFirstFit;
        let r = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        assert_eq!(r.jobs[0].flowtime, 10, "tasks must serialize");
    }

    #[test]
    fn phase_dependency_is_honored() {
        let cluster = one_server(8.0, 8.0);
        let job = JobSpec::chain(
            JobId(0),
            vec![
                PhaseSpec::new(2, Resources::new(1.0, 1.0), 4.0, 0.0),
                PhaseSpec::new(1, Resources::new(1.0, 1.0), 3.0, 0.0),
            ],
        )
        .unwrap();
        let mut s = FifoFirstFit;
        let r = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        assert_eq!(r.jobs[0].flowtime, 7, "map (4) then reduce (3)");
    }

    #[test]
    fn arrivals_are_respected() {
        let cluster = one_server(1.0, 1.0);
        let j0 = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 5.0, 0.0);
        let mut j1 = JobSpec::single_phase(JobId(1), 1, Resources::new(1.0, 1.0), 5.0, 0.0);
        j1 = JobSpec::builder(JobId(1))
            .arrival(100)
            .phase(j1.phases()[0].clone())
            .build()
            .unwrap();
        let mut s = FifoFirstFit;
        let r = simulate(
            &cluster,
            vec![j0, j1],
            &det_sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        let by_id = r.by_id();
        assert_eq!(by_id[&JobId(0)].finish, 5);
        assert_eq!(by_id[&JobId(1)].finish, 105);
        assert_eq!(by_id[&JobId(1)].flowtime, 5, "no queueing after idle gap");
    }

    #[test]
    fn server_speed_scales_duration() {
        let cluster = ClusterSpec::new(vec![ServerSpec::new(1.0, 1.0).with_speed(2.0)]);
        let job = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 10.0, 0.0);
        let mut s = FifoFirstFit;
        let r = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        assert_eq!(r.jobs[0].flowtime, 5, "2× speed halves the duration");
    }

    /// A test policy: primary on server 0, then one clone on server 1.
    struct PrimaryPlusClone;
    impl Scheduler for PrimaryPlusClone {
        fn name(&self) -> String {
            "primary-plus-clone".into()
        }
        fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
            let mut out = Vec::new();
            for job in view.jobs() {
                for task in job.ready_tasks() {
                    out.push(Assignment {
                        task,
                        server: ServerId(0),
                        kind: CopyKind::Primary,
                    });
                }
                for task in job.running_tasks() {
                    let t = job.task(task.phase, task.task);
                    if t.live_copies() == 1 && t.launched_copies() == 1 {
                        out.push(Assignment {
                            task,
                            server: ServerId(1),
                            kind: CopyKind::Clone,
                        });
                    }
                }
            }
            out
        }
    }

    #[test]
    fn clone_on_faster_server_wins_and_kills_primary() {
        // Server 0 is slow (0.5×), server 1 fast (2×). θ = 10 ⇒ primary
        // takes 20 slots, clone takes 5. Clone launched one decision point
        // after the primary — same slot 0 here (clone opportunity appears
        // only at the next decision point, which is the primary's...).
        let cluster = ClusterSpec::new(vec![
            ServerSpec::new(1.0, 1.0).with_speed(0.5),
            ServerSpec::new(1.0, 1.0).with_speed(2.0),
        ]);
        let job = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 10.0, 0.0);
        let mut s = PrimaryPlusClone;
        let r = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        let m = &r.jobs[0];
        // Primary starts at 0 (would finish at 20). The clone can only be
        // launched at the next decision point — the primary's finish at 20
        // — unless the engine reschedules earlier. With a single job there
        // is no earlier event, so the job completes at 20 with one copy...
        // unless the clone went out in the same batch, which
        // PrimaryPlusClone cannot do (the task is not yet Running in its
        // view). This documents the decision-point contract.
        assert_eq!(m.flowtime, 20);
        assert_eq!(m.clone_copies, 0);
    }

    /// Like PrimaryPlusClone but issues primary and clone in one batch by
    /// tracking its own pending placements.
    struct AtomicCloner;
    impl Scheduler for AtomicCloner {
        fn name(&self) -> String {
            "atomic-cloner".into()
        }
        fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
            let mut out = Vec::new();
            for job in view.jobs() {
                for task in job.ready_tasks() {
                    out.push(Assignment {
                        task,
                        server: ServerId(0),
                        kind: CopyKind::Primary,
                    });
                    out.push(Assignment {
                        task,
                        server: ServerId(1),
                        kind: CopyKind::Clone,
                    });
                }
            }
            out
        }
    }

    #[test]
    fn same_batch_clone_races_the_primary() {
        let cluster = ClusterSpec::new(vec![
            ServerSpec::new(1.0, 1.0).with_speed(0.5),
            ServerSpec::new(1.0, 1.0).with_speed(2.0),
        ]);
        let job = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 10.0, 0.0);
        let mut s = AtomicCloner;
        let r = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        let m = &r.jobs[0];
        assert_eq!(m.flowtime, 5, "fast clone wins");
        assert_eq!(m.clone_copies, 1);
        assert_eq!(m.tasks_cloned, 1);
        // Usage: both copies occupy 1 core+1 GB for 5 slots; totals are
        // (2, 2) so each copy's normalized rate is 1.0 ⇒ usage = 10.
        assert!((m.usage - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "over-commitment")]
    fn overcommitting_scheduler_panics() {
        struct Greedy;
        impl Scheduler for Greedy {
            fn name(&self) -> String {
                "greedy".into()
            }
            fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
                // Assign both tasks to server 0 ignoring capacity.
                view.jobs()
                    .flat_map(|j| j.ready_tasks())
                    .map(|task| Assignment {
                        task,
                        server: ServerId(0),
                        kind: CopyKind::Primary,
                    })
                    .collect()
            }
        }
        let cluster = one_server(1.0, 1.0);
        let job = JobSpec::single_phase(JobId(0), 2, Resources::new(1.0, 1.0), 5.0, 0.0);
        let _ = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut Greedy,
            &EngineConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "stalled")]
    fn lazy_scheduler_panics() {
        struct Lazy;
        impl Scheduler for Lazy {
            fn name(&self) -> String {
                "lazy".into()
            }
            fn schedule(&mut self, _view: &ClusterView<'_>) -> Vec<Assignment> {
                Vec::new()
            }
        }
        let cluster = one_server(1.0, 1.0);
        let job = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 5.0, 0.0);
        let _ = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut Lazy,
            &EngineConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "fits no server")]
    fn oversized_job_rejected_up_front() {
        let cluster = one_server(1.0, 1.0);
        let job = JobSpec::single_phase(JobId(0), 1, Resources::new(2.0, 1.0), 5.0, 0.0);
        let _ = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut FifoFirstFit,
            &EngineConfig::default(),
        );
    }

    #[test]
    fn timeline_records_winners_and_kills() {
        use crate::metrics::{timeline_to_chrome_trace, CopyOutcome};
        let cluster = ClusterSpec::new(vec![
            ServerSpec::new(1.0, 1.0).with_speed(0.5),
            ServerSpec::new(1.0, 1.0).with_speed(2.0),
        ]);
        let job = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 10.0, 0.0);
        let cfg = EngineConfig {
            record_timeline: true,
            ..Default::default()
        };
        let mut s = AtomicCloner;
        let r = simulate(&cluster, vec![job], &det_sampler(), &mut s, &cfg);
        assert_eq!(r.timeline.len(), 2, "primary + clone both recorded");
        let winner = r
            .timeline
            .iter()
            .find(|c| c.outcome == CopyOutcome::Won)
            .expect("a winner exists");
        let killed = r
            .timeline
            .iter()
            .find(|c| c.outcome == CopyOutcome::Killed)
            .expect("the loser was killed");
        assert_eq!(winner.server, ServerId(1), "fast clone wins");
        assert_eq!(winner.end, 5);
        assert_eq!(killed.end, 5, "killed at the winner's finish");
        assert_eq!(killed.start, 0);

        // The Chrome trace export is well-formed JSON with both events.
        let json = timeline_to_chrome_trace(&r.timeline, 5.0);
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(parsed.as_array().unwrap().len(), 2);
        assert!(json.contains("clone/won"));
        assert!(json.contains("primary/killed"));
    }

    #[test]
    fn timeline_off_by_default() {
        let cluster = one_server(2.0, 2.0);
        let job = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 3.0, 0.0);
        let r = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut FifoFirstFit,
            &EngineConfig::default(),
        );
        assert!(r.timeline.is_empty());
        assert!(r.utilization.is_empty());
    }

    #[test]
    fn utilization_series_tracks_busy_cluster() {
        let cluster = one_server(2.0, 4.0);
        let job = JobSpec::single_phase(JobId(0), 2, Resources::new(1.0, 2.0), 4.0, 0.0);
        let cfg = EngineConfig {
            record_utilization: true,
            ..Default::default()
        };
        let r = simulate(&cluster, vec![job], &det_sampler(), &mut FifoFirstFit, &cfg);
        // After the first decision point both tasks run: 100 % CPU + mem.
        assert!(!r.utilization.is_empty());
        let (_, cpu, mem) = r.utilization[0];
        assert!((cpu - 1.0).abs() < 1e-9);
        assert!((mem - 1.0).abs() < 1e-9);
    }

    #[test]
    fn remote_penalty_inflates_off_replica_root_tasks() {
        use crate::execution::block_replicas;
        use dollymp_core::job::TaskRef;
        let cluster = ClusterSpec::homogeneous(4, 1.0, 1.0);
        let task = TaskRef {
            job: JobId(0),
            phase: PhaseId(0),
            task: dollymp_core::job::TaskId(0),
        };
        let replicas = block_replicas(task, 4);
        // FifoFirstFit places on server 0; pick a job id whose replicas
        // exclude server 0 so the penalty must apply. Search a job id
        // deterministically.
        let mut off_replica_job = None;
        for id in 0..64u64 {
            let t = TaskRef {
                job: JobId(id),
                ..task
            };
            if !block_replicas(t, 4).contains(&ServerId(0)) {
                off_replica_job = Some(id);
                break;
            }
        }
        let id = off_replica_job.expect("some job hashes off server 0");
        let job = JobSpec::single_phase(JobId(id), 1, Resources::new(1.0, 1.0), 10.0, 0.0);
        let cfg_local = EngineConfig::default();
        let cfg_penalty = EngineConfig {
            remote_penalty: 2.0,
            ..Default::default()
        };
        let r_local = simulate(
            &cluster,
            vec![job.clone()],
            &det_sampler(),
            &mut FifoFirstFit,
            &cfg_local,
        );
        let r_remote = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut FifoFirstFit,
            &cfg_penalty,
        );
        assert_eq!(r_local.jobs[0].flowtime, 10);
        assert_eq!(r_remote.jobs[0].flowtime, 20, "2× remote-read penalty");
        // Sanity: replicas are two distinct servers.
        assert_ne!(replicas[0], replicas[1]);
    }

    #[test]
    fn remote_penalty_skips_non_root_phases() {
        // The reduce phase reads shuffled data, not a DFS block: no
        // penalty even off-replica.
        let cluster = ClusterSpec::homogeneous(1, 1.0, 1.0);
        let job = JobSpec::chain(
            JobId(3),
            vec![
                PhaseSpec::new(1, Resources::new(1.0, 1.0), 4.0, 0.0),
                PhaseSpec::new(1, Resources::new(1.0, 1.0), 6.0, 0.0),
            ],
        )
        .unwrap();
        let cfg = EngineConfig {
            remote_penalty: 3.0,
            ..Default::default()
        };
        let r = simulate(&cluster, vec![job], &det_sampler(), &mut FifoFirstFit, &cfg);
        // Map may or may not be on-replica (single server IS the replica
        // set here — with 1 server, both replicas are server 0), so no
        // penalty anywhere: 4 + 6.
        assert_eq!(r.jobs[0].flowtime, 10);
    }

    #[test]
    fn report_counts_decision_points() {
        let cluster = one_server(1.0, 1.0);
        let jobs: Vec<JobSpec> = (0..3)
            .map(|i| JobSpec::single_phase(JobId(i), 1, Resources::new(1.0, 1.0), 2.0, 0.0))
            .collect();
        let mut s = FifoFirstFit;
        let r = simulate(
            &cluster,
            jobs,
            &det_sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        assert_eq!(r.jobs.len(), 3);
        assert!(r.decision_points >= 3);
        assert_eq!(r.makespan, 6, "three serial 2-slot jobs");
        // One overhead sample per decision point, covering at least the
        // schedule() time itself.
        let o = r.sched_overhead;
        assert_eq!(o.decision_points, r.decision_points);
        assert!(o.total_ns >= r.scheduling_ns);
        assert!(o.mean_ns <= o.p99_ns && o.p99_ns <= o.max_ns);
        assert!(o.max_ns <= o.total_ns);
    }

    #[test]
    fn diamond_dag_executes_in_dependency_order() {
        let cluster = one_server(8.0, 8.0);
        let d = Resources::new(1.0, 1.0);
        let job = JobSpec::builder(JobId(0))
            .phase(PhaseSpec::new(1, d, 2.0, 0.0))
            .phase(PhaseSpec::new(1, d, 3.0, 0.0).with_parents(vec![PhaseId(0)]))
            .phase(PhaseSpec::new(1, d, 5.0, 0.0).with_parents(vec![PhaseId(0)]))
            .phase(PhaseSpec::new(1, d, 1.0, 0.0).with_parents(vec![PhaseId(1), PhaseId(2)]))
            .build()
            .unwrap();
        let mut s = FifoFirstFit;
        let r = simulate(
            &cluster,
            vec![job],
            &det_sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        // 2 + max(3, 5) + 1 = 8.
        assert_eq!(r.jobs[0].flowtime, 8);
    }
}
