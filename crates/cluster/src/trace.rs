//! Flight-recorder hooks: the typed event journal the engine can emit.
//!
//! Every observable state change of a simulation run — slot advances, job
//! arrivals/completions, copy launches/retirements/evictions, fault
//! transitions, guard interventions and per-decision-point scheduler
//! spans — has a variant on [`Event`]. The engine emits them through a
//! [`Recorder`]; the journal is a *superset* of
//! [`SimReport`](crate::metrics::SimReport)
//! (`dollymp-obs::replay` re-derives the full report from the stream and
//! byte-diffs it against the live one, which is the standing correctness
//! oracle for engine/scheduler refactors).
//!
//! The default [`NullRecorder`] reports itself disabled; the engine
//! checks [`Recorder::enabled`] once per run and skips event
//! *construction* entirely, so the steady-state hot path stays
//! allocation-free and within noise of the recorded `BENCH_scale.json`
//! timings. Consumers (bounded ring buffer, JSONL sink, metrics
//! registry, replay verifier) live in the `dollymp-obs` crate — this
//! module is only the schema and the emission contract, keeping the
//! simulation substrate free of I/O concerns.
//!
//! Event order is fully determined by the simulation itself (the engine
//! loop is single-threaded and every tie is broken deterministically),
//! so journals are byte-identical across runs and across sequential vs
//! rayon experiment fan-out.

use crate::metrics::{CopyOutcome, GuardStats, JobMetrics};
use crate::spec::ServerId;
use crate::state::CopyKind;
use dollymp_core::job::{JobId, TaskRef};
use dollymp_core::time::Time;
use serde::{Deserialize, Serialize};

/// Scheduler-internal timing of one decision pass, split into the two
/// stages every policy in this repository has: refreshing priorities /
/// job order (DollyMP's Algorithm 1 grouping; trivial for stateless
/// baselines) and walking servers to place copies (Algorithm 2 and its
/// baseline equivalents). Attached to [`Event::SchedSpan`] when the
/// policy implements [`crate::scheduler::Scheduler::pass_span`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PassSpan {
    /// Nanoseconds spent preparing the pass (priority refresh, job
    /// grouping) before any placement.
    pub prepare_ns: u64,
    /// Nanoseconds spent in the placement walk itself.
    pub placement_ns: u64,
}

/// One journal entry. Variants mirror the engine's observable state
/// transitions one-to-one: an event is emitted exactly where the
/// corresponding [`SimReport`](crate::metrics::SimReport) aggregate is
/// updated, so replaying the stream reconstructs every aggregate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// The clock advanced to a decision slot (one per engine iteration).
    SlotTick {
        /// The slot the engine jumped to.
        at: Time,
    },
    /// A job was admitted into the active set.
    JobArrival {
        /// Admission slot.
        at: Time,
        /// The admitted job.
        job: JobId,
    },
    /// A job completed; carries its final per-job metrics record (the
    /// same struct the live report stores, in the same completion
    /// order).
    JobCompletion {
        /// Completion slot.
        at: Time,
        /// Final metrics of the finished job.
        metrics: JobMetrics,
    },
    /// A copy (primary or clone) was launched on a server.
    CopyLaunch {
        /// Launch slot.
        at: Time,
        /// The task receiving the copy.
        task: TaskRef,
        /// Copy index within the task (0 = primary).
        copy_idx: u32,
        /// Target server.
        server: ServerId,
        /// Primary or clone.
        kind: CopyKind,
        /// Slot at which the copy will finish absent faults (the
        /// sampled duration is fixed at launch; fail-slow events may
        /// stretch it later).
        finish: Time,
    },
    /// A copy ended at a task completion: either it won (first to
    /// finish) or a sibling won and it was killed.
    CopyRetire {
        /// Retirement slot.
        at: Time,
        /// The copy's task.
        task: TaskRef,
        /// Copy index within the task.
        copy_idx: u32,
        /// Where it ran.
        server: ServerId,
        /// Primary or clone.
        kind: CopyKind,
        /// Launch slot (so the span is reconstructible).
        start: Time,
        /// [`CopyOutcome::Won`] or [`CopyOutcome::Killed`].
        outcome: CopyOutcome,
    },
    /// A copy was evicted by a server crash; its work is lost.
    CopyEvict {
        /// Crash slot.
        at: Time,
        /// The copy's task.
        task: TaskRef,
        /// Copy index within the task.
        copy_idx: u32,
        /// The crashed server.
        server: ServerId,
        /// Primary or clone.
        kind: CopyKind,
        /// Launch slot.
        start: Time,
        /// Normalized work destroyed (same unit as
        /// [`JobMetrics::usage`]).
        work_lost_norm: f64,
    },
    /// An eviction's task survived because another live copy kept
    /// running — cloning as failure insurance.
    TaskSaved {
        /// Crash slot.
        at: Time,
        /// The surviving task.
        task: TaskRef,
    },
    /// A task lost its last live copy and was returned to the ready
    /// queue for re-execution from scratch.
    TaskLost {
        /// Crash slot.
        at: Time,
        /// The fully-lost task.
        task: TaskRef,
    },
    /// A server went offline (emitted on the up→down transition only;
    /// overlapping crash windows do not re-fire).
    ServerCrash {
        /// Crash slot.
        at: Time,
        /// The crashed server.
        server: ServerId,
    },
    /// A server came back online, empty (down→up transition only).
    ServerRestore {
        /// Restore slot.
        at: Time,
        /// The repaired server.
        server: ServerId,
    },
    /// A persistent fail-slow onset multiplied a server's speed.
    ServerDegrade {
        /// Onset slot.
        at: Time,
        /// The degraded server.
        server: ServerId,
        /// Speed multiplier applied (`0 < factor ≤ 1`).
        factor: f64,
    },
    /// One scheduling decision point: the wall-clock sample that feeds
    /// [`crate::metrics::SchedOverhead`], emitted *before* the batch's
    /// [`Event::CopyLaunch`] events.
    SchedSpan {
        /// Decision slot.
        at: Time,
        /// 1-based decision-point ordinal within the run.
        decision_point: u64,
        /// Nanoseconds spent in `on_job_arrival` refreshes this slot.
        arrival_ns: u64,
        /// Nanoseconds spent in `Scheduler::schedule`.
        schedule_ns: u64,
        /// Number of assignments in the returned batch.
        batch: u64,
        /// Scheduler-internal stage split, when the policy reports one.
        detail: Option<PassSpan>,
    },
    /// The guard's containment counters changed during this decision
    /// point; carries the per-pass delta (counter-wise difference, plus
    /// `quarantined_at` when it was set this pass). Summing the deltas
    /// reconstructs the final [`GuardStats`].
    GuardDelta {
        /// Decision slot.
        at: Time,
        /// Counter-wise change since the previous pass.
        delta: GuardStats,
    },
    /// A cluster-utilization sample (only emitted when
    /// `EngineConfig::record_utilization` is set, mirroring the report's
    /// series).
    UtilSample {
        /// Sample slot.
        at: Time,
        /// CPU fraction busy.
        cpu: f64,
        /// Memory fraction busy.
        mem: f64,
    },
}

impl Event {
    /// The slot this event fired at.
    pub fn at(&self) -> Time {
        match *self {
            Event::SlotTick { at }
            | Event::JobArrival { at, .. }
            | Event::JobCompletion { at, .. }
            | Event::CopyLaunch { at, .. }
            | Event::CopyRetire { at, .. }
            | Event::CopyEvict { at, .. }
            | Event::TaskSaved { at, .. }
            | Event::TaskLost { at, .. }
            | Event::ServerCrash { at, .. }
            | Event::ServerRestore { at, .. }
            | Event::ServerDegrade { at, .. }
            | Event::SchedSpan { at, .. }
            | Event::GuardDelta { at, .. }
            | Event::UtilSample { at, .. } => at,
        }
    }

    /// The job this event concerns, if any (filter key for the CLI).
    pub fn job(&self) -> Option<JobId> {
        match self {
            Event::JobArrival { job, .. } => Some(*job),
            Event::JobCompletion { metrics, .. } => Some(metrics.id),
            Event::CopyLaunch { task, .. }
            | Event::CopyRetire { task, .. }
            | Event::CopyEvict { task, .. }
            | Event::TaskSaved { task, .. }
            | Event::TaskLost { task, .. } => Some(task.job),
            _ => None,
        }
    }

    /// The server this event concerns, if any (filter key for the CLI).
    pub fn server(&self) -> Option<ServerId> {
        match self {
            Event::CopyLaunch { server, .. }
            | Event::CopyRetire { server, .. }
            | Event::CopyEvict { server, .. }
            | Event::ServerCrash { server, .. }
            | Event::ServerRestore { server, .. }
            | Event::ServerDegrade { server, .. } => Some(*server),
            _ => None,
        }
    }

    /// Short kind tag (stable, used by the CLI's summaries).
    pub fn kind_str(&self) -> &'static str {
        match self {
            Event::SlotTick { .. } => "slot_tick",
            Event::JobArrival { .. } => "job_arrival",
            Event::JobCompletion { .. } => "job_completion",
            Event::CopyLaunch { .. } => "copy_launch",
            Event::CopyRetire { .. } => "copy_retire",
            Event::CopyEvict { .. } => "copy_evict",
            Event::TaskSaved { .. } => "task_saved",
            Event::TaskLost { .. } => "task_lost",
            Event::ServerCrash { .. } => "server_crash",
            Event::ServerRestore { .. } => "server_restore",
            Event::ServerDegrade { .. } => "server_degrade",
            Event::SchedSpan { .. } => "sched_span",
            Event::GuardDelta { .. } => "guard_delta",
            Event::UtilSample { .. } => "util_sample",
        }
    }
}

/// A sink for engine events.
///
/// The engine calls [`Recorder::enabled`] once at the start of a run and
/// caches the answer: when `false`, no [`Event`] value is ever
/// constructed (the journal costs one dead branch per emission site), so
/// wrapping a run in [`NullRecorder`] is observationally identical to
/// the unrecorded entry points.
pub trait Recorder {
    /// Whether this recorder wants events at all. Must be constant for
    /// the lifetime of a run — the engine reads it once.
    fn enabled(&self) -> bool {
        true
    }

    /// Consume one event. Called in deterministic emission order.
    fn record(&mut self, ev: Event);
}

/// The no-op recorder: [`Recorder::enabled`] is `false`, so the engine
/// skips every emission site. This is what the plain `simulate` entry
/// points use.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _ev: Event) {}
}

impl<R: Recorder + ?Sized> Recorder for &mut R {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn record(&mut self, ev: Event) {
        (**self).record(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled() {
        let r = NullRecorder;
        assert!(!r.enabled());
    }

    #[test]
    fn accessors_cover_every_variant() {
        let task = TaskRef {
            job: JobId(3),
            phase: dollymp_core::job::PhaseId(0),
            task: dollymp_core::job::TaskId(1),
        };
        let ev = Event::CopyLaunch {
            at: 7,
            task,
            copy_idx: 0,
            server: ServerId(5),
            kind: CopyKind::Primary,
            finish: 12,
        };
        assert_eq!(ev.at(), 7);
        assert_eq!(ev.job(), Some(JobId(3)));
        assert_eq!(ev.server(), Some(ServerId(5)));
        assert_eq!(ev.kind_str(), "copy_launch");
        let tick = Event::SlotTick { at: 9 };
        assert_eq!(tick.at(), 9);
        assert_eq!(tick.job(), None);
        assert_eq!(tick.server(), None);
    }

    #[test]
    fn events_serde_round_trip() {
        let evs = vec![
            Event::SlotTick { at: 1 },
            Event::JobArrival {
                at: 1,
                job: JobId(0),
            },
            Event::ServerDegrade {
                at: 4,
                server: ServerId(2),
                factor: 0.5,
            },
            Event::SchedSpan {
                at: 1,
                decision_point: 1,
                arrival_ns: 10,
                schedule_ns: 20,
                batch: 3,
                detail: Some(PassSpan {
                    prepare_ns: 4,
                    placement_ns: 16,
                }),
            },
        ];
        let json = serde_json::to_string(&evs).expect("serialize");
        let back: Vec<Event> = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, evs);
    }
}
