//! Hierarchical free-capacity index over per-server [`Resources`].
//!
//! The engine keeps one [`CapacityIndex`] incrementally up to date across
//! launch/retire/fault events — there is **no per-decision-point
//! re-snapshot** of the cluster. The index is a flat (SoA) iterative
//! segment tree over the per-server free CPU/memory milli-units:
//!
//! * leaves `[size, size + n)` hold each server's free resources
//!   (`size = n.next_power_of_two()`, padding leaves are zero);
//! * internal node `j` holds the **component-wise max** of its children
//!   `2j` and `2j + 1`;
//! * a running total of free CPU/memory is maintained alongside the tree,
//!   so the engine's utilization probe is O(1) instead of O(servers).
//!
//! Because [`Resources`] is integer milli-units, every incremental update
//! is exact: the running total and every tree node are byte-identical to
//! what a full re-summation / rebuild would produce (debug builds assert
//! this; see `fold_total_free`).
//!
//! Schedulers query the index through a [`CapacityOverlay`], obtained from
//! [`CapacityIndex::begin_batch`]. The overlay layers *tentative* batch
//! commitments over the base values using epoch-stamped cells: starting a
//! new batch is O(1) (bump the epoch — stale stamps from earlier batches
//! are simply ignored), and a commit rewrites only the touched leaf plus
//! the ancestors whose max actually changes (early-exit climb). The base
//! tree is never mutated by schedulers, so [`crate::view::ClusterView`]
//! reads — which always go to the base — keep the exact snapshot
//! semantics the engine has always exposed.
//!
//! ## Query semantics (identical to a linear scan)
//!
//! * [`CapacityOverlay::first_fit`] /
//!   [`CapacityOverlay::next_fit_at_or_after`] descend leftmost-first,
//!   pruning subtrees whose component-wise max cannot hold the demand.
//!   A node max is an *upper bound* (it mixes dimensions from different
//!   servers), so a passing subtree may still contain no fitting leaf —
//!   the leaf test is exact and the walk continues rightward, which is
//!   precisely the behavior of a left-to-right scan with skips.
//! * [`CapacityOverlay::best_fit`] runs a left-to-right branch-and-bound:
//!   a subtree is pruned only when its score upper bound (the Tetris
//!   alignment score of the node max, which is monotone in each free
//!   dimension and therefore a true f64 upper bound) cannot *strictly*
//!   beat the best score so far. That preserves the legacy
//!   "first server with a strictly greater score wins" tie-break exactly.
//! * [`CapacityOverlay::max_free`] is the tree root; `total_free` is the
//!   running sum. Both equal their linear-fold counterparts exactly.
//!
//! For equivalence tests, [`LinearQueriesGuard`] flips a thread-local
//! switch that makes every overlay query fall back to the legacy linear
//! scan over the same effective values — the reference implementation the
//! proptests compare the tree against, end to end, via byte-identical
//! `SimReport`s.

use crate::spec::{ClusterSpec, ServerId};
use dollymp_core::online::best_fit_score;
use dollymp_core::resources::Resources;
use std::cell::Cell;

thread_local! {
    /// When set, overlay queries use the legacy linear scans instead of
    /// the segment tree. Test-only escape hatch (see [`LinearQueriesGuard`]);
    /// deliberately *not* an `EngineConfig` field so config fingerprints
    /// stamped into benchmark artifacts are unaffected.
    static FORCE_LINEAR: Cell<bool> = const { Cell::new(false) };
}

fn linear_queries() -> bool {
    FORCE_LINEAR.with(|f| f.get())
}

/// RAII guard forcing the legacy linear-scan query path on the current
/// thread for its lifetime. Used by the equivalence proptests to run the
/// exact same simulation through both query implementations.
pub struct LinearQueriesGuard {
    prev: bool,
}

impl LinearQueriesGuard {
    /// Enable linear-scan queries until the guard drops.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        let prev = FORCE_LINEAR.with(|f| f.replace(true));
        LinearQueriesGuard { prev }
    }
}

impl Drop for LinearQueriesGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        FORCE_LINEAR.with(|f| f.set(prev));
    }
}

/// Segment-tree index of per-server free capacity (see module docs).
///
/// Mutated only by the engine (or whoever owns it) through `&mut self`;
/// schedulers see it behind `&` via [`crate::view::ClusterView`] and
/// stack tentative commitments on a [`CapacityOverlay`].
pub struct CapacityIndex {
    /// Number of real servers (leaves).
    n: usize,
    /// Tree width: `n.next_power_of_two()`; leaves live at `[size, size+n)`.
    size: usize,
    /// Free CPU milli-units, tree layout (`2 * size` slots, slot 0 unused).
    cpu: Vec<u64>,
    /// Free memory milli-units, tree layout.
    mem: Vec<u64>,
    /// Running totals over the leaves (exact — integer milli-units).
    total_cpu: u64,
    total_mem: u64,
    /// Current overlay epoch. Bumped by [`CapacityIndex::begin_batch`];
    /// overlay slots whose stamp differs are transparently ignored.
    epoch: Cell<u64>,
    /// Overlay values (valid only where `ovl_stamp == epoch`).
    ovl_cpu: Vec<Cell<u64>>,
    ovl_mem: Vec<Cell<u64>>,
    ovl_stamp: Vec<Cell<u64>>,
    /// Overlay running totals (valid only when `ovl_total_stamp == epoch`).
    ovl_total: Cell<(u64, u64)>,
    ovl_total_stamp: Cell<u64>,
}

impl CapacityIndex {
    /// Build an index whose per-server free values are `free`.
    pub fn from_free(free: &[Resources]) -> Self {
        let n = free.len();
        let size = n.next_power_of_two().max(1);
        let slots = 2 * size;
        let mut cpu = vec![0u64; slots];
        let mut mem = vec![0u64; slots];
        let mut total_cpu = 0u64;
        let mut total_mem = 0u64;
        for (i, r) in free.iter().enumerate() {
            cpu[size + i] = r.cpu_milli();
            mem[size + i] = r.mem_milli();
            total_cpu += r.cpu_milli();
            total_mem += r.mem_milli();
        }
        for j in (1..size).rev() {
            cpu[j] = cpu[2 * j].max(cpu[2 * j + 1]);
            mem[j] = mem[2 * j].max(mem[2 * j + 1]);
        }
        CapacityIndex {
            n,
            size,
            cpu,
            mem,
            total_cpu,
            total_mem,
            epoch: Cell::new(1),
            ovl_cpu: vec![Cell::new(0); slots],
            ovl_mem: vec![Cell::new(0); slots],
            ovl_stamp: vec![Cell::new(0); slots],
            ovl_total: Cell::new((0, 0)),
            ovl_total_stamp: Cell::new(0),
        }
    }

    /// Build an index with every server fully free (free = capacity).
    pub fn from_capacities(spec: &ClusterSpec) -> Self {
        let free: Vec<Resources> = spec.iter().map(|(_, s)| s.capacity).collect();
        Self::from_free(&free)
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the cluster has no servers.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Free resources on one server (base value — no overlay).
    pub fn free(&self, s: ServerId) -> Resources {
        let l = self.size + s.0 as usize;
        Resources::from_milli(self.cpu[l], self.mem[l])
    }

    /// Total free resources across the cluster, maintained incrementally
    /// (exact — equal to [`CapacityIndex::fold_total_free`]).
    pub fn total_free(&self) -> Resources {
        Resources::from_milli(self.total_cpu, self.total_mem)
    }

    /// O(n) re-summation of the leaves. Reference value for the
    /// incremental total; used by tests and debug assertions.
    pub fn fold_total_free(&self) -> Resources {
        let mut c = 0u64;
        let mut m = 0u64;
        for i in 0..self.n {
            c += self.cpu[self.size + i];
            m += self.mem[self.size + i];
        }
        Resources::from_milli(c, m)
    }

    /// Component-wise max of free resources over all servers (tree root).
    pub fn max_free(&self) -> Resources {
        if self.n == 0 {
            return Resources::ZERO;
        }
        Resources::from_milli(self.cpu[1], self.mem[1])
    }

    /// Set one server's free resources to an absolute value (fault events:
    /// crash zeroes it, restore brings capacity back).
    pub fn set_free(&mut self, s: ServerId, r: Resources) {
        self.write_leaf(s.0 as usize, r.cpu_milli(), r.mem_milli());
    }

    /// Return resources to a server (copy retirement).
    ///
    /// # Panics
    /// Debug builds panic on milli-unit overflow (impossible for demands
    /// bounded by server capacity).
    pub fn add_free(&mut self, s: ServerId, r: Resources) {
        let l = self.size + s.0 as usize;
        let c = self.cpu[l] + r.cpu_milli();
        let m = self.mem[l] + r.mem_milli();
        self.write_leaf(s.0 as usize, c, m);
    }

    /// Charge resources on a server (copy launch).
    ///
    /// # Panics
    /// Panics when the server does not hold `r` — the engine validates
    /// assignments before applying them, so this is a logic error.
    pub fn sub_free(&mut self, s: ServerId, r: Resources) {
        let l = self.size + s.0 as usize;
        let c = self.cpu[l]
            .checked_sub(r.cpu_milli())
            .unwrap_or_else(|| panic!("capacity underflow on {s:?} (cpu)"));
        let m = self.mem[l]
            .checked_sub(r.mem_milli())
            .unwrap_or_else(|| panic!("capacity underflow on {s:?} (mem)"));
        self.write_leaf(s.0 as usize, c, m);
    }

    /// Write a leaf and refresh ancestors, stopping as soon as an
    /// ancestor's max is unchanged.
    fn write_leaf(&mut self, i: usize, c: u64, m: u64) {
        let l = self.size + i;
        self.total_cpu = self.total_cpu + c - self.cpu[l];
        self.total_mem = self.total_mem + m - self.mem[l];
        self.cpu[l] = c;
        self.mem[l] = m;
        let mut x = l >> 1;
        while x >= 1 {
            let nc = self.cpu[2 * x].max(self.cpu[2 * x + 1]);
            let nm = self.mem[2 * x].max(self.mem[2 * x + 1]);
            if nc == self.cpu[x] && nm == self.mem[x] {
                break;
            }
            self.cpu[x] = nc;
            self.mem[x] = nm;
            x >>= 1;
        }
    }

    /// Start a scheduling batch: O(1) epoch bump invalidating any previous
    /// overlay, returning a fresh [`CapacityOverlay`] whose effective
    /// values start equal to the base.
    pub fn begin_batch(&self) -> CapacityOverlay<'_> {
        let e = self.epoch.get().wrapping_add(1);
        self.epoch.set(e);
        CapacityOverlay {
            idx: self,
            epoch: e,
        }
    }
}

/// Batch-tentative view over a [`CapacityIndex`]: commits and releases are
/// layered on epoch-stamped cells without touching the base tree, so the
/// engine's snapshot (and [`crate::view::ClusterView`]) are unaffected.
///
/// Only the overlay from the most recent [`CapacityIndex::begin_batch`]
/// call is valid; debug builds assert this on every operation.
pub struct CapacityOverlay<'a> {
    idx: &'a CapacityIndex,
    epoch: u64,
}

impl<'a> CapacityOverlay<'a> {
    #[inline]
    fn check_current(&self) {
        debug_assert_eq!(
            self.epoch,
            self.idx.epoch.get(),
            "stale CapacityOverlay used after a newer begin_batch"
        );
    }

    /// Effective (overlay-or-base) value of tree slot `x`.
    #[inline]
    fn node(&self, x: usize) -> (u64, u64) {
        if self.idx.ovl_stamp[x].get() == self.epoch {
            (self.idx.ovl_cpu[x].get(), self.idx.ovl_mem[x].get())
        } else {
            (self.idx.cpu[x], self.idx.mem[x])
        }
    }

    #[inline]
    fn node_res(&self, x: usize) -> Resources {
        let (c, m) = self.node(x);
        Resources::from_milli(c, m)
    }

    #[inline]
    fn store(&self, x: usize, c: u64, m: u64) {
        self.idx.ovl_cpu[x].set(c);
        self.idx.ovl_mem[x].set(m);
        self.idx.ovl_stamp[x].set(self.epoch);
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.idx.n
    }

    /// True when the cluster has no servers.
    pub fn is_empty(&self) -> bool {
        self.idx.n == 0
    }

    /// Remaining free resources on a server, net of this batch.
    pub fn free(&self, s: ServerId) -> Resources {
        self.check_current();
        self.node_res(self.idx.size + s.0 as usize)
    }

    /// Component-wise max of free resources over all servers, net of this
    /// batch (tree root — O(1)).
    pub fn max_free(&self) -> Resources {
        self.check_current();
        if self.idx.n == 0 {
            return Resources::ZERO;
        }
        if linear_queries() {
            let mut m = Resources::ZERO;
            for i in 0..self.idx.n {
                m = m.max(self.node_res(self.idx.size + i));
            }
            return m;
        }
        self.node_res(1)
    }

    /// Total remaining free resources, net of this batch (running sum —
    /// O(1)).
    pub fn total_free(&self) -> Resources {
        self.check_current();
        if linear_queries() {
            let mut c = 0u64;
            let mut m = 0u64;
            for i in 0..self.idx.n {
                let (lc, lm) = self.node(self.idx.size + i);
                c += lc;
                m += lm;
            }
            return Resources::from_milli(c, m);
        }
        if self.idx.ovl_total_stamp.get() == self.epoch {
            let (c, m) = self.idx.ovl_total.get();
            Resources::from_milli(c, m)
        } else {
            self.idx.total_free()
        }
    }

    fn adjust_total(&self, dc: i64, dm: i64) {
        let (c, m) = if self.idx.ovl_total_stamp.get() == self.epoch {
            self.idx.ovl_total.get()
        } else {
            (self.idx.total_cpu, self.idx.total_mem)
        };
        self.idx
            .ovl_total
            .set(((c as i64 + dc) as u64, (m as i64 + dm) as u64));
        self.idx.ovl_total_stamp.set(self.epoch);
    }

    /// Write a leaf into the overlay and refresh ancestors (early-exit).
    fn write_leaf(&self, i: usize, c: u64, m: u64) {
        let l = self.idx.size + i;
        self.store(l, c, m);
        let mut x = l >> 1;
        while x >= 1 {
            let (lc, lm) = self.node(2 * x);
            let (rc, rm) = self.node(2 * x + 1);
            let (nc, nm) = (lc.max(rc), lm.max(rm));
            let cur = self.node(x);
            if cur == (nc, nm) {
                break;
            }
            self.store(x, nc, nm);
            x >>= 1;
        }
    }

    /// Tentatively commit `demand` on `server`. Returns `false` (and
    /// changes nothing) when the demand does not fit.
    pub fn try_commit(&self, server: ServerId, demand: Resources) -> bool {
        self.check_current();
        let l = self.idx.size + server.0 as usize;
        let (c, m) = self.node(l);
        let (dc, dm) = (demand.cpu_milli(), demand.mem_milli());
        if dc > c || dm > m {
            return false;
        }
        self.write_leaf(server.0 as usize, c - dc, m - dm);
        self.adjust_total(-(dc as i64), -(dm as i64));
        true
    }

    /// Return `amount` of capacity to `server` — the inverse of
    /// [`CapacityOverlay::try_commit`], used when a batch learns of
    /// *growing* capacity mid-build (a crashed server restored by fault
    /// recovery). The effective value may exceed the base capacity; the
    /// index does not clamp.
    pub fn release(&self, server: ServerId, amount: Resources) {
        self.check_current();
        let l = self.idx.size + server.0 as usize;
        let (c, m) = self.node(l);
        let (dc, dm) = (amount.cpu_milli(), amount.mem_milli());
        self.write_leaf(server.0 as usize, c + dc, m + dm);
        self.adjust_total(dc as i64, dm as i64);
    }

    /// O(1) pre-check: if `demand` does not fit the per-dimension max,
    /// it fits no server. (The converse does not hold — the max mixes
    /// dimensions from different servers.)
    pub fn could_fit(&self, demand: Resources) -> bool {
        demand.fits_in(self.max_free())
    }

    /// Does `demand` fit some server right now?
    pub fn fits_anywhere(&self, demand: Resources) -> bool {
        self.first_fit(demand).is_some()
    }

    /// First server (by id) with room for `demand` — O(log n).
    pub fn first_fit(&self, demand: Resources) -> Option<ServerId> {
        self.next_fit_at_or_after(0, demand)
    }

    /// First server with id ≥ `start` that has room for `demand`.
    ///
    /// Visits exactly the servers a left-to-right scan starting at
    /// `start` would accept, in the same order — the index only skips
    /// whole subtrees that provably contain no fit.
    pub fn next_fit_at_or_after(&self, start: usize, demand: Resources) -> Option<ServerId> {
        self.check_current();
        let n = self.idx.n;
        if start >= n {
            return None;
        }
        if linear_queries() {
            for i in start..n {
                if demand.fits_in(self.node_res(self.idx.size + i)) {
                    return Some(ServerId(i as u32));
                }
            }
            return None;
        }
        let size = self.idx.size;
        let fits = |x: usize| -> bool {
            let (c, m) = self.node(x);
            demand.cpu_milli() <= c && demand.mem_milli() <= m
        };
        let mut x = start + size;
        if fits(x) {
            return Some(ServerId(start as u32));
        }
        loop {
            // Climb while `x` is a right child, then step to the next
            // subtree covering indices strictly right of the current one.
            while x & 1 == 1 {
                x >>= 1;
                if x <= 1 {
                    return None;
                }
            }
            x += 1;
            if !fits(x) {
                continue;
            }
            // Descend into the leftmost child that fits. A node max can be
            // a false positive (it mixes dimensions from different
            // subtrees), so when neither child fits we abandon this
            // subtree and resume the rightward walk from it.
            let mut dead_end = false;
            while x < size {
                if fits(2 * x) {
                    x *= 2;
                } else if fits(2 * x + 1) {
                    x = 2 * x + 1;
                } else {
                    dead_end = true;
                    break;
                }
            }
            if dead_end {
                continue;
            }
            let idx = x - size;
            // Padding leaves are zero, and a left-first descent prefers
            // any real (left-of-padding) leaf that also fits, so this
            // only triggers defensively.
            if idx < n {
                return Some(ServerId(idx as u32));
            }
        }
    }

    /// Server maximizing the Tetris alignment score `demand · free` among
    /// those with room; ties broken by lowest id (first strictly-greater
    /// score wins, exactly like the legacy linear scan).
    pub fn best_fit(&self, demand: Resources) -> Option<ServerId> {
        self.check_current();
        if self.idx.n == 0 {
            return None;
        }
        if linear_queries() {
            let mut best: Option<(f64, usize)> = None;
            for i in 0..self.idx.n {
                let f = self.node_res(self.idx.size + i);
                if !demand.fits_in(f) {
                    continue;
                }
                let score = best_fit_score(demand, f);
                if best.map(|(b, _)| score > b).unwrap_or(true) {
                    best = Some((score, i));
                }
            }
            return best.map(|(_, i)| ServerId(i as u32));
        }
        let mut best: Option<(f64, usize)> = None;
        self.best_fit_rec(1, demand, &mut best);
        best.map(|(_, i)| ServerId(i as u32))
    }

    fn best_fit_rec(&self, x: usize, demand: Resources, best: &mut Option<(f64, usize)>) {
        let m = self.node_res(x);
        if !demand.fits_in(m) {
            return;
        }
        if let Some((b, _)) = *best {
            // `demand · node_max` upper-bounds every leaf score below `x`
            // (f64 multiply and add are monotone), so prune unless the
            // bound can strictly beat the incumbent.
            if best_fit_score(demand, m) <= b {
                return;
            }
        }
        if x >= self.idx.size {
            let i = x - self.idx.size;
            if i < self.idx.n {
                let score = best_fit_score(demand, m);
                if best.map(|(b, _)| score > b).unwrap_or(true) {
                    *best = Some((score, i));
                }
            }
            return;
        }
        self.best_fit_rec(2 * x, demand, best);
        self.best_fit_rec(2 * x + 1, demand, best);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn rand_free(rng: &mut SmallRng, n: usize) -> Vec<Resources> {
        (0..n)
            .map(|_| {
                Resources::new(
                    rng.gen_range(0..=32) as f64,
                    rng.gen_range(0..=64) as f64 / 2.0,
                )
            })
            .collect()
    }

    /// Linear reference implementations over a plain Vec.
    fn lin_first_fit(free: &[Resources], start: usize, d: Resources) -> Option<ServerId> {
        (start..free.len())
            .find(|&i| d.fits_in(free[i]))
            .map(|i| ServerId(i as u32))
    }

    fn lin_best_fit(free: &[Resources], d: Resources) -> Option<ServerId> {
        let mut best: Option<(f64, usize)> = None;
        for (i, f) in free.iter().enumerate() {
            if !d.fits_in(*f) {
                continue;
            }
            let score = best_fit_score(d, *f);
            if best.map(|(b, _)| score > b).unwrap_or(true) {
                best = Some((score, i));
            }
        }
        best.map(|(_, i)| ServerId(i as u32))
    }

    #[test]
    fn queries_match_linear_scans_under_random_mutation() {
        let mut rng = SmallRng::seed_from_u64(42);
        for n in [1usize, 2, 3, 7, 8, 9, 33, 100] {
            let mut free = rand_free(&mut rng, n);
            let mut idx = CapacityIndex::from_free(&free);
            for _ in 0..200 {
                // Random base mutation, mirrored on the reference Vec.
                let s = rng.gen_range(0..n);
                let r = Resources::new(rng.gen_range(0..=8) as f64, rng.gen_range(0..=8) as f64);
                match rng.gen_range(0..3) {
                    0 => {
                        free[s] = r;
                        idx.set_free(ServerId(s as u32), r);
                    }
                    1 => {
                        free[s] += r;
                        idx.add_free(ServerId(s as u32), r);
                    }
                    _ => {
                        let take = free[s].min(r);
                        free[s] -= take;
                        idx.sub_free(ServerId(s as u32), take);
                    }
                }
                // Base invariants.
                let fold: Resources = free.iter().copied().sum();
                assert_eq!(idx.total_free(), fold);
                assert_eq!(idx.fold_total_free(), fold);
                let max = free.iter().copied().fold(Resources::ZERO, Resources::max);
                assert_eq!(idx.max_free(), max);
                for (i, f) in free.iter().enumerate() {
                    assert_eq!(idx.free(ServerId(i as u32)), *f);
                }
                // Query identity at a random demand and start.
                let d = Resources::new(rng.gen_range(0..=9) as f64, rng.gen_range(0..=9) as f64);
                let start = rng.gen_range(0..=n);
                let ovl = idx.begin_batch();
                assert_eq!(
                    ovl.next_fit_at_or_after(start, d),
                    lin_first_fit(&free, start, d)
                );
                assert_eq!(ovl.first_fit(d), lin_first_fit(&free, 0, d));
                assert_eq!(ovl.best_fit(d), lin_best_fit(&free, d));
                assert_eq!(
                    ovl.fits_anywhere(d),
                    free.iter().any(|f| d.fits_in(*f)),
                    "fits_anywhere diverged"
                );
            }
        }
    }

    #[test]
    fn overlay_layers_without_touching_base() {
        let free = vec![
            Resources::new(4.0, 4.0),
            Resources::new(1.0, 1.0),
            Resources::new(8.0, 8.0),
        ];
        let idx = CapacityIndex::from_free(&free);
        let ovl = idx.begin_batch();
        assert!(ovl.try_commit(ServerId(2), Resources::new(8.0, 8.0)));
        assert_eq!(ovl.free(ServerId(2)), Resources::ZERO);
        assert_eq!(ovl.max_free(), Resources::new(4.0, 4.0));
        assert_eq!(ovl.total_free(), Resources::new(5.0, 5.0));
        // Base untouched.
        assert_eq!(idx.free(ServerId(2)), Resources::new(8.0, 8.0));
        assert_eq!(idx.max_free(), Resources::new(8.0, 8.0));
        assert_eq!(idx.total_free(), Resources::new(13.0, 13.0));
        // A failed commit changes nothing.
        assert!(!ovl.try_commit(ServerId(1), Resources::new(2.0, 2.0)));
        assert_eq!(ovl.free(ServerId(1)), Resources::new(1.0, 1.0));
        // Release can exceed base capacity (the index does not clamp).
        ovl.release(ServerId(1), Resources::new(9.0, 0.0));
        assert_eq!(ovl.free(ServerId(1)), Resources::new(10.0, 1.0));
        assert_eq!(ovl.max_free(), Resources::new(10.0, 4.0));
        // A new batch starts clean in O(1), regardless of prior overlays.
        let ovl2 = idx.begin_batch();
        assert_eq!(ovl2.free(ServerId(2)), Resources::new(8.0, 8.0));
        assert_eq!(ovl2.total_free(), Resources::new(13.0, 13.0));
    }

    #[test]
    fn overlay_queries_match_linear_scans_while_committing() {
        let mut rng = SmallRng::seed_from_u64(7);
        for n in [1usize, 5, 16, 31] {
            let base = rand_free(&mut rng, n);
            let idx = CapacityIndex::from_free(&base);
            let mut eff = base.clone();
            let ovl = idx.begin_batch();
            for _ in 0..300 {
                let d = Resources::new(
                    rng.gen_range(0..=10) as f64,
                    rng.gen_range(0..=10) as f64 / 2.0,
                );
                assert_eq!(ovl.first_fit(d), lin_first_fit(&eff, 0, d));
                assert_eq!(ovl.best_fit(d), lin_best_fit(&eff, d));
                let max = eff.iter().copied().fold(Resources::ZERO, Resources::max);
                assert_eq!(ovl.max_free(), max);
                let tot: Resources = eff.iter().copied().sum();
                assert_eq!(ovl.total_free(), tot);
                if rng.gen_bool(0.7) {
                    if let Some(s) = ovl.first_fit(d) {
                        assert!(ovl.try_commit(s, d));
                        eff[s.0 as usize] -= d;
                    }
                } else {
                    let s = rng.gen_range(0..n);
                    let r = Resources::new(rng.gen_range(0..=4) as f64, 1.0);
                    ovl.release(ServerId(s as u32), r);
                    eff[s] += r;
                }
            }
        }
    }

    #[test]
    fn linear_guard_switches_query_path_and_restores() {
        let free = vec![Resources::new(2.0, 2.0), Resources::new(4.0, 4.0)];
        let idx = CapacityIndex::from_free(&free);
        let ovl = idx.begin_batch();
        let d = Resources::new(3.0, 3.0);
        let tree = ovl.first_fit(d);
        {
            let _g = LinearQueriesGuard::new();
            assert_eq!(ovl.first_fit(d), tree);
            assert_eq!(ovl.best_fit(d), Some(ServerId(1)));
            {
                let _g2 = LinearQueriesGuard::new();
            }
            assert!(super::linear_queries(), "inner guard must not disable");
        }
        assert!(!super::linear_queries(), "guard restores on drop");
    }

    #[test]
    fn zero_demand_finds_the_first_server_not_a_padding_leaf() {
        // n = 3 pads the tree to 4 leaves with zeros; a zero demand fits
        // the padding, so the descent must still land on a real server.
        let free = vec![Resources::ZERO, Resources::ZERO, Resources::ZERO];
        let idx = CapacityIndex::from_free(&free);
        let ovl = idx.begin_batch();
        assert_eq!(ovl.first_fit(Resources::ZERO), Some(ServerId(0)));
        assert_eq!(
            ovl.next_fit_at_or_after(2, Resources::ZERO),
            Some(ServerId(2))
        );
        assert_eq!(ovl.next_fit_at_or_after(3, Resources::ZERO), None);
        assert_eq!(ovl.best_fit(Resources::ZERO), Some(ServerId(0)));
        assert_eq!(ovl.first_fit(Resources::new(0.001, 0.0)), None);
    }
}
