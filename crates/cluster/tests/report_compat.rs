//! Serde backward compatibility for [`SimReport`]: archived reports from
//! older builds must keep deserializing as the struct grows. Fields
//! added after the seed (`sched_overhead` in PR 1, `faults` in PR 2,
//! `guard` in PR 3) are all `#[serde(default)]`, so their absence means
//! "all zero" — exactly what those runs would have recorded.

use dollymp_cluster::prelude::*;

/// A report as the pre-fault-injection builds wrote it: no `faults`, no
/// `guard`, no `sched_overhead`.
const PRE_PR2_JSON: &str = r#"{
    "scheduler": "dollymp2",
    "jobs": [{
        "id": 0,
        "label": "wordcount",
        "arrival": 0,
        "first_start": 1,
        "finish": 21,
        "flowtime": 21,
        "running_time": 20,
        "tasks": 8,
        "clone_copies": 2,
        "tasks_cloned": 2,
        "usage": 3.5
    }],
    "makespan": 21,
    "decision_points": 4,
    "scheduling_ns": 1200,
    "utilization": [],
    "timeline": []
}"#;

/// A report as PR 2 builds wrote it: `faults` present, `guard` absent.
const PRE_PR3_JSON: &str = r#"{
    "scheduler": "capacity",
    "jobs": [],
    "makespan": 0,
    "decision_points": 0,
    "scheduling_ns": 0,
    "sched_overhead": {
        "decision_points": 3,
        "total_ns": 300,
        "mean_ns": 100,
        "p99_ns": 130,
        "max_ns": 130
    },
    "faults": {
        "server_crashes": 2,
        "server_recoveries": 2,
        "server_degradations": 0,
        "copies_evicted": 5,
        "tasks_requeued": 3,
        "tasks_saved_by_clone": 2,
        "work_lost_norm": 0.75
    },
    "utilization": [],
    "timeline": []
}"#;

#[test]
fn pre_fault_injection_report_still_deserializes() {
    let r: SimReport = serde_json::from_str(PRE_PR2_JSON).expect("pre-PR2 JSON");
    assert_eq!(r.scheduler, "dollymp2");
    assert_eq!(r.jobs.len(), 1);
    assert_eq!(r.makespan, 21);
    assert_eq!(r.faults, FaultStats::default(), "missing faults ⇒ zeroed");
    assert_eq!(r.guard, GuardStats::default(), "missing guard ⇒ zeroed");
    assert!(r.guard.is_clean());
    assert_eq!(r.sched_overhead, SchedOverhead::default());
}

#[test]
fn pre_guard_report_still_deserializes() {
    let r: SimReport = serde_json::from_str(PRE_PR3_JSON).expect("pre-PR3 JSON");
    assert_eq!(r.scheduler, "capacity");
    assert_eq!(r.faults.server_crashes, 2);
    assert_eq!(r.faults.tasks_saved_by_clone, 2);
    assert_eq!(r.guard, GuardStats::default(), "missing guard ⇒ zeroed");
}

/// Property-based coverage of the schema-evolution contract: every
/// `#[serde(default)]` field (`sched_overhead`, `faults`, `guard`, and
/// the nested `sched_overhead.p50_ns`) must survive a round trip when
/// present and come back as its default when absent — i.e. old readers
/// tolerate new writers and new readers tolerate old writers, for
/// arbitrary counter values, not just the hand-picked fixtures above.
mod evolution {
    use super::*;
    use proptest::prelude::*;

    fn arb_overhead() -> impl Strategy<Value = SchedOverhead> {
        (
            1u64..100,
            0u64..1_000_000,
            0u64..10_000,
            0u64..10_000,
            0u64..50_000,
        )
            .prop_map(|(decision_points, total_ns, mean_ns, p50_ns, p99_ns)| {
                SchedOverhead {
                    decision_points,
                    total_ns,
                    mean_ns,
                    p50_ns,
                    p99_ns,
                    max_ns: p99_ns + 1,
                }
            })
    }

    fn arb_faults() -> impl Strategy<Value = FaultStats> {
        (
            0u64..50,
            0u64..50,
            0u64..50,
            0u64..200,
            0u64..50,
            0u64..50,
            0.0f64..10.0,
        )
            .prop_map(
                |(crashes, recoveries, degradations, evicted, saved, requeued, lost)| FaultStats {
                    server_crashes: crashes,
                    server_recoveries: recoveries,
                    server_degradations: degradations,
                    copies_evicted: evicted,
                    tasks_saved_by_clone: saved,
                    tasks_requeued: requeued,
                    work_lost_norm: lost,
                },
            )
    }

    fn arb_guard() -> impl Strategy<Value = GuardStats> {
        (
            (0u64..20, 0u64..20, 0u64..20, 0u64..20, 0u64..5, 0u64..5),
            (0u64..20, 0u64..20, 0u64..20, 0u64..20, 0u64..20, 0u64..200),
        )
            .prop_map(
                |((oc, uj, sd, dc, panics, overruns), (sr, fp, ct, df, dd, q))| GuardStats {
                    rejected_overcommit: oc,
                    rejected_unknown_job: uj,
                    rejected_server_down: sd,
                    rejected_duplicate_copy: dc,
                    policy_panics: panics,
                    budget_overruns: overruns,
                    stall_rescues: sr,
                    fallback_passes: fp,
                    clones_throttled: ct,
                    deferred: df,
                    deferrals_dropped: dd,
                    // Exercise both arms of the Option.
                    quarantined_at: if q % 2 == 0 { None } else { Some(q) },
                },
            )
    }

    fn arb_report() -> impl Strategy<Value = SimReport> {
        (arb_overhead(), arb_faults(), arb_guard(), 0u64..500).prop_map(
            |(sched_overhead, faults, guard, makespan)| SimReport {
                scheduler: "dollymp2".to_string(),
                jobs: Vec::new(),
                makespan,
                decision_points: sched_overhead.decision_points,
                scheduling_ns: sched_overhead.total_ns,
                sched_overhead,
                faults,
                guard,
                utilization: Vec::new(),
                timeline: Vec::new(),
            },
        )
    }

    /// Re-serialize `json` with the named top-level field removed — the
    /// shape an artifact written before that field existed would have.
    fn without_field(json: &str, field: &str) -> String {
        let mut v: serde_json::Value = serde_json::from_str(json).expect("reparse as value");
        match &mut v {
            serde_json::Value::Object(pairs) => pairs.retain(|(k, _)| k != field),
            other => panic!("report must serialize to an object, got {}", other.kind()),
        }
        serde_json::to_string(&v).expect("re-serialize")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// New → new: every optional section survives a round trip
        /// bit-for-bit when present.
        #[test]
        fn populated_optional_sections_round_trip(r in arb_report()) {
            let json = serde_json::to_string(&r).expect("serialize");
            let back: SimReport = serde_json::from_str(&json).expect("round trip");
            prop_assert_eq!(&back, &r);
        }

        /// Old → new: dropping any one optional section yields exactly
        /// the report with that section defaulted — nothing else moves.
        #[test]
        fn each_missing_optional_section_defaults(r in arb_report()) {
            let json = serde_json::to_string(&r).expect("serialize");

            let back: SimReport =
                serde_json::from_str(&without_field(&json, "sched_overhead")).expect("no overhead");
            let mut want = r.clone();
            want.sched_overhead = SchedOverhead::default();
            prop_assert_eq!(back, want);

            let back: SimReport =
                serde_json::from_str(&without_field(&json, "faults")).expect("no faults");
            let mut want = r.clone();
            want.faults = FaultStats::default();
            prop_assert_eq!(back, want);

            let back: SimReport =
                serde_json::from_str(&without_field(&json, "guard")).expect("no guard");
            let mut want = r.clone();
            want.guard = GuardStats::default();
            prop_assert_eq!(back, want);
        }

        /// Old → new, nested: a `sched_overhead` block written before
        /// `p50_ns` existed parses with only the median zeroed.
        #[test]
        fn missing_p50_defaults_inside_sched_overhead(r in arb_report()) {
            let mut v: serde_json::Value =
                serde_json::from_str(&serde_json::to_string(&r).expect("serialize"))
                    .expect("reparse");
            if let serde_json::Value::Object(pairs) = &mut v {
                for (k, val) in pairs.iter_mut() {
                    if k == "sched_overhead" {
                        if let serde_json::Value::Object(inner) = val {
                            inner.retain(|(ik, _)| ik != "p50_ns");
                        }
                    }
                }
            }
            let back: SimReport =
                serde_json::from_str(&serde_json::to_string(&v).expect("re-serialize"))
                    .expect("no p50");
            let mut want = r.clone();
            want.sched_overhead.p50_ns = 0;
            prop_assert_eq!(back, want);
        }
    }
}

#[test]
fn fresh_report_round_trips_with_guard_stats() {
    // A real run's report (guard counters included) must survive a
    // serialize → deserialize cycle bit-for-bit.
    let cluster = ClusterSpec::homogeneous(3, 4.0, 8.0);
    let jobs = vec![dollymp_core::job::JobSpec::single_phase(
        dollymp_core::job::JobId(0),
        4,
        dollymp_core::resources::Resources::new(1.0, 2.0),
        10.0,
        3.0,
    )];
    let sampler = DurationSampler::new(5, StragglerModel::ParetoFit);
    let mut policy = GuardedScheduler::new(FifoFirstFit);
    let report = simulate(
        &cluster,
        jobs,
        &sampler,
        &mut policy,
        &EngineConfig::default(),
    );
    let json = serde_json::to_string(&report).expect("serialize");
    let back: SimReport = serde_json::from_str(&json).expect("round trip");
    assert_eq!(report, back);
}
