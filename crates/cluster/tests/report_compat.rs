//! Serde backward compatibility for [`SimReport`]: archived reports from
//! older builds must keep deserializing as the struct grows. Fields
//! added after the seed (`sched_overhead` in PR 1, `faults` in PR 2,
//! `guard` in PR 3) are all `#[serde(default)]`, so their absence means
//! "all zero" — exactly what those runs would have recorded.

use dollymp_cluster::prelude::*;

/// A report as the pre-fault-injection builds wrote it: no `faults`, no
/// `guard`, no `sched_overhead`.
const PRE_PR2_JSON: &str = r#"{
    "scheduler": "dollymp2",
    "jobs": [{
        "id": 0,
        "label": "wordcount",
        "arrival": 0,
        "first_start": 1,
        "finish": 21,
        "flowtime": 21,
        "running_time": 20,
        "tasks": 8,
        "clone_copies": 2,
        "tasks_cloned": 2,
        "usage": 3.5
    }],
    "makespan": 21,
    "decision_points": 4,
    "scheduling_ns": 1200,
    "utilization": [],
    "timeline": []
}"#;

/// A report as PR 2 builds wrote it: `faults` present, `guard` absent.
const PRE_PR3_JSON: &str = r#"{
    "scheduler": "capacity",
    "jobs": [],
    "makespan": 0,
    "decision_points": 0,
    "scheduling_ns": 0,
    "sched_overhead": {
        "decision_points": 3,
        "total_ns": 300,
        "mean_ns": 100,
        "p99_ns": 130,
        "max_ns": 130
    },
    "faults": {
        "server_crashes": 2,
        "server_recoveries": 2,
        "server_degradations": 0,
        "copies_evicted": 5,
        "tasks_requeued": 3,
        "tasks_saved_by_clone": 2,
        "work_lost_norm": 0.75
    },
    "utilization": [],
    "timeline": []
}"#;

#[test]
fn pre_fault_injection_report_still_deserializes() {
    let r: SimReport = serde_json::from_str(PRE_PR2_JSON).expect("pre-PR2 JSON");
    assert_eq!(r.scheduler, "dollymp2");
    assert_eq!(r.jobs.len(), 1);
    assert_eq!(r.makespan, 21);
    assert_eq!(r.faults, FaultStats::default(), "missing faults ⇒ zeroed");
    assert_eq!(r.guard, GuardStats::default(), "missing guard ⇒ zeroed");
    assert!(r.guard.is_clean());
    assert_eq!(r.sched_overhead, SchedOverhead::default());
}

#[test]
fn pre_guard_report_still_deserializes() {
    let r: SimReport = serde_json::from_str(PRE_PR3_JSON).expect("pre-PR3 JSON");
    assert_eq!(r.scheduler, "capacity");
    assert_eq!(r.faults.server_crashes, 2);
    assert_eq!(r.faults.tasks_saved_by_clone, 2);
    assert_eq!(r.guard, GuardStats::default(), "missing guard ⇒ zeroed");
}

#[test]
fn fresh_report_round_trips_with_guard_stats() {
    // A real run's report (guard counters included) must survive a
    // serialize → deserialize cycle bit-for-bit.
    let cluster = ClusterSpec::homogeneous(3, 4.0, 8.0);
    let jobs = vec![dollymp_core::job::JobSpec::single_phase(
        dollymp_core::job::JobId(0),
        4,
        dollymp_core::resources::Resources::new(1.0, 2.0),
        10.0,
        3.0,
    )];
    let sampler = DurationSampler::new(5, StragglerModel::ParetoFit);
    let mut policy = GuardedScheduler::new(FifoFirstFit);
    let report = simulate(
        &cluster,
        jobs,
        &sampler,
        &mut policy,
        &EngineConfig::default(),
    );
    let json = serde_json::to_string(&report).expect("serialize");
    let back: SimReport = serde_json::from_str(&json).expect("round trip");
    assert_eq!(report, back);
}
