//! Engine fuzzing: a randomized (but validity-respecting) scheduler makes
//! chaotic placement and cloning decisions across many seeds; whatever it
//! does, the engine must uphold its conservation laws — every job
//! completes, no resource leaks (the engine debug-asserts free ==
//! capacity on drain), copy budgets hold, time never runs backwards.

use dollymp_cluster::prelude::*;
use dollymp_core::job::{JobId, JobSpec, PhaseId, PhaseSpec};
use dollymp_core::resources::Resources;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Places a random subset of ready tasks on random fitting servers and
/// occasionally clones random running tasks — always self-consistent
/// (tracks its own tentative commitments) and never stalls (it places at
/// least one task whenever nothing is running).
struct ChaosScheduler {
    rng: SmallRng,
    max_copies: u32,
}

impl ChaosScheduler {
    fn new(seed: u64) -> Self {
        ChaosScheduler {
            rng: SmallRng::seed_from_u64(seed),
            max_copies: 3,
        }
    }
}

impl Scheduler for ChaosScheduler {
    fn name(&self) -> String {
        "chaos".into()
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        let mut free: Vec<Resources> = view.servers().map(|(_, _, f)| f).collect();
        let mut out = Vec::new();
        let mut placed_any_running = view.jobs().any(|j| !j.running_tasks().is_empty());

        // Primaries: each ready task is placed with probability 0.7, on a
        // uniformly random fitting server.
        for job in view.jobs() {
            for task in job.ready_tasks() {
                let demand = job.spec().phase(task.phase).demand;
                let must_place = !placed_any_running && out.is_empty();
                if !must_place && self.rng.gen_bool(0.3) {
                    continue;
                }
                let fitting: Vec<usize> = (0..free.len())
                    .filter(|&s| demand.fits_in(free[s]))
                    .collect();
                if let Some(&s) = fitting.get(self.rng.gen_range(0..fitting.len().max(1))) {
                    free[s] -= demand;
                    out.push(Assignment {
                        task,
                        server: ServerId(s as u32),
                        kind: CopyKind::Primary,
                    });
                    placed_any_running = true;
                }
            }
        }
        // Clones: random running tasks under the copy budget.
        for job in view.jobs() {
            for task in job.running_tasks() {
                if job.task(task.phase, task.task).live_copies() >= self.max_copies {
                    continue;
                }
                if self.rng.gen_bool(0.7) {
                    continue;
                }
                let demand = job.spec().phase(task.phase).demand;
                if let Some(s) = (0..free.len()).find(|&s| demand.fits_in(free[s])) {
                    free[s] -= demand;
                    out.push(Assignment {
                        task,
                        server: ServerId(s as u32),
                        kind: CopyKind::Clone,
                    });
                }
            }
        }
        out
    }
}

fn chaotic_workload(seed: u64, njobs: u64) -> Vec<JobSpec> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..njobs)
        .map(|i| {
            let phases = rng.gen_range(1..=3);
            let mut b = JobSpec::builder(JobId(i)).arrival(rng.gen_range(0..30));
            for p in 0..phases {
                let spec = PhaseSpec::new(
                    rng.gen_range(1..=5),
                    Resources::new(
                        rng.gen_range(1..=4) as f64 * 0.5,
                        rng.gen_range(1..=4) as f64,
                    ),
                    rng.gen_range(1.0..12.0),
                    rng.gen_range(0.0..6.0),
                )
                .with_parents(if p == 0 { vec![] } else { vec![PhaseId(p - 1)] });
                b = b.phase(spec);
            }
            b.build().expect("chain is valid")
        })
        .collect()
}

/// Random but well-formed fault schedule: per-server sequences of
/// non-overlapping crash→restore windows (every crash is eventually
/// repaired, so runs always drain) plus occasional fail-slow onsets.
fn chaotic_faults(seed: u64, nservers: u32, horizon: dollymp_core::time::Time) -> FaultTimeline {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xFA17);
    let mut events = Vec::new();
    for s in 0..nservers {
        let mut t = rng.gen_range(1..horizon / 2);
        for _ in 0..rng.gen_range(0..=2u32) {
            let len: u64 = rng.gen_range(1..=8);
            events.push(TimedFault {
                at: t,
                event: FaultEvent::Crash(ServerId(s)),
            });
            events.push(TimedFault {
                at: t + len,
                event: FaultEvent::Restore(ServerId(s)),
            });
            t += len + rng.gen_range(1..=12u64);
        }
        if rng.gen_bool(0.3) {
            events.push(TimedFault {
                at: rng.gen_range(0..horizon),
                event: FaultEvent::Degrade(ServerId(s), rng.gen_range(0.25..=1.0)),
            });
        }
    }
    FaultTimeline::new(events)
}

/// Zero the wall-clock overhead fields so reports can be compared
/// byte-for-byte (everything else is deterministic).
fn scrub_walltime(mut r: SimReport) -> SimReport {
    r.scheduling_ns = 0;
    r.sched_overhead = Default::default();
    r
}

/// Merged per-server down windows `[crash, restore)` implied by a
/// timeline (a window stays open while the per-server down-count is
/// positive).
fn down_windows(faults: &FaultTimeline, nservers: u32) -> Vec<Vec<(u64, u64)>> {
    let mut depth = vec![0u32; nservers as usize];
    let mut open = vec![0u64; nservers as usize];
    let mut windows = vec![Vec::new(); nservers as usize];
    for f in faults.events() {
        let s = match f.event {
            FaultEvent::Crash(s) => {
                let i = s.0 as usize;
                depth[i] += 1;
                if depth[i] == 1 {
                    open[i] = f.at;
                }
                continue;
            }
            FaultEvent::Restore(s) => s,
            FaultEvent::Degrade(..) => continue,
        };
        let i = s.0 as usize;
        depth[i] -= 1;
        if depth[i] == 0 {
            windows[i].push((open[i], f.at));
        }
    }
    for (i, &d) in depth.iter().enumerate() {
        if d > 0 {
            windows[i].push((open[i], u64::MAX));
        }
    }
    windows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the chaos scheduler does, the engine's invariants hold.
    #[test]
    fn engine_survives_chaotic_scheduling(seed in 0u64..10_000) {
        let cluster = ClusterSpec::new(vec![
            ServerSpec::new(4.0, 8.0),
            ServerSpec::new(2.0, 4.0).with_speed(0.5),
            ServerSpec::new(8.0, 16.0).with_speed(1.5),
        ]);
        let jobs = chaotic_workload(seed, 12);
        let total_tasks: u64 = jobs.iter().map(|j| j.total_tasks()).sum();
        let sampler = DurationSampler::new(seed, StragglerModel::ParetoFit);
        let mut chaos = ChaosScheduler::new(seed ^ 0xC0FFEE);
        let r = simulate(&cluster, jobs.clone(), &sampler, &mut chaos, &EngineConfig::default());

        prop_assert_eq!(r.jobs.len(), jobs.len());
        let mut seen = std::collections::HashSet::new();
        for m in &r.jobs {
            prop_assert!(seen.insert(m.id), "job completed twice");
            prop_assert!(m.first_start >= m.arrival);
            prop_assert!(m.finish > m.first_start);
            prop_assert!(m.usage > 0.0);
            prop_assert!(m.tasks_cloned <= m.tasks);
            prop_assert!(m.clone_copies <= m.tasks * 2, "≤ 2 clones per task");
        }
        let reported_tasks: u64 = r.jobs.iter().map(|m| m.tasks).sum();
        prop_assert_eq!(reported_tasks, total_tasks);
        prop_assert_eq!(r.makespan, r.jobs.iter().map(|m| m.finish).max().unwrap());
    }

    /// Chaos with a periodic tick behaves identically w.r.t. invariants.
    #[test]
    fn engine_survives_chaos_with_ticks(seed in 0u64..3_000) {
        let cluster = ClusterSpec::homogeneous(3, 6.0, 12.0);
        let jobs = chaotic_workload(seed, 8);
        let sampler = DurationSampler::new(seed, StragglerModel::google_traces());
        let cfg = EngineConfig { tick: Some(2), ..Default::default() };
        let mut chaos = ChaosScheduler::new(seed);
        let r = simulate(&cluster, jobs.clone(), &sampler, &mut chaos, &cfg);
        prop_assert_eq!(r.jobs.len(), jobs.len());
    }

    /// Chaotic scheduling under chaotic faults: every job still
    /// completes, the fault counters are mutually consistent, no copy
    /// ever runs inside a server's down window, and the whole run is a
    /// deterministic function of (seed, timeline).
    #[test]
    fn engine_upholds_invariants_under_faults(seed in 0u64..5_000) {
        let cluster = ClusterSpec::new(vec![
            ServerSpec::new(4.0, 8.0),
            ServerSpec::new(2.0, 4.0).with_speed(0.5),
            ServerSpec::new(8.0, 16.0).with_speed(1.5),
        ]);
        let jobs = chaotic_workload(seed, 10);
        let faults = chaotic_faults(seed, 3, 80);
        let sampler = DurationSampler::new(seed, StragglerModel::ParetoFit);
        let cfg = EngineConfig { record_timeline: true, ..Default::default() };

        let run = |s: u64| {
            let mut chaos = ChaosScheduler::new(s ^ 0xC0FFEE);
            scrub_walltime(simulate_with_faults(
                &cluster, jobs.clone(), &sampler, &mut chaos, &cfg, &faults,
            ))
        };
        let r = run(seed);

        // Work conservation: faults delay jobs, they never lose them.
        prop_assert_eq!(r.jobs.len(), jobs.len());
        let total_tasks: u64 = jobs.iter().map(|j| j.total_tasks()).sum();
        let reported_tasks: u64 = r.jobs.iter().map(|m| m.tasks).sum();
        prop_assert_eq!(reported_tasks, total_tasks);

        // Counter consistency.
        let f = &r.faults;
        prop_assert!(f.tasks_requeued <= f.copies_evicted, "a requeue needs an eviction");
        prop_assert!(f.tasks_saved_by_clone + f.tasks_requeued <= f.copies_evicted);
        prop_assert!(f.server_recoveries <= f.server_crashes);
        prop_assert!(f.server_crashes <= faults.crash_count() as u64);
        prop_assert!(f.work_lost_norm.is_finite() && f.work_lost_norm >= 0.0);
        prop_assert!((f.copies_evicted == 0) == (f.work_lost_norm == 0.0));

        // No copy overlaps a down window of its server: a span may end
        // exactly at the crash slot (evicted or just-finished) and may
        // start exactly at the restore slot, never in between.
        let windows = down_windows(&faults, 3);
        for span in &r.timeline {
            for &(c, rst) in &windows[span.server.0 as usize] {
                prop_assert!(
                    span.end <= c || span.start >= rst,
                    "copy {:?} [{}, {}) on server {} overlaps down window [{}, {})",
                    span.task, span.start, span.end, span.server.0, c, rst
                );
            }
        }

        // Determinism: an identical rerun reproduces the report bit-wise.
        let r2 = run(seed);
        prop_assert_eq!(
            serde_json::to_string(&r).unwrap(),
            serde_json::to_string(&r2).unwrap()
        );
    }

    /// A zero-fault run through `simulate_with_faults` is byte-identical
    /// to the plain `simulate` path — fault support costs nothing when
    /// unused.
    #[test]
    fn empty_fault_timeline_is_byte_identical(seed in 0u64..3_000) {
        let cluster = ClusterSpec::homogeneous(3, 6.0, 12.0);
        let jobs = chaotic_workload(seed, 8);
        let sampler = DurationSampler::new(seed, StragglerModel::google_traces());
        let cfg = EngineConfig { record_timeline: true, ..Default::default() };
        let mut a = ChaosScheduler::new(seed);
        let plain = scrub_walltime(simulate(&cluster, jobs.clone(), &sampler, &mut a, &cfg));
        let mut b = ChaosScheduler::new(seed);
        let faulty = scrub_walltime(simulate_with_faults(
            &cluster, jobs.clone(), &sampler, &mut b, &cfg, &FaultTimeline::empty(),
        ));
        prop_assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&faulty).unwrap()
        );
    }
}
