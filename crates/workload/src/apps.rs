//! Application job models: **WordCount** and **PageRank**, the two
//! applications of the paper's deployment workload (§6.2).
//!
//! The paper characterizes jobs only through their phase structure and
//! task statistics, so these models expose exactly that:
//!
//! * WordCount — a classic two-phase MapReduce job: one map task per
//!   input block, a reduce phase a quarter the size.
//! * PageRank — an iterative job: a load phase, `iterations` compute
//!   phases in a chain, and a small finalize phase.
//!
//! All durations are in slots (5-second slots by default); per-job
//! jitter is derived deterministically from `(seed, job id)` so a
//! workload is reproducible and identical across schedulers.

use dollymp_core::job::{JobId, JobSpec, PhaseSpec};
use dollymp_core::resources::Resources;
use dollymp_core::time::Time;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Map tasks per GB of input (≈ one task per 128 MB block).
const MAP_TASKS_PER_GB: f64 = 8.0;

/// Deterministic per-job jitter factor in `[1−j, 1+j]`.
fn jitter(rng: &mut SmallRng, j: f64) -> f64 {
    1.0 + rng.gen_range(-j..=j)
}

/// Build a WordCount job.
///
/// * `input_gb` — input data size; task count scales linearly.
/// * `arrival` — arrival slot.
/// * `seed` — workload seed (mixed with the job id for jitter).
///
/// ```
/// use dollymp_workload::apps::wordcount;
/// use dollymp_core::job::JobId;
/// let j = wordcount(JobId(1), 0, 4.0, 42);
/// assert_eq!(j.num_phases(), 2);
/// assert!(j.total_tasks() >= 8 * 4 / 2); // ≈ 8 maps/GB + reduces
/// assert_eq!(j.label, "wordcount");
/// ```
pub fn wordcount(id: JobId, arrival: Time, input_gb: f64, seed: u64) -> JobSpec {
    let mut rng = SmallRng::seed_from_u64(seed ^ id.0.wrapping_mul(0x9E3779B97F4A7C15));
    let maps = ((input_gb * MAP_TASKS_PER_GB).round() as u32).max(1);
    let reduces = (maps / 4).max(1);
    let theta_map = 10.0 * jitter(&mut rng, 0.2);
    let theta_red = 16.0 * jitter(&mut rng, 0.2);
    JobSpec::builder(id)
        .arrival(arrival)
        .label("wordcount")
        .phase(PhaseSpec::new(
            maps,
            Resources::new(1.0, 2.0),
            theta_map,
            0.4 * theta_map,
        ))
        .phase(
            PhaseSpec::new(
                reduces,
                Resources::new(1.0, 4.0),
                theta_red,
                0.4 * theta_red,
            )
            .with_parents(vec![dollymp_core::job::PhaseId(0)]),
        )
        .build()
        .expect("wordcount is a valid 2-phase chain")
}

/// Build a PageRank job with the given number of iterations.
///
/// The DAG is a chain: load → iterate × `iterations` → finalize.
///
/// ```
/// use dollymp_workload::apps::pagerank;
/// use dollymp_core::job::JobId;
/// let j = pagerank(JobId(2), 10, 10.0, 3, 42);
/// assert_eq!(j.num_phases(), 5); // load + 3 iterations + finalize
/// assert_eq!(j.label, "pagerank");
/// assert_eq!(j.arrival, 10);
/// ```
pub fn pagerank(id: JobId, arrival: Time, input_gb: f64, iterations: u32, seed: u64) -> JobSpec {
    let mut rng = SmallRng::seed_from_u64(seed ^ id.0.wrapping_mul(0xD6E8FEB86659FD93));
    let width = ((input_gb * 6.0).round() as u32).max(1);
    let mut b = JobSpec::builder(id).arrival(arrival).label("pagerank");
    let load_theta = 10.0 * jitter(&mut rng, 0.2);
    b = b.phase(PhaseSpec::new(
        width,
        Resources::new(1.0, 3.0),
        load_theta,
        0.4 * load_theta,
    ));
    for i in 0..iterations.max(1) {
        let theta = 8.0 * jitter(&mut rng, 0.2);
        b = b.phase(
            PhaseSpec::new(width, Resources::new(2.0, 2.0), theta, 0.5 * theta)
                .with_parents(vec![dollymp_core::job::PhaseId(i)]),
        );
    }
    let fin_theta = 6.0 * jitter(&mut rng, 0.2);
    b = b.phase(
        PhaseSpec::new(
            (width / 4).max(1),
            Resources::new(1.0, 2.0),
            fin_theta,
            0.3 * fin_theta,
        )
        .with_parents(vec![dollymp_core::job::PhaseId(iterations.max(1))]),
    );
    b.build().expect("pagerank is a valid chain")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wordcount_scales_with_input() {
        let small = wordcount(JobId(0), 0, 1.0, 1);
        let big = wordcount(JobId(0), 0, 10.0, 1);
        assert!(big.total_tasks() > 5 * small.total_tasks());
        assert_eq!(small.phases()[0].ntasks, 8);
        assert_eq!(small.phases()[1].ntasks, 2);
    }

    #[test]
    fn wordcount_is_deterministic_per_seed_and_id() {
        assert_eq!(
            wordcount(JobId(3), 0, 4.0, 7),
            wordcount(JobId(3), 0, 4.0, 7)
        );
        assert_ne!(
            wordcount(JobId(3), 0, 4.0, 7).phases()[0].theta,
            wordcount(JobId(4), 0, 4.0, 7).phases()[0].theta
        );
    }

    #[test]
    fn pagerank_chain_structure() {
        let j = pagerank(JobId(1), 0, 1.0, 4, 9);
        assert_eq!(j.num_phases(), 6);
        // Every non-root phase depends on exactly the previous one.
        for (i, p) in j.phases().iter().enumerate().skip(1) {
            assert_eq!(p.parents, vec![dollymp_core::job::PhaseId(i as u32 - 1)]);
        }
        // Critical path covers all phases.
        let e: f64 = j.phases().iter().map(|p| p.effective_time(0.0)).sum();
        assert!((j.effective_time(0.0) - e).abs() < 1e-9);
    }

    #[test]
    fn tiny_inputs_still_valid() {
        let j = wordcount(JobId(0), 0, 0.01, 1);
        assert!(j.total_tasks() >= 2);
        let p = pagerank(JobId(0), 0, 0.01, 0, 1);
        assert!(p.num_phases() >= 3, "iterations clamped to ≥ 1");
    }
}
