//! Workload summarization: the statistics the paper quotes about its
//! traces (job-size distribution, per-label composition, offered load),
//! computed for any generated or loaded workload. Used by the CLI and the
//! experiment binaries to sanity-check that a workload has the intended
//! shape before burning simulation time on it.

use dollymp_core::job::JobSpec;
use dollymp_core::resources::Resources;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregate description of one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// Number of jobs.
    pub jobs: usize,
    /// Total task count across jobs.
    pub tasks: u64,
    /// Job counts per application label.
    pub per_label: BTreeMap<String, usize>,
    /// Job size (task count) quantiles: (p50, p90, p99, max).
    pub size_quantiles: (u64, u64, u64, u64),
    /// Fraction of jobs with ≤ 10 tasks ("small jobs"; the Google trace
    /// analyses report ~95 % small jobs by a duration criterion — ours is
    /// the size criterion used in §6.3).
    pub small_job_fraction: f64,
    /// Span of the arrival process in slots (last − first arrival).
    pub arrival_span: u64,
    /// Total dominant-share work `Σ_j v_j` (Eq. 14 with `w = 0`),
    /// in cluster-fraction × slots, relative to `totals`.
    pub dominant_work: f64,
    /// Offered load: dominant work / arrival span (∞-safe: 0 when the
    /// span is zero).
    pub offered_load: f64,
}

impl WorkloadStats {
    /// Compute statistics against a cluster's totals.
    pub fn compute(jobs: &[JobSpec], totals: Resources) -> WorkloadStats {
        let mut per_label: BTreeMap<String, usize> = BTreeMap::new();
        let mut sizes: Vec<u64> = Vec::with_capacity(jobs.len());
        let mut dominant_work = 0.0;
        for j in jobs {
            *per_label.entry(j.label.clone()).or_insert(0) += 1;
            sizes.push(j.total_tasks());
            dominant_work += j.volume(totals, 0.0);
        }
        sizes.sort_unstable();
        let q = |p: f64| -> u64 {
            if sizes.is_empty() {
                return 0;
            }
            let idx = ((p * sizes.len() as f64).ceil() as usize).clamp(1, sizes.len()) - 1;
            sizes[idx]
        };
        let small = sizes.iter().filter(|&&s| s <= 10).count();
        let first = jobs.iter().map(|j| j.arrival).min().unwrap_or(0);
        let last = jobs.iter().map(|j| j.arrival).max().unwrap_or(0);
        let span = last.saturating_sub(first);
        WorkloadStats {
            jobs: jobs.len(),
            tasks: sizes.iter().sum(),
            per_label,
            size_quantiles: (q(0.5), q(0.9), q(0.99), sizes.last().copied().unwrap_or(0)),
            small_job_fraction: if sizes.is_empty() {
                0.0
            } else {
                small as f64 / sizes.len() as f64
            },
            arrival_span: span,
            dominant_work,
            offered_load: if span > 0 {
                dominant_work / span as f64
            } else {
                0.0
            },
        }
    }

    /// A one-screen human-readable rendering.
    pub fn render(&self) -> String {
        let labels: Vec<String> = self
            .per_label
            .iter()
            .map(|(l, n)| format!("{l}:{n}"))
            .collect();
        format!(
            "{} jobs / {} tasks [{}]\n\
             job sizes: p50={} p90={} p99={} max={} | small (≤10 tasks): {:.0}%\n\
             arrivals span {} slots | dominant work {:.2} cluster-slots | offered load {:.1}%",
            self.jobs,
            self.tasks,
            labels.join(", "),
            self.size_quantiles.0,
            self.size_quantiles.1,
            self.size_quantiles.2,
            self.size_quantiles.3,
            self.small_job_fraction * 100.0,
            self.arrival_span,
            self.dominant_work,
            self.offered_load * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::google::{generate, GoogleConfig};
    use dollymp_core::job::JobId;

    #[test]
    fn empty_workload() {
        let s = WorkloadStats::compute(&[], Resources::new(10.0, 10.0));
        assert_eq!(s.jobs, 0);
        assert_eq!(s.tasks, 0);
        assert_eq!(s.offered_load, 0.0);
        assert_eq!(s.size_quantiles, (0, 0, 0, 0));
    }

    #[test]
    fn hand_checked_small_workload() {
        let totals = Resources::new(10.0, 10.0);
        let jobs = vec![
            JobSpec::builder(JobId(0))
                .arrival(0)
                .label("a")
                .phase(dollymp_core::job::PhaseSpec::new(
                    2,
                    Resources::new(1.0, 1.0),
                    5.0,
                    0.0,
                ))
                .build()
                .unwrap(),
            JobSpec::builder(JobId(1))
                .arrival(10)
                .label("b")
                .phase(dollymp_core::job::PhaseSpec::new(
                    20,
                    Resources::new(1.0, 1.0),
                    5.0,
                    0.0,
                ))
                .build()
                .unwrap(),
        ];
        let s = WorkloadStats::compute(&jobs, totals);
        assert_eq!(s.jobs, 2);
        assert_eq!(s.tasks, 22);
        assert_eq!(s.per_label["a"], 1);
        assert_eq!(s.per_label["b"], 1);
        assert_eq!(s.small_job_fraction, 0.5);
        assert_eq!(s.arrival_span, 10);
        // v = 2·5·0.1 + 20·5·0.1 = 11; load = 11/10.
        assert!((s.dominant_work - 11.0).abs() < 1e-12);
        assert!((s.offered_load - 1.1).abs() < 1e-12);
        assert_eq!(s.size_quantiles.3, 20);
    }

    #[test]
    fn google_workload_matches_design_targets() {
        let jobs = generate(&GoogleConfig {
            njobs: 2000,
            ..Default::default()
        });
        let s = WorkloadStats::compute(&jobs, Resources::new(10_000.0, 20_000.0));
        assert!((0.55..0.85).contains(&s.small_job_fraction));
        assert!(s.size_quantiles.3 > 100, "heavy tail present");
        assert!(s.size_quantiles.0 <= 20, "median job is small");
        let rendered = s.render();
        assert!(rendered.contains("2000 jobs"));
        assert!(rendered.contains("google"));
    }
}
