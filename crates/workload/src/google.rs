//! Synthetic Google-trace-like workload generator.
//!
//! The paper samples its workload suite "uniformly at random from the
//! Google traces \[37\]", which provide per-job task counts and per-task
//! CPU/memory demands. The raw traces are not redistributable here, so
//! this generator synthesizes jobs matching the statistics the paper and
//! the trace analyses it cites report (see DESIGN.md §2):
//!
//! * **95 % of jobs are small** (Reiss et al.): task counts are
//!   heavy-tailed — most jobs have a handful of tasks, a few have
//!   hundreds;
//! * demands come from a discrete menu of container shapes;
//! * task durations are heavy-tailed within a phase (stragglers up to
//!   20× are injected by the simulator's straggler model on top);
//! * each job is map/reduce-shaped: "based on the task number, we
//!   generate a fixed portion of map tasks and reduce tasks" (§6.2).

use dollymp_core::job::{JobId, JobSpec, PhaseId, PhaseSpec};
use dollymp_core::resources::Resources;
use dollymp_core::time::Time;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic Google-like workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GoogleConfig {
    /// Number of jobs to generate.
    pub njobs: usize,
    /// Mean inter-arrival gap in slots (Poisson process).
    pub mean_gap_slots: f64,
    /// RNG seed (jobs and arrivals are deterministic per seed).
    pub seed: u64,
    /// Fraction of a job's tasks that are reduces (the paper's "fixed
    /// portion").
    pub reduce_fraction: f64,
    /// Coefficient of variation of task durations within a phase.
    pub duration_cv: f64,
}

impl Default for GoogleConfig {
    fn default() -> Self {
        GoogleConfig {
            njobs: 1000,
            mean_gap_slots: 4.0,
            seed: 2022,
            reduce_fraction: 0.2,
            duration_cv: 0.6,
        }
    }
}

/// Container shapes seen in the traces (cores, GB).
const SHAPES: &[(f64, f64)] = &[
    (0.5, 1.0),
    (1.0, 2.0),
    (1.0, 4.0),
    (2.0, 4.0),
    (2.0, 8.0),
    (4.0, 8.0),
];

/// Draw a heavy-tailed job size (total task count).
fn job_size(rng: &mut SmallRng) -> u32 {
    let p: f64 = rng.gen();
    if p < 0.70 {
        rng.gen_range(1..=8) // small interactive jobs
    } else if p < 0.95 {
        rng.gen_range(9..=60) // medium batch
    } else {
        rng.gen_range(61..=400) // the heavy tail
    }
}

/// Generate the workload: map/reduce jobs with Poisson arrivals.
///
/// ```
/// use dollymp_workload::google::{generate, GoogleConfig};
/// let jobs = generate(&GoogleConfig { njobs: 50, ..Default::default() });
/// assert_eq!(jobs.len(), 50);
/// assert!(jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
/// ```
pub fn generate(cfg: &GoogleConfig) -> Vec<JobSpec> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let arrivals = crate::arrivals::poisson(cfg.njobs, cfg.mean_gap_slots, cfg.seed ^ 0xA5A5);
    let mut jobs = Vec::with_capacity(cfg.njobs);
    for (i, &arrival) in arrivals.iter().enumerate() {
        jobs.push(generate_one(JobId(i as u64), arrival, cfg, &mut rng));
    }
    jobs
}

fn generate_one(id: JobId, arrival: Time, cfg: &GoogleConfig, rng: &mut SmallRng) -> JobSpec {
    let total = job_size(rng);
    let reduces = ((total as f64 * cfg.reduce_fraction).round() as u32).clamp(1, total.max(1));
    let maps = (total - reduces.min(total)).max(1);
    let &(mc, mm) = &SHAPES[rng.gen_range(0..SHAPES.len())];
    let &(rc, rm) = &SHAPES[rng.gen_range(0..SHAPES.len())];
    // Small jobs tend to be short: scale θ with log(size) plus noise.
    let base = 2.0 + (total as f64).ln() * rng.gen_range(1.0..3.0);
    let theta_map = base * rng.gen_range(0.7..1.3);
    let theta_red = base * rng.gen_range(0.9..1.8);
    JobSpec::builder(id)
        .arrival(arrival)
        .label("google")
        .phase(PhaseSpec::new(
            maps,
            Resources::new(mc, mm),
            theta_map,
            cfg.duration_cv * theta_map,
        ))
        .phase(
            PhaseSpec::new(
                reduces,
                Resources::new(rc, rm),
                theta_red,
                cfg.duration_cv * theta_red,
            )
            .with_parents(vec![PhaseId(0)]),
        )
        .build()
        .expect("generated 2-phase chain is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = GoogleConfig {
            njobs: 30,
            ..Default::default()
        };
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = GoogleConfig { seed: 1, ..cfg };
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn sizes_are_heavy_tailed() {
        let cfg = GoogleConfig {
            njobs: 2000,
            ..Default::default()
        };
        let jobs = generate(&cfg);
        let sizes: Vec<u64> = jobs.iter().map(|j| j.total_tasks()).collect();
        let small = sizes.iter().filter(|&&s| s <= 10).count() as f64 / sizes.len() as f64;
        assert!(
            (0.55..0.85).contains(&small),
            "≈ 70 % small jobs, got {small}"
        );
        let max = *sizes.iter().max().unwrap();
        assert!(max > 100, "tail present, max = {max}");
    }

    #[test]
    fn every_job_is_map_reduce_shaped() {
        let jobs = generate(&GoogleConfig {
            njobs: 100,
            ..Default::default()
        });
        for j in &jobs {
            assert_eq!(j.num_phases(), 2);
            assert!(j.phases()[1].parents.contains(&PhaseId(0)));
            assert!(j.phases()[0].ntasks >= 1);
            assert!(j.phases()[1].ntasks >= 1);
        }
    }

    #[test]
    fn ids_are_sequential_and_arrivals_sorted() {
        let jobs = generate(&GoogleConfig {
            njobs: 40,
            ..Default::default()
        });
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, JobId(i as u64));
        }
        assert!(jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }
}
