//! The paper's concrete experiment workloads (§6.2), expressed in slots
//! (5-second slots, [`SlotClock::paper_default`]):
//!
//! * [`light_load`] — 100 jobs, half PageRank (half of those with 10 GB
//!   input, half 1 GB) and half WordCount (10 GB), inter-arrival ≈ 200 s
//!   (Fig. 4);
//! * [`heavy_pagerank`] — 500 PageRank jobs, inter-arrival ≈ 20 s
//!   (Figs. 5a/6a/7a);
//! * [`heavy_wordcount`] — 500 WordCount jobs, inter-arrival ≈ 20 s
//!   (Figs. 5b/6b/7b);
//! * [`fig1_wordcount`] — the §2 motivation: one 4 GB WordCount job
//!   repeated 8 times back-to-back (we model it as 8 jobs with huge
//!   gaps so they never overlap).
//!
//! All suites scale down by an optional `scale` factor so tests and CI
//! can run the same shape at a fraction of the size.

use crate::apps::{pagerank, wordcount};
use dollymp_core::job::{JobId, JobSpec};
use dollymp_core::time::SlotClock;

/// Convert a seconds gap to slots under the paper's 5 s slot.
fn gap_slots(secs: f64) -> u64 {
    SlotClock::paper_default().duration_from_secs(secs)
}

/// The lightly-loaded 100-job mix of §6.2.1 (Fig. 4). `scale` divides the
/// job count (1 = the paper's 100 jobs; 4 → 25 jobs for quick runs).
pub fn light_load(seed: u64, scale: usize) -> Vec<JobSpec> {
    mix_suite(seed, 100 / scale.max(1), gap_slots(200.0))
}

/// A PageRank/WordCount mix with the given size and inter-arrival gap.
fn mix_suite(seed: u64, njobs: usize, gap: u64) -> Vec<JobSpec> {
    let arrivals = crate::arrivals::poisson(njobs, gap as f64, seed ^ 0x11C0);
    (0..njobs)
        .map(|i| {
            let id = JobId(i as u64);
            let arrival = arrivals[i];
            if i % 2 == 0 {
                // Half PageRank; of those, alternate 10 GB and 1 GB input.
                let gb = if i % 4 == 0 { 10.0 } else { 1.0 };
                pagerank(id, arrival, gb, 3, seed)
            } else {
                wordcount(id, arrival, 10.0, seed)
            }
        })
        .collect()
}

/// The heavily-loaded PageRank experiment of §6.2.2 (500 jobs,
/// inter-arrival ≈ 20 s). `scale` divides the job count.
pub fn heavy_pagerank(seed: u64, scale: usize) -> Vec<JobSpec> {
    let njobs = 500 / scale.max(1);
    let arrivals = crate::arrivals::poisson(njobs, gap_slots(20.0) as f64, seed ^ 0x55AA);
    (0..njobs)
        .map(|i| {
            let gb = if i % 2 == 0 { 10.0 } else { 1.0 };
            pagerank(JobId(i as u64), arrivals[i], gb, 3, seed)
        })
        .collect()
}

/// The heavily-loaded WordCount experiment of §6.2.2 (500 jobs,
/// inter-arrival ≈ 20 s). `scale` divides the job count.
pub fn heavy_wordcount(seed: u64, scale: usize) -> Vec<JobSpec> {
    let njobs = 500 / scale.max(1);
    let arrivals = crate::arrivals::poisson(njobs, gap_slots(20.0) as f64, seed ^ 0x77EE);
    (0..njobs)
        .map(|i| wordcount(JobId(i as u64), arrivals[i], 10.0, seed))
        .collect()
}

/// The §2 motivation workload (Fig. 1): the same 4 GB WordCount job run 8
/// times, each submitted only after the previous one is (comfortably)
/// done — modelled with a gap long enough that runs never overlap.
pub fn fig1_wordcount(seed: u64) -> Vec<JobSpec> {
    (0..8u64)
        .map(|i| {
            // Same job statistics each run (same seed ⊕ fixed id salt);
            // different arrival, and a distinct JobId per run so the
            // simulator treats them as separate jobs with fresh duration
            // draws.
            let mut j = wordcount(JobId(i), 0, 4.0, seed);
            j = JobSpec::builder(JobId(i))
                .arrival(i * 10_000)
                .label("wordcount")
                .phase(j.phases()[0].clone())
                .phase(j.phases()[1].clone())
                .build()
                .expect("rebuilt wordcount valid");
            j
        })
        .collect()
}

/// A recurring-application workload for the §5.2 estimation experiments:
/// `apps` distinct applications (labels `app0…`), each submitted `runs`
/// times with identical structure, arrivals Poisson with the given mean
/// gap. Recurring labels are what lets the YARN history registry build
/// useful priors.
pub fn recurring(seed: u64, apps: usize, runs: usize, gap: u64) -> Vec<JobSpec> {
    let n = apps.max(1) * runs.max(1);
    let arrivals = crate::arrivals::poisson(n, gap as f64, seed ^ 0x9E37);
    (0..n)
        .map(|i| {
            let app = i % apps.max(1);
            // Structure depends on the app only (identical across runs):
            // derive from a wordcount of app-specific size.
            let gb = 2.0 + 2.0 * app as f64;
            let template = wordcount(JobId(app as u64), 0, gb, seed);
            JobSpec::builder(JobId(i as u64))
                .arrival(arrivals[i])
                .label(format!("app{app}"))
                .phase(template.phases()[0].clone())
                .phase(template.phases()[1].clone())
                .build()
                .expect("rebuilt chain valid")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_load_composition() {
        let jobs = light_load(1, 1);
        assert_eq!(jobs.len(), 100);
        let pr = jobs.iter().filter(|j| j.label == "pagerank").count();
        let wc = jobs.iter().filter(|j| j.label == "wordcount").count();
        assert_eq!(pr, 50);
        assert_eq!(wc, 50);
        // Half the PageRank jobs are big (10 GB → 60-wide phases).
        let big = jobs
            .iter()
            .filter(|j| j.label == "pagerank" && j.phases()[0].ntasks == 60)
            .count();
        assert_eq!(big, 25);
    }

    #[test]
    fn scaling_reduces_job_count() {
        assert_eq!(light_load(1, 4).len(), 25);
        assert_eq!(heavy_pagerank(1, 10).len(), 50);
        assert_eq!(heavy_wordcount(1, 10).len(), 50);
    }

    #[test]
    fn heavy_suites_have_tight_arrivals() {
        let pr = heavy_pagerank(1, 1);
        assert_eq!(pr.len(), 500);
        let span = pr.last().unwrap().arrival as f64;
        let mean_gap = span / (pr.len() - 1) as f64;
        // ≈ 4 slots (20 s at 5 s/slot).
        assert!((mean_gap - 4.0).abs() < 1.0, "mean gap {mean_gap}");
    }

    #[test]
    fn fig1_runs_never_overlap() {
        let jobs = fig1_wordcount(3);
        assert_eq!(jobs.len(), 8);
        for w in jobs.windows(2) {
            assert!(w[1].arrival - w[0].arrival >= 10_000);
        }
        // Identical statistics in every run.
        let t0 = jobs[0].phases()[0].theta;
        assert!(jobs
            .iter()
            .all(|j| j.phases()[0].ntasks == jobs[0].phases()[0].ntasks));
        // θ jitter is per-JobId, so runs differ slightly — that is the
        // run-to-run variance Fig. 1 visualizes; just sanity-check scale.
        assert!(jobs.iter().all(|j| (j.phases()[0].theta / t0) < 2.0));
    }

    #[test]
    fn recurring_repeats_structure_per_label() {
        let jobs = recurring(5, 3, 4, 10);
        assert_eq!(jobs.len(), 12);
        // Same label ⇒ identical phase structure across runs.
        for label in ["app0", "app1", "app2"] {
            let runs: Vec<_> = jobs.iter().filter(|j| j.label == label).collect();
            assert_eq!(runs.len(), 4);
            for r in &runs {
                assert_eq!(r.phases(), runs[0].phases(), "{label}");
            }
        }
        // Different labels differ in size.
        let a = jobs.iter().find(|j| j.label == "app0").unwrap();
        let b = jobs.iter().find(|j| j.label == "app2").unwrap();
        assert_ne!(a.total_tasks(), b.total_tasks());
        // Unique ids, sorted-ish arrivals.
        let mut ids: Vec<u64> = jobs.iter().map(|j| j.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 12);
    }

    #[test]
    fn suites_are_deterministic() {
        assert_eq!(light_load(9, 2), light_load(9, 2));
        assert_ne!(
            heavy_wordcount(1, 5).first().unwrap().arrival,
            heavy_wordcount(2, 5).get(1).unwrap().arrival
        );
    }
}
