//! Job arrival processes.
//!
//! The paper's deployment experiments control load through the mean
//! inter-arrival time (≈ 200 s lightly loaded, ≈ 20 s heavily loaded,
//! §6.2); the analytical model allows an arbitrary arrival sequence. Both
//! a deterministic fixed-gap process and a Poisson process (exponential
//! gaps, seeded) are provided.

use dollymp_core::time::Time;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generate `n` arrival slots with a fixed gap (first arrival at 0).
pub fn fixed(n: usize, gap_slots: Time) -> Vec<Time> {
    (0..n as u64).map(|i| i * gap_slots).collect()
}

/// Generate `n` arrival slots from a Poisson process with the given mean
/// inter-arrival gap (in slots), rounded to whole slots. Deterministic
/// per seed. The first job arrives at slot 0.
pub fn poisson(n: usize, mean_gap_slots: f64, seed: u64) -> Vec<Time> {
    assert!(mean_gap_slots >= 0.0 && mean_gap_slots.is_finite());
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = 0f64;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        if i > 0 {
            // Inverse-CDF exponential draw.
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += -mean_gap_slots * u.ln();
        }
        out.push(t.round() as Time);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_gaps() {
        assert_eq!(fixed(4, 10), vec![0, 10, 20, 30]);
        assert!(fixed(0, 5).is_empty());
    }

    #[test]
    fn poisson_is_monotone_and_deterministic() {
        let a = poisson(100, 4.0, 3);
        let b = poisson(100, 4.0, 3);
        assert_eq!(a, b);
        assert_eq!(a[0], 0);
        for w in a.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn poisson_mean_gap_is_roughly_right() {
        let a = poisson(2000, 10.0, 5);
        let total = *a.last().unwrap() as f64;
        let mean = total / (a.len() - 1) as f64;
        assert!((mean - 10.0).abs() < 1.0, "observed mean gap {mean}");
    }

    #[test]
    fn zero_gap_degenerates_to_batch() {
        assert!(poisson(5, 0.0, 1).iter().all(|&t| t == 0));
    }
}
