//! # dollymp-workload
//!
//! Workload generation for the DollyMP experiments:
//!
//! * [`apps`] — WordCount and PageRank job models (§6.2's applications);
//! * [`google`] — the synthetic Google-trace-like generator (heavy-tailed
//!   job sizes, discrete container shapes) standing in for the raw traces
//!   the paper samples from (substitution documented in DESIGN.md);
//! * [`suite`] — the paper's concrete experiment workloads: the 100-job
//!   light-load mix, the two 500-job heavy-load suites and the Fig. 1
//!   repeated-WordCount motivation;
//! * [`arrivals`] — fixed-gap and Poisson arrival processes;
//! * [`trace`] — JSON trace persistence for bit-identical replays.
//!
//! Everything is deterministic per seed: generating the same suite twice
//! yields identical jobs, which is what makes cross-scheduler comparisons
//! paired (DESIGN.md §4.3).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod apps;
pub mod arrivals;
pub mod google;
pub mod stats;
pub mod suite;
pub mod trace;

pub use google::{generate as generate_google, GoogleConfig};
pub use stats::WorkloadStats;
pub use trace::Trace;
