//! Trace (de)serialization: save a generated workload to JSON and replay
//! it later, so experiments can be re-run bit-identically and shared.

use dollymp_core::job::JobSpec;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// A persisted workload trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Schema version for forward compatibility.
    pub version: u32,
    /// Free-form description (generator, parameters).
    pub description: String,
    /// The jobs, sorted by arrival.
    pub jobs: Vec<JobSpec>,
}

impl Trace {
    /// Wrap a job list (sorted by arrival, then id).
    pub fn new(description: impl Into<String>, mut jobs: Vec<JobSpec>) -> Self {
        jobs.sort_by_key(|j| (j.arrival, j.id));
        Trace {
            version: 1,
            description: description.into(),
            jobs,
        }
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace types are always serializable")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Trace, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Write to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_json())
    }

    /// Read from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Trace> {
        let s = fs::read_to_string(path)?;
        Trace::from_json(&s).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::google::{generate, GoogleConfig};
    use dollymp_core::job::{JobId, JobSpec};
    use dollymp_core::resources::Resources;

    #[test]
    fn json_round_trip() {
        let jobs = generate(&GoogleConfig {
            njobs: 25,
            ..Default::default()
        });
        let t = Trace::new("test trace", jobs);
        let parsed = Trace::from_json(&t.to_json()).unwrap();
        assert_eq!(t, parsed);
    }

    #[test]
    fn new_sorts_by_arrival() {
        let a = JobSpec::builder(JobId(0))
            .arrival(50)
            .phase(dollymp_core::job::PhaseSpec::new(
                1,
                Resources::new(1.0, 1.0),
                1.0,
                0.0,
            ))
            .build()
            .unwrap();
        let b = JobSpec::builder(JobId(1))
            .arrival(10)
            .phase(dollymp_core::job::PhaseSpec::new(
                1,
                Resources::new(1.0, 1.0),
                1.0,
                0.0,
            ))
            .build()
            .unwrap();
        let t = Trace::new("", vec![a, b]);
        assert_eq!(t.jobs[0].id, JobId(1));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("dollymp-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        let t = Trace::new(
            "file test",
            generate(&GoogleConfig {
                njobs: 5,
                ..Default::default()
            }),
        );
        t.save(&path).unwrap();
        assert_eq!(Trace::load(&path).unwrap(), t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(Trace::from_json("{not json").is_err());
        assert!(Trace::from_json("{}").is_err());
    }
}
