//! Decision-level tests of the assembled YARN control plane: hand-built
//! cluster views, exact assertions on the placement batches the RM + AMs
//! produce — locality preferences, estimation-driven ordering, and clone
//! budgets, without a simulation in the loop.

use dollymp_cluster::execution::block_replicas;
use dollymp_cluster::prelude::*;
use dollymp_cluster::view::ClusterView;
use dollymp_core::job::{JobId, JobSpec, PhaseId, TaskId, TaskRef};
use dollymp_core::resources::Resources;
use dollymp_yarn::YarnSystem;
use std::collections::BTreeMap;

fn job_state(id: u64, ntasks: u32, theta: f64) -> JobState {
    let spec = JobSpec::single_phase(JobId(id), ntasks, Resources::new(1.0, 1.0), theta, 0.0);
    let tables = vec![vec![theta; ntasks as usize]];
    JobState::new(spec, tables)
}

#[test]
fn placement_honors_block_replicas() {
    // Plenty of room everywhere: every primary must land on one of its
    // task's two replica servers.
    let cluster = ClusterSpec::homogeneous(8, 16.0, 16.0);
    let free = dollymp_cluster::capacity::CapacityIndex::from_capacities(&cluster);
    let mut jobs = BTreeMap::new();
    jobs.insert(JobId(0), job_state(0, 6, 10.0));
    let view = ClusterView::new(0, &cluster, &free, &jobs);

    let mut yarn = YarnSystem::new(0);
    yarn.on_job_arrival(&view, JobId(0));
    let batch = yarn.schedule(&view);
    assert_eq!(batch.len(), 6);
    for a in &batch {
        let replicas = block_replicas(a.task, cluster.len());
        assert!(
            replicas.contains(&a.server),
            "task {} placed on {:?}, replicas {:?}",
            a.task,
            a.server,
            replicas
        );
    }
}

#[test]
fn clones_spread_to_a_different_server_than_the_primary() {
    let cluster = ClusterSpec::homogeneous(4, 4.0, 4.0);
    let free = dollymp_cluster::capacity::CapacityIndex::from_capacities(&cluster);
    let mut jobs = BTreeMap::new();
    jobs.insert(JobId(0), job_state(0, 1, 10.0));
    let view = ClusterView::new(0, &cluster, &free, &jobs);

    let mut yarn = YarnSystem::new(2);
    yarn.on_job_arrival(&view, JobId(0));
    let batch = yarn.schedule(&view);
    let primary = batch
        .iter()
        .find(|a| a.kind == CopyKind::Primary)
        .expect("primary placed");
    for clone in batch.iter().filter(|a| a.kind == CopyKind::Clone) {
        assert_ne!(
            clone.server, primary.server,
            "clone must avoid the primary's server when others are free"
        );
    }
    assert!(
        batch.iter().filter(|a| a.kind == CopyKind::Clone).count() >= 1,
        "idle cluster → at least one clone"
    );
}

#[test]
fn estimated_priorities_order_unknown_jobs_by_size_not_duration() {
    // Two fresh jobs, no history: the AM guesses the same θ̂ for both, so
    // the RM can only distinguish them by task count (volume). The big
    // job must not starve the small one even though its *true* duration
    // is shorter.
    let cluster = ClusterSpec::homogeneous(1, 2.0, 2.0);
    let free = dollymp_cluster::capacity::CapacityIndex::from_free(&[Resources::new(2.0, 2.0)]);
    let mut jobs = BTreeMap::new();
    jobs.insert(JobId(0), job_state(0, 40, 1.0)); // many short tasks
    jobs.insert(JobId(1), job_state(1, 1, 50.0)); // one long task
    let view = ClusterView::new(0, &cluster, &free, &jobs);

    let mut yarn = YarnSystem::new(0);
    yarn.on_job_arrival(&view, JobId(1));
    let batch = yarn.schedule(&view);
    assert!(!batch.is_empty());
    // The small-volume job is served first; work conservation may then
    // fill the leftover core with the big job's tasks.
    assert_eq!(
        batch[0].task.job,
        JobId(1),
        "with equal θ̂ the 1-task job has the smaller estimated volume: {batch:?}"
    );
}

#[test]
fn clone_budget_from_am_requests_is_enforced() {
    let cluster = ClusterSpec::homogeneous(6, 4.0, 4.0);
    let free = dollymp_cluster::capacity::CapacityIndex::from_capacities(&cluster);
    let mut jobs = BTreeMap::new();
    jobs.insert(JobId(0), job_state(0, 2, 10.0));
    let view = ClusterView::new(0, &cluster, &free, &jobs);

    for clones in [0u32, 1, 2] {
        let mut yarn = YarnSystem::new(clones);
        yarn.on_job_arrival(&view, JobId(0));
        let batch = yarn.schedule(&view);
        let mut per_task: std::collections::HashMap<TaskRef, u32> = Default::default();
        for a in &batch {
            *per_task.entry(a.task).or_insert(0) += 1;
        }
        for (t, copies) in per_task {
            // One clone per task per decision round, bounded by budget.
            let max_now = 1 + clones.min(1);
            assert!(
                copies <= max_now,
                "budget {clones}: task {t} got {copies} copies in one round"
            );
        }
    }
}

#[test]
fn view_round_trip_ids_are_consistent() {
    // Sanity for the fixtures themselves: ready tasks enumerate phase 0.
    let js = job_state(7, 3, 5.0);
    let ready = js.ready_tasks();
    assert_eq!(ready.len(), 3);
    for (i, t) in ready.iter().enumerate() {
        assert_eq!(t.job, JobId(7));
        assert_eq!(t.phase, PhaseId(0));
        assert_eq!(t.task, TaskId(i as u32));
    }
}
