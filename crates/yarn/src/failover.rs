//! RM-side failure detection: the node-liveness monitor.
//!
//! YARN's Resource Manager has no direct visibility into a node's death —
//! a crashed Node Manager simply goes silent. The RM declares a node
//! *lost* when no heartbeat has arrived for
//! `yarn.nm.liveness-monitor.expiry-interval-ms`; containers on a lost
//! node are marked failed and the affected Application Masters re-request
//! them. [`HeartbeatMonitor`] reproduces that mechanism in slot time: it
//! records the last heartbeat per node and, when polled, reports nodes
//! whose silence exceeds the expiry interval exactly once, until a fresh
//! heartbeat marks them alive again.
//!
//! The asymmetry this creates is the interesting part for the paper's
//! cloning story: between the crash and the expiry the RM still believes
//! the node is running its containers, so cloned copies elsewhere are the
//! only thing making progress during the detection window.

use crate::nm::NodeHeartbeat;
use dollymp_cluster::spec::ServerId;
use dollymp_core::time::Time;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Liveness of one tracked node, as the RM believes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeLiveness {
    /// Heartbeats arriving within the expiry interval.
    Alive,
    /// Silent past the expiry interval; declared lost.
    Lost,
}

/// Tracks per-node heartbeat recency and flags expiries.
///
/// Deterministic: state is a `BTreeMap`, so [`HeartbeatMonitor::expire`]
/// reports newly lost nodes in ascending server order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatMonitor {
    /// Declare a node lost after this many slots of silence (strictly
    /// more than `expiry` slots since the last heartbeat).
    expiry: Time,
    last_seen: BTreeMap<ServerId, Time>,
    state: BTreeMap<ServerId, NodeLiveness>,
}

impl HeartbeatMonitor {
    /// A monitor declaring nodes lost after `expiry` slots of silence.
    pub fn new(expiry: Time) -> Self {
        assert!(expiry > 0, "expiry interval must be positive");
        HeartbeatMonitor {
            expiry,
            last_seen: BTreeMap::new(),
            state: BTreeMap::new(),
        }
    }

    /// Start tracking `server` as alive with a synthetic heartbeat at
    /// `now` (node registration: the RM grants it the full interval
    /// before suspecting anything).
    pub fn register(&mut self, server: ServerId, now: Time) {
        self.last_seen.insert(server, now);
        self.state.insert(server, NodeLiveness::Alive);
    }

    /// Record a heartbeat. A heartbeat from a node previously declared
    /// lost re-registers it as alive (the NM restarted). Returns `true`
    /// if this heartbeat revived a lost node.
    pub fn note_heartbeat(&mut self, hb: &NodeHeartbeat) -> bool {
        self.last_seen.insert(hb.server, hb.at);
        let prev = self.state.insert(hb.server, NodeLiveness::Alive);
        prev == Some(NodeLiveness::Lost)
    }

    /// Poll the monitor: declare every tracked node silent for strictly
    /// more than the expiry interval lost, and return the nodes *newly*
    /// declared lost by this poll (ascending server order). Nodes already
    /// lost are not reported again until a heartbeat revives them.
    pub fn expire(&mut self, now: Time) -> Vec<ServerId> {
        let mut newly_lost = Vec::new();
        for (&server, liveness) in self.state.iter_mut() {
            if *liveness == NodeLiveness::Lost {
                continue;
            }
            let last = self.last_seen[&server];
            if now.saturating_sub(last) > self.expiry {
                *liveness = NodeLiveness::Lost;
                newly_lost.push(server);
            }
        }
        newly_lost
    }

    /// The RM's current belief about `server` (`None` if untracked).
    pub fn liveness(&self, server: ServerId) -> Option<NodeLiveness> {
        self.state.get(&server).copied()
    }

    /// Nodes currently believed alive, ascending.
    pub fn alive_nodes(&self) -> Vec<ServerId> {
        self.state
            .iter()
            .filter(|(_, &l)| l == NodeLiveness::Alive)
            .map(|(&s, _)| s)
            .collect()
    }

    /// The configured expiry interval in slots.
    pub fn expiry(&self) -> Time {
        self.expiry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nm::NodeManager;
    use dollymp_core::job::{JobId, PhaseId, TaskId, TaskRef};
    use dollymp_core::resources::Resources;

    fn hb(server: u32, at: Time) -> NodeHeartbeat {
        NodeHeartbeat {
            server: ServerId(server),
            at,
            available: Resources::new(1.0, 1.0),
            running: Vec::new(),
        }
    }

    #[test]
    fn silence_past_expiry_is_reported_once() {
        let mut m = HeartbeatMonitor::new(3);
        m.register(ServerId(0), 0);
        m.register(ServerId(1), 0);
        m.note_heartbeat(&hb(0, 5));
        m.note_heartbeat(&hb(1, 5));
        // Node 1 goes silent after t=5; node 0 keeps beating.
        m.note_heartbeat(&hb(0, 8));
        assert_eq!(m.expire(8), Vec::<ServerId>::new(), "5+3 not exceeded yet");
        m.note_heartbeat(&hb(0, 9));
        assert_eq!(m.expire(9), vec![ServerId(1)], "silent for 4 > 3 slots");
        assert_eq!(m.liveness(ServerId(1)), Some(NodeLiveness::Lost));
        // Not reported twice.
        assert_eq!(m.expire(12), Vec::<ServerId>::new());
        assert_eq!(m.alive_nodes(), vec![ServerId(0)]);
    }

    #[test]
    fn heartbeat_revives_a_lost_node() {
        let mut m = HeartbeatMonitor::new(2);
        m.register(ServerId(7), 0);
        assert_eq!(m.expire(3), vec![ServerId(7)]);
        assert!(m.note_heartbeat(&hb(7, 10)), "revival flagged");
        assert_eq!(m.liveness(ServerId(7)), Some(NodeLiveness::Alive));
        // And it can be lost again later.
        assert_eq!(m.expire(13), vec![ServerId(7)]);
    }

    #[test]
    fn crashed_nm_is_detected_by_timeout_and_recovers_on_restart() {
        // End-to-end against the NM: the monitor only ever sees
        // heartbeats, never the crash itself.
        let t = TaskRef {
            job: JobId(0),
            phase: PhaseId(0),
            task: TaskId(0),
        };
        let mut nm = NodeManager::new(ServerId(2), Resources::new(2.0, 2.0));
        let mut m = HeartbeatMonitor::new(2);
        m.register(nm.server(), 0);
        nm.launch(t, 0, Resources::new(1.0, 1.0), 0).unwrap();

        let mut lost_tasks = Vec::new();
        let mut detected_at = None;
        for now in 1..=10 {
            if now == 4 {
                lost_tasks = nm.crash(now);
            }
            if now == 9 {
                nm.restart(now);
            }
            if let Some(hb) = nm.heartbeat(now) {
                m.note_heartbeat(&hb);
            }
            if let Some(&s) = m.expire(now).first() {
                assert_eq!(s, nm.server());
                detected_at = Some(now);
            }
        }
        assert_eq!(lost_tasks, vec![t]);
        // Last heartbeat at t=3; 3-slot silence first exceeds expiry=2 at
        // t=6 — the detection window during which only clones elsewhere
        // make progress.
        assert_eq!(detected_at, Some(6));
        // The restarted NM's heartbeat at t=9 revived it.
        assert_eq!(m.liveness(nm.server()), Some(NodeLiveness::Alive));
    }

    #[test]
    fn serde_round_trip() {
        let mut m = HeartbeatMonitor::new(4);
        m.register(ServerId(0), 1);
        m.expire(9);
        let json = serde_json::to_string(&m).unwrap();
        let back: HeartbeatMonitor = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
