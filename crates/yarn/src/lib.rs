//! # dollymp-yarn
//!
//! A simulated Hadoop-YARN-like control plane reproducing the paper's
//! deployment architecture (§5.2, Fig. 3): a **Resource Manager** running
//! the DollyMP scheduling logic over job reports, and per-job
//! **Application Masters** that *estimate* task statistics (from
//! recurring-job history, then in-run observations, then defaults),
//! compute job volumes/processing times, request containers tagged with
//! task IDs + clone budgets + locality preferences, and archive finished
//! runs back into the history.
//!
//!
//! * [`protocol`] — the AM ↔ RM message types;
//! * [`nm`] — the node-side container manager (launch / complete / kill
//!   / heartbeat / crash), the surface §5.2's kill-on-first-finish talks
//!   to;
//! * [`failover`] — the RM-side node-liveness monitor (heartbeat-timeout
//!   detection of crashed NMs);
//! * [`shuffle`] — the Dolly-style delay assignment of upstream outputs
//!   to downstream clones;
//! * [`history`] — the recurring-job statistics registry;
//! * [`am`] — the Application Master estimator;
//! * [`rm`] — the Resource Manager (Algorithm 1 over reports);
//! * [`system`] — [`system::YarnSystem`], the assembled control plane as
//!   a `Scheduler`.
//!
//! The headline difference from using `dollymp_schedulers::DollyMP`
//! directly: [`system::YarnSystem`] schedules on *estimated* statistics,
//! so the deployment figures (Figs. 1, 4–7) can be reproduced with the
//! realistic information model rather than oracle knowledge.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod am;
pub mod failover;
pub mod history;
pub mod nm;
pub mod protocol;
pub mod rm;
pub mod shuffle;
pub mod system;

pub use am::{AmConfig, ApplicationMaster};
pub use failover::{HeartbeatMonitor, NodeLiveness};
pub use history::HistoryRegistry;
pub use nm::{NodeHeartbeat, NodeManager};
pub use rm::ResourceManager;
pub use system::YarnSystem;
