//! The container protocol between Application Masters and the Resource
//! Manager — the surface the paper modifies in YARN (§5.2):
//!
//! * container requests carry the **task ID** (so the RM can launch
//!   cloned containers for a specific task) and the **maximum number of
//!   clones** (default two);
//! * requests carry data-locality preferences (the replica servers of the
//!   task's input block);
//! * AMs report each job's **effective volume and processing time** to
//!   the RM, which feeds them to the transient scheduling algorithm.

use dollymp_cluster::spec::ServerId;
use dollymp_core::job::{JobId, TaskRef};
use dollymp_core::resources::Resources;
use serde::{Deserialize, Serialize};

/// An AM → RM request for one task's container(s).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContainerRequest {
    /// The task this container is for — the ID addition of §5.2 that
    /// lets the RM clone specific tasks.
    pub task: TaskRef,
    /// Resources per copy.
    pub demand: Resources,
    /// Maximum clones the AM allows for this task (paper default: 2).
    pub max_clones: u32,
    /// Replica servers holding the task's input block, in preference
    /// order (HDFS keeps two extra replicas; clones placed on replicas
    /// preserve data locality, §5).
    pub preferred_servers: Vec<ServerId>,
}

impl ContainerRequest {
    /// A request with the paper's defaults (two clones allowed).
    pub fn new(task: TaskRef, demand: Resources) -> Self {
        ContainerRequest {
            task,
            demand,
            max_clones: 2,
            preferred_servers: Vec::new(),
        }
    }

    /// Set the locality preference list.
    pub fn with_preferred(mut self, servers: Vec<ServerId>) -> Self {
        self.preferred_servers = servers;
        self
    }

    /// Set the clone budget.
    pub fn with_max_clones(mut self, n: u32) -> Self {
        self.max_clones = n;
        self
    }
}

/// An AM → RM report of its job's scheduling summary (§5.2: "Application
/// Master computes the job volume along with the processing time, and
/// sends them to the Resource Manager").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobReport {
    /// The job.
    pub job: JobId,
    /// Estimated remaining effective volume `v̂_j(t)`.
    pub volume: f64,
    /// Estimated remaining effective processing time `ê_j(t)`.
    pub etime: f64,
    /// Maximum dominant share across phases.
    pub dominant: f64,
    /// Cloning speedup fitted from the estimated `(θ̂, σ̂)` of the first
    /// unfinished phase.
    pub speedup: dollymp_core::speedup::SpeedupFn,
}

/// RM → AM grant of one container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContainerGrant {
    /// The task it was requested for.
    pub task: TaskRef,
    /// The server the container was placed on.
    pub server: ServerId,
    /// Whether this is a cloned container.
    pub is_clone: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dollymp_core::job::{PhaseId, TaskId};

    fn task() -> TaskRef {
        TaskRef {
            job: JobId(1),
            phase: PhaseId(0),
            task: TaskId(3),
        }
    }

    #[test]
    fn request_defaults_match_paper() {
        let r = ContainerRequest::new(task(), Resources::new(1.0, 2.0));
        assert_eq!(r.max_clones, 2, "paper default: two clones");
        assert!(r.preferred_servers.is_empty());
    }

    #[test]
    fn builders_set_fields() {
        let r = ContainerRequest::new(task(), Resources::new(1.0, 2.0))
            .with_preferred(vec![ServerId(4), ServerId(9)])
            .with_max_clones(1);
        assert_eq!(r.preferred_servers.len(), 2);
        assert_eq!(r.max_clones, 1);
    }

    #[test]
    fn messages_serialize() {
        let r = ContainerRequest::new(task(), Resources::new(1.0, 2.0));
        let s = serde_json::to_string(&r).unwrap();
        let back: ContainerRequest = serde_json::from_str(&s).unwrap();
        assert_eq!(r, back);

        let rep = JobReport {
            job: JobId(7),
            volume: 1.5,
            etime: 12.0,
            dominant: 0.05,
            speedup: dollymp_core::speedup::SpeedupFn::Pareto { alpha: 2.5 },
        };
        let s = serde_json::to_string(&rep).unwrap();
        let back: JobReport = serde_json::from_str(&s).unwrap();
        assert_eq!(rep, back);
    }
}
