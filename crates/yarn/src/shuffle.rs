//! Intermediate-data transfer between successive phases — the **delay
//! assignment** mechanism of §5.2 (adopted from Dolly \[5\]).
//!
//! When both an upstream task and its downstream consumer have cloned
//! copies, naively wiring every downstream copy to the *first* upstream
//! copy to finish recreates a single point of contention; waiting for
//! *all* upstream copies wastes the cloning speedup. The paper's rule:
//!
//! * delay assignment applies **only when the downstream tasks also have
//!   clones** (otherwise the single downstream copy just reads the first
//!   finished upstream output);
//! * the AM *waits for the two earliest upstream copies* and assigns
//!   their outputs **evenly** across the downstream clones, then
//!   *proceeds without waiting for the last upstream clone* as long as
//!   some upstream copy is still running;
//! * if the upstream task has *fewer* copies than the downstream one,
//!   the first finished upstream output is broadcast to every downstream
//!   copy.
//!
//! [`DelayAssigner`] is the per-(upstream task, downstream task) state
//! machine implementing exactly that; the YARN AM drives it from copy-
//! completion events.

use dollymp_core::job::TaskRef;
use serde::{Deserialize, Serialize};

/// Where one downstream copy should read its input from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutputBinding {
    /// Downstream copy index.
    pub downstream_copy: u32,
    /// Upstream copy index whose output it reads.
    pub upstream_copy: u32,
}

/// Decision produced after an upstream copy finishes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShuffleDecision {
    /// Not enough upstream outputs yet — keep waiting.
    Wait,
    /// Bind these downstream copies to upstream outputs now.
    Bind(Vec<OutputBinding>),
    /// Everything already bound; nothing to do.
    Done,
}

/// Per-edge delay-assignment state machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayAssigner {
    /// The upstream (producer) task.
    pub upstream: TaskRef,
    /// The downstream (consumer) task.
    pub downstream: TaskRef,
    /// Total copies launched for the upstream task.
    upstream_copies: u32,
    /// Total copies launched for the downstream task.
    downstream_copies: u32,
    /// Upstream copy indices that have finished, in completion order.
    finished: Vec<u32>,
    /// Downstream copies not yet bound to an output.
    unbound: Vec<u32>,
}

impl DelayAssigner {
    /// Create the state machine for one upstream→downstream task edge.
    ///
    /// # Panics
    /// Panics when either copy count is zero.
    pub fn new(
        upstream: TaskRef,
        downstream: TaskRef,
        upstream_copies: u32,
        downstream_copies: u32,
    ) -> Self {
        assert!(upstream_copies >= 1 && downstream_copies >= 1);
        DelayAssigner {
            upstream,
            downstream,
            upstream_copies,
            downstream_copies,
            finished: Vec::new(),
            unbound: (0..downstream_copies).collect(),
        }
    }

    /// Whether the delay-assignment rule is active for this edge — only
    /// when the *downstream* task has clones (§5.2: "only when tasks from
    /// the downstream phase have also been scheduled clones").
    pub fn delay_active(&self) -> bool {
        self.downstream_copies >= 2 && self.upstream_copies >= self.downstream_copies
    }

    /// Feed one upstream copy completion; returns the binding decision.
    ///
    /// # Panics
    /// Panics when the same copy completes twice or the index is out of
    /// range.
    pub fn on_upstream_finish(&mut self, copy: u32) -> ShuffleDecision {
        assert!(copy < self.upstream_copies, "copy index out of range");
        assert!(!self.finished.contains(&copy), "copy finished twice");
        self.finished.push(copy);

        if self.unbound.is_empty() {
            return ShuffleDecision::Done;
        }

        if !self.delay_active() {
            // Fewer upstream copies than downstream (or no downstream
            // clones): broadcast the first output to every consumer copy.
            let bindings = self
                .unbound
                .drain(..)
                .map(|d| OutputBinding {
                    downstream_copy: d,
                    upstream_copy: copy,
                })
                .collect();
            return ShuffleDecision::Bind(bindings);
        }

        // Delay assignment: hold the first output back until the second
        // arrives, then split the consumers evenly between the two early
        // outputs; afterwards, bind remaining consumers one output at a
        // time without waiting for the last upstream clone.
        match self.finished.len() {
            1 => ShuffleDecision::Wait,
            2 => {
                let first = self.finished[0];
                let second = self.finished[1];
                let half = self.unbound.len().div_ceil(2);
                let bindings = self
                    .unbound
                    .drain(..)
                    .enumerate()
                    .map(|(i, d)| OutputBinding {
                        downstream_copy: d,
                        upstream_copy: if i < half { first } else { second },
                    })
                    .collect();
                ShuffleDecision::Bind(bindings)
            }
            _ => {
                // Late upstream copies only matter if consumers remain
                // (they cannot here — the len == 2 arm drained them — but
                // a defensive bind keeps the machine total).
                let bindings = self
                    .unbound
                    .drain(..)
                    .map(|d| OutputBinding {
                        downstream_copy: d,
                        upstream_copy: copy,
                    })
                    .collect();
                ShuffleDecision::Bind(bindings)
            }
        }
    }

    /// Copies of the upstream task that have finished so far.
    pub fn finished_count(&self) -> usize {
        self.finished.len()
    }

    /// Downstream copies still waiting for an input binding.
    pub fn unbound_count(&self) -> usize {
        self.unbound.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dollymp_core::job::{JobId, PhaseId, TaskId};

    fn edge(up_copies: u32, down_copies: u32) -> DelayAssigner {
        let up = TaskRef {
            job: JobId(1),
            phase: PhaseId(0),
            task: TaskId(0),
        };
        let down = TaskRef {
            job: JobId(1),
            phase: PhaseId(1),
            task: TaskId(0),
        };
        DelayAssigner::new(up, down, up_copies, down_copies)
    }

    #[test]
    fn single_downstream_copy_reads_first_output() {
        let mut a = edge(3, 1);
        assert!(!a.delay_active());
        let d = a.on_upstream_finish(2);
        assert_eq!(
            d,
            ShuffleDecision::Bind(vec![OutputBinding {
                downstream_copy: 0,
                upstream_copy: 2
            }])
        );
        // Later finishes are no-ops.
        assert_eq!(a.on_upstream_finish(0), ShuffleDecision::Done);
    }

    #[test]
    fn fewer_upstream_copies_broadcasts_first_output() {
        // §5.2: "the number of copies in the upstream phase is less than
        // that in the subsequent phase" → broadcast.
        let mut a = edge(1, 3);
        assert!(!a.delay_active());
        match a.on_upstream_finish(0) {
            ShuffleDecision::Bind(b) => {
                assert_eq!(b.len(), 3);
                assert!(b.iter().all(|x| x.upstream_copy == 0));
                let mut consumers: Vec<u32> = b.iter().map(|x| x.downstream_copy).collect();
                consumers.sort();
                assert_eq!(consumers, vec![0, 1, 2]);
            }
            other => panic!("expected broadcast, got {other:?}"),
        }
    }

    #[test]
    fn delay_waits_for_two_then_splits_evenly() {
        let mut a = edge(3, 2);
        assert!(a.delay_active());
        assert_eq!(a.on_upstream_finish(1), ShuffleDecision::Wait);
        assert_eq!(a.unbound_count(), 2);
        match a.on_upstream_finish(2) {
            ShuffleDecision::Bind(b) => {
                assert_eq!(b.len(), 2);
                // First early output feeds the first half, second the rest.
                assert_eq!(b[0].upstream_copy, 1);
                assert_eq!(b[1].upstream_copy, 2);
                assert_ne!(b[0].downstream_copy, b[1].downstream_copy);
            }
            other => panic!("expected even split, got {other:?}"),
        }
        // The third upstream copy is not waited for.
        assert_eq!(a.on_upstream_finish(0), ShuffleDecision::Done);
        assert_eq!(a.unbound_count(), 0);
    }

    #[test]
    fn odd_consumer_counts_split_ceil_floor() {
        let mut a = edge(3, 3);
        let _ = a.on_upstream_finish(0);
        match a.on_upstream_finish(1) {
            ShuffleDecision::Bind(b) => {
                let firsts = b.iter().filter(|x| x.upstream_copy == 0).count();
                let seconds = b.iter().filter(|x| x.upstream_copy == 1).count();
                assert_eq!(firsts, 2, "ceil half to the first output");
                assert_eq!(seconds, 1);
            }
            other => panic!("expected split, got {other:?}"),
        }
    }

    #[test]
    fn completion_order_not_copy_index_decides() {
        let mut a = edge(3, 2);
        assert_eq!(a.on_upstream_finish(2), ShuffleDecision::Wait);
        match a.on_upstream_finish(0) {
            ShuffleDecision::Bind(b) => {
                assert_eq!(b[0].upstream_copy, 2, "earliest finisher first");
                assert_eq!(b[1].upstream_copy, 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "finished twice")]
    fn duplicate_completion_rejected() {
        let mut a = edge(2, 2);
        let _ = a.on_upstream_finish(0);
        let _ = a.on_upstream_finish(0);
    }

    #[test]
    fn serde_round_trip() {
        let mut a = edge(3, 2);
        let _ = a.on_upstream_finish(1);
        let json = serde_json::to_string(&a).unwrap();
        let back: DelayAssigner = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
