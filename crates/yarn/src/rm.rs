//! The simulated Resource Manager (§5.2): receives [`JobReport`]s from
//! the Application Masters and runs the transient scheduling algorithm
//! over them to produce the cluster-wide job priority order. The paper's
//! modification lives exactly here — "we implement the scheduling
//! algorithm in Section 5 under the Resource Manager of YARN; the new
//! scheduling logic combines DRF, SVF, and SRPT to recompute the priority
//! of each job whenever a new Application Master is created".

use crate::protocol::{ContainerRequest, JobReport};
use dollymp_cluster::error::RejectReason;
use dollymp_cluster::spec::ClusterSpec;
use dollymp_core::job::JobId;
use dollymp_core::online::PriorityTable;
use dollymp_core::transient::{transient_schedule, TransientConfig, TransientJob};
use std::collections::HashMap;

/// The RM's scheduling brain: report intake + Algorithm 1 priorities.
#[derive(Debug, Clone)]
pub struct ResourceManager {
    cfg: TransientConfig,
    reports: HashMap<JobId, JobReport>,
    table: PriorityTable,
    /// AM container requests refused by [`ResourceManager::admit_request`],
    /// bucketed on the same [`RejectReason`] taxonomy the engine and the
    /// guard use.
    rejections: HashMap<RejectReason, u64>,
}

impl ResourceManager {
    /// A fresh RM.
    pub fn new(cfg: TransientConfig) -> Self {
        ResourceManager {
            cfg,
            reports: HashMap::new(),
            table: PriorityTable::default(),
            rejections: HashMap::new(),
        }
    }

    /// Validate one AM container request instead of trusting it — the RM
    /// side of the containment story (a compromised or buggy AM must not
    /// be able to poison placement):
    ///
    /// * [`RejectReason::UnknownJob`] — no report registered for the
    ///   request's job (an AM must introduce its job before asking for
    ///   containers);
    /// * [`RejectReason::DuplicateCopy`] — the clone budget exceeds the
    ///   RM's configured per-task copy cap;
    /// * [`RejectReason::ServerDown`] — a locality preference names a
    ///   server outside the cluster;
    /// * [`RejectReason::OverCommit`] — the demand fits no server even
    ///   when idle (the request could never be granted).
    pub fn validate_request(
        &self,
        cluster: &ClusterSpec,
        req: &ContainerRequest,
    ) -> Result<(), RejectReason> {
        if !self.reports.contains_key(&req.task.job) {
            return Err(RejectReason::UnknownJob);
        }
        if req.max_clones + 1 > self.cfg.max_copies.max(1) {
            return Err(RejectReason::DuplicateCopy);
        }
        if req
            .preferred_servers
            .iter()
            .any(|s| (s.0 as usize) >= cluster.len())
        {
            return Err(RejectReason::ServerDown);
        }
        if !cluster
            .servers()
            .iter()
            .any(|s| req.demand.fits_in(s.capacity))
        {
            return Err(RejectReason::OverCommit);
        }
        Ok(())
    }

    /// [`Self::validate_request`] plus bookkeeping: refused requests are
    /// counted under their reason. Returns whether the request was
    /// admitted.
    pub fn admit_request(&mut self, cluster: &ClusterSpec, req: &ContainerRequest) -> bool {
        match self.validate_request(cluster, req) {
            Ok(()) => true,
            Err(reason) => {
                *self.rejections.entry(reason).or_insert(0) += 1;
                false
            }
        }
    }

    /// Requests refused so far under one reason.
    pub fn rejected(&self, reason: RejectReason) -> u64 {
        self.rejections.get(&reason).copied().unwrap_or(0)
    }

    /// Total requests refused so far.
    pub fn total_rejected(&self) -> u64 {
        self.rejections.values().sum()
    }

    /// Ingest (or refresh) a job's report.
    pub fn submit_report(&mut self, report: JobReport) {
        self.reports.insert(report.job, report);
    }

    /// Forget a finished job.
    pub fn retire_job(&mut self, job: JobId) {
        self.reports.remove(&job);
        self.table.remove(job);
    }

    /// Recompute the global priority table from the current reports —
    /// done on every new-AM registration, per §5.2.
    pub fn recompute_priorities(&mut self) {
        let mut inputs: Vec<TransientJob> = self
            .reports
            .values()
            .map(|r| TransientJob {
                id: r.job,
                volume: r.volume,
                etime: r.etime,
                dominant: r.dominant,
                speedup: r.speedup,
            })
            .collect();
        // Deterministic input order regardless of HashMap iteration.
        inputs.sort_by_key(|j| j.id);
        let out = transient_schedule(&inputs, &self.cfg);
        self.table = PriorityTable::from_output(&inputs, &out);
    }

    /// The current priority table.
    pub fn priorities(&self) -> &PriorityTable {
        &self.table
    }

    /// Latest report for a job, if any.
    pub fn report(&self, job: JobId) -> Option<&JobReport> {
        self.reports.get(&job)
    }

    /// Number of registered jobs.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// True when no jobs are registered.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dollymp_core::speedup::SpeedupFn;
    use dollymp_core::transient::PRIORITY_UNSELECTED;

    fn report(id: u64, volume: f64, etime: f64) -> JobReport {
        JobReport {
            job: JobId(id),
            volume,
            etime,
            dominant: 0.1,
            speedup: SpeedupFn::Pareto { alpha: 2.0 },
        }
    }

    #[test]
    fn priorities_follow_reports() {
        let mut rm = ResourceManager::new(TransientConfig::default());
        rm.submit_report(report(0, 50.0, 100.0));
        rm.submit_report(report(1, 0.5, 1.0));
        rm.recompute_priorities();
        assert!(rm.priorities().level(JobId(1)) < rm.priorities().level(JobId(0)));
    }

    #[test]
    fn resubmitting_updates_a_job() {
        let mut rm = ResourceManager::new(TransientConfig::default());
        rm.submit_report(report(0, 50.0, 100.0));
        rm.submit_report(report(1, 0.5, 1.0));
        rm.recompute_priorities();
        let before = rm.priorities().level(JobId(0));
        // Job 0 shrank (most of it finished): its report improves.
        rm.submit_report(report(0, 0.1, 0.5));
        rm.recompute_priorities();
        assert!(rm.priorities().level(JobId(0)) <= before);
        assert_eq!(rm.len(), 2);
    }

    #[test]
    fn retire_removes_job() {
        let mut rm = ResourceManager::new(TransientConfig::default());
        rm.submit_report(report(0, 1.0, 1.0));
        rm.recompute_priorities();
        rm.retire_job(JobId(0));
        assert!(rm.is_empty());
        assert_eq!(rm.priorities().level(JobId(0)), PRIORITY_UNSELECTED);
    }

    #[test]
    fn empty_rm_recompute_is_safe() {
        let mut rm = ResourceManager::new(TransientConfig::default());
        rm.recompute_priorities();
        assert!(rm.is_empty());
    }

    #[test]
    fn request_validation_covers_the_taxonomy() {
        use dollymp_cluster::error::RejectReason;
        use dollymp_cluster::spec::{ClusterSpec, ServerId};
        use dollymp_core::job::{PhaseId, TaskId, TaskRef};
        use dollymp_core::resources::Resources;

        let cluster = ClusterSpec::homogeneous(2, 4.0, 8.0);
        let cfg = TransientConfig {
            max_copies: 3, // DollyMP²: a primary plus at most two clones
            ..TransientConfig::default()
        };
        let mut rm = ResourceManager::new(cfg);
        rm.submit_report(report(0, 1.0, 1.0));

        let task = TaskRef {
            job: JobId(0),
            phase: PhaseId(0),
            task: TaskId(0),
        };
        let ok = crate::protocol::ContainerRequest::new(task, Resources::new(1.0, 2.0));
        assert!(rm.validate_request(&cluster, &ok).is_ok());
        assert!(rm.admit_request(&cluster, &ok));
        assert_eq!(rm.total_rejected(), 0);

        // Unknown job: no report submitted for job 9.
        let mut unknown = ok.clone();
        unknown.task.job = JobId(9);
        assert_eq!(
            rm.validate_request(&cluster, &unknown),
            Err(RejectReason::UnknownJob)
        );

        // Clone budget beyond the RM's copy cap.
        let greedy = ok.clone().with_max_clones(7);
        assert_eq!(
            rm.validate_request(&cluster, &greedy),
            Err(RejectReason::DuplicateCopy)
        );

        // Locality preference naming a server outside the cluster.
        let bogus = ok.clone().with_preferred(vec![ServerId(40)]);
        assert_eq!(
            rm.validate_request(&cluster, &bogus),
            Err(RejectReason::ServerDown)
        );

        // Demand no server could ever satisfy.
        let huge = crate::protocol::ContainerRequest::new(task, Resources::new(64.0, 1.0));
        assert_eq!(
            rm.validate_request(&cluster, &huge),
            Err(RejectReason::OverCommit)
        );

        // admit_request counts by reason.
        assert!(!rm.admit_request(&cluster, &unknown));
        assert!(!rm.admit_request(&cluster, &huge));
        assert!(!rm.admit_request(&cluster, &huge));
        assert_eq!(rm.rejected(RejectReason::UnknownJob), 1);
        assert_eq!(rm.rejected(RejectReason::OverCommit), 2);
        assert_eq!(rm.total_rejected(), 3);
    }
}
