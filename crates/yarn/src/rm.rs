//! The simulated Resource Manager (§5.2): receives [`JobReport`]s from
//! the Application Masters and runs the transient scheduling algorithm
//! over them to produce the cluster-wide job priority order. The paper's
//! modification lives exactly here — "we implement the scheduling
//! algorithm in Section 5 under the Resource Manager of YARN; the new
//! scheduling logic combines DRF, SVF, and SRPT to recompute the priority
//! of each job whenever a new Application Master is created".

use crate::protocol::JobReport;
use dollymp_core::job::JobId;
use dollymp_core::online::PriorityTable;
use dollymp_core::transient::{transient_schedule, TransientConfig, TransientJob};
use std::collections::HashMap;

/// The RM's scheduling brain: report intake + Algorithm 1 priorities.
#[derive(Debug, Clone)]
pub struct ResourceManager {
    cfg: TransientConfig,
    reports: HashMap<JobId, JobReport>,
    table: PriorityTable,
}

impl ResourceManager {
    /// A fresh RM.
    pub fn new(cfg: TransientConfig) -> Self {
        ResourceManager {
            cfg,
            reports: HashMap::new(),
            table: PriorityTable::default(),
        }
    }

    /// Ingest (or refresh) a job's report.
    pub fn submit_report(&mut self, report: JobReport) {
        self.reports.insert(report.job, report);
    }

    /// Forget a finished job.
    pub fn retire_job(&mut self, job: JobId) {
        self.reports.remove(&job);
        self.table.remove(job);
    }

    /// Recompute the global priority table from the current reports —
    /// done on every new-AM registration, per §5.2.
    pub fn recompute_priorities(&mut self) {
        let mut inputs: Vec<TransientJob> = self
            .reports
            .values()
            .map(|r| TransientJob {
                id: r.job,
                volume: r.volume,
                etime: r.etime,
                dominant: r.dominant,
                speedup: r.speedup,
            })
            .collect();
        // Deterministic input order regardless of HashMap iteration.
        inputs.sort_by_key(|j| j.id);
        let out = transient_schedule(&inputs, &self.cfg);
        self.table = PriorityTable::from_output(&inputs, &out);
    }

    /// The current priority table.
    pub fn priorities(&self) -> &PriorityTable {
        &self.table
    }

    /// Latest report for a job, if any.
    pub fn report(&self, job: JobId) -> Option<&JobReport> {
        self.reports.get(&job)
    }

    /// Number of registered jobs.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// True when no jobs are registered.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dollymp_core::speedup::SpeedupFn;
    use dollymp_core::transient::PRIORITY_UNSELECTED;

    fn report(id: u64, volume: f64, etime: f64) -> JobReport {
        JobReport {
            job: JobId(id),
            volume,
            etime,
            dominant: 0.1,
            speedup: SpeedupFn::Pareto { alpha: 2.0 },
        }
    }

    #[test]
    fn priorities_follow_reports() {
        let mut rm = ResourceManager::new(TransientConfig::default());
        rm.submit_report(report(0, 50.0, 100.0));
        rm.submit_report(report(1, 0.5, 1.0));
        rm.recompute_priorities();
        assert!(rm.priorities().level(JobId(1)) < rm.priorities().level(JobId(0)));
    }

    #[test]
    fn resubmitting_updates_a_job() {
        let mut rm = ResourceManager::new(TransientConfig::default());
        rm.submit_report(report(0, 50.0, 100.0));
        rm.submit_report(report(1, 0.5, 1.0));
        rm.recompute_priorities();
        let before = rm.priorities().level(JobId(0));
        // Job 0 shrank (most of it finished): its report improves.
        rm.submit_report(report(0, 0.1, 0.5));
        rm.recompute_priorities();
        assert!(rm.priorities().level(JobId(0)) <= before);
        assert_eq!(rm.len(), 2);
    }

    #[test]
    fn retire_removes_job() {
        let mut rm = ResourceManager::new(TransientConfig::default());
        rm.submit_report(report(0, 1.0, 1.0));
        rm.recompute_priorities();
        rm.retire_job(JobId(0));
        assert!(rm.is_empty());
        assert_eq!(rm.priorities().level(JobId(0)), PRIORITY_UNSELECTED);
    }

    #[test]
    fn empty_rm_recompute_is_safe() {
        let mut rm = ResourceManager::new(TransientConfig::default());
        rm.recompute_priorities();
        assert!(rm.is_empty());
    }
}
