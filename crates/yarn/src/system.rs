//! The assembled YARN-like system: Resource Manager + per-job Application
//! Masters, packaged as a [`Scheduler`] so it runs on the same simulation
//! engine as every other policy.
//!
//! This is the "deployment" configuration of the paper (§5.2/§6.2): the
//! DollyMP scheduling logic runs inside the RM, but — crucially — on
//! **estimated** task statistics reported by the AMs rather than the
//! ground-truth distributions the plain simulator schedulers read from
//! the job specs. Container requests carry task IDs, clone budgets and
//! data-locality preferences; the AM's second-level placement prefers a
//! task's replica servers and spreads a task's clones across distinct
//! replicas.

use crate::am::{AmConfig, ApplicationMaster};
use crate::history::HistoryRegistry;
use crate::protocol::ContainerRequest;
use crate::rm::ResourceManager;
use dollymp_cluster::prelude::*;
use dollymp_core::job::{JobId, TaskRef};
use dollymp_core::online::ClonePolicy;
use dollymp_core::transient::{TransientConfig, PRIORITY_UNSELECTED};
use dollymp_schedulers::common::FreeTracker;
use std::collections::HashMap;

/// The RM + AMs control plane as one schedulable unit.
#[derive(Debug, Clone)]
pub struct YarnSystem {
    am_cfg: AmConfig,
    clone_policy: ClonePolicy,
    history: HistoryRegistry,
    rm: ResourceManager,
    ams: HashMap<JobId, ApplicationMaster>,
}

impl YarnSystem {
    /// A YARN system running DollyMP^`clones` in its RM, with a fresh
    /// (cold) history registry.
    pub fn new(clones: u32) -> Self {
        YarnSystem::with_history(clones, HistoryRegistry::new())
    }

    /// Like [`YarnSystem::new`] but sharing an existing history registry
    /// — how recurring-job knowledge survives across runs.
    pub fn with_history(clones: u32, history: HistoryRegistry) -> Self {
        let am_cfg = AmConfig {
            max_clones: clones,
            ..AmConfig::default()
        };
        let clone_policy = if clones == 0 {
            ClonePolicy::disabled()
        } else {
            ClonePolicy::with_clones(clones)
        };
        YarnSystem {
            am_cfg,
            clone_policy,
            history,
            rm: ResourceManager::new(TransientConfig {
                max_copies: clones + 1,
                sigma_weight: am_cfg.sigma_weight,
            }),
            ams: HashMap::new(),
        }
    }

    /// The shared history registry (clone it to reuse across runs).
    pub fn history(&self) -> &HistoryRegistry {
        &self.history
    }

    fn refresh_all_reports(&mut self, view: &ClusterView<'_>) {
        for job in view.jobs() {
            let am = self
                .ams
                .entry(job.id())
                .or_insert_with(|| ApplicationMaster::new(self.am_cfg, self.history.clone()));
            let report = am.report(job, view.cluster());
            self.rm.submit_report(report);
        }
        self.rm.recompute_priorities();
    }

    /// Jobs grouped by ascending RM priority.
    fn priority_groups(&self, view: &ClusterView<'_>) -> Vec<(u32, Vec<JobId>)> {
        self.rm.priorities().grouped(view.jobs().map(|j| j.id()))
    }

    /// Place one container, preferring the task's replica servers (AM
    /// second-level scheduling), falling back to the best-aligned server.
    fn place_with_locality(
        free: &mut FreeTracker,
        req: &ContainerRequest,
        avoid: &[ServerId],
    ) -> Option<ServerId> {
        for &s in &req.preferred_servers {
            if (s.0 as usize) < free.len()
                && !avoid.contains(&s)
                && req.demand.fits_in(free.free(s))
            {
                return Some(s);
            }
        }
        free.best_fit(req.demand)
    }

    /// Like [`Self::place_with_locality`] but also keeps the fallback off
    /// the avoid list when any other server fits — used for clones, which
    /// must spread across machines to be worth anything.
    fn place_with_locality_avoiding(
        free: &mut FreeTracker,
        req: &ContainerRequest,
        avoid: &[ServerId],
    ) -> Option<ServerId> {
        if let Some(s) = Self::place_with_locality(free, req, avoid) {
            if !avoid.contains(&s) {
                return Some(s);
            }
            // Fallback landed on an avoided server: look for any other
            // fitting server before accepting co-location.
            let alt = (0..free.len() as u32)
                .map(ServerId)
                .find(|s| !avoid.contains(s) && req.demand.fits_in(free.free(*s)));
            return alt.or(Some(s));
        }
        None
    }
}

impl Scheduler for YarnSystem {
    fn name(&self) -> String {
        format!("yarn-dollymp{}", self.clone_policy.max_copies - 1)
    }

    fn on_job_arrival(&mut self, view: &ClusterView<'_>, _job: JobId) {
        // "Recompute the priority of each job whenever a new Application
        // Master is created" (§5.2) — every AM re-estimates with its
        // freshest observations, then the RM re-runs Algorithm 1.
        self.refresh_all_reports(view);
    }

    fn on_job_finish(&mut self, job: &JobState) {
        if let Some(am) = self.ams.remove(&job.id()) {
            am.archive(job);
        }
        self.rm.retire_job(job.id());
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        let groups = self.priority_groups(view);
        let mut free = FreeTracker::new(view);
        let mut out: Vec<Assignment> = Vec::new();

        // Gather container requests per job (ready tasks only). The RM
        // validates each request rather than trusting the AM (same
        // RejectReason taxonomy as the engine/guard); invalid ones are
        // dropped and counted.
        let mut requests: HashMap<JobId, Vec<ContainerRequest>> = HashMap::new();
        for job in view.jobs() {
            if let Some(am) = self.ams.get(&job.id()) {
                let reqs: Vec<ContainerRequest> = am
                    .container_requests(job, view.cluster())
                    .into_iter()
                    .filter(|r| self.rm.admit_request(view.cluster(), r))
                    .collect();
                if !reqs.is_empty() {
                    requests.insert(job.id(), reqs);
                }
            }
        }

        // Primary pass in RM priority order, locality-aware.
        let mut newly_placed: HashMap<JobId, Vec<TaskRef>> = HashMap::new();
        let mut request_index: HashMap<TaskRef, ContainerRequest> = HashMap::new();
        for (_, members) in &groups {
            for &jid in members {
                let Some(reqs) = requests.remove(&jid) else {
                    continue;
                };
                for req in reqs {
                    if let Some(server) = Self::place_with_locality(&mut free, &req, &[]) {
                        free.commit(server, req.demand);
                        free.note_copy(req.task);
                        out.push(Assignment {
                            task: req.task,
                            server,
                            kind: CopyKind::Primary,
                        });
                        newly_placed.entry(jid).or_default().push(req.task);
                    }
                    request_index.insert(req.task, req);
                }
            }
        }

        // Clone passes ("repeat twice") over leftover resources — but at
        // most one *new* clone per task per decision point (clone
        // containers are granted round by round, matching DollyMP;
        // DESIGN.md §4.8).
        let mut cloned_this_batch: std::collections::HashSet<TaskRef> =
            std::collections::HashSet::new();
        // Servers already hosting a copy of each task *in this batch* —
        // clones must spread across machines like replicas do.
        let mut batch_servers: HashMap<TaskRef, Vec<ServerId>> = HashMap::new();
        for a in &out {
            batch_servers.entry(a.task).or_default().push(a.server);
        }
        if self.clone_policy.max_copies > 1 {
            for _ in 0..2 {
                let mut any = false;
                for (level, members) in &groups {
                    if *level == PRIORITY_UNSELECTED {
                        continue;
                    }
                    for &jid in members {
                        let Some(job) = view.job(jid) else { continue };
                        // §4.1 small-job gate on *reported* volumes.
                        let mine = self.rm.report(jid).map(|r| r.volume).unwrap_or(f64::MAX);
                        let others: f64 = view
                            .jobs()
                            .filter(|j| j.id() != jid)
                            .filter_map(|j| self.rm.report(j.id()).map(|r| r.volume))
                            .sum();
                        if !self.clone_policy.small_job_gate(mine, others) {
                            continue;
                        }
                        let mut candidates = job.running_tasks();
                        if let Some(extra) = newly_placed.get(&jid) {
                            candidates.extend(extra.iter().copied());
                        }
                        for task in candidates {
                            let am_budget = request_index
                                .get(&task)
                                .map(|r| r.max_clones + 1)
                                .unwrap_or(self.am_cfg.max_clones + 1);
                            let cap = self.clone_policy.max_copies.min(am_budget);
                            if free.effective_copies(view, task) >= cap {
                                continue;
                            }
                            if cloned_this_batch.contains(&task) {
                                continue;
                            }
                            let demand = job.spec().phase(task.phase).demand;
                            // Spread clones across machines: avoid servers
                            // already hosting live copies of this task —
                            // both from the view and from this batch.
                            let mut avoid: Vec<ServerId> = job
                                .task(task.phase, task.task)
                                .copies
                                .iter()
                                .filter(|c| c.is_live())
                                .map(|c| c.server)
                                .collect();
                            if let Some(extra) = batch_servers.get(&task) {
                                avoid.extend(extra.iter().copied());
                            }
                            let req = request_index
                                .get(&task)
                                .cloned()
                                .unwrap_or_else(|| ContainerRequest::new(task, demand));
                            if let Some(server) =
                                Self::place_with_locality_avoiding(&mut free, &req, &avoid)
                            {
                                free.commit(server, demand);
                                free.note_copy(task);
                                cloned_this_batch.insert(task);
                                batch_servers.entry(task).or_default().push(server);
                                out.push(Assignment {
                                    task,
                                    server,
                                    kind: CopyKind::Clone,
                                });
                                any = true;
                            }
                        }
                    }
                }
                if !any {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dollymp_cluster::engine::{simulate, EngineConfig};
    use dollymp_core::job::JobSpec;
    use dollymp_core::resources::Resources;

    fn sampler() -> DurationSampler {
        DurationSampler::new(21, StragglerModel::ParetoFit)
    }

    fn workload(n: u64, label: &str) -> Vec<JobSpec> {
        (0..n)
            .map(|i| {
                JobSpec::builder(JobId(i))
                    .arrival(i * 4)
                    .label(label)
                    .phase(dollymp_core::job::PhaseSpec::new(
                        4,
                        Resources::new(1.0, 2.0),
                        12.0,
                        5.0,
                    ))
                    .build()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn completes_workloads_and_names_itself() {
        let cluster = ClusterSpec::paper_30_node();
        let mut s = YarnSystem::new(2);
        assert_eq!(s.name(), "yarn-dollymp2");
        let r = simulate(
            &cluster,
            workload(10, "wc"),
            &sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        assert_eq!(r.jobs.len(), 10);
    }

    #[test]
    fn archives_history_after_jobs_finish() {
        let cluster = ClusterSpec::paper_30_node();
        let history = HistoryRegistry::new();
        let mut s = YarnSystem::with_history(2, history.clone());
        let _ = simulate(
            &cluster,
            workload(4, "recurring"),
            &sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        assert!(
            history.prior("recurring", 0).is_some(),
            "finished phases recorded as priors"
        );
        let (mean, _, n) = history.prior("recurring", 0).unwrap();
        assert!(mean > 0.0);
        assert!(n >= 4, "each job contributed observations");
    }

    #[test]
    fn warm_history_changes_nothing_structurally() {
        // A second run with a warm registry must still complete everything
        // (estimates differ, the mechanics hold).
        let cluster = ClusterSpec::paper_30_node();
        let history = HistoryRegistry::new();
        let jobs = workload(6, "stable");
        let mut cold = YarnSystem::with_history(2, history.clone());
        let r1 = simulate(
            &cluster,
            jobs.clone(),
            &sampler(),
            &mut cold,
            &EngineConfig::default(),
        );
        let mut warm = YarnSystem::with_history(2, history.clone());
        let r2 = simulate(
            &cluster,
            jobs,
            &sampler(),
            &mut warm,
            &EngineConfig::default(),
        );
        assert_eq!(r1.jobs.len(), r2.jobs.len());
        // Paired durations: identical workload/seed ⇒ identical task
        // tables; only the estimation (and hence possibly order) differs.
        assert!(r2.total_flowtime() > 0);
    }

    #[test]
    fn yarn_dollymp0_never_clones() {
        let cluster = ClusterSpec::paper_30_node();
        let mut s = YarnSystem::new(0);
        let r = simulate(
            &cluster,
            workload(6, "wc"),
            &sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        assert!(r.jobs.iter().all(|j| j.clone_copies == 0));
    }

    #[test]
    fn yarn_dollymp2_clones_under_light_load() {
        let cluster = ClusterSpec::paper_30_node();
        // One lonely job: everything else idle → clones expected.
        let mut s = YarnSystem::new(2);
        let r = simulate(
            &cluster,
            workload(1, "wc"),
            &sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        assert!(r.jobs[0].clone_copies > 0);
    }

    #[test]
    fn clone_spread_avoids_same_server_when_possible() {
        // 3 servers, single 1-task job with 2 clones allowed. Clone
        // containers are granted one per allocation round (DESIGN.md
        // §4.8), and a lone job has no later decision point before its
        // task completes — so exactly one clone is launched, on a
        // different server than the primary.
        let cluster = ClusterSpec::homogeneous(3, 2.0, 2.0);
        let job = JobSpec::single_phase(JobId(0), 1, Resources::new(1.0, 1.0), 10.0, 4.0);
        let mut s = YarnSystem::new(2);
        let r = simulate(
            &cluster,
            vec![job],
            &sampler(),
            &mut s,
            &EngineConfig::default(),
        );
        assert_eq!(r.jobs[0].clone_copies, 1);
        assert_eq!(r.jobs[0].tasks_cloned, 1);
    }
}
