//! The simulated Application Master (§5.2).
//!
//! One AM per job. Its responsibility here is **estimation**: unlike the
//! plain simulator schedulers, which read a phase's true `(θ, σ)` from
//! the job spec, a YARN AM must *estimate* task statistics, in the
//! paper's three-tier order:
//!
//! 1. prior runs of the same recurring application (the
//!    [`HistoryRegistry`]);
//! 2. the measured durations of already-finished tasks of the same phase
//!    in the current run ("tasks from the same phase … have similar
//!    resource requirements and execution properties");
//! 3. otherwise a configured default guess (all the AM knows is the
//!    container request).
//!
//! From these estimates the AM computes the job's remaining effective
//! volume and processing time (Eq. 14/16/17 with `θ̂, σ̂`) and reports
//! them to the RM, and emits container requests carrying task IDs,
//! clone budgets and locality preferences.

use crate::history::HistoryRegistry;
use crate::protocol::{ContainerRequest, JobReport};
use dollymp_cluster::spec::ClusterSpec;
use dollymp_cluster::state::JobState;
use dollymp_core::job::PhaseId;
use dollymp_core::resources::dominant_share;
use serde::{Deserialize, Serialize};

/// AM estimation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AmConfig {
    /// Default duration guess (slots) when neither history nor current
    /// observations exist.
    pub default_theta: f64,
    /// σ-weight `w` in effective times (paper: 1.5).
    pub sigma_weight: f64,
    /// Clone budget advertised in container requests (paper: 2).
    pub max_clones: u32,
    /// Minimum completed tasks before trusting in-run observations over
    /// the default guess.
    pub min_observations: u64,
}

impl Default for AmConfig {
    fn default() -> Self {
        AmConfig {
            default_theta: 10.0,
            sigma_weight: 1.5,
            max_clones: 2,
            min_observations: 1,
        }
    }
}

/// The per-job Application Master.
#[derive(Debug, Clone)]
pub struct ApplicationMaster {
    cfg: AmConfig,
    history: HistoryRegistry,
}

impl ApplicationMaster {
    /// Create an AM backed by the shared history registry.
    pub fn new(cfg: AmConfig, history: HistoryRegistry) -> Self {
        ApplicationMaster { cfg, history }
    }

    /// Estimated `(θ̂, σ̂)` of one phase, via the three-tier policy.
    pub fn estimate_phase(&self, job: &JobState, phase: PhaseId) -> (f64, f64) {
        let label = &job.spec().label;
        // Tier 2 first if the current run already has better evidence than
        // a cross-run prior? The paper updates "timely when more tasks
        // finish": blend prior and current observations when both exist.
        let observed = &job.phase_state(phase).observed;
        let prior = self.history.prior(label, phase.0);
        match (prior, observed.count() >= self.cfg.min_observations.max(1)) {
            (Some((pm, ps, pn)), true) => {
                // Weighted blend of prior and in-run evidence.
                let on = observed.count() as f64;
                let w = on / (on + pn as f64);
                (
                    w * observed.mean() + (1.0 - w) * pm,
                    w * observed.population_std() + (1.0 - w) * ps,
                )
            }
            (Some((pm, ps, _)), false) => (pm, ps),
            (None, true) => (observed.mean(), observed.population_std()),
            (None, false) => (self.cfg.default_theta, 0.0),
        }
    }

    /// The report the AM sends to the RM: estimated remaining volume,
    /// estimated remaining critical path and the dominant share.
    pub fn report(&self, job: &JobState, cluster: &ClusterSpec) -> JobReport {
        let totals = cluster.totals();
        let spec = job.spec();
        let remaining = job.remaining_tasks();
        let finished = job.finished_phases();
        let w = self.cfg.sigma_weight;

        // Remaining volume with estimated stats (Eq. 16 with θ̂, σ̂).
        let mut volume = 0.0;
        let mut dominant = 0.0f64;
        for (pi, p) in spec.phases().iter().enumerate() {
            let d = dominant_share(p.demand, totals);
            dominant = dominant.max(d);
            let (theta, sigma) = self.estimate_phase(job, PhaseId(pi as u32));
            volume += remaining[pi] as f64 * (theta + w * sigma) * d;
        }

        // Remaining critical path with estimated stats (Eq. 17).
        let mut longest = vec![0.0f64; spec.num_phases()];
        let mut etime = 0.0f64;
        for &pid in spec.topo_order() {
            let idx = pid.0 as usize;
            let own = if finished[idx] {
                0.0
            } else {
                let (theta, sigma) = self.estimate_phase(job, pid);
                theta + w * sigma
            };
            let up = spec
                .phase(pid)
                .parents
                .iter()
                .map(|p| longest[p.0 as usize])
                .fold(0.0f64, f64::max);
            longest[idx] = up + own;
            etime = etime.max(longest[idx]);
        }

        // Speedup fit for the first unfinished phase — what the RM's
        // Corollary 4.1 clone recommendation will act on.
        let speedup = spec
            .topo_order()
            .iter()
            .find(|p| !finished[p.0 as usize])
            .map(|&p| {
                let (theta, sigma) = self.estimate_phase(job, p);
                dollymp_core::speedup::SpeedupFn::fit_pareto(theta, sigma)
            })
            .unwrap_or(dollymp_core::speedup::SpeedupFn::None);

        JobReport {
            job: job.id(),
            volume,
            etime,
            dominant,
            speedup,
        }
    }

    /// Container requests for the job's currently-ready tasks, with
    /// locality preferences set to the task's input-block replicas from
    /// the shared block map ([`dollymp_cluster::execution::block_replicas`])
    /// — the same map the engine's remote-read penalty consults, so the
    /// AM's preferences are *correct*, not merely plausible.
    pub fn container_requests(
        &self,
        job: &JobState,
        cluster: &ClusterSpec,
    ) -> Vec<ContainerRequest> {
        job.ready_tasks()
            .into_iter()
            .map(|task| {
                let demand = job.spec().phase(task.phase).demand;
                let replicas = dollymp_cluster::execution::block_replicas(task, cluster.len());
                ContainerRequest::new(task, demand)
                    .with_max_clones(self.cfg.max_clones)
                    .with_preferred(replicas.to_vec())
            })
            .collect()
    }

    /// On job completion, fold the run's observed per-phase statistics
    /// back into the recurring-job history.
    pub fn archive(&self, job: &JobState) {
        for (pi, _) in job.spec().phases().iter().enumerate() {
            let obs = &job.phase_state(PhaseId(pi as u32)).observed;
            self.history.record(&job.spec().label, pi as u32, obs);
        }
    }

    /// This AM's configuration.
    pub fn config(&self) -> &AmConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dollymp_cluster::state::JobState;
    use dollymp_core::job::{JobId, JobSpec, PhaseSpec};
    use dollymp_core::resources::Resources;
    use dollymp_core::stats::RunningStats;

    fn job_state(label: &str) -> JobState {
        let spec = JobSpec::builder(JobId(1))
            .label(label)
            .phase(PhaseSpec::new(4, Resources::new(1.0, 2.0), 100.0, 30.0))
            .phase(
                PhaseSpec::new(2, Resources::new(2.0, 4.0), 50.0, 10.0)
                    .with_parents(vec![PhaseId(0)]),
            )
            .build()
            .unwrap();
        let tables = vec![vec![100.0; 4], vec![50.0; 2]];
        JobState::new(spec, tables)
    }

    fn am(history: HistoryRegistry) -> ApplicationMaster {
        ApplicationMaster::new(AmConfig::default(), history)
    }

    #[test]
    fn tier3_default_guess_when_nothing_known() {
        let a = am(HistoryRegistry::new());
        let job = job_state("cold");
        let (theta, sigma) = a.estimate_phase(&job, PhaseId(0));
        assert_eq!(theta, AmConfig::default().default_theta);
        assert_eq!(sigma, 0.0);
        // Crucially NOT the spec's true 100.0 — the AM has no oracle.
        assert_ne!(theta, 100.0);
    }

    #[test]
    fn tier1_history_prior_used_when_present() {
        let history = HistoryRegistry::new();
        let mut s = RunningStats::new();
        for x in [90.0, 100.0, 110.0] {
            s.push(x);
        }
        history.record("warm", 0, &s);
        let a = am(history);
        let job = job_state("warm");
        let (theta, _sigma) = a.estimate_phase(&job, PhaseId(0));
        assert!((theta - 100.0).abs() < 1e-9, "prior mean used, got {theta}");
    }

    #[test]
    fn tier2_in_run_observations_used_when_no_history() {
        let a = am(HistoryRegistry::new());
        let mut job = job_state("cold");
        job.push_observed(PhaseId(0), 80.0);
        job.push_observed(PhaseId(0), 120.0);
        let (theta, sigma) = a.estimate_phase(&job, PhaseId(0));
        assert!((theta - 100.0).abs() < 1e-9);
        assert!(sigma > 0.0);
    }

    #[test]
    fn prior_and_observations_blend_by_sample_count() {
        let history = HistoryRegistry::new();
        let mut s = RunningStats::new();
        s.push(200.0); // one prior sample at 200
        history.record("mix", 0, &s);
        let a = am(history);
        let mut job = job_state("mix");
        job.push_observed(PhaseId(0), 100.0); // one in-run sample at 100
        let (theta, _) = a.estimate_phase(&job, PhaseId(0));
        assert!(
            (theta - 150.0).abs() < 1e-9,
            "equal-weight blend, got {theta}"
        );
    }

    #[test]
    fn report_uses_estimates_not_oracle_stats() {
        let cluster = dollymp_cluster::spec::ClusterSpec::homogeneous(4, 8.0, 16.0);
        let a = am(HistoryRegistry::new());
        let job = job_state("cold");
        let r = a.report(&job, &cluster);
        // With the default guess θ̂ = 10 and σ̂ = 0 for both phases, the
        // estimated critical path is 20 (≪ the true 100 + 50 + w·σ).
        assert!((r.etime - 20.0).abs() < 1e-9, "etime {}", r.etime);
        // Volume: 4·10·d₀ + 2·10·d₁ with d₀ = 2/64, d₁ = 4/64.
        let expected = 4.0 * 10.0 * (2.0 / 64.0) + 2.0 * 10.0 * (4.0 / 64.0);
        assert!((r.volume - expected).abs() < 1e-9, "volume {}", r.volume);
        assert!((r.dominant - 4.0 / 64.0).abs() < 1e-9);
    }

    #[test]
    fn container_requests_cover_ready_frontier_with_replicas() {
        let cluster = dollymp_cluster::spec::ClusterSpec::homogeneous(10, 8.0, 16.0);
        let a = am(HistoryRegistry::new());
        let job = job_state("cold");
        let reqs = a.container_requests(&job, &cluster);
        // Only phase 0 is ready: 4 tasks.
        assert_eq!(reqs.len(), 4);
        for r in &reqs {
            assert_eq!(r.max_clones, 2);
            assert_eq!(r.preferred_servers.len(), 2);
            assert!(r.preferred_servers.iter().all(|s| (s.0 as usize) < 10));
            assert_eq!(r.demand, Resources::new(1.0, 2.0));
        }
        // Deterministic per identity.
        assert_eq!(reqs, a.container_requests(&job, &cluster));
    }

    #[test]
    fn archive_records_observed_phases_only() {
        let history = HistoryRegistry::new();
        let a = am(history.clone());
        let mut job = job_state("arch");
        job.push_observed(PhaseId(0), 95.0);
        a.archive(&job);
        assert!(history.prior("arch", 0).is_some());
        assert!(history.prior("arch", 1).is_none(), "phase 1 never ran");
    }
}
