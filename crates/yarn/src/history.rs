//! The recurring-job history registry (§5.2, estimation source #1):
//! *"recurring jobs are fairly common in big data processing clusters …
//! for such jobs, AM directly applies task statistics measured in prior
//! runs of the job."*
//!
//! Keyed by `(application label, phase index)`; thread-safe behind a
//! [`parking_lot::RwLock`] so a shared registry can serve many simulated
//! AMs (and parallel experiment sweeps).

use dollymp_core::stats::RunningStats;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Aggregated duration statistics of prior runs, per application phase.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct HistoryData {
    /// `(label, phase index)` → duration stats across runs.
    phases: HashMap<(String, u32), RunningStats>,
}

/// Shared, thread-safe history registry.
#[derive(Debug, Clone, Default)]
pub struct HistoryRegistry {
    inner: Arc<RwLock<HistoryData>>,
}

impl HistoryRegistry {
    /// An empty registry (a cold cluster with no prior runs).
    pub fn new() -> Self {
        HistoryRegistry::default()
    }

    /// Record the observed duration stats of one finished phase run.
    pub fn record(&self, label: &str, phase_idx: u32, observed: &RunningStats) {
        if observed.count() == 0 {
            return;
        }
        let mut data = self.inner.write();
        data.phases
            .entry((label.to_string(), phase_idx))
            .or_default()
            .merge(observed);
    }

    /// Prior `(mean, std, samples)` for a phase of a recurring
    /// application, if any run has been recorded.
    pub fn prior(&self, label: &str, phase_idx: u32) -> Option<(f64, f64, u64)> {
        let data = self.inner.read();
        data.phases
            .get(&(label.to_string(), phase_idx))
            .filter(|s| s.count() > 0)
            .map(|s| (s.mean(), s.population_std(), s.count()))
    }

    /// Number of distinct `(label, phase)` entries.
    pub fn len(&self) -> usize {
        self.inner.read().phases.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_has_no_priors() {
        let r = HistoryRegistry::new();
        assert!(r.is_empty());
        assert_eq!(r.prior("wordcount", 0), None);
    }

    #[test]
    fn record_then_query() {
        let r = HistoryRegistry::new();
        let mut s = RunningStats::new();
        for x in [8.0, 10.0, 12.0] {
            s.push(x);
        }
        r.record("wordcount", 0, &s);
        let (mean, _std, n) = r.prior("wordcount", 0).unwrap();
        assert!((mean - 10.0).abs() < 1e-9);
        assert_eq!(n, 3);
        // Other phases/labels unaffected.
        assert_eq!(r.prior("wordcount", 1), None);
        assert_eq!(r.prior("pagerank", 0), None);
    }

    #[test]
    fn repeated_runs_merge() {
        let r = HistoryRegistry::new();
        let mut a = RunningStats::new();
        a.push(10.0);
        let mut b = RunningStats::new();
        b.push(20.0);
        r.record("pagerank", 2, &a);
        r.record("pagerank", 2, &b);
        let (mean, _, n) = r.prior("pagerank", 2).unwrap();
        assert_eq!(n, 2);
        assert!((mean - 15.0).abs() < 1e-9);
    }

    #[test]
    fn empty_observations_ignored() {
        let r = HistoryRegistry::new();
        r.record("x", 0, &RunningStats::new());
        assert!(r.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let r = HistoryRegistry::new();
        let r2 = r.clone();
        let mut s = RunningStats::new();
        s.push(5.0);
        r2.record("shared", 0, &s);
        assert!(r.prior("shared", 0).is_some(), "clone writes visible");
    }
}
