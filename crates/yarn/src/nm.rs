//! The simulated Node Manager — the node-side of Fig. 3.
//!
//! A [`NodeManager`] owns the containers on one server: it enforces the
//! node's capacity at launch, tracks task/clone containers through their
//! lifecycle (running → completed/killed), and reports state upward via
//! [`NodeHeartbeat`]s. The engine in `dollymp-cluster` performs this same
//! bookkeeping internally for speed; this component exposes it as an
//! explicit, independently tested protocol surface — the piece of YARN
//! the paper's kill-on-first-finish and cloned-container launches
//! actually talk to.

use dollymp_cluster::spec::ServerId;
use dollymp_core::job::TaskRef;
use dollymp_core::resources::Resources;
use dollymp_core::time::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a container within one NM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ContainerId(pub u64);

/// Lifecycle of a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContainerState {
    /// Occupying resources.
    Running,
    /// Finished normally (its copy won).
    Completed,
    /// Killed because a sibling copy finished first.
    Killed,
    /// Lost because the node crashed underneath it.
    Evicted,
}

/// One task/clone container on a node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Container {
    /// NM-local id.
    pub id: ContainerId,
    /// The task whose copy runs inside.
    pub task: TaskRef,
    /// Copy index (0 = primary).
    pub copy_idx: u32,
    /// Resources held while running.
    pub demand: Resources,
    /// Launch slot.
    pub started: Time,
    /// Current state.
    pub state: ContainerState,
    /// End slot (completion or kill), once terminal.
    pub ended: Option<Time>,
}

/// Errors from NM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NmError {
    /// Launch would exceed the node's capacity.
    OverCapacity,
    /// Unknown container id.
    UnknownContainer(ContainerId),
    /// Terminal-state transition on an already-terminal container.
    NotRunning(ContainerId),
    /// The node is crashed; it cannot host containers until restarted.
    NodeDown,
}

impl fmt::Display for NmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NmError::OverCapacity => write!(f, "launch exceeds node capacity"),
            NmError::UnknownContainer(c) => write!(f, "unknown container {}", c.0),
            NmError::NotRunning(c) => write!(f, "container {} is not running", c.0),
            NmError::NodeDown => write!(f, "node is down"),
        }
    }
}

impl std::error::Error for NmError {}

/// Periodic node → RM status report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeHeartbeat {
    /// Which node.
    pub server: ServerId,
    /// Slot the heartbeat was taken at.
    pub at: Time,
    /// Resources currently free.
    pub available: Resources,
    /// Tasks with a running copy here.
    pub running: Vec<TaskRef>,
}

/// Node-side container manager for one server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeManager {
    server: ServerId,
    capacity: Resources,
    used: Resources,
    next_id: u64,
    containers: Vec<Container>,
    /// Crashed: refuses launches and sends no heartbeats until restarted.
    #[serde(default)]
    down: bool,
}

impl NodeManager {
    /// An NM for a server with the given capacity.
    pub fn new(server: ServerId, capacity: Resources) -> Self {
        NodeManager {
            server,
            capacity,
            used: Resources::ZERO,
            next_id: 0,
            containers: Vec::new(),
            down: false,
        }
    }

    /// Launch a container for `task`'s copy `copy_idx`.
    pub fn launch(
        &mut self,
        task: TaskRef,
        copy_idx: u32,
        demand: Resources,
        now: Time,
    ) -> Result<ContainerId, NmError> {
        if self.down {
            return Err(NmError::NodeDown);
        }
        if !demand.fits_in(self.capacity.saturating_sub(self.used)) {
            return Err(NmError::OverCapacity);
        }
        let id = ContainerId(self.next_id);
        self.next_id += 1;
        self.used += demand;
        self.containers.push(Container {
            id,
            task,
            copy_idx,
            demand,
            started: now,
            state: ContainerState::Running,
            ended: None,
        });
        Ok(id)
    }

    fn finish(&mut self, id: ContainerId, now: Time, state: ContainerState) -> Result<(), NmError> {
        let c = self
            .containers
            .iter_mut()
            .find(|c| c.id == id)
            .ok_or(NmError::UnknownContainer(id))?;
        if c.state != ContainerState::Running {
            return Err(NmError::NotRunning(id));
        }
        c.state = state;
        c.ended = Some(now);
        self.used -= c.demand;
        Ok(())
    }

    /// Mark a container completed (its copy won) and free its resources.
    pub fn complete(&mut self, id: ContainerId, now: Time) -> Result<(), NmError> {
        self.finish(id, now, ContainerState::Completed)
    }

    /// Kill a container (a sibling copy won) and free its resources.
    pub fn kill(&mut self, id: ContainerId, now: Time) -> Result<(), NmError> {
        self.finish(id, now, ContainerState::Killed)
    }

    /// Kill every running container of `task` except `keep` — the §5.2
    /// rule "the AM keeps another running copy … and kills the remaining
    /// running copies on their corresponding Node Managers". Returns the
    /// number killed.
    pub fn kill_siblings(&mut self, task: TaskRef, keep: ContainerId, now: Time) -> usize {
        let ids: Vec<ContainerId> = self
            .containers
            .iter()
            .filter(|c| c.task == task && c.id != keep && c.state == ContainerState::Running)
            .map(|c| c.id)
            .collect();
        for id in &ids {
            self.kill(*id, now).expect("listed running container");
        }
        ids.len()
    }

    /// The node crashes: every running container is marked
    /// [`ContainerState::Evicted`], its resources are freed, and the NM
    /// stops accepting launches and emitting heartbeats. Returns the
    /// tasks whose copies were lost here, in container-launch order, so
    /// the RM can trigger re-execution.
    pub fn crash(&mut self, now: Time) -> Vec<TaskRef> {
        self.down = true;
        let mut lost = Vec::new();
        for c in &mut self.containers {
            if c.state == ContainerState::Running {
                c.state = ContainerState::Evicted;
                c.ended = Some(now);
                self.used -= c.demand;
                lost.push(c.task);
            }
        }
        lost
    }

    /// The node comes back, empty, and resumes heartbeating. Container
    /// history (including the evicted ones) is preserved for audit.
    pub fn restart(&mut self, _now: Time) {
        self.down = false;
    }

    /// Whether this node is currently crashed.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Resources currently free on this node.
    pub fn available(&self) -> Resources {
        self.capacity.saturating_sub(self.used)
    }

    /// Resources currently held by running containers.
    pub fn used(&self) -> Resources {
        self.used
    }

    /// This node's id.
    pub fn server(&self) -> ServerId {
        self.server
    }

    /// All containers ever launched (terminal ones included).
    pub fn containers(&self) -> &[Container] {
        &self.containers
    }

    /// Produce a heartbeat snapshot — `None` while the node is down (a
    /// crashed NM is silent; the RM detects it only by timeout, which is
    /// what [`crate::failover::HeartbeatMonitor`] models).
    pub fn heartbeat(&self, now: Time) -> Option<NodeHeartbeat> {
        if self.down {
            return None;
        }
        Some(NodeHeartbeat {
            server: self.server,
            at: now,
            available: self.available(),
            running: self
                .containers
                .iter()
                .filter(|c| c.state == ContainerState::Running)
                .map(|c| c.task)
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dollymp_core::job::{JobId, PhaseId, TaskId};

    fn task(j: u64, t: u32) -> TaskRef {
        TaskRef {
            job: JobId(j),
            phase: PhaseId(0),
            task: TaskId(t),
        }
    }

    fn nm() -> NodeManager {
        NodeManager::new(ServerId(3), Resources::new(4.0, 8.0))
    }

    #[test]
    fn launch_tracks_capacity() {
        let mut n = nm();
        let d = Resources::new(2.0, 4.0);
        let a = n.launch(task(0, 0), 0, d, 1).unwrap();
        assert_eq!(n.available(), Resources::new(2.0, 4.0));
        let _b = n.launch(task(0, 1), 0, d, 1).unwrap();
        assert_eq!(n.available(), Resources::ZERO);
        // Third launch over capacity.
        assert_eq!(n.launch(task(0, 2), 0, d, 1), Err(NmError::OverCapacity));
        // Completing frees resources exactly.
        n.complete(a, 5).unwrap();
        assert_eq!(n.available(), d);
        assert_eq!(n.used(), d);
    }

    #[test]
    fn lifecycle_transitions_are_guarded() {
        let mut n = nm();
        let id = n
            .launch(task(1, 0), 0, Resources::new(1.0, 1.0), 0)
            .unwrap();
        n.complete(id, 4).unwrap();
        assert_eq!(n.complete(id, 5), Err(NmError::NotRunning(id)));
        assert_eq!(n.kill(id, 5), Err(NmError::NotRunning(id)));
        assert_eq!(
            n.kill(ContainerId(99), 5),
            Err(NmError::UnknownContainer(ContainerId(99)))
        );
        let c = &n.containers()[0];
        assert_eq!(c.state, ContainerState::Completed);
        assert_eq!(c.ended, Some(4));
    }

    #[test]
    fn kill_siblings_spares_the_keeper() {
        let mut n = nm();
        let t = task(2, 0);
        let keep = n.launch(t, 0, Resources::new(1.0, 1.0), 0).unwrap();
        let _c1 = n.launch(t, 1, Resources::new(1.0, 1.0), 0).unwrap();
        let _c2 = n.launch(t, 2, Resources::new(1.0, 1.0), 0).unwrap();
        let other = n
            .launch(task(2, 1), 0, Resources::new(1.0, 1.0), 0)
            .unwrap();
        let killed = n.kill_siblings(t, keep, 7);
        assert_eq!(killed, 2);
        assert_eq!(n.containers()[0].state, ContainerState::Running, "keeper");
        assert_eq!(n.containers()[1].state, ContainerState::Killed);
        assert_eq!(n.containers()[2].state, ContainerState::Killed);
        // Unrelated task untouched.
        let o = n.containers().iter().find(|c| c.id == other).unwrap();
        assert_eq!(o.state, ContainerState::Running);
        // Resources of the two killed clones freed.
        assert_eq!(n.used(), Resources::new(2.0, 2.0));
    }

    #[test]
    fn heartbeat_reports_running_tasks() {
        let mut n = nm();
        let a = n
            .launch(task(0, 0), 0, Resources::new(1.0, 2.0), 3)
            .unwrap();
        let _ = n
            .launch(task(0, 1), 0, Resources::new(1.0, 2.0), 3)
            .unwrap();
        n.complete(a, 9).unwrap();
        let hb = n.heartbeat(10).expect("node is up");
        assert_eq!(hb.server, ServerId(3));
        assert_eq!(hb.at, 10);
        assert_eq!(hb.running, vec![task(0, 1)]);
        assert_eq!(hb.available, Resources::new(3.0, 6.0));
    }

    #[test]
    fn crash_evicts_running_containers_and_silences_heartbeats() {
        let mut n = nm();
        let d = Resources::new(1.0, 1.0);
        let done = n.launch(task(0, 0), 0, d, 0).unwrap();
        n.complete(done, 4).unwrap();
        let _live = n.launch(task(0, 1), 0, d, 2).unwrap();
        let _clone = n.launch(task(1, 0), 1, d, 3).unwrap();

        let lost = n.crash(6);
        assert_eq!(lost, vec![task(0, 1), task(1, 0)]);
        assert!(n.is_down());
        assert_eq!(n.used(), Resources::ZERO, "evicted containers freed");
        assert_eq!(n.heartbeat(6), None, "crashed node is silent");
        assert_eq!(n.launch(task(2, 0), 0, d, 7), Err(NmError::NodeDown));
        // Completed history survives; running ones are terminal Evicted.
        assert_eq!(n.containers()[0].state, ContainerState::Completed);
        assert_eq!(n.containers()[1].state, ContainerState::Evicted);
        assert_eq!(n.containers()[1].ended, Some(6));
        // Evicted is terminal: completing it is an error.
        assert_eq!(
            n.complete(n.containers()[1].id, 7),
            Err(NmError::NotRunning(n.containers()[1].id))
        );

        n.restart(9);
        assert!(!n.is_down());
        assert_eq!(n.heartbeat(9).unwrap().available, n.available());
        assert!(n.launch(task(2, 0), 0, d, 9).is_ok());
    }

    #[test]
    fn serde_round_trip() {
        let mut n = nm();
        let _ = n
            .launch(task(0, 0), 0, Resources::new(1.0, 1.0), 0)
            .unwrap();
        let json = serde_json::to_string(&n).unwrap();
        let back: NodeManager = serde_json::from_str(&json).unwrap();
        assert_eq!(n, back);
    }
}
