//! The §2 / Fig. 2 worked example, executed end-to-end in the simulator.
//!
//! One server of normalized capacity 1; three single-task jobs:
//!
//! | job | demand | time |
//! |-----|--------|------|
//! | 1   | 0.80   | 10 s |
//! | 2   | 0.25   |  8 s |
//! | 3   | 0.25   |  8 s |
//!
//! The paper reports total completion times of **46 s** for Tetris,
//! **42 s** for Tetris + opportunistic cloning, **34 s** for the
//! small-jobs-first order without clones (DollyMP⁰) and **28 s** for
//! DollyMP with one clone each for jobs 2 and 3 (one clone turns 8 s
//! into 6 s via the Eq. (3) speedup, `h(2) = 4/3` at α = 2.5).
//!
//! Run with:
//! ```sh
//! cargo run --release --example motivating_example
//! ```

use dollymp::prelude::*;

fn jobs() -> Vec<JobSpec> {
    // Unit-capacity server → demands are fractions of 1 core / 1 GB.
    vec![
        JobSpec::single_phase(JobId(1), 1, Resources::new(0.80, 0.80), 10.0, 0.0),
        JobSpec::single_phase(JobId(2), 1, Resources::new(0.25, 0.25), 8.0, 0.0),
        JobSpec::single_phase(JobId(3), 1, Resources::new(0.25, 0.25), 8.0, 0.0),
    ]
}

fn main() {
    let cluster = ClusterSpec::homogeneous(1, 1.0, 1.0);
    // Expectation-based cloning: a task with r simultaneous copies takes
    // exactly θ / h(r), the arithmetic the worked example uses.
    let sampler = DurationSampler::new(0, StragglerModel::ExpectedSpeedup { alpha: 2.5 });

    println!("Fig. 2 worked example — one unit server, three jobs\n");
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>12}",
        "scheduler", "job1", "job2", "job3", "total flow"
    );
    for name in ["tetris", "tetris+clone1", "dollymp0", "dollymp1"] {
        let mut s = by_name(name).expect("known scheduler");
        let r = simulate(
            &cluster,
            jobs(),
            &sampler,
            s.as_mut(),
            &EngineConfig::default(),
        );
        let by_id = r.by_id();
        println!(
            "{:<22} {:>8} {:>8} {:>8} {:>12}",
            name,
            by_id[&JobId(1)].flowtime,
            by_id[&JobId(2)].flowtime,
            by_id[&JobId(3)].flowtime,
            r.total_flowtime()
        );
    }
    println!(
        "\npaper's numbers — Tetris: 46, Tetris+cloning: 42, small-first without clones: 34,\n\
         DollyMP (one clone for jobs 2 and 3): 28."
    );
}
