//! Quickstart: schedule a small workload on the paper's 30-node cluster
//! with DollyMP² and three baselines, and print a comparison table.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dollymp::prelude::*;

fn main() {
    // The heterogeneous 30-node / 328-core cluster of §6.1.
    let cluster = ClusterSpec::paper_30_node();
    println!(
        "cluster: {} servers, totals = {}",
        cluster.len(),
        cluster.totals()
    );

    // A 25-job WordCount/PageRank mix (the §6.2 light-load suite, ×1/4).
    let jobs = dollymp::workload::suite::light_load(7, 4);
    println!(
        "workload: {} jobs ({} tasks total)\n",
        jobs.len(),
        jobs.iter().map(|j| j.total_tasks()).sum::<u64>()
    );

    // Paired stochastic task durations: every scheduler sees the same
    // draws, so differences below are pure policy.
    let sampler = DurationSampler::new(7, StragglerModel::ParetoFit);

    println!(
        "{:<16} {:>14} {:>12} {:>12} {:>10}",
        "scheduler", "total flow", "mean flow", "mean run", "clones"
    );
    for name in ["capacity-nospec", "tetris", "drf", "dollymp0", "dollymp2"] {
        let mut s = by_name(name).expect("known scheduler");
        let report = simulate(
            &cluster,
            jobs.clone(),
            &sampler,
            s.as_mut(),
            &EngineConfig::default(),
        );
        println!(
            "{:<16} {:>14} {:>12.1} {:>12.1} {:>10}",
            name,
            report.total_flowtime(),
            report.mean_flowtime(),
            report.mean_running_time(),
            report.jobs.iter().map(|j| j.clone_copies).sum::<u64>()
        );
    }
    println!("\n(flow/run times in 5-second slots; see EXPERIMENTS.md for full figures)");
}
