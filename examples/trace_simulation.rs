//! Trace-driven simulation at scale (§6.3): generate a Google-like
//! workload, persist it as a JSON trace, replay it on a large cluster
//! under DollyMP², Tetris and DRF, and report the per-job speedup and
//! resource-usage ratios of Fig. 8 (here at 1 000 servers / 300 jobs so
//! the example finishes in seconds; the fig08 bench binary runs the full
//! scale).
//!
//! Run with:
//! ```sh
//! cargo run --release --example trace_simulation
//! ```

use dollymp::cluster::metrics::quantile;
use dollymp::prelude::*;

fn main() {
    // 1) Generate and persist a trace (replayable, shareable).
    let cfg = GoogleConfig {
        njobs: 300,
        mean_gap_slots: 2.0,
        seed: 2022,
        ..Default::default()
    };
    let jobs = generate_google(&cfg);
    let trace = Trace::new(format!("google-like {cfg:?}"), jobs);
    let path = std::env::temp_dir().join("dollymp_trace.json");
    trace.save(&path).expect("trace written");
    println!(
        "trace: {} jobs saved to {}",
        trace.jobs.len(),
        path.display()
    );

    // 2) Replay on a 1 000-server heterogeneous fleet.
    let cluster = ClusterSpec::google_like(1000, 5);
    let sampler = DurationSampler::new(2022, StragglerModel::google_traces());
    let replayed = Trace::load(&path).expect("trace read back");

    let mut results = Vec::new();
    for name in ["dollymp2", "tetris", "drf"] {
        let mut s = by_name(name).expect("known scheduler");
        let r = simulate(
            &cluster,
            replayed.jobs.clone(),
            &sampler,
            s.as_mut(),
            &EngineConfig::default(),
        );
        println!(
            "{name:<10} total flow {:>10}  makespan {:>6}  usage {:>10.1}",
            r.total_flowtime(),
            r.makespan,
            r.total_usage()
        );
        results.push((name, r));
    }

    // 3) Fig. 8-style per-job ratios: DollyMP² vs Tetris (flowtime) and
    //    DollyMP² vs DRF (resource usage).
    let dollymp = &results[0].1;
    let tetris = results[1].1.by_id();
    let drf = results[2].1.by_id();
    let flow_ratios: Vec<f64> = dollymp
        .jobs
        .iter()
        .filter_map(|j| {
            tetris
                .get(&j.id)
                .map(|t| j.flowtime as f64 / t.flowtime.max(1) as f64)
        })
        .collect();
    let usage_ratios: Vec<f64> = dollymp
        .jobs
        .iter()
        .filter_map(|j| drf.get(&j.id).map(|d| j.usage / d.usage.max(1e-9)))
        .collect();
    println!(
        "\nflowtime ratio DollyMP²/Tetris: p10 {:.2}  p50 {:.2}  p90 {:.2}",
        quantile(&flow_ratios, 0.1),
        quantile(&flow_ratios, 0.5),
        quantile(&flow_ratios, 0.9)
    );
    println!(
        "usage ratio DollyMP²/DRF:       p10 {:.2}  p50 {:.2}  p90 {:.2}",
        quantile(&usage_ratios, 0.1),
        quantile(&usage_ratios, 0.5),
        quantile(&usage_ratios, 0.9)
    );
}
