//! Walk through the §5.2 delay-assignment shuffle rule on a concrete
//! map → reduce edge: an upstream map task with three copies feeding a
//! downstream reduce task with two copies.
//!
//! Run with:
//! ```sh
//! cargo run --release --example delay_assignment
//! ```

use dollymp::core::job::{JobId, PhaseId, TaskId, TaskRef};
use dollymp::yarn::shuffle::{DelayAssigner, ShuffleDecision};

fn task(phase: u32) -> TaskRef {
    TaskRef {
        job: JobId(1),
        phase: PhaseId(phase),
        task: TaskId(0),
    }
}

fn main() {
    println!("§5.2 delay assignment — map task (3 copies) → reduce task (2 copies)\n");
    let mut edge = DelayAssigner::new(task(0), task(1), 3, 2);
    println!(
        "delay rule active: {} (downstream has clones, upstream has ≥ as many copies)\n",
        edge.delay_active()
    );

    // Upstream copies finish in the order 2, 0, 1 (copy 2 was on the
    // fastest machine).
    for (event, copy) in [("first", 2u32), ("second", 0), ("third", 1)] {
        let decision = edge.on_upstream_finish(copy);
        print!("{event} upstream copy to finish is #{copy}: ");
        match decision {
            ShuffleDecision::Wait => {
                println!("WAIT — hold the output until a second copy lands")
            }
            ShuffleDecision::Bind(bindings) => {
                println!("BIND —");
                for b in bindings {
                    println!(
                        "    reduce copy #{} reads map output from copy #{}",
                        b.downstream_copy, b.upstream_copy
                    );
                }
            }
            ShuffleDecision::Done => {
                println!("DONE — all consumers already fed; the late clone is ignored")
            }
        }
    }

    println!(
        "\nand the degenerate case — 1 upstream copy, 3 downstream clones \
         (broadcast):"
    );
    let mut skinny = DelayAssigner::new(task(0), task(1), 1, 3);
    match skinny.on_upstream_finish(0) {
        ShuffleDecision::Bind(bindings) => {
            for b in bindings {
                println!(
                    "    reduce copy #{} reads map output from copy #{}",
                    b.downstream_copy, b.upstream_copy
                );
            }
        }
        other => println!("unexpected: {other:?}"),
    }
}
