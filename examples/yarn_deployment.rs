//! Deployment-style run through the simulated YARN control plane (§5.2):
//! the Resource Manager schedules on statistics *estimated* by the
//! Application Masters, and recurring-job history sharpens those
//! estimates across runs.
//!
//! The example submits the same recurring WordCount workload twice —
//! first against a cold history registry, then against the registry
//! warmed by the first run — and compares both against the oracle
//! (spec-informed) DollyMP scheduler.
//!
//! Run with:
//! ```sh
//! cargo run --release --example yarn_deployment
//! ```

use dollymp::prelude::*;

fn workload(seed: u64) -> Vec<JobSpec> {
    (0..16u64)
        .map(|i| {
            let mut j = dollymp::workload::apps::wordcount(JobId(i), 0, 6.0, seed);
            j = JobSpec::builder(JobId(i))
                .arrival(i * 6)
                .label("wordcount")
                .phase(j.phases()[0].clone())
                .phase(j.phases()[1].clone())
                .build()
                .expect("rebuilt chain valid");
            j
        })
        .collect()
}

fn main() {
    let cluster = ClusterSpec::paper_30_node();
    let sampler = DurationSampler::new(33, StragglerModel::ParetoFit);
    let jobs = workload(33);

    // Run 1: cold history — AMs estimate from defaults, then from the
    // first finished tasks of each phase.
    let history = HistoryRegistry::new();
    let mut cold = YarnSystem::with_history(2, history.clone());
    let r_cold = simulate(
        &cluster,
        jobs.clone(),
        &sampler,
        &mut cold,
        &EngineConfig::default(),
    );

    // Run 2: warm history — the registry now holds per-phase statistics
    // of 16 prior wordcount runs.
    let mut warm = YarnSystem::with_history(2, history.clone());
    let r_warm = simulate(
        &cluster,
        jobs.clone(),
        &sampler,
        &mut warm,
        &EngineConfig::default(),
    );

    // Oracle: the plain DollyMP scheduler reads true (θ, σ) from specs.
    let mut oracle = DollyMP::new();
    let r_oracle = simulate(
        &cluster,
        jobs,
        &sampler,
        &mut oracle,
        &EngineConfig::default(),
    );

    println!("recurring WordCount workload (16 jobs) through the YARN control plane\n");
    println!(
        "{:<28} {:>14} {:>10}",
        "configuration", "total flow", "clones"
    );
    for (name, r) in [
        ("yarn, cold history", &r_cold),
        ("yarn, warm history", &r_warm),
        ("oracle DollyMP (true stats)", &r_oracle),
    ] {
        println!(
            "{:<28} {:>14} {:>10}",
            name,
            r.total_flowtime(),
            r.jobs.iter().map(|j| j.clone_copies).sum::<u64>()
        );
    }
    println!(
        "\nhistory registry now holds {} (label, phase) entries; \
         warm estimates track the oracle more closely than cold ones.",
        history.len()
    );
}
