//! Heavy-load comparison on the paper's heterogeneous 30-node cluster
//! (§6.2.2): run a scaled-down version of the 500-job PageRank experiment
//! under five schedulers and print flowtime/running-time distributions.
//!
//! Run with:
//! ```sh
//! cargo run --release --example heterogeneous_cluster
//! ```

use dollymp::cluster::metrics::quantile;
use dollymp::prelude::*;

fn main() {
    let cluster = ClusterSpec::paper_30_node();
    // 50 PageRank jobs arriving every ~20 s — heavy load on 328 cores.
    let jobs = dollymp::workload::suite::heavy_pagerank(11, 10);
    let sampler = DurationSampler::new(11, StragglerModel::ParetoFit);

    println!(
        "heavy-load PageRank ({} jobs) on the 30-node cluster\n",
        jobs.len()
    );
    println!(
        "{:<16} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "scheduler", "total flow", "p50 flow", "p90 flow", "p50 run", "p90 run"
    );
    for name in ["capacity-nospec", "capacity", "tetris", "drf", "dollymp2"] {
        let mut s = by_name(name).expect("known scheduler");
        // `capacity` uses progress-based speculation → give it the 1-slot
        // monitoring tick a real MapReduce AM would have.
        let cfg = if name == "capacity" {
            EngineConfig {
                tick: Some(1),
                ..Default::default()
            }
        } else {
            EngineConfig::default()
        };
        let r = simulate(&cluster, jobs.clone(), &sampler, s.as_mut(), &cfg);
        let flows: Vec<f64> = r.jobs.iter().map(|j| j.flowtime as f64).collect();
        let runs: Vec<f64> = r.jobs.iter().map(|j| j.running_time as f64).collect();
        println!(
            "{:<16} {:>12} {:>10} {:>10} {:>10} {:>10}",
            name,
            r.total_flowtime(),
            quantile(&flows, 0.5),
            quantile(&flows, 0.9),
            quantile(&runs, 0.5),
            quantile(&runs, 0.9),
        );
    }
    println!("\n(values in 5-second slots; identical stochastic durations across schedulers)");
}
