//! Theory-level integration tests: Theorem 1's competitive bound, the
//! §4.1 cloning-regime ordering and the §5.1 augmented-ratio comparison,
//! exercised at larger sample sizes than the unit tests.

use dollymp::core::cloning::{classify_regime, flow1, flow2, flow3, CloningRegime};
use dollymp::core::resources::dominant_share;
use dollymp::core::speedup::{ParetoSpeedup, SpeedupFn};
use dollymp::core::theory::{
    dollymp_augmented_ratio, hrdf_augmented_ratio, list_schedule_flowtime, BfJob,
};
use dollymp::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
fn theorem1_holds_on_many_random_instances() {
    let mut rng = SmallRng::seed_from_u64(20220829);
    let cap = Resources::new(1.0, 1.0);
    let mut worst: f64 = 1.0;
    for _ in 0..500 {
        let n = rng.gen_range(2..=6);
        let jobs: Vec<BfJob> = (0..n)
            .map(|_| BfJob {
                arrival: 0,
                duration: rng.gen_range(1..=9),
                demand: Resources::new(
                    rng.gen_range(1..=10) as f64 / 10.0,
                    rng.gen_range(1..=10) as f64 / 10.0,
                ),
            })
            .collect();
        let inputs: Vec<TransientJob> = jobs
            .iter()
            .enumerate()
            .map(|(i, j)| {
                let d = dominant_share(j.demand, cap);
                TransientJob {
                    id: JobId(i as u64),
                    volume: d * j.duration as f64,
                    etime: j.duration as f64,
                    dominant: d,
                    speedup: SpeedupFn::None,
                }
            })
            .collect();
        let out = transient_schedule(&inputs, &TransientConfig::default());
        let flow = list_schedule_flowtime(&jobs, cap, &out.order);
        let opt = BruteForceOptimal::new(cap, jobs).min_total_flowtime();
        let ratio = flow as f64 / opt as f64;
        worst = worst.max(ratio);
        assert!(
            ratio <= theorem1_bound(1.0) + 1e-9,
            "Theorem 1 violated: {flow} > 6 × {opt}"
        );
    }
    // Empirically the transient algorithm is far better than its bound.
    assert!(
        worst < 2.0,
        "worst observed ratio {worst} unexpectedly large"
    );
}

#[test]
fn cloning_regime_matches_paper_thresholds() {
    // §4.1: `h(2) > N/(N−1)` once `N > 2α − 1` gives flow₃ < flow₁
    // immediately at that threshold. flow₁ < flow₂ additionally needs the
    // `h(2^j) < j` terms (j ≥ α/(α−1)) to outweigh the first levels, which
    // costs a couple more jobs for small α — hence the `+ 3` margin for
    // the full ordering.
    for alpha_tenths in 15..=50u32 {
        let alpha = alpha_tenths as f64 / 10.0;
        let h = ParetoSpeedup::new(alpha);
        let n_threshold = (2.0 * alpha - 1.0).ceil() as u32 + 1;
        for n in n_threshold..n_threshold + 20 {
            assert!(
                flow3(n, &h) < flow1(n, &h),
                "flow₃ ≥ flow₁ at N={n}, α={alpha}"
            );
        }
        let n_full = n_threshold + 3;
        for n in n_full..n_full + 20 {
            assert!(
                flow1(n, &h) < flow2(n, &h),
                "flow₁ ≥ flow₂ at N={n}, α={alpha}"
            );
            assert_eq!(classify_regime(n, &h), CloningRegime::ModestCloningWins);
        }
    }
}

#[test]
fn augmented_ratios_dominate_hrdf_everywhere() {
    for i in 1..=200 {
        let eps = i as f64 / 20.0;
        assert!(dollymp_augmented_ratio(eps) < hrdf_augmented_ratio(eps));
        // Exact gap from the formulas: 2/ε.
        let gap = hrdf_augmented_ratio(eps) - dollymp_augmented_ratio(eps);
        assert!((gap - 2.0 / eps).abs() < 1e-9);
    }
}

/// The transient algorithm with cloning (Corollary 4.1 copy counts) never
/// recommends more copies than the configured budget, and its priorities
/// are consistent with the no-cloning run's order.
#[test]
fn corollary_copy_recommendations_respect_budget() {
    let mut rng = SmallRng::seed_from_u64(7);
    let jobs: Vec<TransientJob> = (0..50)
        .map(|i| TransientJob {
            id: JobId(i),
            volume: rng.gen_range(0.01..10.0),
            etime: rng.gen_range(0.5..100.0),
            dominant: rng.gen_range(0.001..0.2),
            speedup: SpeedupFn::Pareto {
                alpha: rng.gen_range(1.2..4.0),
            },
        })
        .collect();
    for max_copies in [1u32, 2, 3, 4] {
        let cfg = TransientConfig {
            max_copies,
            ..Default::default()
        };
        let out = transient_schedule(&jobs, &cfg);
        for (i, &c) in out.recommended_copies.iter().enumerate() {
            assert!(c >= 1 && c <= max_copies, "job {i}: {c} copies");
        }
    }
}
