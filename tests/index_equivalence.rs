//! Equivalence pin for the hierarchical free-capacity index (the
//! scale-out tentpole): every scheduler driven through the segment-tree
//! query path must produce a `SimReport` **byte-identical** to the
//! legacy linear scan, with and without fault timelines, with
//! utilization sampling on.
//!
//! `LinearQueriesGuard` flips the index's thread-local escape hatch so
//! all first-fit/best-fit/max-free queries fall back to a linear walk of
//! the same per-server data; placements, commits, and bookkeeping are
//! unchanged. The tree is therefore a pure query accelerator — any
//! divergence caught here is an index bug, never an acceptable
//! approximation.

use dollymp::prelude::*;
use dollymp_cluster::capacity::LinearQueriesGuard;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn workload(seed: u64, njobs: u64) -> Vec<JobSpec> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..njobs)
        .map(|i| {
            JobSpec::builder(JobId(i))
                .arrival(rng.gen_range(0..njobs * 3))
                .phase(dollymp_core::job::PhaseSpec::new(
                    rng.gen_range(1..=6),
                    Resources::new(rng.gen_range(1..=3) as f64, rng.gen_range(2..=4) as f64),
                    rng.gen_range(2.0..12.0),
                    rng.gen_range(0.0..5.0),
                ))
                .build()
                .expect("valid spec")
        })
        .collect()
}

/// Random well-formed crash→restore windows (every crash repaired, so
/// runs can always drain) — same shape as the guard suite's.
fn fault_timeline(seed: u64, nservers: u32, horizon: u64) -> FaultTimeline {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6A2D);
    let mut events = Vec::new();
    for s in 0..nservers {
        let mut t = rng.gen_range(1..horizon / 2);
        for _ in 0..rng.gen_range(0..=2u32) {
            let len: u64 = rng.gen_range(1..=10);
            events.push(TimedFault {
                at: t,
                event: FaultEvent::Crash(ServerId(s)),
            });
            events.push(TimedFault {
                at: t + len,
                event: FaultEvent::Restore(ServerId(s)),
            });
            t += len + rng.gen_range(1..=15u64);
        }
    }
    FaultTimeline::new(events)
}

/// Zero the wall-clock fields so deterministic runs compare equal.
fn scrub(mut r: SimReport) -> SimReport {
    r.scheduling_ns = 0;
    r.sched_overhead = Default::default();
    r
}

fn run(name: &str, seed: u64, with_faults: bool, linear: bool) -> SimReport {
    let cluster = ClusterSpec::homogeneous(6, 6.0, 12.0);
    let jobs = workload(seed, 10);
    let faults = if with_faults {
        fault_timeline(seed, 6, 60)
    } else {
        FaultTimeline::empty()
    };
    let sampler = DurationSampler::new(seed, StragglerModel::ParetoFit);
    let cfg = EngineConfig {
        record_utilization: true,
        ..EngineConfig::default()
    };
    let mut s = dollymp::schedulers::by_name(name).expect("known policy");
    let report = if linear {
        let _guard = LinearQueriesGuard::new();
        simulate_with_faults(&cluster, jobs, &sampler, s.as_mut(), &cfg, &faults)
    } else {
        simulate_with_faults(&cluster, jobs, &sampler, s.as_mut(), &cfg, &faults)
    };
    scrub(report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole's correctness bar, per scheduler family: DollyMP
    /// with and without cloning, plain FIFO first-fit, and the Tetris
    /// packer — indexed vs. linear, faulty and fault-free.
    #[test]
    fn index_and_linear_paths_agree(seed in 0u64..10_000) {
        for name in ["dollymp2", "dollymp0", "fifo", "tetris"] {
            for with_faults in [false, true] {
                let indexed = run(name, seed, with_faults, false);
                let linear = run(name, seed, with_faults, true);
                prop_assert_eq!(
                    &indexed, &linear,
                    "{} (faults={}) diverged between the segment-tree and \
                     linear query paths", name, with_faults
                );
                // Byte-identical, not just structurally equal.
                prop_assert_eq!(
                    serde_json::to_string(&indexed).expect("serializes"),
                    serde_json::to_string(&linear).expect("serializes"),
                    "{} (faults={}): serialized reports differ", name, with_faults
                );
            }
        }
    }
}

/// The same pin on the paper-shaped heterogeneous cluster with a larger
/// DollyMP² run — deeper tree, mixed server sizes, utilization sampling.
#[test]
fn paper_cluster_dollymp_agrees_on_both_paths() {
    let cluster = ClusterSpec::paper_30_node();
    let jobs = workload(4242, 40);
    let sampler = DurationSampler::new(4242, StragglerModel::google_traces());
    let cfg = EngineConfig {
        record_utilization: true,
        ..EngineConfig::default()
    };
    let mut a = dollymp::schedulers::DollyMP::new();
    let indexed = scrub(simulate(&cluster, jobs.clone(), &sampler, &mut a, &cfg));
    let mut b = dollymp::schedulers::DollyMP::new();
    let linear = {
        let _guard = LinearQueriesGuard::new();
        scrub(simulate(&cluster, jobs, &sampler, &mut b, &cfg))
    };
    assert_eq!(indexed, linear);
    assert!(
        !indexed.utilization.is_empty(),
        "utilization sampling was on"
    );
}
