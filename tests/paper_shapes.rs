//! End-to-end integration tests asserting the paper's *qualitative*
//! claims — the orderings and ratios its figures report — on scaled-down
//! versions of the actual experiments. These are the "shape" contracts of
//! EXPERIMENTS.md, wired into `cargo test`.

use dollymp::prelude::*;

fn run(
    name: &str,
    cluster: &ClusterSpec,
    jobs: &[JobSpec],
    sampler: &DurationSampler,
) -> SimReport {
    let mut s = by_name(name).unwrap_or_else(|| panic!("unknown scheduler {name}"));
    let cfg = if name == "capacity" {
        EngineConfig {
            tick: Some(1),
            ..Default::default()
        }
    } else {
        EngineConfig::default()
    };
    simulate(cluster, jobs.to_vec(), sampler, s.as_mut(), &cfg)
}

/// Fig. 2 — the worked example is fully deterministic and must match the
/// paper's totals exactly: Tetris 46, Tetris+clone 42, small-first 34,
/// DollyMP¹ 28.
#[test]
fn fig2_worked_example_totals_match_exactly() {
    let cluster = ClusterSpec::homogeneous(1, 1.0, 1.0);
    let jobs = vec![
        JobSpec::single_phase(JobId(1), 1, Resources::new(0.80, 0.80), 10.0, 0.0),
        JobSpec::single_phase(JobId(2), 1, Resources::new(0.25, 0.25), 8.0, 0.0),
        JobSpec::single_phase(JobId(3), 1, Resources::new(0.25, 0.25), 8.0, 0.0),
    ];
    let sampler = DurationSampler::new(0, StragglerModel::ExpectedSpeedup { alpha: 2.5 });
    for (name, expected) in [
        ("tetris", 46),
        ("tetris+clone1", 42),
        ("dollymp0", 34),
        ("dollymp1", 28),
    ] {
        let r = run(name, &cluster, &jobs, &sampler);
        assert_eq!(r.total_flowtime(), expected, "{name}");
    }
}

/// Fig. 1 — the cloning variants must beat Capacity on the repeated
/// WordCount workload and be markedly more stable.
#[test]
fn fig1_cloning_stabilizes_repeated_jobs() {
    let cluster = ClusterSpec::paper_30_node();
    let jobs = dollymp::workload::suite::fig1_wordcount(1);
    let sampler = DurationSampler::new(1, StragglerModel::ParetoFit);
    let cap = run("capacity", &cluster, &jobs, &sampler);
    let d2 = run("dollymp2", &cluster, &jobs, &sampler);
    assert!(
        d2.mean_running_time() < cap.mean_running_time(),
        "DollyMP² must cut the mean running time ({} vs {})",
        d2.mean_running_time(),
        cap.mean_running_time()
    );
    // Stability: max/min run-time spread is tighter under DollyMP².
    let spread = |r: &SimReport| {
        let runs: Vec<u64> = r.jobs.iter().map(|j| j.running_time).collect();
        *runs.iter().max().unwrap() as f64 / *runs.iter().min().unwrap() as f64
    };
    assert!(
        spread(&d2) <= spread(&cap),
        "DollyMP² spread {} must not exceed capacity's {}",
        spread(&d2),
        spread(&cap)
    );
}

/// Fig. 4 — lightly loaded: DollyMP² beats DollyMP⁰ and the Capacity
/// scheduler on total flowtime; DollyMP¹/² beat DollyMP⁰.
#[test]
fn fig4_light_load_ordering() {
    let cluster = ClusterSpec::paper_30_node();
    let jobs = dollymp::workload::suite::light_load(4, 4); // 25 jobs
    let sampler = DurationSampler::new(4, StragglerModel::ParetoFit);
    let cap = run("capacity-nospec", &cluster, &jobs, &sampler).total_flowtime();
    let d0 = run("dollymp0", &cluster, &jobs, &sampler).total_flowtime();
    let d1 = run("dollymp1", &cluster, &jobs, &sampler).total_flowtime();
    let d2 = run("dollymp2", &cluster, &jobs, &sampler).total_flowtime();
    assert!(d2 < cap, "DollyMP² {d2} vs Capacity {cap}");
    assert!(d1 < d0, "DollyMP¹ {d1} vs DollyMP⁰ {d0}");
    assert!(d2 <= d1, "DollyMP² {d2} vs DollyMP¹ {d1}");
}

/// Figs. 5–7 — heavily loaded: DollyMP² beats Tetris and Capacity on
/// total flowtime for both applications.
#[test]
fn fig5_to_7_heavy_load_ordering() {
    let cluster = ClusterSpec::paper_30_node();
    let sampler = DurationSampler::new(5, StragglerModel::ParetoFit);
    for jobs in [
        dollymp::workload::suite::heavy_pagerank(5, 10),
        dollymp::workload::suite::heavy_wordcount(5, 10),
    ] {
        let tetris = run("tetris", &cluster, &jobs, &sampler).total_flowtime();
        let capacity = run("capacity-nospec", &cluster, &jobs, &sampler).total_flowtime();
        let d2 = run("dollymp2", &cluster, &jobs, &sampler).total_flowtime();
        assert!(d2 < tetris, "DollyMP² {d2} vs Tetris {tetris}");
        assert!(d2 < capacity, "DollyMP² {d2} vs Capacity {capacity}");
    }
}

/// Fig. 8 — trace simulation: DollyMP² speeds most jobs up vs Tetris and
/// costs more resources than DRF, but far less than the naïve 3× bound.
#[test]
fn fig8_trace_ratios_shape() {
    let cluster = ClusterSpec::google_like(60, 8);
    let jobs = generate_google(&GoogleConfig {
        njobs: 600,
        mean_gap_slots: 1.0,
        seed: 8,
        duration_cv: 1.2,
        ..Default::default()
    });
    let sampler = DurationSampler::new(8, StragglerModel::ParetoFit);
    let dmp = run("dollymp2", &cluster, &jobs, &sampler);
    let tetris = run("tetris", &cluster, &jobs, &sampler);
    let drf = run("drf", &cluster, &jobs, &sampler);
    assert!(dmp.total_flowtime() < tetris.total_flowtime());
    assert!(dmp.makespan <= tetris.makespan);
    let overhead = dmp.total_usage() / drf.total_usage();
    assert!(
        overhead > 1.0 && overhead < 3.0,
        "usage overhead {overhead} should be positive but far below 3×"
    );
}

/// Fig. 9 — clone-count ablation: cloning helps a lot going 0 → 1 → 2
/// and brings diminishing returns (and more usage) at 3.
#[test]
fn fig9_clone_count_diminishing_returns() {
    let cluster = ClusterSpec::google_like(50, 9);
    let jobs = generate_google(&GoogleConfig {
        njobs: 400,
        mean_gap_slots: 3.0,
        seed: 9,
        ..Default::default()
    });
    let sampler = DurationSampler::new(9, StragglerModel::google_traces());
    let flows: Vec<u64> = (0..4)
        .map(|r| run(&format!("dollymp{r}"), &cluster, &jobs, &sampler).total_flowtime())
        .collect();
    let usages: Vec<f64> = (0..4)
        .map(|r| run(&format!("dollymp{r}"), &cluster, &jobs, &sampler).total_usage())
        .collect();
    assert!(flows[1] < flows[0], "one clone must help: {flows:?}");
    assert!(flows[2] < flows[0], "two clones must help: {flows:?}");
    let gain12 = flows[1] as f64 - flows[2] as f64;
    let gain01 = flows[0] as f64 - flows[1] as f64;
    assert!(
        gain12 < gain01,
        "second clone must help less than the first: {flows:?}"
    );
    assert!(usages[3] > usages[2], "third clone costs more resources");
}

/// Fig. 10 — cloning still helps at high load, with the extra usage
/// shrinking as the cluster fills up.
#[test]
fn fig10_cloning_survives_high_load() {
    let base = ClusterSpec::google_like(40, 10);
    let jobs = generate_google(&GoogleConfig {
        njobs: 300,
        mean_gap_slots: 2.0,
        seed: 10,
        ..Default::default()
    });
    let sampler = DurationSampler::new(10, StragglerModel::google_traces());
    let mut usage_overheads = Vec::new();
    for factor in [1.0, 0.25] {
        let cluster = base.scale_cpu(factor);
        let d0 = run("dollymp0", &cluster, &jobs, &sampler);
        let d2 = run("dollymp2", &cluster, &jobs, &sampler);
        assert!(
            d2.total_flowtime() < d0.total_flowtime(),
            "cloning must help at capacity factor {factor}"
        );
        usage_overheads.push(d2.total_usage() / d0.total_usage());
    }
    assert!(
        usage_overheads[1] < usage_overheads[0],
        "extra usage must shrink as load grows: {usage_overheads:?}"
    );
}

/// Fig. 11 — DollyMP² beats the Carbyne approximation on mean flowtime
/// under heavy load while using comparable resources per job.
#[test]
fn fig11_vs_carbyne_shape() {
    let cluster = ClusterSpec::google_like(50, 11);
    let jobs = generate_google(&GoogleConfig {
        njobs: 500,
        mean_gap_slots: 1.0,
        seed: 11,
        ..Default::default()
    });
    let sampler = DurationSampler::new(11, StragglerModel::google_traces());
    let dmp = run("dollymp2", &cluster, &jobs, &sampler);
    let carbyne = run("carbyne", &cluster, &jobs, &sampler);
    assert!(
        dmp.mean_flowtime() < carbyne.mean_flowtime(),
        "DollyMP² {} vs Carbyne {}",
        dmp.mean_flowtime(),
        carbyne.mean_flowtime()
    );
}
