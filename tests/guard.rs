//! Cross-crate acceptance tests for the containment layer (PR 3's
//! tentpole): an adversarial policy under `GuardedScheduler` can never
//! take a run down, across arbitrary fault timelines — and a
//! well-behaved policy under the guard produces reports byte-identical
//! to the unguarded path.

use dollymp::prelude::*;
use dollymp::schedulers::{AdversarialConfig, AdversarialScheduler};
use dollymp_cluster::guard::GuardConfig;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn workload(seed: u64, njobs: u64) -> Vec<JobSpec> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..njobs)
        .map(|i| {
            JobSpec::builder(JobId(i))
                .arrival(rng.gen_range(0..njobs * 3))
                .phase(dollymp_core::job::PhaseSpec::new(
                    rng.gen_range(1..=6),
                    Resources::new(rng.gen_range(1..=3) as f64, rng.gen_range(2..=4) as f64),
                    rng.gen_range(2.0..12.0),
                    rng.gen_range(0.0..5.0),
                ))
                .build()
                .expect("valid spec")
        })
        .collect()
}

/// Random well-formed crash→restore windows (every crash repaired, so
/// runs can always drain) — same shape as the engine fuzz suite's.
fn fault_timeline(seed: u64, nservers: u32, horizon: u64) -> FaultTimeline {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6A2D);
    let mut events = Vec::new();
    for s in 0..nservers {
        let mut t = rng.gen_range(1..horizon / 2);
        for _ in 0..rng.gen_range(0..=2u32) {
            let len: u64 = rng.gen_range(1..=10);
            events.push(TimedFault {
                at: t,
                event: FaultEvent::Crash(ServerId(s)),
            });
            events.push(TimedFault {
                at: t + len,
                event: FaultEvent::Restore(ServerId(s)),
            });
            t += len + rng.gen_range(1..=15u64);
        }
    }
    FaultTimeline::new(events)
}

/// Zero the wall-clock fields so deterministic runs compare equal.
fn scrub(mut r: SimReport) -> SimReport {
    r.scheduling_ns = 0;
    r.sched_overhead = Default::default();
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline containment property: the adversary (over-commits,
    /// targets down servers, duplicates copies, names unknown jobs,
    /// stalls, panics, busy-waits past the budget) under the guard,
    /// on an arbitrary fault timeline, never panics the engine, still
    /// completes every job, and leaves a nonzero audit trail.
    #[test]
    fn guarded_adversary_never_takes_a_run_down(seed in 0u64..10_000) {
        let cluster = ClusterSpec::homogeneous(4, 6.0, 12.0);
        let jobs = workload(seed, 8);
        let njobs = jobs.len();
        let faults = fault_timeline(seed, 4, 60);
        let sampler = DurationSampler::new(seed, StragglerModel::ParetoFit);
        let mut guard = dollymp_cluster::guard::GuardedScheduler::with_config(
            AdversarialScheduler::with_config(AdversarialConfig::full_hostility()),
            GuardConfig {
                budget: std::time::Duration::from_micros(200),
                ..GuardConfig::default()
            },
        );
        let report = try_simulate_with_faults(
            &cluster,
            jobs,
            &sampler,
            &mut guard,
            &EngineConfig::default(),
            &faults,
        );
        let report = report.expect("guard must contain the adversary");
        prop_assert_eq!(report.jobs.len(), njobs, "every job completes");
        prop_assert!(!report.guard.is_clean(), "misbehaviour leaves a trail");
        prop_assert!(report.guard.total_rejections() > 0);
        // The panic attack only fires if strikes have not already
        // quarantined the adversary; either way it ends quarantined.
        prop_assert!(report.guard.policy_panics <= 1);
        prop_assert!(report.guard.quarantined_at.is_some(), "offender quarantined");
        prop_assert!(report.guard.fallback_passes > 0, "fallback finished the run");
    }

    /// Transparency: wrapping a well-behaved policy changes nothing —
    /// the guarded report is byte-identical to the unguarded one (after
    /// zeroing wall-clock timings) and its guard stats are all zero.
    #[test]
    fn guard_is_transparent_for_well_behaved_policies(seed in 0u64..10_000) {
        let cluster = ClusterSpec::homogeneous(4, 6.0, 12.0);
        let jobs = workload(seed, 8);
        let faults = fault_timeline(seed, 4, 60);
        let sampler = DurationSampler::new(seed, StragglerModel::ParetoFit);
        for name in ["fifo", "dollymp2"] {
            let mut plain = dollymp::schedulers::by_name(name).expect("known policy");
            let unguarded = simulate_with_faults(
                &cluster, jobs.clone(), &sampler, plain.as_mut(),
                &EngineConfig::default(), &faults,
            );
            let inner = dollymp::schedulers::by_name(name).expect("known policy");
            let mut guard = dollymp_cluster::guard::GuardedScheduler::new(inner);
            let guarded = simulate_with_faults(
                &cluster, jobs.clone(), &sampler, &mut guard,
                &EngineConfig::default(), &faults,
            );
            prop_assert!(guarded.guard.is_clean(), "{}: no interventions", name);
            prop_assert_eq!(scrub(unguarded), scrub(guarded), "{} must be unchanged", name);
        }
    }
}

/// Strict mode still refuses the adversary: `try_simulate` returns a
/// typed error (never panics), and the error maps onto the taxonomy.
#[test]
fn strict_mode_rejects_the_adversary_with_typed_errors() {
    let cluster = ClusterSpec::homogeneous(4, 6.0, 12.0);
    let jobs = workload(77, 6);
    let sampler = DurationSampler::new(77, StragglerModel::ParetoFit);
    let mut adv = AdversarialScheduler::new();
    let err = try_simulate(&cluster, jobs, &sampler, &mut adv, &EngineConfig::default())
        .expect_err("strict mode must refuse");
    // Whatever attack fired first, it lands in the shared taxonomy.
    let _reason: RejectReason = err.reason();
}

/// A well-behaved, self-consistent policy that clones aggressively from
/// leftover capacity — the kind of speculation the throttle exists to
/// suppress under saturation.
struct CloneHappy;

impl Scheduler for CloneHappy {
    fn name(&self) -> String {
        "clone-happy".into()
    }
    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        let mut free: Vec<Resources> = view.servers().map(|(_, _, f)| f).collect();
        let mut out = FifoFirstFit.schedule(view);
        for a in &out {
            let demand = view
                .job(a.task.job)
                .map(|j| j.spec().phase(a.task.phase).demand)
                .unwrap_or(Resources::ZERO);
            free[a.server.0 as usize] -= demand;
        }
        // One clone per running task into whatever is left.
        for job in view.jobs() {
            for task in job.running_tasks() {
                if job.task(task.phase, task.task).live_copies() >= 2 {
                    continue;
                }
                let demand = job.spec().phase(task.phase).demand;
                if let Some(s) = (0..free.len()).find(|&s| demand.fits_in(free[s])) {
                    free[s] -= demand;
                    out.push(Assignment {
                        task,
                        server: ServerId(s as u32),
                        kind: CopyKind::Clone,
                    });
                }
            }
        }
        out
    }
}

/// The guard under overload config still completes a saturated workload
/// and its saturation signal suppresses clone launches while the
/// cluster is hot.
#[test]
fn overload_guard_throttles_clones_under_saturation() {
    let cluster = ClusterSpec::homogeneous(4, 4.0, 8.0);
    // Everything arrives at once: 96 tasks on 16 task-slots of capacity
    // means sustained saturation for most of the run.
    let jobs: Vec<JobSpec> = (0..24u64)
        .map(|i| JobSpec::single_phase(JobId(i), 4, Resources::new(1.0, 2.0), 10.0, 4.0))
        .collect();
    let sampler = DurationSampler::new(9, StragglerModel::ParetoFit);
    let mut guard = dollymp_cluster::guard::GuardedScheduler::with_config(
        CloneHappy,
        GuardConfig {
            // The 16-slot cluster quantizes utilization in 1/16 steps, so
            // "saturated" here is ≥90% (15 of 16 slots busy).
            clone_throttle: Some(dollymp_cluster::guard::CloneThrottle {
                high: 0.90,
                low: 0.50,
            }),
            ..GuardConfig::default()
        },
    );
    let report = try_simulate(
        &cluster,
        jobs,
        &sampler,
        &mut guard,
        &EngineConfig::default(),
    )
    .expect("completes");
    assert_eq!(report.jobs.len(), 24);
    assert!(
        report.guard.clones_throttled > 0,
        "saturation must suppress clone launches: {:?}",
        report.guard
    );
    assert!(
        report.guard.quarantined_at.is_none(),
        "no offence committed"
    );
}
