//! Cross-crate acceptance tests for the fault-injection subsystem:
//! stochastic schedules from `dollymp-faults` driven through the engine
//! under real schedulers.
//!
//! Pins the three contract properties end to end: a zero-rate schedule
//! is invisible (bit-identical reports), the same seed + timeline is
//! reproducible, and cloning acts as failure insurance (DollyMP with
//! clones fully loses strictly fewer tasks than the no-clone baseline
//! on the same fault timeline).

use dollymp::faults::generate;
use dollymp::prelude::*;

fn seeded_workload() -> (ClusterSpec, Vec<JobSpec>, DurationSampler) {
    let cluster = ClusterSpec::paper_30_node();
    let mut jobs = Vec::new();
    for i in 0..40u64 {
        let (n, theta) = match i % 4 {
            0 => (20, 40.0),
            1 => (4, 8.0),
            2 => (8, 12.0),
            _ => (2, 5.0),
        };
        jobs.push(
            JobSpec::builder(JobId(i))
                .arrival(i * 5)
                .phase(dollymp_core::job::PhaseSpec::new(
                    n,
                    Resources::new(1.0 + (i % 3) as f64, 4.0),
                    theta,
                    theta / 2.0,
                ))
                .build()
                .expect("valid job spec"),
        );
    }
    let sampler = DurationSampler::new(23, StragglerModel::ParetoFit);
    (cluster, jobs, sampler)
}

/// Zero the wall-clock overhead fields so deterministic runs compare
/// equal.
fn scrub(mut r: SimReport) -> SimReport {
    r.scheduling_ns = 0;
    r.sched_overhead = Default::default();
    r
}

fn run(
    cluster: &ClusterSpec,
    jobs: &[JobSpec],
    sampler: &DurationSampler,
    clones: u32,
    faults: &FaultTimeline,
) -> SimReport {
    let mut s = DollyMP::with_clones(clones);
    simulate_with_faults(
        cluster,
        jobs.to_vec(),
        sampler,
        &mut s,
        &EngineConfig::default(),
        faults,
    )
}

#[test]
fn zero_rate_schedule_is_invisible() {
    let (cluster, jobs, sampler) = seeded_workload();
    let cfg = FaultConfig::new(99, 100_000);
    let timeline = generate(&cluster, &cfg);
    assert!(timeline.is_empty(), "all-zero rates generate no events");

    let mut s1 = DollyMP::with_clones(2);
    let plain = simulate(
        &cluster,
        jobs.clone(),
        &sampler,
        &mut s1,
        &EngineConfig::default(),
    );
    let faulty = run(&cluster, &jobs, &sampler, 2, &timeline);
    assert_eq!(scrub(plain), scrub(faulty));
}

#[test]
fn same_seed_and_schedule_reproduce_identical_reports() {
    let (cluster, jobs, sampler) = seeded_workload();
    let cfg = FaultConfig::new(41, 2_000)
        .with_crash_rate(1e-3, 50.0)
        .with_fail_slow(0.1, 0.5);
    let a = generate(&cluster, &cfg);
    let b = generate(&cluster, &cfg);
    assert_eq!(a.events(), b.events(), "generation is deterministic");

    let r1 = run(&cluster, &jobs, &sampler, 2, &a);
    let r2 = run(&cluster, &jobs, &sampler, 2, &b);
    assert_eq!(scrub(r1.clone()), scrub(r2));
    assert!(
        r1.faults.server_crashes > 0,
        "the schedule actually injected crashes"
    );
}

#[test]
fn cloning_is_failure_insurance() {
    let (cluster, jobs, sampler) = seeded_workload();
    let cfg = FaultConfig::new(17, 2_000).with_crash_rate(5e-3, 30.0);
    let timeline = generate(&cluster, &cfg);

    let with_clones = run(&cluster, &jobs, &sampler, 2, &timeline);
    let without = run(&cluster, &jobs, &sampler, 0, &timeline);

    assert!(with_clones.faults.copies_evicted > 0, "faults hit the run");
    assert!(without.faults.tasks_requeued > 0, "baseline loses tasks");
    assert!(
        with_clones.faults.tasks_requeued < without.faults.tasks_requeued,
        "cloning must save tasks from full loss: {} vs {}",
        with_clones.faults.tasks_requeued,
        without.faults.tasks_requeued
    );
    assert!(
        with_clones.faults.tasks_saved_by_clone > 0,
        "some evictions were absorbed by a live clone"
    );
    // Both runs still complete every job — faults delay, never drop.
    assert_eq!(with_clones.jobs.len(), jobs.len());
    assert_eq!(without.jobs.len(), jobs.len());
}
